//! Generic on-the-fly exploration over any [`TransitionSystem`]:
//! materialization into an explicit [`Lts`], capped reachability scans,
//! deadlock search with counterexample traces, and the violation searches
//! behind the on-the-fly fragment of the μ-calculus checker.
//!
//! The searches are *short-circuiting*: they stop at the first state that
//! settles the question, so a deadlock in a lazy product can be found
//! after materializing a fraction of the full product (the whole point of
//! the implicit-graph seam — see `DESIGN.md` §6).

use crate::label::{LabelId, LabelTable};
use crate::lts::{Lts, StateId};
use crate::store::{PackState, StateStore};
use crate::ts::TransitionSystem;
use multival_par::{par_map, ShardedIndex, Workers};
use std::collections::{HashMap, VecDeque};

/// Caps for the on-the-fly searches.
#[derive(Debug, Clone)]
pub struct ReachOptions {
    /// Maximum number of states to visit before giving up (inclusive: the
    /// search stops admitting states once this many are indexed).
    pub max_states: usize,
}

impl Default for ReachOptions {
    fn default() -> Self {
        ReachOptions { max_states: 1_000_000 }
    }
}

impl ReachOptions {
    /// Options with a custom visited-state cap.
    pub fn with_max_states(max_states: usize) -> Self {
        ReachOptions { max_states }
    }
}

/// What an on-the-fly search actually did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReachStats {
    /// States visited (hash-consed) before the search stopped.
    pub visited: usize,
    /// Transitions enumerated before the search stopped.
    pub transitions: usize,
    /// `true` when the state cap stopped the search before it could settle
    /// the question — the verdict is then inconclusive.
    pub truncated: bool,
}

/// The outcome of an on-the-fly search: an optional witness trace (its
/// meaning depends on the search — a path to a deadlock, to a matching
/// action, ...) plus the work statistics.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The witness trace (label names along the path), if the searched-for
    /// situation was found.
    pub witness: Option<Vec<String>>,
    /// Visited/transition counts and the truncation flag.
    pub stats: ReachStats,
}

/// Materializes the reachable part of `ts` into an explicit [`Lts`],
/// numbering states in BFS discovery order (state 0 initial).
///
/// For a [`crate::ts::LazyProduct`] of two components this is byte-identical
/// to the eager [`crate::ops::compose`] — which is now implemented as
/// exactly this call.
pub fn materialize<T: TransitionSystem>(ts: &T) -> Lts {
    materialize_with(ts, Workers::sequential())
}

/// [`materialize`] with an explicit worker count for successor derivation.
///
/// The result is identical at any worker count for systems with a fixed
/// label table: workers only derive successor lists level by level, and a
/// sequential merge in canonical frontier order assigns state numbers
/// exactly as the sequential BFS would (the same scheme as the parallel
/// `pa` explorer). Lazily-interning systems must use
/// [`Workers::sequential`] — see the determinism contract in
/// [`crate::ts`].
pub fn materialize_with<T: TransitionSystem>(ts: &T, workers: Workers) -> Lts {
    if workers.is_sequential() {
        return materialize_sequential(ts);
    }

    /// Sentinel: provisional id not yet assigned a canonical number.
    const NO_CANON: StateId = StateId::MAX;
    let index: ShardedIndex<T::State> = ShardedIndex::new();
    let mut prov2canon: Vec<StateId> = Vec::new();
    let mut states: Vec<T::State> = Vec::new();
    let mut transitions: Vec<(StateId, LabelId, StateId)> = Vec::new();

    let init = ts.initial_state();
    index.get_or_insert(init.clone());
    prov2canon.push(0);
    states.push(init);
    let mut num_states: u32 = 1;

    // Per-frontier-state output of the parallel stage: the successor list
    // (label, provisional id) plus the freshly discovered target states.
    type LevelResult<S> = (Vec<(LabelId, u32)>, Vec<(u32, S)>);

    let mut frontier: Vec<StateId> = vec![0];
    while !frontier.is_empty() {
        // Parallel stage: successor derivation + provisional numbering.
        let results: Vec<LevelResult<T::State>> = par_map(workers, &frontier, |_, &s| {
            let mut succ = Vec::new();
            let mut fresh = Vec::new();
            for (label, target) in ts.successors(&states[s as usize]) {
                let (prov, was_new) = index.get_or_insert(target.clone());
                if was_new {
                    fresh.push((prov, target));
                }
                succ.push((label, prov));
            }
            (succ, fresh)
        });

        let first_new = prov2canon.len() as u32;
        let new_count = (index.next_id() - first_new) as usize;
        let mut fresh_states: Vec<Option<T::State>> = vec![None; new_count];
        for (_, fresh) in &results {
            for (prov, state) in fresh {
                fresh_states[(prov - first_new) as usize] = Some(state.clone());
            }
        }
        prov2canon.resize(index.next_id() as usize, NO_CANON);

        // Sequential merge: canonical numbering in frontier order.
        let mut next_frontier: Vec<StateId> = Vec::new();
        for (i, (succ, _)) in results.into_iter().enumerate() {
            let src = frontier[i];
            for (label, prov) in succ {
                let mut dst = prov2canon[prov as usize];
                if dst == NO_CANON {
                    dst = num_states;
                    num_states += 1;
                    prov2canon[prov as usize] = dst;
                    states.push(
                        fresh_states[(prov - first_new) as usize]
                            .take()
                            .expect("every provisional id has a registered state"),
                    );
                    next_frontier.push(dst);
                }
                transitions.push((src, label, dst));
            }
        }
        frontier = next_frontier;
    }
    Lts::from_parts(ts.label_table(), num_states, 0, transitions)
}

/// [`materialize_with`] over a pluggable [`StateStore`]: visited-state
/// dedup runs on *packed byte keys* owned by the store instead of a
/// `HashMap` of cloned state values, so the resident set can live in a
/// packed arena or spill to disk (see [`crate::store`]).
///
/// The result is byte-identical to [`materialize_with`] at any worker
/// count and with any backend: workers only derive successor lists level
/// by level, and the sequential merge interns targets in canonical
/// frontier order — exactly the discovery order of the sequential BFS.
/// Only frontier states are kept as live values; the interior of the
/// visited set exists solely as packed keys inside the store.
pub fn materialize_store<T>(ts: &T, workers: Workers, store: &mut dyn StateStore) -> Lts
where
    T: TransitionSystem,
    T::State: PackState,
{
    let mut key = Vec::new();
    let init = ts.initial_state();
    init.pack(&mut key);
    let (id, fresh) = store.get_or_insert(&key);
    assert!(fresh && id == 0, "materialize_store needs an empty store");
    let mut frontier: Vec<(StateId, T::State)> = vec![(0, init)];
    let mut transitions: Vec<(StateId, LabelId, StateId)> = Vec::new();

    while !frontier.is_empty() {
        // Parallel stage: derivation only — dedup is the merge's job, so
        // the store needs no synchronization at all.
        let results: Vec<Vec<(LabelId, T::State)>> =
            par_map(workers, &frontier, |_, (_, s)| ts.successors(s));

        let mut next: Vec<(StateId, T::State)> = Vec::new();
        for ((src, _), succ) in frontier.iter().zip(results) {
            for (label, target) in succ {
                key.clear();
                target.pack(&mut key);
                let (dst, new) = store.get_or_insert(&key);
                if new {
                    next.push((dst, target));
                }
                transitions.push((*src, label, dst));
            }
        }
        frontier = next;
    }
    Lts::from_parts(ts.label_table(), store.len() as u32, 0, transitions)
}

fn materialize_sequential<T: TransitionSystem>(ts: &T) -> Lts {
    let mut index: HashMap<T::State, StateId> = HashMap::new();
    let mut queue: VecDeque<T::State> = VecDeque::new();
    let mut transitions: Vec<(StateId, LabelId, StateId)> = Vec::new();
    let mut num_states: u32 = 1;

    let init = ts.initial_state();
    index.insert(init.clone(), 0);
    queue.push_back(init);

    while let Some(state) = queue.pop_front() {
        let src = index[&state];
        for (label, target) in ts.successors(&state) {
            let dst = match index.get(&target) {
                Some(&d) => d,
                None => {
                    let d = num_states;
                    num_states += 1;
                    index.insert(target.clone(), d);
                    queue.push_back(target);
                    d
                }
            };
            transitions.push((src, label, dst));
        }
    }
    Lts::from_parts(ts.label_table(), num_states, 0, transitions)
}

/// A streaming reachability scan: counts without storing the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanSummary {
    /// Distinct states visited.
    pub states: usize,
    /// Transitions enumerated.
    pub transitions: usize,
    /// Visited states with no outgoing transition.
    pub deadlocks: usize,
    /// `true` when the state cap truncated the scan.
    pub truncated: bool,
}

/// Visits the reachable states of `ts` breadth-first, counting states,
/// transitions, and deadlocks, without materializing an LTS.
pub fn scan<T: TransitionSystem>(ts: &T, options: &ReachOptions) -> ScanSummary {
    let mut index: HashMap<T::State, StateId> = HashMap::new();
    let mut queue: VecDeque<T::State> = VecDeque::new();
    let mut summary = ScanSummary { states: 1, transitions: 0, deadlocks: 0, truncated: false };

    let init = ts.initial_state();
    index.insert(init.clone(), 0);
    queue.push_back(init);

    while let Some(state) = queue.pop_front() {
        let succ = ts.successors(&state);
        if succ.is_empty() {
            summary.deadlocks += 1;
        }
        summary.transitions += succ.len();
        for (_, target) in succ {
            if !index.contains_key(&target) {
                if summary.states >= options.max_states {
                    summary.truncated = true;
                    continue;
                }
                index.insert(target.clone(), summary.states as StateId);
                summary.states += 1;
                queue.push_back(target);
            }
        }
    }
    summary
}

/// The BFS bookkeeping shared by the trace-producing searches: visited
/// states with, for each, the predecessor edge that discovered it.
struct TraceBfs<T: TransitionSystem> {
    index: HashMap<T::State, u32>,
    states: Vec<T::State>,
    /// `pred[i]` — `(predecessor index, label)` that discovered state `i`.
    pred: Vec<Option<(u32, LabelId)>>,
    queue: VecDeque<u32>,
    transitions: usize,
}

impl<T: TransitionSystem> TraceBfs<T> {
    fn new(ts: &T) -> Self {
        let init = ts.initial_state();
        let mut bfs = TraceBfs {
            index: HashMap::new(),
            states: Vec::new(),
            pred: Vec::new(),
            queue: VecDeque::new(),
            transitions: 0,
        };
        bfs.index.insert(init.clone(), 0);
        bfs.states.push(init);
        bfs.pred.push(None);
        bfs.queue.push_back(0);
        bfs
    }

    /// Admits `target` (discovered from `src` via `label`) if new; returns
    /// `false` when the state cap refused a fresh state.
    fn admit(&mut self, src: u32, label: LabelId, target: T::State, cap: usize) -> bool {
        if self.index.contains_key(&target) {
            return true;
        }
        if self.states.len() >= cap {
            return false;
        }
        let d = self.states.len() as u32;
        self.index.insert(target.clone(), d);
        self.states.push(target);
        self.pred.push(Some((src, label)));
        self.queue.push_back(d);
        true
    }

    /// The label-name path from the initial state to `state`.
    fn trace_to(&self, table: &LabelTable, state: u32) -> Vec<String> {
        let mut labels = Vec::new();
        let mut cur = state;
        while let Some((prev, label)) = self.pred[cur as usize] {
            labels.push(table.name(label).to_owned());
            cur = prev;
        }
        labels.reverse();
        labels
    }

    fn stats(&self, truncated: bool) -> ReachStats {
        ReachStats { visited: self.states.len(), transitions: self.transitions, truncated }
    }
}

/// Searches breadth-first for a reachable deadlock state (no outgoing
/// transitions). The witness is a shortest trace to the deadlock.
pub fn deadlock_search<T: TransitionSystem>(ts: &T, options: &ReachOptions) -> SearchOutcome {
    let mut bfs = TraceBfs::new(ts);
    let mut truncated = false;
    while let Some(s) = bfs.queue.pop_front() {
        let succ = ts.successors(&bfs.states[s as usize]);
        if succ.is_empty() {
            let witness = bfs.trace_to(&ts.label_table(), s);
            return SearchOutcome { witness: Some(witness), stats: bfs.stats(false) };
        }
        bfs.transitions += succ.len();
        for (label, target) in succ {
            if !bfs.admit(s, label, target, options.max_states) {
                truncated = true;
            }
        }
    }
    SearchOutcome { witness: None, stats: bfs.stats(truncated) }
}

/// Per-label-id memo of a name predicate, refreshed from the system's
/// table snapshot on first sight of each id (lazily-interning systems grow
/// their tables during the search).
struct LabelMemo {
    verdicts: Vec<Option<bool>>,
}

impl LabelMemo {
    fn new() -> Self {
        LabelMemo { verdicts: Vec::new() }
    }

    fn matches<T: TransitionSystem>(
        &mut self,
        ts: &T,
        label: LabelId,
        pred: &dyn Fn(&str) -> bool,
    ) -> bool {
        if label.index() >= self.verdicts.len() {
            self.verdicts.resize(label.index() + 1, None);
        }
        *self.verdicts[label.index()].get_or_insert_with(|| pred(ts.label_table().name(label)))
    }
}

/// Searches breadth-first for a reachable transition whose label name
/// satisfies `pred`. The witness is a shortest trace *ending with* the
/// matching action.
pub fn action_search<T: TransitionSystem>(
    ts: &T,
    pred: impl Fn(&str) -> bool,
    options: &ReachOptions,
) -> SearchOutcome {
    let mut bfs = TraceBfs::new(ts);
    let mut memo = LabelMemo::new();
    let mut truncated = false;
    while let Some(s) = bfs.queue.pop_front() {
        let succ = ts.successors(&bfs.states[s as usize]);
        bfs.transitions += succ.len();
        for (label, target) in succ {
            if memo.matches(ts, label, &pred) {
                let table = ts.label_table();
                let mut witness = bfs.trace_to(&table, s);
                witness.push(table.name(label).to_owned());
                return SearchOutcome { witness: Some(witness), stats: bfs.stats(false) };
            }
            if !bfs.admit(s, label, target, options.max_states) {
                truncated = true;
            }
        }
    }
    SearchOutcome { witness: None, stats: bfs.stats(truncated) }
}

/// Searches depth-first for an execution that *avoids* actions matching
/// `pred` forever — the violation pattern of inevitability: either a path
/// over non-matching transitions ending in a deadlock, or a cycle of
/// non-matching transitions.
///
/// The witness is the offending path; for a cycle it includes the
/// transition that closes the loop. Branches entered through a matching
/// transition are never explored — the obligation is discharged there.
pub fn avoid_search<T: TransitionSystem>(
    ts: &T,
    pred: impl Fn(&str) -> bool,
    options: &ReachOptions,
) -> SearchOutcome {
    #[derive(Clone, Copy, PartialEq)]
    enum Status {
        New,
        OnStack,
        Done,
    }

    // Each frame: the state, the label that entered it (None for the
    // root), its non-matching successor edges, and a cursor into them.
    struct Frame {
        state: u32,
        entry: Option<LabelId>,
        edges: Vec<(LabelId, u32)>,
        cursor: usize,
    }

    /// Shared exploration state, factored out so `expand` can borrow it
    /// all at once.
    struct Dfs<S> {
        index: HashMap<S, u32>,
        states: Vec<S>,
        status: Vec<Status>,
        memo: LabelMemo,
        transitions: usize,
        truncated: bool,
    }

    impl<S: Clone + Eq + std::hash::Hash + Send + Sync> Dfs<S> {
        /// Classifies a state's successors into non-matching edges;
        /// `None` means the state is a deadlock (no successors at all).
        fn expand<T: TransitionSystem<State = S>>(
            &mut self,
            ts: &T,
            pred: &dyn Fn(&str) -> bool,
            s: u32,
            cap: usize,
        ) -> Option<Vec<(LabelId, u32)>> {
            let succ = ts.successors(&self.states[s as usize]);
            if succ.is_empty() {
                return None;
            }
            self.transitions += succ.len();
            let mut edges = Vec::new();
            for (label, target) in succ {
                if self.memo.matches(ts, label, pred) {
                    continue;
                }
                let idx = match self.index.get(&target) {
                    Some(&i) => i,
                    None => {
                        if self.states.len() >= cap {
                            self.truncated = true;
                            continue;
                        }
                        let i = self.states.len() as u32;
                        self.index.insert(target.clone(), i);
                        self.states.push(target);
                        self.status.push(Status::New);
                        i
                    }
                };
                edges.push((label, idx));
            }
            Some(edges)
        }

        fn stats(&self, truncated: bool) -> ReachStats {
            ReachStats { visited: self.states.len(), transitions: self.transitions, truncated }
        }
    }

    let mut dfs: Dfs<T::State> = Dfs {
        index: HashMap::new(),
        states: Vec::new(),
        status: Vec::new(),
        memo: LabelMemo::new(),
        transitions: 0,
        truncated: false,
    };
    let init = ts.initial_state();
    dfs.index.insert(init.clone(), 0);
    dfs.states.push(init);
    dfs.status.push(Status::OnStack);

    let trace_of = |stack: &[Frame], table: &LabelTable| -> Vec<String> {
        stack.iter().filter_map(|f| f.entry).map(|l| table.name(l).to_owned()).collect()
    };

    let mut stack: Vec<Frame> = Vec::new();
    match dfs.expand(ts, &pred, 0, options.max_states) {
        None => {
            // The initial state is itself a deadlock: the empty execution
            // avoids `pred` forever.
            return SearchOutcome { witness: Some(Vec::new()), stats: dfs.stats(false) };
        }
        Some(edges) => stack.push(Frame { state: 0, entry: None, edges, cursor: 0 }),
    }

    while let Some(top) = stack.last_mut() {
        if top.cursor >= top.edges.len() {
            dfs.status[top.state as usize] = Status::Done;
            stack.pop();
            continue;
        }
        let (label, target) = top.edges[top.cursor];
        top.cursor += 1;
        match dfs.status[target as usize] {
            Status::OnStack => {
                // A cycle of non-matching transitions: `pred` can be
                // avoided forever.
                let table = ts.label_table();
                let mut witness = trace_of(&stack, &table);
                witness.push(table.name(label).to_owned());
                return SearchOutcome { witness: Some(witness), stats: dfs.stats(false) };
            }
            Status::Done => continue,
            Status::New => {
                dfs.status[target as usize] = Status::OnStack;
                match dfs.expand(ts, &pred, target, options.max_states) {
                    None => {
                        // Deadlock at the end of a non-matching path.
                        let table = ts.label_table();
                        let mut witness = trace_of(&stack, &table);
                        witness.push(table.name(label).to_owned());
                        return SearchOutcome { witness: Some(witness), stats: dfs.stats(false) };
                    }
                    Some(edges) => {
                        stack.push(Frame { state: target, entry: Some(label), edges, cursor: 0 })
                    }
                }
            }
        }
    }

    let truncated = dfs.truncated;
    SearchOutcome { witness: None, stats: dfs.stats(truncated) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lts::LtsBuilder;
    use crate::ops;
    use crate::ts::LazyProduct;

    /// a -> b -> c, with a self-loop on the middle state.
    fn chain() -> Lts {
        let mut b = LtsBuilder::new();
        let s0 = b.add_state();
        let s1 = b.add_state();
        let s2 = b.add_state();
        let s3 = b.add_state();
        b.add_transition(s0, "a", s1);
        b.add_transition(s1, "loop", s1);
        b.add_transition(s1, "b", s2);
        b.add_transition(s2, "c", s3);
        b.build(s0)
    }

    #[test]
    fn materialize_round_trips_an_lts() {
        let lts = chain();
        let again = materialize(&lts);
        assert_eq!(crate::io::write_aut(&lts), crate::io::write_aut(&again));
    }

    #[test]
    fn scan_counts_match_materialization() {
        let lts = chain();
        let summary = scan(&lts, &ReachOptions::default());
        assert_eq!(summary.states, lts.num_states());
        assert_eq!(summary.transitions, lts.num_transitions());
        assert_eq!(summary.deadlocks, 1);
        assert!(!summary.truncated);
    }

    #[test]
    fn scan_reports_truncation() {
        let lts = chain();
        let summary = scan(&lts, &ReachOptions::with_max_states(2));
        assert!(summary.truncated);
        assert_eq!(summary.states, 2);
    }

    #[test]
    fn deadlock_search_finds_shortest_trace() {
        let lts = chain();
        let outcome = deadlock_search(&lts, &ReachOptions::default());
        assert_eq!(outcome.witness, Some(vec!["a".into(), "b".into(), "c".into()]));
        assert!(!outcome.stats.truncated);
    }

    #[test]
    fn deadlock_search_on_cycle_finds_nothing() {
        let mut b = LtsBuilder::new();
        let s0 = b.add_state();
        b.add_transition(s0, "tick", s0);
        let lts = b.build(s0);
        let outcome = deadlock_search(&lts, &ReachOptions::default());
        assert!(outcome.witness.is_none());
        assert_eq!(outcome.stats.visited, 1);
    }

    #[test]
    fn action_search_trace_ends_with_match() {
        let lts = chain();
        let outcome = action_search(&lts, |name| name == "c", &ReachOptions::default());
        assert_eq!(outcome.witness, Some(vec!["a".into(), "b".into(), "c".into()]));
        let missing = action_search(&lts, |name| name == "zzz", &ReachOptions::default());
        assert!(missing.witness.is_none());
        assert!(!missing.stats.truncated);
    }

    #[test]
    fn avoid_search_finds_cycle_and_deadlock_violations() {
        // A cycle that never does "goal": inevitability is violated.
        let mut b = LtsBuilder::new();
        let s0 = b.add_state();
        let s1 = b.add_state();
        b.add_transition(s0, "step", s1);
        b.add_transition(s1, "step", s0);
        b.add_transition(s0, "goal", s1);
        let lts = b.build(s0);
        let outcome = avoid_search(&lts, |name| name == "goal", &ReachOptions::default());
        assert_eq!(outcome.witness, Some(vec!["step".into(), "step".into()]));

        // Every path hits "goal": no violation.
        let mut b = LtsBuilder::new();
        let s0 = b.add_state();
        let s1 = b.add_state();
        b.add_transition(s0, "goal", s1);
        b.add_transition(s1, "goal", s0);
        let all_goal = b.build(s0);
        let ok = avoid_search(&all_goal, |name| name == "goal", &ReachOptions::default());
        assert!(ok.witness.is_none());

        // The chain's self-loop is found first; it also deadlocks after
        // "c" — either way inevitability of "goal" is violated.
        let violated = avoid_search(&chain(), |name| name == "goal", &ReachOptions::default());
        assert_eq!(violated.witness, Some(vec!["a".into(), "loop".into()]));

        // Without the self-loop the deadlock path is the witness.
        let mut b = LtsBuilder::new();
        let s: Vec<_> = (0..4).map(|_| b.add_state()).collect();
        b.add_transition(s[0], "a", s[1]);
        b.add_transition(s[1], "b", s[2]);
        b.add_transition(s[2], "c", s[3]);
        let straight = b.build(s[0]);
        let dead = avoid_search(&straight, |name| name == "goal", &ReachOptions::default());
        assert_eq!(dead.witness, Some(vec!["a".into(), "b".into(), "c".into()]));
    }

    #[test]
    fn materialize_store_matches_hashmap_on_every_backend() {
        use crate::store::{make_store, StoreConfig, StoreKind};
        // A 60-state product with both interleaved and synchronized moves.
        let mut left = LtsBuilder::new();
        let ls: Vec<_> = (0..10).map(|_| left.add_state()).collect();
        for (i, w) in ls.windows(2).enumerate() {
            left.add_transition(w[0], &format!("L !{i}"), w[1]);
        }
        left.add_transition(ls[9], "S", ls[0]);
        let left = left.build(ls[0]);
        let mut right = LtsBuilder::new();
        let rs: Vec<_> = (0..6).map(|_| right.add_state()).collect();
        for (i, w) in rs.windows(2).enumerate() {
            right.add_transition(w[0], &format!("R !{i}"), w[1]);
        }
        right.add_transition(rs[5], "S", rs[0]);
        let right = right.build(rs[0]);

        let parts = [&left, &right];
        let product = LazyProduct::new(&parts, &ops::Sync::on(["S"]));
        let want = crate::io::write_aut(&materialize(&product));
        for kind in StoreKind::ALL {
            for workers in [1, 4] {
                // A 1-byte budget forces the spill backend to page out
                // every sealed segment; other backends ignore it.
                let mut store = make_store(&StoreConfig { kind, mem_budget: Some(1) });
                let got = materialize_store(&product, Workers::new(workers), store.as_mut());
                assert_eq!(
                    want,
                    crate::io::write_aut(&got),
                    "store {kind} at {workers} workers diverged"
                );
                assert_eq!(store.len(), got.num_states());
            }
        }
    }

    #[test]
    fn search_visits_fewer_states_than_product_when_bug_is_shallow() {
        // Two independent 50-state counters, plus a shared "halt" available
        // immediately: the deadlock sits one step from the root, while the
        // full product has ~2.5k states.
        let mut counter = LtsBuilder::new();
        let states: Vec<_> = (0..50).map(|_| counter.add_state()).collect();
        for w in states.windows(2) {
            counter.add_transition(w[0], "tick", w[1]);
        }
        let stop = counter.add_state();
        counter.add_transition(states[0], "halt", stop);
        let counter = counter.build(states[0]);

        let parts = [&counter, &counter];
        let product = LazyProduct::new(&parts, &ops::Sync::on(["halt"]));
        let eager = materialize(&product).num_states();
        let outcome = deadlock_search(&product, &ReachOptions::default());
        assert!(outcome.witness.is_some());
        assert!(
            outcome.stats.visited < eager,
            "on-the-fly visited {} vs {} materialized",
            outcome.stats.visited,
            eager
        );
    }
}
