//! Implicit transition systems: the successor-function seam of the flow.
//!
//! A [`TransitionSystem`] is a graph given *intensionally* — an initial
//! state and a successor function — rather than as stored arrays. It is
//! the Rust counterpart of CADP's Open/Caesar implicit-graph API: every
//! on-the-fly algorithm in [`crate::reach`] (materialization, deadlock
//! search, violation search) is written once against this trait and works
//! for explicit [`Lts`] graphs, lazy parallel products, relabeling views,
//! and the process-algebra explorer's SOS successor function alike.
//!
//! # Determinism contract
//!
//! Implementations whose [`label_table`](TransitionSystem::label_table) is
//! fixed at construction time ([`Lts`], [`LazyProduct`], [`HideView`])
//! guarantee that [`crate::reach::materialize_with`] produces bit-identical
//! output at any worker count. Implementations that intern labels lazily
//! during exploration (the `pa` explorer's term-level system, or
//! [`RenameView`] over such a system) assign label ids in discovery order
//! and must be materialized sequentially for reproducible tables; on-the-fly
//! *search verdicts* are deterministic for every implementation regardless,
//! because traversal order never depends on label-id values.

use crate::label::{gate_of, LabelId, LabelTable};
use crate::lts::{Lts, StateId};
use crate::ops;
use std::collections::{HashMap, HashSet};
use std::sync::Mutex;

/// A transition system given by its successor function.
///
/// States are opaque hashable values; transitions carry ids from the
/// system's [`LabelTable`]. See the [module docs](self) for the
/// determinism contract.
pub trait TransitionSystem: Sync {
    /// The state representation (a dense id, a tuple of component states,
    /// a process-algebra term, ...).
    type State: Clone + Eq + std::hash::Hash + Send + Sync;

    /// The initial state.
    fn initial_state(&self) -> Self::State;

    /// The outgoing transitions of `state`, as `(label, target)` pairs in
    /// the system's canonical derivation order.
    fn successors(&self, state: &Self::State) -> Vec<(LabelId, Self::State)>;

    /// A snapshot of the label table. For lazily-interning systems the
    /// snapshot grows as exploration proceeds; every label id already
    /// returned by [`successors`](TransitionSystem::successors) is valid
    /// in every later snapshot.
    fn label_table(&self) -> LabelTable;

    /// An upper-bound hint on the number of reachable states, when one is
    /// known (used only for capacity pre-allocation).
    fn state_hint(&self) -> Option<usize> {
        None
    }
}

/// An explicit [`Lts`] is trivially a transition system.
impl TransitionSystem for Lts {
    type State = StateId;

    fn initial_state(&self) -> StateId {
        self.initial()
    }

    fn successors(&self, state: &StateId) -> Vec<(LabelId, StateId)> {
        self.transitions_from(*state).iter().map(|t| (t.label, t.target)).collect()
    }

    fn label_table(&self) -> LabelTable {
        self.labels().clone()
    }

    fn state_hint(&self) -> Option<usize> {
        Some(self.num_states())
    }
}

/// On-the-fly N-way parallel composition: the product of `N` component
/// LTSs under one [`ops::Sync`] discipline, *walked* instead of stored.
///
/// States are tuples of component states; only the successor function is
/// computed, so a deadlock or safety search can stop after visiting a
/// fraction of the full product. Materializing the binary product
/// ([`crate::reach::materialize`]) is byte-identical to the eager
/// [`ops::compose`] — the eager operators are thin wrappers over this type.
///
/// Synchronization follows the LOTOS discipline of [`ops::compose`]: a
/// label whose gate is in the sync set (or is `exit`) must be taken
/// jointly by *all* components with identical full labels; τ and
/// non-synchronizing labels interleave. For `N > 2` this coincides with
/// the left fold `(((p1 |[G]| p2) |[G]| p3) ...)` up to state numbering.
///
/// # Examples
///
/// ```
/// use multival_lts::equiv::lts_from_triples;
/// use multival_lts::ops::Sync;
/// use multival_lts::reach::materialize;
/// use multival_lts::ts::LazyProduct;
///
/// let a = lts_from_triples(&[(0, "GO", 1), (1, "i", 0)]);
/// let b = lts_from_triples(&[(0, "GO", 1), (1, "i", 0)]);
/// let product = LazyProduct::new(&[&a, &b], &Sync::on(["GO"]));
/// assert_eq!(materialize(&product).num_states(), 4);
/// ```
pub struct LazyProduct<'a> {
    parts: Vec<&'a Lts>,
    labels: LabelTable,
    /// `prod[k][l]` — product-table id of component `k`'s label `l`.
    prod: Vec<Vec<LabelId>>,
    /// `syncs[k][l]` — does component `k`'s label `l` synchronize?
    syncs: Vec<Vec<bool>>,
    /// `partner[k - 1][l]` — component `k`'s label with the identical full
    /// name as component 0's synchronizing label `l` (LOTOS value
    /// negotiation), if any.
    partner: Vec<Vec<Option<LabelId>>>,
}

impl<'a> LazyProduct<'a> {
    /// Builds the lazy product of `parts` under `sync`.
    ///
    /// The product label table is fixed here: component labels are
    /// interned rightmost-component first, matching the table layout the
    /// eager binary [`ops::compose`] has always produced.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty.
    pub fn new(parts: &[&'a Lts], sync: &ops::Sync) -> Self {
        assert!(!parts.is_empty(), "LazyProduct needs at least one component");
        let is_sync = |id: LabelId, name: &str| {
            !id.is_tau() && (gate_of(name) == "exit" || sync.synchronizes(gate_of(name)))
        };
        let mut labels = LabelTable::new();
        let mut prod = vec![Vec::new(); parts.len()];
        let mut syncs = vec![Vec::new(); parts.len()];
        for (k, part) in parts.iter().enumerate().rev() {
            for (id, name) in part.labels().iter() {
                prod[k].push(labels.intern(name));
                syncs[k].push(is_sync(id, name));
            }
        }
        let mut partner = Vec::with_capacity(parts.len() - 1);
        for k in 1..parts.len() {
            let col = parts[0]
                .labels()
                .iter()
                .map(|(id, name)| {
                    if syncs[0][id.index()] {
                        parts[k].labels().lookup(name).filter(|p| syncs[k][p.index()])
                    } else {
                        None
                    }
                })
                .collect();
            partner.push(col);
        }
        LazyProduct { parts: parts.to_vec(), labels, prod, syncs, partner }
    }

    /// The component LTSs.
    pub fn components(&self) -> &[&'a Lts] {
        &self.parts
    }

    /// Number of states of the *full* explicit product (the materialized
    /// space is the reachable subset of this).
    pub fn full_product_states(&self) -> usize {
        self.parts.iter().map(|p| p.num_states()).product()
    }

    /// Emits every synchronized move driven by component 0's transition
    /// `(label0, target0)`: the cross-product of each other component's
    /// identically-labeled moves, enumerated component 1 outermost (the
    /// order the eager binary compose produced).
    fn sync_moves(
        &self,
        state: &[StateId],
        label0: LabelId,
        next: &mut Vec<StateId>,
        k: usize,
        out: &mut Vec<(LabelId, Vec<StateId>)>,
    ) {
        if k == self.parts.len() {
            out.push((self.prod[0][label0.index()], next.clone()));
            return;
        }
        let Some(p) = self.partner[k - 1][label0.index()] else { return };
        for t in self.parts[k].transitions_from(state[k]) {
            if t.label == p {
                next[k] = t.target;
                self.sync_moves(state, label0, next, k + 1, out);
            }
        }
    }
}

impl TransitionSystem for LazyProduct<'_> {
    type State = Vec<StateId>;

    fn initial_state(&self) -> Vec<StateId> {
        self.parts.iter().map(|p| p.initial()).collect()
    }

    fn successors(&self, state: &Vec<StateId>) -> Vec<(LabelId, Vec<StateId>)> {
        let mut out = Vec::new();
        // Independent moves, component by component left to right — for two
        // components this is exactly the left-independent-then-right order
        // of the historical eager compose.
        for (k, part) in self.parts.iter().enumerate() {
            for t in part.transitions_from(state[k]) {
                if !self.syncs[k][t.label.index()] {
                    let mut next = state.clone();
                    next[k] = t.target;
                    out.push((self.prod[k][t.label.index()], next));
                }
            }
        }
        // Synchronized moves, driven by component 0.
        for t0 in self.parts[0].transitions_from(state[0]) {
            if self.syncs[0][t0.label.index()] {
                let mut next = state.clone();
                next[0] = t0.target;
                self.sync_moves(state, t0.label, &mut next, 1, &mut out);
            }
        }
        out
    }

    fn label_table(&self) -> LabelTable {
        self.labels.clone()
    }

    fn state_hint(&self) -> Option<usize> {
        Some(self.full_product_states())
    }
}

/// A lazy hiding view: labels whose gate is in (or, with
/// [`HideView::all_but`], *not* in) the gate set appear as τ.
///
/// Label ids and the label table pass through unchanged — hidden labels
/// are merely *reported* as τ — so the view inherits the inner system's
/// determinism guarantees. The hidden/visible decision per label id is
/// memoized.
pub struct HideView<'a, T: TransitionSystem> {
    inner: &'a T,
    gates: HashSet<String>,
    /// `false`: hide the listed gates; `true`: hide everything else.
    keep_listed: bool,
    verdicts: Mutex<HashMap<LabelId, bool>>,
}

impl<'a, T: TransitionSystem> HideView<'a, T> {
    /// Hides every label whose gate is in `gates` (LOTOS `hide G in B`).
    pub fn new<I, S>(inner: &'a T, gates: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        HideView {
            inner,
            gates: gates.into_iter().map(Into::into).collect(),
            keep_listed: false,
            verdicts: Mutex::new(HashMap::new()),
        }
    }

    /// Hides every label whose gate is *not* in `gates`.
    pub fn all_but<I, S>(inner: &'a T, gates: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut view = Self::new(inner, gates);
        view.keep_listed = true;
        view
    }

    fn is_hidden(&self, label: LabelId) -> bool {
        if label.is_tau() {
            return false; // Already τ; nothing to decide.
        }
        let mut verdicts = self.verdicts.lock().expect("verdict cache poisoned");
        if let Some(&hidden) = verdicts.get(&label) {
            return hidden;
        }
        let table = self.inner.label_table();
        let hidden = self.gates.contains(table.gate(label)) != self.keep_listed;
        verdicts.insert(label, hidden);
        hidden
    }
}

impl<T: TransitionSystem> TransitionSystem for HideView<'_, T> {
    type State = T::State;

    fn initial_state(&self) -> T::State {
        self.inner.initial_state()
    }

    fn successors(&self, state: &T::State) -> Vec<(LabelId, T::State)> {
        self.inner
            .successors(state)
            .into_iter()
            .map(|(l, t)| (if self.is_hidden(l) { LabelId::TAU } else { l }, t))
            .collect()
    }

    fn label_table(&self) -> LabelTable {
        self.inner.label_table()
    }

    fn state_hint(&self) -> Option<usize> {
        self.inner.state_hint()
    }
}

/// A lazy gate-renaming view: a label `G !1` with `map[G] = H` is reported
/// as `H !1`; offers are preserved.
///
/// Renaming changes label spellings, so the view owns a fresh
/// [`LabelTable`] and interns renamed labels in discovery order — like the
/// `pa` explorer, it is a lazily-interning system and must be materialized
/// sequentially for a reproducible table (see the [module docs](self)).
pub struct RenameView<'a, T: TransitionSystem> {
    inner: &'a T,
    map: HashMap<String, String>,
    /// Own table plus the inner-id → own-id translation, both grown lazily.
    interned: Mutex<(LabelTable, HashMap<LabelId, LabelId>)>,
}

impl<'a, T: TransitionSystem> RenameView<'a, T> {
    /// Renames gates according to `map`; unmapped gates pass through.
    pub fn new(inner: &'a T, map: HashMap<String, String>) -> Self {
        RenameView { inner, map, interned: Mutex::new((LabelTable::new(), HashMap::new())) }
    }

    fn renamed(&self, label: LabelId) -> LabelId {
        if label.is_tau() {
            return LabelId::TAU;
        }
        let mut interned = self.interned.lock().expect("rename cache poisoned");
        if let Some(&id) = interned.1.get(&label) {
            return id;
        }
        let table = self.inner.label_table();
        let name = table.name(label);
        let gate = gate_of(name);
        let id = match self.map.get(gate) {
            Some(new_gate) => interned.0.intern(&format!("{new_gate}{}", &name[gate.len()..])),
            None => interned.0.intern(name),
        };
        interned.1.insert(label, id);
        id
    }
}

impl<T: TransitionSystem> TransitionSystem for RenameView<'_, T> {
    type State = T::State;

    fn initial_state(&self) -> T::State {
        self.inner.initial_state()
    }

    fn successors(&self, state: &T::State) -> Vec<(LabelId, T::State)> {
        self.inner.successors(state).into_iter().map(|(l, t)| (self.renamed(l), t)).collect()
    }

    fn label_table(&self) -> LabelTable {
        self.interned.lock().expect("rename cache poisoned").0.clone()
    }

    fn state_hint(&self) -> Option<usize> {
        self.inner.state_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equiv::lts_from_triples;
    use crate::reach::materialize;

    #[test]
    fn lts_is_its_own_transition_system() {
        let lts = lts_from_triples(&[(0, "a", 1), (1, "b", 0)]);
        assert_eq!(lts.initial_state(), 0);
        assert_eq!(lts.state_hint(), Some(2));
        let succ = TransitionSystem::successors(&lts, &0);
        assert_eq!(succ.len(), 1);
        assert_eq!(lts.label_table().name(succ[0].0), "a");
    }

    #[test]
    fn lazy_product_interleaves_and_synchronizes() {
        let a = lts_from_triples(&[(0, "GO", 1), (1, "LA", 0)]);
        let b = lts_from_triples(&[(0, "GO", 1), (1, "LB", 0)]);
        let product = LazyProduct::new(&[&a, &b], &ops::Sync::on(["GO"]));
        assert_eq!(product.full_product_states(), 4);
        let init = product.initial_state();
        let succ = product.successors(&init);
        // Only the joint GO move is enabled initially.
        assert_eq!(succ.len(), 1);
        assert_eq!(product.label_table().name(succ[0].0), "GO");
        assert_eq!(succ[0].1, vec![1, 1]);
        // After GO the two local moves interleave.
        assert_eq!(product.successors(&succ[0].1).len(), 2);
    }

    #[test]
    fn single_component_product_is_the_component() {
        let a = lts_from_triples(&[(0, "X", 1), (1, "i", 0)]);
        let product = LazyProduct::new(&[&a], &ops::Sync::on(["X"]));
        let m = materialize(&product);
        assert_eq!(m.num_states(), a.num_states());
        assert_eq!(m.num_transitions(), a.num_transitions());
    }

    #[test]
    fn three_way_sync_requires_all_components() {
        let a = lts_from_triples(&[(0, "S", 1)]);
        let b = lts_from_triples(&[(0, "S", 1)]);
        let c = lts_from_triples(&[(0, "other", 1)]);
        // c never offers S, so the three-way product has no move at all
        // besides c's independent step.
        let product = LazyProduct::new(&[&a, &b, &c], &ops::Sync::on(["S"]));
        let succ = product.successors(&product.initial_state());
        assert_eq!(succ.len(), 1);
        assert_eq!(product.label_table().name(succ[0].0), "other");
    }

    #[test]
    fn hide_view_maps_gates_to_tau() {
        let lts = lts_from_triples(&[(0, "INT !1", 1), (1, "OBS", 0)]);
        let view = HideView::new(&lts, ["INT"]);
        let succ = view.successors(&0);
        assert!(succ[0].0.is_tau());
        let succ = view.successors(&1);
        assert_eq!(view.label_table().name(succ[0].0), "OBS");

        let keep = HideView::all_but(&lts, ["OBS"]);
        assert!(keep.successors(&0)[0].0.is_tau());
        assert!(!keep.successors(&1)[0].0.is_tau());
    }

    #[test]
    fn rename_view_preserves_offers() {
        let lts = lts_from_triples(&[(0, "PUSH !7", 1), (1, "i", 0)]);
        let map = HashMap::from([("PUSH".to_owned(), "IN".to_owned())]);
        let view = RenameView::new(&lts, map);
        let succ = view.successors(&0);
        assert_eq!(view.label_table().name(succ[0].0), "IN !7");
        assert!(view.successors(&1)[0].0.is_tau());
        // Materializing the view agrees with the eager renaming.
        let m = materialize(&view);
        assert!(m.labels().lookup("IN !7").is_some());
        assert_eq!(m.num_transitions(), 2);
    }
}
