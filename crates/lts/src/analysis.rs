//! Reachability-based analyses: shortest witness traces, deadlock witnesses,
//! and simple structural statistics used by the experiment harness.

use crate::label::LabelId;
use crate::lts::{Lts, StateId};
use std::collections::VecDeque;

/// A finite execution: the labels along a path from the initial state.
pub type Trace = Vec<String>;

/// Breadth-first search for a state satisfying `pred`, returning the shortest
/// trace to it (labels, τ included as `"i"`), or `None` if no reachable state
/// satisfies the predicate.
///
/// # Examples
///
/// ```
/// use multival_lts::{equiv::lts_from_triples, analysis::find_state};
///
/// let lts = lts_from_triples(&[(0, "a", 1), (1, "b", 2)]);
/// let trace = find_state(&lts, |s| s == 2).expect("state 2 reachable");
/// assert_eq!(trace, vec!["a", "b"]);
/// ```
pub fn find_state(lts: &Lts, mut pred: impl FnMut(StateId) -> bool) -> Option<Trace> {
    let n = lts.num_states();
    let mut pred_edge: Vec<Option<(StateId, LabelId)>> = vec![None; n];
    let mut seen = vec![false; n];
    let mut queue = VecDeque::new();
    seen[lts.initial() as usize] = true;
    queue.push_back(lts.initial());
    let mut found = None;
    if pred(lts.initial()) {
        found = Some(lts.initial());
    }
    while found.is_none() {
        let Some(s) = queue.pop_front() else { break };
        for t in lts.transitions_from(s) {
            if !seen[t.target as usize] {
                seen[t.target as usize] = true;
                pred_edge[t.target as usize] = Some((s, t.label));
                if pred(t.target) {
                    found = Some(t.target);
                    break;
                }
                queue.push_back(t.target);
            }
        }
    }
    let mut cur = found?;
    let mut labels = Vec::new();
    while let Some((prev, l)) = pred_edge[cur as usize] {
        labels.push(lts.labels().name(l).to_owned());
        cur = prev;
    }
    labels.reverse();
    Some(labels)
}

/// Shortest trace to a deadlock state, or `None` if the system is
/// deadlock-free.
pub fn deadlock_witness(lts: &Lts) -> Option<Trace> {
    find_state(lts, |s| lts.transitions_from(s).is_empty())
}

/// Shortest trace whose last transition carries a label whose full name
/// satisfies `pred` — useful for "can action X ever happen?" queries.
pub fn find_action(lts: &Lts, mut pred: impl FnMut(&str) -> bool) -> Option<Trace> {
    let n = lts.num_states();
    let mut pred_edge: Vec<Option<(StateId, LabelId)>> = vec![None; n];
    let mut seen = vec![false; n];
    let mut queue = VecDeque::new();
    seen[lts.initial() as usize] = true;
    queue.push_back(lts.initial());
    while let Some(s) = queue.pop_front() {
        for t in lts.transitions_from(s) {
            if pred(lts.labels().name(t.label)) {
                // Reconstruct path to s, then append this transition.
                let mut labels = vec![lts.labels().name(t.label).to_owned()];
                let mut cur = s;
                while let Some((prev, l)) = pred_edge[cur as usize] {
                    labels.push(lts.labels().name(l).to_owned());
                    cur = prev;
                }
                labels.reverse();
                return Some(labels);
            }
            if !seen[t.target as usize] {
                seen[t.target as usize] = true;
                pred_edge[t.target as usize] = Some((s, t.label));
                queue.push_back(t.target);
            }
        }
    }
    None
}

/// Per-label transition counts, sorted descending — a quick profile of which
/// actions dominate a state space.
pub fn label_histogram(lts: &Lts) -> Vec<(String, usize)> {
    let mut counts = vec![0usize; lts.labels().len()];
    for (_, l, _) in lts.iter_transitions() {
        counts[l.index()] += 1;
    }
    let mut hist: Vec<(String, usize)> = counts
        .into_iter()
        .enumerate()
        .filter(|&(_, c)| c > 0)
        .map(|(i, c)| (lts.labels().name(LabelId(i as u32)).to_owned(), c))
        .collect();
    hist.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    hist
}

/// Checks a state invariant over all reachable states, returning the shortest
/// trace to a violating state if any.
pub fn check_invariant(lts: &Lts, mut invariant: impl FnMut(StateId) -> bool) -> Option<Trace> {
    find_state(lts, |s| !invariant(s))
}

/// Graph diameter lower bound: the BFS depth of the farthest state from the
/// initial state (exact eccentricity of the initial state).
pub fn bfs_depth(lts: &Lts) -> usize {
    let n = lts.num_states();
    let mut dist = vec![usize::MAX; n];
    let mut queue = VecDeque::new();
    dist[lts.initial() as usize] = 0;
    queue.push_back(lts.initial());
    let mut max = 0;
    while let Some(s) = queue.pop_front() {
        for t in lts.transitions_from(s) {
            if dist[t.target as usize] == usize::MAX {
                dist[t.target as usize] = dist[s as usize] + 1;
                max = max.max(dist[t.target as usize]);
                queue.push_back(t.target);
            }
        }
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equiv::lts_from_triples;

    #[test]
    fn deadlock_witness_is_shortest() {
        // Two paths to deadlock state 3: length 2 via b, length 3 via a.
        let lts =
            lts_from_triples(&[(0, "a", 1), (1, "a2", 2), (2, "a3", 3), (0, "b", 4), (4, "b2", 3)]);
        let w = deadlock_witness(&lts).expect("deadlock exists");
        assert_eq!(w.len(), 2);
        assert_eq!(w, vec!["b", "b2"]);
    }

    #[test]
    fn deadlock_free_returns_none() {
        let lts = lts_from_triples(&[(0, "a", 1), (1, "b", 0)]);
        assert!(deadlock_witness(&lts).is_none());
    }

    #[test]
    fn find_action_matches_full_label() {
        let lts = lts_from_triples(&[(0, "PUSH !1", 1), (1, "PUSH !2", 2)]);
        let t = find_action(&lts, |l| l == "PUSH !2").expect("reachable");
        assert_eq!(t, vec!["PUSH !1", "PUSH !2"]);
        assert!(find_action(&lts, |l| l == "PUSH !3").is_none());
    }

    #[test]
    fn invariant_violation_found() {
        let lts = lts_from_triples(&[(0, "a", 1), (1, "b", 2)]);
        // Invariant "state != 2" is violated at depth 2.
        let w = check_invariant(&lts, |s| s != 2).expect("violated");
        assert_eq!(w.len(), 2);
        // Invariant "state < 10" holds.
        assert!(check_invariant(&lts, |s| s < 10).is_none());
    }

    #[test]
    fn histogram_sorted_descending() {
        let lts = lts_from_triples(&[(0, "a", 1), (1, "a", 0), (0, "b", 1)]);
        let h = label_histogram(&lts);
        assert_eq!(h[0], ("a".to_owned(), 2));
        assert_eq!(h[1], ("b".to_owned(), 1));
    }

    #[test]
    fn bfs_depth_of_chain() {
        let lts = lts_from_triples(&[(0, "a", 1), (1, "b", 2), (2, "c", 3)]);
        assert_eq!(bfs_depth(&lts), 3);
    }

    #[test]
    fn initial_state_can_satisfy_predicate() {
        let lts = lts_from_triples(&[(0, "a", 1)]);
        let t = find_state(&lts, |s| s == 0).expect("initial matches");
        assert!(t.is_empty());
    }
}
