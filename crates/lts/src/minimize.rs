//! Bisimulation minimization (the CADP `bcg_min` / `aldebaran` role).
//!
//! Implements signature-based partition refinement (Blom–Orzan style) for
//! *strong* and *branching* bisimulation (divergence-blind, as is customary
//! for compositional verification flows, and divergence-sensitive for
//! livelock-preserving reductions). Branching minimization first collapses
//! τ-SCCs.
//!
//! Minimization is the engine of the paper's compositional verification:
//! sub-module LTSs are minimized before being composed, keeping intermediate
//! state spaces small (experiment E1/E9).
//!
//! Each refinement sweep is embarrassingly parallel in its expensive part
//! (per-state signature computation); [`partition_refinement_with`] and
//! [`minimize_with`] accept a [`Workers`] knob for it. Signature→block
//! interning stays sequential in state order, so the resulting partition —
//! including block numbering — is identical at any worker count.

use crate::lts::{Lts, StateId, Transition};
use multival_par::{par_map, Workers};
use std::collections::HashMap;

/// Which behavioural equivalence to minimize (or compare) modulo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Equivalence {
    /// Strong bisimulation: τ is treated like any other label.
    Strong,
    /// Branching bisimulation (divergence-blind): inert τ steps are
    /// abstracted away while preserving the branching structure.
    Branching,
    /// Divergence-sensitive branching bisimulation: like
    /// [`Equivalence::Branching`], but a state that admits an infinite
    /// internal run (reaches a τ-cycle through τ steps) is never merged
    /// with one that does not, and the quotient keeps a τ self-loop on
    /// divergent classes. This is the variant needed when livelocks matter
    /// — e.g. before an IMC maximal-progress analysis, where divergence is
    /// a timelock.
    BranchingDivergence,
}

/// A partition of the states of an LTS into equivalence blocks.
#[derive(Debug, Clone)]
pub struct Partition {
    block_of: Vec<u32>,
    num_blocks: u32,
}

impl Partition {
    /// The trivial one-block partition over `n` states.
    pub fn unit(n: usize) -> Self {
        Partition { block_of: vec![0; n], num_blocks: if n == 0 { 0 } else { 1 } }
    }

    /// Builds a partition from an explicit block assignment.
    ///
    /// # Panics
    ///
    /// Panics if the assignment is not dense in `0..num_blocks`.
    pub fn from_assignment(block_of: Vec<u32>, num_blocks: u32) -> Self {
        debug_assert!(block_of.iter().all(|&b| b < num_blocks));
        Partition { block_of, num_blocks }
    }

    /// Block id of state `s`.
    pub fn block(&self, s: StateId) -> u32 {
        self.block_of[s as usize]
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> u32 {
        self.num_blocks
    }

    /// Number of states covered.
    pub fn len(&self) -> usize {
        self.block_of.len()
    }

    /// `true` if the partition covers no states.
    pub fn is_empty(&self) -> bool {
        self.block_of.is_empty()
    }
}

/// Statistics reported by [`minimize`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use]
pub struct ReductionStats {
    /// States before minimization.
    pub states_before: usize,
    /// States after minimization.
    pub states_after: usize,
    /// Transitions before minimization.
    pub transitions_before: usize,
    /// Transitions after minimization.
    pub transitions_after: usize,
    /// Number of refinement sweeps until the partition stabilized.
    pub iterations: usize,
}

/// Computes the coarsest partition of `lts` for the given equivalence.
pub fn partition_refinement(lts: &Lts, eq: Equivalence) -> Partition {
    partition_refinement_with(lts, eq, Workers::sequential())
}

/// [`partition_refinement`] with an explicit worker count for the
/// per-sweep signature computation. The partition (blocks *and* their
/// numbering) is identical at any worker count.
pub fn partition_refinement_with(lts: &Lts, eq: Equivalence, workers: Workers) -> Partition {
    match eq {
        Equivalence::Strong => strong_partition(lts, workers).0,
        Equivalence::Branching => branching_partition(lts, false, workers).0,
        Equivalence::BranchingDivergence => branching_partition(lts, true, workers).0,
    }
}

/// Minimizes `lts` modulo `eq`, returning the quotient and statistics.
///
/// # Examples
///
/// ```
/// use multival_lts::{LtsBuilder, minimize::{minimize, Equivalence}};
///
/// // Two strongly bisimilar branches collapse into one.
/// let mut b = LtsBuilder::new();
/// let s: Vec<_> = (0..3).map(|_| b.add_state()).collect();
/// b.add_transition(s[0], "A", s[1]);
/// b.add_transition(s[0], "A", s[2]);
/// let lts = b.build(s[0]);
/// let (min, stats) = minimize(&lts, Equivalence::Strong);
/// assert_eq!(min.num_states(), 2);
/// assert_eq!(stats.states_before, 3);
/// ```
pub fn minimize(lts: &Lts, eq: Equivalence) -> (Lts, ReductionStats) {
    minimize_with(lts, eq, Workers::sequential())
}

/// [`minimize`] with an explicit worker count; the quotient is identical
/// at any worker count.
pub fn minimize_with(lts: &Lts, eq: Equivalence, workers: Workers) -> (Lts, ReductionStats) {
    let (part, iterations) = match eq {
        Equivalence::Strong => strong_partition(lts, workers),
        Equivalence::Branching => branching_partition(lts, false, workers),
        Equivalence::BranchingDivergence => branching_partition(lts, true, workers),
    };
    let quotient = quotient(lts, &part, eq);
    let stats = ReductionStats {
        states_before: lts.num_states(),
        states_after: quotient.num_states(),
        transitions_before: lts.num_transitions(),
        transitions_after: quotient.num_transitions(),
        iterations,
    };
    (quotient, stats)
}

/// Builds the quotient LTS induced by a (stable) partition.
///
/// For [`Equivalence::Branching`], inert τ transitions (block to itself) are
/// dropped, matching the stuttering abstraction; for strong bisimulation all
/// transitions are kept (dedup'd per block).
pub fn quotient(lts: &Lts, part: &Partition, eq: Equivalence) -> Lts {
    let nb = part.num_blocks();
    let mut set: std::collections::BTreeSet<(u32, crate::label::LabelId, u32)> =
        std::collections::BTreeSet::new();
    let branching_like = matches!(eq, Equivalence::Branching | Equivalence::BranchingDivergence);
    for (s, l, t) in lts.iter_transitions() {
        let (bs, bt) = (part.block(s), part.block(t));
        if branching_like && l.is_tau() && bs == bt {
            continue;
        }
        set.insert((bs, l, bt));
    }
    if eq == Equivalence::BranchingDivergence {
        // Divergent classes keep a τ self-loop so the quotient diverges
        // exactly where the original does.
        for s in divergent_closure(lts) {
            let b = part.block(s);
            set.insert((b, crate::label::LabelId::TAU, b));
        }
    }
    let transitions: Vec<(StateId, crate::label::LabelId, StateId)> = set.into_iter().collect();
    let initial = part.block(lts.initial());
    let full = Lts::from_parts(lts.labels().clone(), nb.max(1), initial, transitions);
    // Renumber blocks in BFS order for determinism (and drop any block that
    // became unreachable, which cannot happen for stable partitions but keeps
    // the invariant obvious).
    full.reachable().0
}

fn strong_partition(lts: &Lts, workers: Workers) -> (Partition, usize) {
    let n = lts.num_states();
    let state_ids: Vec<StateId> = (0..n as StateId).collect();
    let mut part = Partition::unit(n);
    let mut iterations = 0;
    loop {
        iterations += 1;
        // Parallel stage: per-state signatures (pure function of the
        // frozen partition, so worker count cannot affect the values).
        let sigs: Vec<Vec<(u32, u32)>> = par_map(workers, &state_ids, |_, &s| {
            let mut sig: Vec<(u32, u32)> =
                lts.transitions_from(s).iter().map(|t| (t.label.0, part.block(t.target))).collect();
            sig.sort_unstable();
            sig.dedup();
            sig
        });
        // Sequential stage: intern signatures in state order, which fixes
        // the new block numbering deterministically.
        let mut sig_index: HashMap<(u32, Vec<(u32, u32)>), u32> = HashMap::new();
        let mut new_block = vec![0u32; n];
        for (s, sig) in sigs.into_iter().enumerate() {
            let key = (part.block(s as StateId), sig);
            let next = sig_index.len() as u32;
            let id = *sig_index.entry(key).or_insert(next);
            new_block[s] = id;
        }
        let nb = sig_index.len() as u32;
        if nb == part.num_blocks() {
            return (part, iterations);
        }
        part = Partition::from_assignment(new_block, nb);
    }
}

/// Tarjan SCC over the τ-subgraph; returns (scc id per state, #sccs) with
/// SCC ids in reverse topological order (successors have smaller ids).
fn tau_sccs(lts: &Lts) -> (Vec<u32>, u32) {
    let n = lts.num_states();
    let mut index = vec![u32::MAX; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut scc = vec![u32::MAX; n];
    let mut stack: Vec<StateId> = Vec::new();
    let mut next_index = 0u32;
    let mut next_scc = 0u32;

    // Iterative Tarjan to avoid recursion-depth limits on long τ chains.
    enum Frame {
        Enter(StateId),
        Post(StateId, StateId),
    }
    for root in 0..n as StateId {
        if index[root as usize] != u32::MAX {
            continue;
        }
        let mut call = vec![Frame::Enter(root)];
        while let Some(frame) = call.pop() {
            match frame {
                Frame::Enter(v) => {
                    if index[v as usize] != u32::MAX {
                        continue;
                    }
                    index[v as usize] = next_index;
                    low[v as usize] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v as usize] = true;
                    // Re-visit v after children to pop the SCC.
                    call.push(Frame::Post(v, v));
                    for t in lts.transitions_from(v) {
                        if !t.label.is_tau() {
                            continue;
                        }
                        let w = t.target;
                        if index[w as usize] == u32::MAX {
                            call.push(Frame::Post(v, w));
                            call.push(Frame::Enter(w));
                        } else if on_stack[w as usize] {
                            low[v as usize] = low[v as usize].min(index[w as usize]);
                        }
                    }
                }
                Frame::Post(v, w) => {
                    if w != v {
                        // Child w finished: propagate lowlink — but only if w
                        // is still in an open SCC. If w was completed into
                        // another SCC (it was reached first through a sibling
                        // subtree), this edge is a cross edge and must not
                        // propagate.
                        if scc[w as usize] == u32::MAX {
                            low[v as usize] = low[v as usize].min(low[w as usize]);
                        }
                        continue;
                    }
                    if low[v as usize] == index[v as usize] {
                        loop {
                            let x = stack.pop().expect("tarjan stack underflow");
                            on_stack[x as usize] = false;
                            scc[x as usize] = next_scc;
                            if x == v {
                                break;
                            }
                        }
                        next_scc += 1;
                    }
                }
            }
        }
    }
    (scc, next_scc)
}

fn branching_partition(
    lts: &Lts,
    divergence_sensitive: bool,
    workers: Workers,
) -> (Partition, usize) {
    let n = lts.num_states();
    if n == 0 {
        return (Partition::unit(0), 0);
    }
    // Step 1: collapse τ-SCCs — branching bisimulation (either flavour)
    // equates all states on a τ-cycle with each other; the divergence flag
    // below keeps divergent and non-divergent states apart.
    let (scc_of, _num_sccs) = tau_sccs(lts);

    // Members per τ-SCC, in ascending SCC id. Tarjan emits SCC ids in
    // reverse topological order, so ascending ids list τ-successors before
    // their predecessors — exactly the propagation order the inert closure
    // needs.
    let num_sccs_usize = _num_sccs as usize;
    let mut members: Vec<Vec<StateId>> = vec![Vec::new(); num_sccs_usize];
    for s in 0..n {
        members[scc_of[s] as usize].push(s as StateId);
    }

    let mut part = Partition::unit(n);
    if divergence_sensitive && n > 0 {
        // Initial split: divergent vs non-divergent states. Divergence is a
        // static property, so the split persists through refinement.
        let divergent = divergent_closure(lts);
        let mut is_div = vec![false; n];
        for s in &divergent {
            is_div[*s as usize] = true;
        }
        if divergent.len() < n && !divergent.is_empty() {
            let assignment: Vec<u32> = (0..n).map(|s| u32::from(is_div[s])).collect();
            part = Partition::from_assignment(assignment, 2);
        }
    }
    let scc_ids: Vec<u32> = (0.._num_sccs).collect();
    let mut iterations = 0;
    loop {
        iterations += 1;
        // Branching signature, computed at τ-SCC granularity (mutually
        // inert-reachable states always share blocks and signatures):
        //   sig(C) = ⋃ over s ∈ C of
        //              {(l, B(t)) | s -l-> t non-inert}
        //            ∪ {sig(C') | s -τ-> t inert, t ∈ C' ≠ C}
        // where "inert" means τ with B(s) == B(t).
        //
        // Parallel stage: the local part of each SCC's signature — its
        // non-inert pairs plus the list of inert-successor SCCs (pure
        // reads of the frozen partition).
        type SccLocal = (Vec<(u32, u32)>, Vec<usize>);
        let locals: Vec<SccLocal> = par_map(workers, &scc_ids, |_, &c| {
            let mut sig: Vec<(u32, u32)> = Vec::new();
            let mut deps: Vec<usize> = Vec::new();
            for &s in &members[c as usize] {
                for t in lts.transitions_from(s) {
                    let inert = t.label.is_tau() && part.block(t.target) == part.block(s);
                    if inert {
                        let c2 = scc_of[t.target as usize] as usize;
                        if c2 != c as usize {
                            deps.push(c2);
                        }
                    } else {
                        sig.push((t.label.0, part.block(t.target)));
                    }
                }
            }
            (sig, deps)
        });
        // Sequential stage: inert-closure propagation. Ascending SCC order
        // (Tarjan ids are reverse-topological) makes every referenced
        // sig(C') final before it is read.
        let mut scc_sigs: Vec<Vec<(u32, u32)>> = Vec::with_capacity(num_sccs_usize);
        for (c, (mut sig, deps)) in locals.into_iter().enumerate() {
            for c2 in deps {
                debug_assert!(c2 < c, "τ-successor SCC must precede");
                sig.extend_from_slice(&scc_sigs[c2]);
            }
            sig.sort_unstable();
            sig.dedup();
            scc_sigs.push(sig);
        }
        let mut sig_index: HashMap<(u32, Vec<(u32, u32)>), u32> = HashMap::new();
        let mut new_block = vec![0u32; n];
        for s in 0..n {
            let key = (part.block(s as StateId), scc_sigs[scc_of[s] as usize].clone());
            let next = sig_index.len() as u32;
            let id = *sig_index.entry(key).or_insert(next);
            new_block[s] = id;
        }
        let nb = sig_index.len() as u32;
        if nb == part.num_blocks() {
            return (part, iterations);
        }
        part = Partition::from_assignment(new_block, nb);
    }
}

/// Compresses τ-SCCs of an LTS without any other reduction: every τ-cycle is
/// collapsed to a single state. Useful as a cheap preprocessing step and for
/// divergence (livelock) analysis.
pub fn collapse_tau_sccs(lts: &Lts) -> (Lts, Vec<u32>) {
    let (scc_of, num_sccs) = tau_sccs(lts);
    let mut set: std::collections::BTreeSet<(u32, crate::label::LabelId, u32)> =
        std::collections::BTreeSet::new();
    for (s, l, t) in lts.iter_transitions() {
        let (a, b) = (scc_of[s as usize], scc_of[t as usize]);
        if l.is_tau() && a == b {
            continue;
        }
        set.insert((a, l, b));
    }
    let transitions: Vec<_> = set.into_iter().collect();
    let initial = scc_of[lts.initial() as usize];
    let lts2 = Lts::from_parts(lts.labels().clone(), num_sccs.max(1), initial, transitions);
    (lts2.reachable().0, scc_of)
}

/// States that admit an infinite internal run: they can reach a τ-cycle
/// through τ steps (the divergence predicate of
/// [`Equivalence::BranchingDivergence`]).
pub fn divergent_closure(lts: &Lts) -> Vec<StateId> {
    let cyclic = divergent_states(lts);
    let n = lts.num_states();
    let mut div = vec![false; n];
    for &s in &cyclic {
        div[s as usize] = true;
    }
    // Backward closure over τ edges.
    let mut rev: Vec<Vec<StateId>> = vec![Vec::new(); n];
    for (s, l, t) in lts.iter_transitions() {
        if l.is_tau() {
            rev[t as usize].push(s);
        }
    }
    let mut stack = cyclic;
    while let Some(s) = stack.pop() {
        for &p in &rev[s as usize] {
            if !div[p as usize] {
                div[p as usize] = true;
                stack.push(p);
            }
        }
    }
    (0..n as StateId).filter(|&s| div[s as usize]).collect()
}

/// States that can diverge: members of a τ-SCC that contains a τ-cycle
/// (including τ self-loops). In LOTOS terms these are livelocks.
pub fn divergent_states(lts: &Lts) -> Vec<StateId> {
    let (scc_of, num_sccs) = tau_sccs(lts);
    let mut scc_size = vec![0u32; num_sccs as usize];
    for s in 0..lts.num_states() {
        scc_size[scc_of[s] as usize] += 1;
    }
    let mut divergent_scc = vec![false; num_sccs as usize];
    for (s, l, t) in lts.iter_transitions() {
        if l.is_tau() && scc_of[s as usize] == scc_of[t as usize] {
            // τ self-loop, or a τ edge inside a multi-state SCC.
            if s == t || scc_size[scc_of[s as usize] as usize] > 1 {
                divergent_scc[scc_of[s as usize] as usize] = true;
            }
        }
    }
    (0..lts.num_states() as StateId)
        .filter(|&s| divergent_scc[scc_of[s as usize] as usize])
        .collect()
}

/// Helper used by tests and the equivalence checker: do two states of one
/// LTS share a block under `eq`?
pub fn same_block(lts: &Lts, a: StateId, b: StateId, eq: Equivalence) -> bool {
    let part = partition_refinement(lts, eq);
    part.block(a) == part.block(b)
}

#[allow(dead_code)]
fn transition_key(t: &Transition) -> (u32, StateId) {
    (t.label.0, t.target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lts::LtsBuilder;

    /// a.(b + c) vs a.b + a.c — branching-equivalent? No! Classic example:
    /// they are *not* strongly bisimilar and not branching bisimilar.
    #[test]
    fn classic_nondeterminism_not_bisimilar() {
        // P = a.(b.0 + c.0)
        let mut p = LtsBuilder::new();
        let s: Vec<_> = (0..4).map(|_| p.add_state()).collect();
        p.add_transition(s[0], "a", s[1]);
        p.add_transition(s[1], "b", s[2]);
        p.add_transition(s[1], "c", s[3]);
        let p = p.build(s[0]);

        // Q = a.b.0 + a.c.0
        let mut q = LtsBuilder::new();
        let t: Vec<_> = (0..5).map(|_| q.add_state()).collect();
        q.add_transition(t[0], "a", t[1]);
        q.add_transition(t[1], "b", t[3]);
        q.add_transition(t[0], "a", t[2]);
        q.add_transition(t[2], "c", t[4]);
        let q = q.build(t[0]);

        let (mp, _) = minimize(&p, Equivalence::Strong);
        let (mq, _) = minimize(&q, Equivalence::Strong);
        assert_ne!(mp.num_states(), mq.num_states());
    }

    #[test]
    fn strong_collapses_duplicate_branches() {
        let mut b = LtsBuilder::new();
        let s: Vec<_> = (0..5).map(|_| b.add_state()).collect();
        // 0 -a-> 1 -b-> 3 ; 0 -a-> 2 -b-> 4 : 1≡2, 3≡4
        b.add_transition(s[0], "a", s[1]);
        b.add_transition(s[0], "a", s[2]);
        b.add_transition(s[1], "b", s[3]);
        b.add_transition(s[2], "b", s[4]);
        let lts = b.build(s[0]);
        let (min, stats) = minimize(&lts, Equivalence::Strong);
        assert_eq!(min.num_states(), 3);
        assert_eq!(min.num_transitions(), 2);
        assert_eq!(stats.states_before, 5);
    }

    #[test]
    fn strong_keeps_tau_distinctions() {
        // 0 -tau-> 1 -a-> 2  vs  0' -a-> 1' are NOT strongly bisimilar.
        let mut b = LtsBuilder::new();
        let s: Vec<_> = (0..3).map(|_| b.add_state()).collect();
        b.add_transition(s[0], "i", s[1]);
        b.add_transition(s[1], "a", s[2]);
        let lts = b.build(s[0]);
        let (min, _) = minimize(&lts, Equivalence::Strong);
        assert_eq!(min.num_states(), 3);
    }

    #[test]
    fn branching_removes_inert_tau() {
        // 0 -tau-> 1 -a-> 2 is branching equivalent to  0 -a-> 1.
        let mut b = LtsBuilder::new();
        let s: Vec<_> = (0..3).map(|_| b.add_state()).collect();
        b.add_transition(s[0], "i", s[1]);
        b.add_transition(s[1], "a", s[2]);
        let lts = b.build(s[0]);
        let (min, _) = minimize(&lts, Equivalence::Branching);
        assert_eq!(min.num_states(), 2);
        assert_eq!(min.num_transitions(), 1);
    }

    #[test]
    fn branching_keeps_observable_choice_tau() {
        // 0 -tau-> 1 (1 can only do b), 0 -a-> 2: the τ is NOT inert
        // (it discards the option a), so it must be kept.
        let mut b = LtsBuilder::new();
        let s: Vec<_> = (0..4).map(|_| b.add_state()).collect();
        b.add_transition(s[0], "i", s[1]);
        b.add_transition(s[1], "b", s[3]);
        b.add_transition(s[0], "a", s[2]);
        let lts = b.build(s[0]);
        let (min, _) = minimize(&lts, Equivalence::Branching);
        // The τ must be kept: 0 and 1 differ (0 offers a, 1 does not). The
        // only reduction is merging the two deadlock states {2, 3}.
        assert_eq!(min.num_states(), 3);
        assert_eq!(min.num_transitions(), 3);
        assert!(min.has_tau(min.initial()), "non-inert tau survives");
    }

    #[test]
    fn branching_collapses_tau_cycles() {
        // 0 <-> 1 by τ, both can do a to 2: divergence-blind branching
        // collapses {0,1}.
        let mut b = LtsBuilder::new();
        let s: Vec<_> = (0..3).map(|_| b.add_state()).collect();
        b.add_transition(s[0], "i", s[1]);
        b.add_transition(s[1], "i", s[0]);
        b.add_transition(s[0], "a", s[2]);
        b.add_transition(s[1], "a", s[2]);
        let lts = b.build(s[0]);
        let (min, _) = minimize(&lts, Equivalence::Branching);
        assert_eq!(min.num_states(), 2);
        assert_eq!(min.num_transitions(), 1);
    }

    #[test]
    fn branching_tau_cycle_with_escape_via_member() {
        // SCC {0,1}; only 1 offers a. Divergence-blind: 0 ≡ 1 (0 reaches the
        // offer via inert τ).
        let mut b = LtsBuilder::new();
        let s: Vec<_> = (0..3).map(|_| b.add_state()).collect();
        b.add_transition(s[0], "i", s[1]);
        b.add_transition(s[1], "i", s[0]);
        b.add_transition(s[1], "a", s[2]);
        let lts = b.build(s[0]);
        let (min, _) = minimize(&lts, Equivalence::Branching);
        assert_eq!(min.num_states(), 2);
    }

    #[test]
    fn divergence_sensitive_keeps_livelocks_apart() {
        // 0 -a-> 1 (τ self-loop), 0 -b-> 2 (deadlock): divergence-blind
        // branching merges 1 and 2? No — 1 has a τ loop (inert) and nothing
        // else; blind branching treats it like a deadlock, so {1,2} merge.
        // Divergence-sensitive must keep them apart and keep the τ loop.
        let mut b = LtsBuilder::new();
        let s: Vec<_> = (0..3).map(|_| b.add_state()).collect();
        b.add_transition(s[0], "a", s[1]);
        b.add_transition(s[1], "i", s[1]);
        b.add_transition(s[0], "b", s[2]);
        let lts = b.build(s[0]);
        let (blind, _) = minimize(&lts, Equivalence::Branching);
        assert_eq!(blind.num_states(), 2, "blind: livelock ≡ deadlock");
        let (sensitive, _) = minimize(&lts, Equivalence::BranchingDivergence);
        assert_eq!(sensitive.num_states(), 3, "sensitive: livelock ≠ deadlock");
        assert!(!divergent_states(&sensitive).is_empty(), "the quotient must still diverge");
    }

    #[test]
    fn divergence_closure_includes_tau_paths_into_cycles() {
        // 0 -τ-> 1 -τ-> 1: both 0 and 1 admit infinite internal runs.
        let mut b = LtsBuilder::new();
        let s: Vec<_> = (0..2).map(|_| b.add_state()).collect();
        b.add_transition(s[0], "i", s[1]);
        b.add_transition(s[1], "i", s[1]);
        let lts = b.build(s[0]);
        assert_eq!(divergent_closure(&lts), vec![0, 1]);
        assert_eq!(divergent_states(&lts), vec![1]);
    }

    #[test]
    fn divergence_sensitive_idempotent_and_refines_blind() {
        let mut b = LtsBuilder::new();
        let s: Vec<_> = (0..5).map(|_| b.add_state()).collect();
        b.add_transition(s[0], "i", s[1]);
        b.add_transition(s[1], "i", s[0]);
        b.add_transition(s[1], "a", s[2]);
        b.add_transition(s[2], "a", s[3]);
        b.add_transition(s[3], "i", s[4]);
        let lts = b.build(s[0]);
        let (m1, _) = minimize(&lts, Equivalence::BranchingDivergence);
        let (m2, _) = minimize(&m1, Equivalence::BranchingDivergence);
        assert_eq!(m1.num_states(), m2.num_states());
        let (blind, _) = minimize(&lts, Equivalence::Branching);
        assert!(m1.num_states() >= blind.num_states());
    }

    #[test]
    fn divergence_detection() {
        let mut b = LtsBuilder::new();
        let s: Vec<_> = (0..3).map(|_| b.add_state()).collect();
        b.add_transition(s[0], "a", s[1]);
        b.add_transition(s[1], "i", s[1]); // τ self-loop: livelock
        b.add_transition(s[0], "b", s[2]);
        let lts = b.build(s[0]);
        assert_eq!(divergent_states(&lts), vec![1]);
    }

    #[test]
    fn collapse_tau_sccs_shrinks_cycles() {
        let mut b = LtsBuilder::new();
        let s: Vec<_> = (0..4).map(|_| b.add_state()).collect();
        b.add_transition(s[0], "i", s[1]);
        b.add_transition(s[1], "i", s[0]);
        b.add_transition(s[1], "a", s[2]);
        b.add_transition(s[2], "i", s[3]);
        let lts = b.build(s[0]);
        let (c, _) = collapse_tau_sccs(&lts);
        assert_eq!(c.num_states(), 3); // {0,1}, {2}, {3}
    }

    #[test]
    fn parallel_refinement_matches_sequential_exactly() {
        // A deterministic pseudo-random LTS big enough for several sweeps:
        // 600 states, 3 labels + τ, ~4 transitions per state.
        let mut b = LtsBuilder::new();
        let n = 600u32;
        for _ in 0..n {
            b.add_state();
        }
        let labels = ["a", "b", "c", "i"];
        let mut x = 0x9E3779B97F4A7C15u64;
        let mut step = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for s in 0..n {
            b.add_transition(s, "i", (s + 1) % n); // τ chain keeps all reachable
            for _ in 0..3 {
                let l = labels[(step() % 4) as usize];
                let t = (step() % n as u64) as u32;
                b.add_transition(s, l, t);
            }
        }
        let lts = b.build(0);
        for eq in [Equivalence::Strong, Equivalence::Branching, Equivalence::BranchingDivergence] {
            let seq = partition_refinement(&lts, eq);
            for threads in [2, 4] {
                let par = partition_refinement_with(&lts, eq, Workers::new(threads));
                assert_eq!(par.num_blocks(), seq.num_blocks(), "{eq:?} @{threads}");
                for s in 0..n {
                    assert_eq!(par.block(s), seq.block(s), "{eq:?} state {s} @{threads}");
                }
            }
            let (m_seq, st_seq) = minimize(&lts, eq);
            let (m_par, st_par) = minimize_with(&lts, eq, Workers::new(4));
            assert_eq!(st_seq, st_par, "{eq:?} stats");
            assert_eq!(
                crate::io::write_aut(&m_seq),
                crate::io::write_aut(&m_par),
                "{eq:?} quotient"
            );
        }
    }

    #[test]
    fn quotient_preserves_determinism_of_minimal_lts() {
        // Minimizing twice is idempotent.
        let mut b = LtsBuilder::new();
        let s: Vec<_> = (0..6).map(|_| b.add_state()).collect();
        b.add_transition(s[0], "a", s[1]);
        b.add_transition(s[0], "a", s[2]);
        b.add_transition(s[1], "i", s[3]);
        b.add_transition(s[2], "i", s[4]);
        b.add_transition(s[3], "b", s[5]);
        b.add_transition(s[4], "b", s[5]);
        let lts = b.build(s[0]);
        for eq in [Equivalence::Strong, Equivalence::Branching] {
            let (m1, _) = minimize(&lts, eq);
            let (m2, _) = minimize(&m1, eq);
            assert_eq!(m1.num_states(), m2.num_states(), "{eq:?} not idempotent");
            assert_eq!(m1.num_transitions(), m2.num_transitions());
        }
    }
}
