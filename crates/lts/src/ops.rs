//! Compositional operators on LTSs: parallel composition, hiding, renaming.
//!
//! These mirror the LOTOS operators used in the Multival flow for
//! *structural* (bottom-up) modeling: sub-module LTSs are generated
//! separately, minimized, then composed — the key weapon against state-space
//! explosion (§3 of the paper).

use crate::label::gate_of;
use crate::lts::Lts;
use crate::reach::materialize_with;
use crate::store::{make_store, StoreConfig};
use crate::ts::LazyProduct;
use multival_par::Workers;
use std::collections::{HashMap, HashSet};

/// Synchronization discipline for [`compose`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Sync {
    /// `|||` — pure interleaving, no synchronization.
    Interleave,
    /// `|[G]|` — synchronize on the listed gates (labels whose gate is in
    /// the set must be taken jointly, with identical full labels).
    Gates(HashSet<String>),
    /// `||` — synchronize on every visible label.
    Full,
}

impl Sync {
    /// Convenience constructor from gate names.
    ///
    /// # Examples
    ///
    /// ```
    /// let s = multival_lts::ops::Sync::on(["PUSH", "POP"]);
    /// assert!(matches!(s, multival_lts::ops::Sync::Gates(_)));
    /// ```
    pub fn on<I, S>(gates: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Sync::Gates(gates.into_iter().map(Into::into).collect())
    }

    pub(crate) fn synchronizes(&self, gate: &str) -> bool {
        match self {
            Sync::Interleave => false,
            Sync::Gates(set) => set.contains(gate),
            Sync::Full => true,
        }
    }
}

/// Parallel composition of two LTSs, exploring only the reachable product.
///
/// Labels whose gate is in the synchronization set must be performed jointly
/// by both components *with identical full labels* (LOTOS value negotiation:
/// `PUSH !1` only synchronizes with `PUSH !1`). τ never synchronizes. The
/// special gate `exit` (successful termination δ) always synchronizes, as in
/// LOTOS.
///
/// # Examples
///
/// ```
/// use multival_lts::{LtsBuilder, ops::{compose, Sync}};
///
/// let mut a = LtsBuilder::new();
/// let (a0, a1) = (a.add_state(), a.add_state());
/// a.add_transition(a0, "GO", a1);
/// let a = a.build(a0);
///
/// let mut b = LtsBuilder::new();
/// let (b0, b1) = (b.add_state(), b.add_state());
/// b.add_transition(b0, "GO", b1);
/// let b = b.build(b0);
///
/// let sync = compose(&a, &b, &Sync::on(["GO"]));
/// assert_eq!(sync.num_states(), 2); // lock-step
/// let inter = compose(&a, &b, &Sync::Interleave);
/// assert_eq!(inter.num_states(), 4); // diamond
/// ```
pub fn compose(left: &Lts, right: &Lts, sync: &Sync) -> Lts {
    compose_with(left, right, sync, Workers::sequential())
}

/// [`compose`] with an explicit worker count for product-state successor
/// generation. The result — state numbering, label table, transitions —
/// is identical at any worker count: this is a thin wrapper that explores
/// a [`LazyProduct`] with [`materialize_with`], whose parallel path only
/// derives successor lists level by level and renumbers sequentially.
pub fn compose_with(left: &Lts, right: &Lts, sync: &Sync, workers: Workers) -> Lts {
    materialize_with(&LazyProduct::new(&[left, right], sync), workers)
}

/// N-ary parallel composition of `parts` under a single sync discipline,
/// exploring the flat product on the fly (every component participates in
/// each synchronized move, with identical full labels).
///
/// # Panics
///
/// Panics if `parts` is empty.
pub fn compose_all(parts: &[&Lts], sync: &Sync) -> Lts {
    compose_all_with(parts, sync, Workers::sequential())
}

/// [`compose_all`] with an explicit worker count.
pub fn compose_all_with(parts: &[&Lts], sync: &Sync, workers: Workers) -> Lts {
    assert!(!parts.is_empty(), "compose_all needs at least one LTS");
    materialize_with(&LazyProduct::new(parts, sync), workers)
}

/// [`compose_all_with`] over a pluggable [`StateStore`](crate::store::StateStore) backend selected
/// by `config` — the frontier dedup then lives in a packed arena or
/// spills to disk instead of a per-state-allocating hash map. The result
/// is byte-identical to [`compose_all_with`] for every backend and worker
/// count (see [`crate::reach::materialize_store`]).
///
/// # Panics
///
/// Panics if `parts` is empty.
pub fn compose_all_store(
    parts: &[&Lts],
    sync: &Sync,
    workers: Workers,
    config: &StoreConfig,
) -> Lts {
    assert!(!parts.is_empty(), "compose_all needs at least one LTS");
    let mut store = make_store(config);
    crate::reach::materialize_store(&LazyProduct::new(parts, sync), workers, store.as_mut())
}

/// Hides every label whose gate is in `gates`, turning it into τ
/// (the LOTOS `hide G in B` operator).
///
/// # Examples
///
/// ```
/// use multival_lts::{LtsBuilder, ops::hide};
///
/// let mut b = LtsBuilder::new();
/// let (s0, s1) = (b.add_state(), b.add_state());
/// b.add_transition(s0, "INT !1", s1);
/// b.add_transition(s1, "OBS", s0);
/// let lts = b.build(s0);
/// let h = hide(&lts, ["INT"]);
/// assert!(h.has_tau(0));
/// assert!(h.labels().lookup("OBS").is_some());
/// ```
pub fn hide<I, S>(lts: &Lts, gates: I) -> Lts
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    let set: HashSet<String> = gates.into_iter().map(Into::into).collect();
    lts.relabel(|name| if set.contains(gate_of(name)) { None } else { Some(name.to_owned()) })
}

/// Hides every label *except* those whose gate is in `gates`.
pub fn hide_all_but<I, S>(lts: &Lts, gates: I) -> Lts
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    let keep: HashSet<String> = gates.into_iter().map(Into::into).collect();
    lts.relabel(|name| if keep.contains(gate_of(name)) { Some(name.to_owned()) } else { None })
}

/// Renames gates according to `map` (offers are preserved):
/// a label `G !1` with `map[G] = H` becomes `H !1`.
pub fn rename_gates(lts: &Lts, map: &HashMap<String, String>) -> Lts {
    lts.relabel(|name| {
        let gate = gate_of(name);
        match map.get(gate) {
            Some(new_gate) => {
                let rest = &name[gate.len()..];
                Some(format!("{new_gate}{rest}"))
            }
            None => Some(name.to_owned()),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lts::LtsBuilder;

    fn cycle(labels: &[&str]) -> Lts {
        let mut b = LtsBuilder::new();
        let states: Vec<_> = labels.iter().map(|_| b.add_state()).collect();
        for (i, l) in labels.iter().enumerate() {
            b.add_transition(states[i], l, states[(i + 1) % states.len()]);
        }
        b.build(states[0])
    }

    #[test]
    fn full_sync_is_lockstep_intersection() {
        let a = cycle(&["X", "Y"]);
        let b = cycle(&["X", "Y"]);
        let c = compose(&a, &b, &Sync::Full);
        assert_eq!(c.num_states(), 2);
        assert_eq!(c.num_transitions(), 2);
    }

    #[test]
    fn full_sync_with_disjoint_alphabets_deadlocks() {
        let a = cycle(&["X"]);
        let b = cycle(&["Y"]);
        let c = compose(&a, &b, &Sync::Full);
        assert_eq!(c.num_states(), 1);
        assert_eq!(c.num_transitions(), 0);
    }

    #[test]
    fn interleaving_is_product() {
        let a = cycle(&["X", "Y"]);
        let b = cycle(&["P", "Q", "R"]);
        let c = compose(&a, &b, &Sync::Interleave);
        assert_eq!(c.num_states(), 6);
        assert_eq!(c.num_transitions(), 12);
    }

    #[test]
    fn value_negotiation_requires_identical_offers() {
        let mut l = LtsBuilder::new();
        let (l0, l1) = (l.add_state(), l.add_state());
        l.add_transition(l0, "CH !1", l1);
        let l = l.build(l0);

        let mut r = LtsBuilder::new();
        let (r0, r1) = (r.add_state(), r.add_state());
        r.add_transition(r0, "CH !2", r1);
        let r = r.build(r0);

        let c = compose(&l, &r, &Sync::on(["CH"]));
        assert_eq!(c.num_transitions(), 0, "CH !1 must not sync with CH !2");

        let mut r2 = LtsBuilder::new();
        let (r0, r1) = (r2.add_state(), r2.add_state());
        r2.add_transition(r0, "CH !1", r1);
        let r2 = r2.build(r0);
        let c2 = compose(&l, &r2, &Sync::on(["CH"]));
        assert_eq!(c2.num_transitions(), 1);
    }

    #[test]
    fn tau_never_synchronizes() {
        let a = cycle(&["i"]);
        let b = cycle(&["i"]);
        let c = compose(&a, &b, &Sync::Full);
        // Both taus interleave freely: 1x1 state, two self-loops.
        assert_eq!(c.num_states(), 1);
        assert_eq!(c.num_transitions(), 2);
    }

    #[test]
    fn exit_always_synchronizes() {
        let a = cycle(&["exit"]);
        let b = cycle(&["exit"]);
        let c = compose(&a, &b, &Sync::Interleave);
        assert_eq!(c.num_states(), 1);
        assert_eq!(c.num_transitions(), 1, "exit must be joint even under |||");
    }

    #[test]
    fn hide_then_gates_disappear() {
        let a = cycle(&["X !3", "Y"]);
        let h = hide(&a, ["X"]);
        assert!(h.used_gates().contains("Y"));
        assert!(!h.used_gates().contains("X"));
    }

    #[test]
    fn hide_all_but_keeps_only_interface() {
        let a = cycle(&["X", "Y", "Z"]);
        let h = hide_all_but(&a, ["Y"]);
        let gates = h.used_gates();
        assert_eq!(gates.len(), 1);
        assert!(gates.contains("Y"));
    }

    #[test]
    fn rename_preserves_offers() {
        let a = cycle(&["PUSH !7"]);
        let mut map = HashMap::new();
        map.insert("PUSH".to_owned(), "IN".to_owned());
        let r = rename_gates(&a, &map);
        assert!(r.labels().lookup("IN !7").is_some());
    }

    #[test]
    fn parallel_compose_is_bit_identical() {
        // Two medium cycles sharing a sync gate: 30×42 product with both
        // interleaved and synchronized moves.
        let mut left_labels: Vec<String> = (0..30).map(|i| format!("L !{i}")).collect();
        left_labels[7] = "S !1".to_owned();
        left_labels[19] = "S !2".to_owned();
        let mut right_labels: Vec<String> = (0..42).map(|i| format!("R !{i}")).collect();
        right_labels[3] = "S !1".to_owned();
        right_labels[31] = "S !2".to_owned();
        fn as_strs(v: &[String]) -> Vec<&str> {
            v.iter().map(String::as_str).collect()
        }
        let a = cycle(&as_strs(&left_labels));
        let b = cycle(&as_strs(&right_labels));
        for sync in [Sync::Interleave, Sync::on(["S"]), Sync::Full] {
            let seq = compose(&a, &b, &sync);
            for threads in [2, 4] {
                let par = compose_with(&a, &b, &sync, Workers::new(threads));
                assert_eq!(
                    crate::io::write_aut(&seq),
                    crate::io::write_aut(&par),
                    "{sync:?} @{threads}"
                );
            }
        }
    }

    #[test]
    fn compose_all_folds() {
        let a = cycle(&["X"]);
        let b = cycle(&["X"]);
        let c = cycle(&["X"]);
        let all = compose_all(&[&a, &b, &c], &Sync::on(["X"]));
        assert_eq!(all.num_states(), 1);
        assert_eq!(all.num_transitions(), 1);
    }
}
