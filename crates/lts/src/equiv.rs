//! Equivalence checking between two LTSs (the CADP `bisimulator` /
//! `aldebaran -equ` role).
//!
//! Two LTSs are compared by minimizing their disjoint union and checking
//! whether the two initial states fall into the same block. For weak-trace
//! comparison, both are determinized modulo τ-closure and compared
//! state-by-state, which also yields a distinguishing trace on failure.

use crate::label::{LabelId, LabelTable};
use crate::lts::{Lts, LtsBuilder, StateId};
use crate::minimize::{partition_refinement, Equivalence, Partition};
use crate::ts::TransitionSystem;
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

/// The verdict of an equivalence comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// The two systems are equivalent.
    Equivalent,
    /// Not equivalent; a distinguishing trace (sequence of labels leading
    /// to a state where one side enables an action the other does not) is
    /// provided when one could be constructed.
    Inequivalent {
        /// A witness trace: always present for weak-trace comparison and
        /// strong bisimulation, best-effort for branching bisimulation
        /// (τ-based distinctions need not have a trace-shaped witness).
        witness: Option<Vec<String>>,
    },
}

impl Verdict {
    /// `true` if the verdict is [`Verdict::Equivalent`].
    pub fn holds(&self) -> bool {
        matches!(self, Verdict::Equivalent)
    }
}

/// Builds the disjoint union of two LTSs over a shared label table.
/// Returns the union plus the ids of the two original initial states.
pub fn disjoint_union(a: &Lts, b: &Lts) -> (Lts, StateId, StateId) {
    let mut labels = LabelTable::new();
    let map_a: Vec<LabelId> = a.labels().iter().map(|(_, n)| labels.intern(n)).collect();
    let map_b: Vec<LabelId> = b.labels().iter().map(|(_, n)| labels.intern(n)).collect();
    let na = a.num_states() as u32;
    let nb = b.num_states() as u32;
    let mut transitions = Vec::with_capacity(a.num_transitions() + b.num_transitions());
    for (s, l, t) in a.iter_transitions() {
        transitions.push((s, map_a[l.index()], t));
    }
    for (s, l, t) in b.iter_transitions() {
        transitions.push((s + na, map_b[l.index()], t + na));
    }
    let union = Lts::from_parts(labels, na + nb, a.initial(), transitions);
    (union, a.initial(), b.initial() + na)
}

/// Checks whether `a` and `b` are equivalent modulo `eq`.
///
/// # Examples
///
/// ```
/// use multival_lts::{LtsBuilder, equiv::equivalent, minimize::Equivalence};
///
/// let mk = |with_tau: bool| {
///     let mut b = LtsBuilder::new();
///     let s0 = b.add_state();
///     let mut prev = s0;
///     if with_tau {
///         let m = b.add_state();
///         b.add_transition(prev, "i", m);
///         prev = m;
///     }
///     let s1 = b.add_state();
///     b.add_transition(prev, "a", s1);
///     b.build(s0)
/// };
/// let plain = mk(false);
/// let with_tau = mk(true);
/// assert!(!equivalent(&plain, &with_tau, Equivalence::Strong).holds());
/// assert!(equivalent(&plain, &with_tau, Equivalence::Branching).holds());
/// ```
pub fn equivalent(a: &Lts, b: &Lts, eq: Equivalence) -> Verdict {
    let (union, ia, ib) = disjoint_union(a, b);
    let part = partition_refinement(&union, eq);
    if part.block(ia) == part.block(ib) {
        Verdict::Equivalent
    } else {
        Verdict::Inequivalent { witness: bisim_witness(&union, &part, ia, ib) }
    }
}

/// Derives a distinguishing trace for two states the refined partition put
/// in different blocks: a BFS over pairs of inequivalent states, following
/// equal labels, until a pair with different enabled-action sets is found
/// (the mismatching action ends the trace).
///
/// For strong bisimulation such a pair always exists along inequivalent
/// pairs (the first refinement round splits exactly on enabled-action
/// sets), so the witness is guaranteed. For branching bisimulation the
/// distinction can hinge on τ-branching structure with no trace-shaped
/// witness; `None` is returned when the search exhausts.
fn bisim_witness(union: &Lts, part: &Partition, ia: StateId, ib: StateId) -> Option<Vec<String>> {
    // Pair-BFS bookkeeping: dense pair ids with predecessor edges.
    let mut index: HashMap<(StateId, StateId), u32> = HashMap::new();
    let mut pairs: Vec<(StateId, StateId)> = Vec::new();
    let mut pred: Vec<Option<(u32, LabelId)>> = Vec::new();
    let mut queue: VecDeque<u32> = VecDeque::new();
    index.insert((ia, ib), 0);
    pairs.push((ia, ib));
    pred.push(None);
    queue.push_back(0);

    let trace_to = |pred: &[Option<(u32, LabelId)>], mut cur: u32| -> Vec<String> {
        let mut labels = Vec::new();
        while let Some((prev, label)) = pred[cur as usize] {
            labels.push(union.labels().name(label).to_owned());
            cur = prev;
        }
        labels.reverse();
        labels
    };

    while let Some(p) = queue.pop_front() {
        let (x, y) = pairs[p as usize];
        let ex: BTreeSet<LabelId> = union.transitions_from(x).iter().map(|t| t.label).collect();
        let ey: BTreeSet<LabelId> = union.transitions_from(y).iter().map(|t| t.label).collect();
        if ex != ey {
            // The first label enabled on exactly one side ends the trace.
            let mismatch = ex
                .symmetric_difference(&ey)
                .next()
                .copied()
                .expect("unequal sets have a symmetric difference");
            let mut witness = trace_to(&pred, p);
            witness.push(union.labels().name(mismatch).to_owned());
            return Some(witness);
        }
        for label in ex {
            for tx in union.transitions_from(x) {
                if tx.label != label {
                    continue;
                }
                for ty in union.transitions_from(y) {
                    if ty.label != label || part.block(tx.target) == part.block(ty.target) {
                        continue;
                    }
                    // Only inequivalent pairs can carry a distinction.
                    if let std::collections::hash_map::Entry::Vacant(e) =
                        index.entry((tx.target, ty.target))
                    {
                        let id = pairs.len() as u32;
                        e.insert(id);
                        pairs.push((tx.target, ty.target));
                        pred.push(Some((p, label)));
                        queue.push_back(id);
                    }
                }
            }
        }
    }
    None
}

/// A deterministic automaton over visible labels obtained by τ-closure +
/// subset construction. Label names are the key (shared across LTSs).
#[derive(Debug, Clone)]
pub struct Determinized {
    /// Outgoing edges per state: visible label name → target state.
    pub edges: Vec<BTreeMap<String, u32>>,
    /// Initial state.
    pub initial: u32,
}

/// τ-closure of a set of states.
fn tau_closure(lts: &Lts, set: &BTreeSet<StateId>) -> BTreeSet<StateId> {
    let mut closure = set.clone();
    let mut stack: Vec<StateId> = set.iter().copied().collect();
    while let Some(s) = stack.pop() {
        for t in lts.transitions_from(s) {
            if t.label.is_tau() && closure.insert(t.target) {
                stack.push(t.target);
            }
        }
    }
    closure
}

/// Determinizes `lts` modulo τ (subset construction over visible labels).
///
/// `cap` bounds the number of subset states; exceeding it returns `None`
/// (subset construction is worst-case exponential).
pub fn determinize(lts: &Lts, cap: usize) -> Option<Determinized> {
    let init = tau_closure(lts, &BTreeSet::from([lts.initial()]));
    let mut index: HashMap<BTreeSet<StateId>, u32> = HashMap::new();
    let mut edges: Vec<BTreeMap<String, u32>> = Vec::new();
    let mut queue: VecDeque<BTreeSet<StateId>> = VecDeque::new();
    index.insert(init.clone(), 0);
    edges.push(BTreeMap::new());
    queue.push_back(init);
    while let Some(set) = queue.pop_front() {
        let src = index[&set];
        // Group successors by visible label.
        let mut succ: BTreeMap<String, BTreeSet<StateId>> = BTreeMap::new();
        for &s in &set {
            for t in lts.transitions_from(s) {
                if !t.label.is_tau() {
                    succ.entry(lts.labels().name(t.label).to_owned()).or_default().insert(t.target);
                }
            }
        }
        for (label, targets) in succ {
            let closed = tau_closure(lts, &targets);
            let dst = match index.get(&closed) {
                Some(&d) => d,
                None => {
                    if edges.len() >= cap {
                        return None;
                    }
                    let d = edges.len() as u32;
                    index.insert(closed.clone(), d);
                    edges.push(BTreeMap::new());
                    queue.push_back(closed);
                    d
                }
            };
            edges[src as usize].insert(label, dst);
        }
    }
    Some(Determinized { edges, initial: 0 })
}

/// [`determinize`] generalized to any [`TransitionSystem`]: the implicit
/// graph is walked directly (states hash-consed into dense ids on first
/// sight), so a lazy product or a process-algebra term can be determinized
/// without materializing its LTS first.
///
/// `cap` bounds the number of *subset* states; exceeding it returns `None`.
pub fn determinize_ts<T: TransitionSystem>(ts: &T, cap: usize) -> Option<Determinized> {
    // Dense first-sight numbering of the underlying states, with memoized
    // successor lists (τ-closure revisits states).
    let mut ids: HashMap<T::State, u32> = HashMap::new();
    let mut states: Vec<T::State> = Vec::new();
    let mut succs: Vec<Option<Vec<(LabelId, u32)>>> = Vec::new();
    let init = ts.initial_state();
    ids.insert(init.clone(), 0);
    states.push(init);
    succs.push(None);

    // Mutually-growing state table makes this a closure-over-index helper.
    fn successors_of<T: TransitionSystem>(
        ts: &T,
        s: u32,
        ids: &mut HashMap<T::State, u32>,
        states: &mut Vec<T::State>,
        succs: &mut Vec<Option<Vec<(LabelId, u32)>>>,
    ) -> Vec<(LabelId, u32)> {
        if let Some(cached) = &succs[s as usize] {
            return cached.clone();
        }
        let mut out = Vec::new();
        for (label, target) in ts.successors(&states[s as usize]) {
            let id = match ids.get(&target) {
                Some(&i) => i,
                None => {
                    let i = states.len() as u32;
                    ids.insert(target.clone(), i);
                    states.push(target);
                    succs.push(None);
                    i
                }
            };
            out.push((label, id));
        }
        succs[s as usize] = Some(out.clone());
        out
    }

    let closure = |set: &BTreeSet<u32>,
                   ids: &mut HashMap<T::State, u32>,
                   states: &mut Vec<T::State>,
                   succs: &mut Vec<Option<Vec<(LabelId, u32)>>>|
     -> BTreeSet<u32> {
        let mut closed = set.clone();
        let mut stack: Vec<u32> = set.iter().copied().collect();
        while let Some(s) = stack.pop() {
            for (label, target) in successors_of(ts, s, ids, states, succs) {
                if label.is_tau() && closed.insert(target) {
                    stack.push(target);
                }
            }
        }
        closed
    };

    let init_set = closure(&BTreeSet::from([0]), &mut ids, &mut states, &mut succs);
    let mut index: HashMap<BTreeSet<u32>, u32> = HashMap::new();
    let mut edges: Vec<BTreeMap<String, u32>> = Vec::new();
    let mut queue: VecDeque<BTreeSet<u32>> = VecDeque::new();
    index.insert(init_set.clone(), 0);
    edges.push(BTreeMap::new());
    queue.push_back(init_set);
    while let Some(set) = queue.pop_front() {
        let src = index[&set];
        let mut by_label: BTreeMap<String, BTreeSet<u32>> = BTreeMap::new();
        for &s in &set {
            for (label, target) in successors_of(ts, s, &mut ids, &mut states, &mut succs) {
                if !label.is_tau() {
                    // Resolve names against a fresh snapshot: lazily
                    // interning systems grow their table as we explore.
                    by_label
                        .entry(ts.label_table().name(label).to_owned())
                        .or_default()
                        .insert(target);
                }
            }
        }
        for (label, targets) in by_label {
            let closed = closure(&targets, &mut ids, &mut states, &mut succs);
            let dst = match index.get(&closed) {
                Some(&d) => d,
                None => {
                    if edges.len() >= cap {
                        return None;
                    }
                    let d = edges.len() as u32;
                    index.insert(closed.clone(), d);
                    edges.push(BTreeMap::new());
                    queue.push_back(closed);
                    d
                }
            };
            edges[src as usize].insert(label, dst);
        }
    }
    Some(Determinized { edges, initial: 0 })
}

/// Weak-trace equivalence: the two systems have the same sets of visible
/// traces. Returns a shortest distinguishing trace on failure.
///
/// `cap` bounds determinization (see [`determinize`]); exceeding it panics
/// since no verdict can be produced.
///
/// # Panics
///
/// Panics if determinization of either side exceeds `cap` subset states.
pub fn weak_trace_equivalent(a: &Lts, b: &Lts, cap: usize) -> Verdict {
    let da = determinize(a, cap).expect("determinization cap exceeded (left)");
    let db = determinize(b, cap).expect("determinization cap exceeded (right)");
    compare_determinized(&da, &db)
}

/// Compares two determinized automata for language equality by BFS over
/// their synchronized product; a mismatch in the enabled label sets yields
/// a shortest distinguishing trace.
pub fn compare_determinized(da: &Determinized, db: &Determinized) -> Verdict {
    let mut seen: HashMap<(u32, u32), ()> = HashMap::new();
    let mut queue: VecDeque<(u32, u32, Vec<String>)> = VecDeque::new();
    seen.insert((da.initial, db.initial), ());
    queue.push_back((da.initial, db.initial, Vec::new()));
    while let Some((sa, sb, trace)) = queue.pop_front() {
        let ea = &da.edges[sa as usize];
        let eb = &db.edges[sb as usize];
        for label in ea.keys() {
            if !eb.contains_key(label) {
                let mut w = trace.clone();
                w.push(label.clone());
                return Verdict::Inequivalent { witness: Some(w) };
            }
        }
        for label in eb.keys() {
            if !ea.contains_key(label) {
                let mut w = trace.clone();
                w.push(label.clone());
                return Verdict::Inequivalent { witness: Some(w) };
            }
        }
        for (label, &ta) in ea {
            let tb = eb[label];
            if seen.insert((ta, tb), ()).is_none() {
                let mut w = trace.clone();
                w.push(label.clone());
                queue.push_back((ta, tb, w));
            }
        }
    }
    Verdict::Equivalent
}

/// Convenience: builds a small LTS from `(src, label, dst)` triples; state 0
/// is initial. Intended for tests and examples.
pub fn lts_from_triples(triples: &[(u32, &str, u32)]) -> Lts {
    let mut b = LtsBuilder::new();
    let max = triples.iter().map(|&(s, _, t)| s.max(t)).max().unwrap_or(0);
    for _ in 0..=max {
        b.add_state();
    }
    for &(s, l, t) in triples {
        b.add_transition(s, l, t);
    }
    b.build(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_systems_equivalent_everywhere() {
        let a = lts_from_triples(&[(0, "a", 1), (1, "b", 0)]);
        let b = lts_from_triples(&[(0, "a", 1), (1, "b", 0)]);
        assert!(equivalent(&a, &b, Equivalence::Strong).holds());
        assert!(equivalent(&a, &b, Equivalence::Branching).holds());
        assert!(weak_trace_equivalent(&a, &b, 1 << 16).holds());
    }

    #[test]
    fn unfolded_cycle_is_bisimilar() {
        let a = lts_from_triples(&[(0, "a", 0)]);
        let b = lts_from_triples(&[(0, "a", 1), (1, "a", 0)]);
        assert!(equivalent(&a, &b, Equivalence::Strong).holds());
    }

    #[test]
    fn trace_equivalent_but_not_bisimilar() {
        // a.(b+c) vs a.b + a.c: weak-trace equivalent, not bisimilar.
        let p = lts_from_triples(&[(0, "a", 1), (1, "b", 2), (1, "c", 3)]);
        let q = lts_from_triples(&[(0, "a", 1), (1, "b", 3), (0, "a", 2), (2, "c", 4)]);
        assert!(weak_trace_equivalent(&p, &q, 1 << 16).holds());
        assert!(!equivalent(&p, &q, Equivalence::Strong).holds());
        assert!(!equivalent(&p, &q, Equivalence::Branching).holds());
    }

    #[test]
    fn distinguishing_trace_is_minimal() {
        let p = lts_from_triples(&[(0, "a", 1), (1, "b", 2)]);
        let q = lts_from_triples(&[(0, "a", 1), (1, "c", 2)]);
        match weak_trace_equivalent(&p, &q, 1 << 16) {
            Verdict::Inequivalent { witness: Some(w) } => {
                assert_eq!(w.len(), 2);
                assert_eq!(w[0], "a");
            }
            v => panic!("expected inequivalent with witness, got {v:?}"),
        }
    }

    #[test]
    fn tau_ignored_by_weak_trace() {
        let p = lts_from_triples(&[(0, "i", 1), (1, "a", 2)]);
        let q = lts_from_triples(&[(0, "a", 1)]);
        assert!(weak_trace_equivalent(&p, &q, 1 << 16).holds());
        assert!(!equivalent(&p, &q, Equivalence::Strong).holds());
    }

    #[test]
    fn disjoint_union_preserves_sizes() {
        let a = lts_from_triples(&[(0, "a", 1)]);
        let b = lts_from_triples(&[(0, "b", 1), (1, "c", 2)]);
        let (u, ia, ib) = disjoint_union(&a, &b);
        assert_eq!(u.num_states(), 5);
        assert_eq!(u.num_transitions(), 3);
        assert_eq!(ia, 0);
        assert_eq!(ib, 2);
    }

    #[test]
    fn determinize_collapses_nondeterminism() {
        let p = lts_from_triples(&[(0, "a", 1), (0, "a", 2), (1, "b", 3), (2, "c", 4)]);
        let d = determinize(&p, 1024).expect("small LTS determinizes");
        // Initial --a--> {1,2} which enables both b and c.
        assert_eq!(d.edges[0].len(), 1);
        let mid = d.edges[0]["a"] as usize;
        assert_eq!(d.edges[mid].len(), 2);
    }

    #[test]
    fn strong_inequivalence_has_witness() {
        // a.b vs a.c: the distinguishing trace is ["a", "b"] or ["a", "c"].
        let p = lts_from_triples(&[(0, "a", 1), (1, "b", 2)]);
        let q = lts_from_triples(&[(0, "a", 1), (1, "c", 2)]);
        match equivalent(&p, &q, Equivalence::Strong) {
            Verdict::Inequivalent { witness: Some(w) } => {
                assert_eq!(w.len(), 2);
                assert_eq!(w[0], "a");
                assert!(w[1] == "b" || w[1] == "c", "unexpected witness {w:?}");
            }
            v => panic!("expected inequivalent with witness, got {v:?}"),
        }
    }

    #[test]
    fn nondeterministic_split_has_witness() {
        // a.(b+c) vs a.b + a.c: strongly inequivalent; after "a" one side
        // enables both b and c, the other only one of them.
        let p = lts_from_triples(&[(0, "a", 1), (1, "b", 2), (1, "c", 3)]);
        let q = lts_from_triples(&[(0, "a", 1), (1, "b", 3), (0, "a", 2), (2, "c", 4)]);
        match equivalent(&p, &q, Equivalence::Strong) {
            Verdict::Inequivalent { witness: Some(w) } => {
                assert_eq!(w[0], "a");
                assert_eq!(w.len(), 2);
            }
            v => panic!("expected inequivalent with witness, got {v:?}"),
        }
    }

    #[test]
    fn branching_witness_when_visible_actions_differ() {
        let p = lts_from_triples(&[(0, "a", 1)]);
        let q = lts_from_triples(&[(0, "b", 1)]);
        match equivalent(&p, &q, Equivalence::Branching) {
            Verdict::Inequivalent { witness: Some(w) } => assert_eq!(w.len(), 1),
            v => panic!("expected inequivalent with witness, got {v:?}"),
        }
    }

    #[test]
    fn determinize_ts_matches_eager_determinize() {
        let p =
            lts_from_triples(&[(0, "a", 1), (0, "a", 2), (1, "i", 3), (3, "b", 4), (2, "c", 4)]);
        let eager = determinize(&p, 1024).expect("determinizes");
        let lazy = determinize_ts(&p, 1024).expect("determinizes");
        assert_eq!(eager.edges, lazy.edges);
        assert_eq!(eager.initial, lazy.initial);
        assert!(determinize_ts(&p, 1).is_none());
    }

    #[test]
    fn determinize_cap_respected() {
        // Chain with nondeterministic fan-out can exceed a tiny cap.
        let p = lts_from_triples(&[
            (0, "a", 1),
            (0, "a", 2),
            (1, "a", 3),
            (2, "a", 4),
            (3, "b", 5),
            (4, "c", 5),
        ]);
        assert!(determinize(&p, 1).is_none());
    }
}
