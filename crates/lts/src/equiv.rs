//! Equivalence checking between two LTSs (the CADP `bisimulator` /
//! `aldebaran -equ` role).
//!
//! Two LTSs are compared by minimizing their disjoint union and checking
//! whether the two initial states fall into the same block. For weak-trace
//! comparison, both are determinized modulo τ-closure and compared
//! state-by-state, which also yields a distinguishing trace on failure.

use crate::label::{LabelId, LabelTable};
use crate::lts::{Lts, LtsBuilder, StateId};
use crate::minimize::{partition_refinement, Equivalence};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

/// The verdict of an equivalence comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// The two systems are equivalent.
    Equivalent,
    /// Not equivalent; when the comparison is trace-based, a distinguishing
    /// trace (sequence of visible labels enabled in one but not the other)
    /// is provided.
    Inequivalent {
        /// A witness trace, if one could be constructed (always present for
        /// weak-trace comparison, absent for bisimulations).
        witness: Option<Vec<String>>,
    },
}

impl Verdict {
    /// `true` if the verdict is [`Verdict::Equivalent`].
    pub fn holds(&self) -> bool {
        matches!(self, Verdict::Equivalent)
    }
}

/// Builds the disjoint union of two LTSs over a shared label table.
/// Returns the union plus the ids of the two original initial states.
pub fn disjoint_union(a: &Lts, b: &Lts) -> (Lts, StateId, StateId) {
    let mut labels = LabelTable::new();
    let map_a: Vec<LabelId> = a.labels().iter().map(|(_, n)| labels.intern(n)).collect();
    let map_b: Vec<LabelId> = b.labels().iter().map(|(_, n)| labels.intern(n)).collect();
    let na = a.num_states() as u32;
    let nb = b.num_states() as u32;
    let mut transitions = Vec::with_capacity(a.num_transitions() + b.num_transitions());
    for (s, l, t) in a.iter_transitions() {
        transitions.push((s, map_a[l.index()], t));
    }
    for (s, l, t) in b.iter_transitions() {
        transitions.push((s + na, map_b[l.index()], t + na));
    }
    let union = Lts::from_parts(labels, na + nb, a.initial(), transitions);
    (union, a.initial(), b.initial() + na)
}

/// Checks whether `a` and `b` are equivalent modulo `eq`.
///
/// # Examples
///
/// ```
/// use multival_lts::{LtsBuilder, equiv::equivalent, minimize::Equivalence};
///
/// let mk = |with_tau: bool| {
///     let mut b = LtsBuilder::new();
///     let s0 = b.add_state();
///     let mut prev = s0;
///     if with_tau {
///         let m = b.add_state();
///         b.add_transition(prev, "i", m);
///         prev = m;
///     }
///     let s1 = b.add_state();
///     b.add_transition(prev, "a", s1);
///     b.build(s0)
/// };
/// let plain = mk(false);
/// let with_tau = mk(true);
/// assert!(!equivalent(&plain, &with_tau, Equivalence::Strong).holds());
/// assert!(equivalent(&plain, &with_tau, Equivalence::Branching).holds());
/// ```
pub fn equivalent(a: &Lts, b: &Lts, eq: Equivalence) -> Verdict {
    let (union, ia, ib) = disjoint_union(a, b);
    let part = partition_refinement(&union, eq);
    if part.block(ia) == part.block(ib) {
        Verdict::Equivalent
    } else {
        Verdict::Inequivalent { witness: None }
    }
}

/// A deterministic automaton over visible labels obtained by τ-closure +
/// subset construction. Label names are the key (shared across LTSs).
#[derive(Debug, Clone)]
pub struct Determinized {
    /// Outgoing edges per state: visible label name → target state.
    pub edges: Vec<BTreeMap<String, u32>>,
    /// Initial state.
    pub initial: u32,
}

/// τ-closure of a set of states.
fn tau_closure(lts: &Lts, set: &BTreeSet<StateId>) -> BTreeSet<StateId> {
    let mut closure = set.clone();
    let mut stack: Vec<StateId> = set.iter().copied().collect();
    while let Some(s) = stack.pop() {
        for t in lts.transitions_from(s) {
            if t.label.is_tau() && closure.insert(t.target) {
                stack.push(t.target);
            }
        }
    }
    closure
}

/// Determinizes `lts` modulo τ (subset construction over visible labels).
///
/// `cap` bounds the number of subset states; exceeding it returns `None`
/// (subset construction is worst-case exponential).
pub fn determinize(lts: &Lts, cap: usize) -> Option<Determinized> {
    let init = tau_closure(lts, &BTreeSet::from([lts.initial()]));
    let mut index: HashMap<BTreeSet<StateId>, u32> = HashMap::new();
    let mut edges: Vec<BTreeMap<String, u32>> = Vec::new();
    let mut queue: VecDeque<BTreeSet<StateId>> = VecDeque::new();
    index.insert(init.clone(), 0);
    edges.push(BTreeMap::new());
    queue.push_back(init);
    while let Some(set) = queue.pop_front() {
        let src = index[&set];
        // Group successors by visible label.
        let mut succ: BTreeMap<String, BTreeSet<StateId>> = BTreeMap::new();
        for &s in &set {
            for t in lts.transitions_from(s) {
                if !t.label.is_tau() {
                    succ.entry(lts.labels().name(t.label).to_owned()).or_default().insert(t.target);
                }
            }
        }
        for (label, targets) in succ {
            let closed = tau_closure(lts, &targets);
            let dst = match index.get(&closed) {
                Some(&d) => d,
                None => {
                    if edges.len() >= cap {
                        return None;
                    }
                    let d = edges.len() as u32;
                    index.insert(closed.clone(), d);
                    edges.push(BTreeMap::new());
                    queue.push_back(closed);
                    d
                }
            };
            edges[src as usize].insert(label, dst);
        }
    }
    Some(Determinized { edges, initial: 0 })
}

/// Weak-trace equivalence: the two systems have the same sets of visible
/// traces. Returns a shortest distinguishing trace on failure.
///
/// `cap` bounds determinization (see [`determinize`]); exceeding it panics
/// since no verdict can be produced.
///
/// # Panics
///
/// Panics if determinization of either side exceeds `cap` subset states.
pub fn weak_trace_equivalent(a: &Lts, b: &Lts, cap: usize) -> Verdict {
    let da = determinize(a, cap).expect("determinization cap exceeded (left)");
    let db = determinize(b, cap).expect("determinization cap exceeded (right)");
    // BFS over the synchronized product of the two DFAs; a mismatch in the
    // enabled label sets yields a distinguishing trace.
    let mut seen: HashMap<(u32, u32), ()> = HashMap::new();
    let mut queue: VecDeque<(u32, u32, Vec<String>)> = VecDeque::new();
    seen.insert((da.initial, db.initial), ());
    queue.push_back((da.initial, db.initial, Vec::new()));
    while let Some((sa, sb, trace)) = queue.pop_front() {
        let ea = &da.edges[sa as usize];
        let eb = &db.edges[sb as usize];
        for label in ea.keys() {
            if !eb.contains_key(label) {
                let mut w = trace.clone();
                w.push(label.clone());
                return Verdict::Inequivalent { witness: Some(w) };
            }
        }
        for label in eb.keys() {
            if !ea.contains_key(label) {
                let mut w = trace.clone();
                w.push(label.clone());
                return Verdict::Inequivalent { witness: Some(w) };
            }
        }
        for (label, &ta) in ea {
            let tb = eb[label];
            if seen.insert((ta, tb), ()).is_none() {
                let mut w = trace.clone();
                w.push(label.clone());
                queue.push_back((ta, tb, w));
            }
        }
    }
    Verdict::Equivalent
}

/// Convenience: builds a small LTS from `(src, label, dst)` triples; state 0
/// is initial. Intended for tests and examples.
pub fn lts_from_triples(triples: &[(u32, &str, u32)]) -> Lts {
    let mut b = LtsBuilder::new();
    let max = triples.iter().map(|&(s, _, t)| s.max(t)).max().unwrap_or(0);
    for _ in 0..=max {
        b.add_state();
    }
    for &(s, l, t) in triples {
        b.add_transition(s, l, t);
    }
    b.build(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_systems_equivalent_everywhere() {
        let a = lts_from_triples(&[(0, "a", 1), (1, "b", 0)]);
        let b = lts_from_triples(&[(0, "a", 1), (1, "b", 0)]);
        assert!(equivalent(&a, &b, Equivalence::Strong).holds());
        assert!(equivalent(&a, &b, Equivalence::Branching).holds());
        assert!(weak_trace_equivalent(&a, &b, 1 << 16).holds());
    }

    #[test]
    fn unfolded_cycle_is_bisimilar() {
        let a = lts_from_triples(&[(0, "a", 0)]);
        let b = lts_from_triples(&[(0, "a", 1), (1, "a", 0)]);
        assert!(equivalent(&a, &b, Equivalence::Strong).holds());
    }

    #[test]
    fn trace_equivalent_but_not_bisimilar() {
        // a.(b+c) vs a.b + a.c: weak-trace equivalent, not bisimilar.
        let p = lts_from_triples(&[(0, "a", 1), (1, "b", 2), (1, "c", 3)]);
        let q = lts_from_triples(&[(0, "a", 1), (1, "b", 3), (0, "a", 2), (2, "c", 4)]);
        assert!(weak_trace_equivalent(&p, &q, 1 << 16).holds());
        assert!(!equivalent(&p, &q, Equivalence::Strong).holds());
        assert!(!equivalent(&p, &q, Equivalence::Branching).holds());
    }

    #[test]
    fn distinguishing_trace_is_minimal() {
        let p = lts_from_triples(&[(0, "a", 1), (1, "b", 2)]);
        let q = lts_from_triples(&[(0, "a", 1), (1, "c", 2)]);
        match weak_trace_equivalent(&p, &q, 1 << 16) {
            Verdict::Inequivalent { witness: Some(w) } => {
                assert_eq!(w.len(), 2);
                assert_eq!(w[0], "a");
            }
            v => panic!("expected inequivalent with witness, got {v:?}"),
        }
    }

    #[test]
    fn tau_ignored_by_weak_trace() {
        let p = lts_from_triples(&[(0, "i", 1), (1, "a", 2)]);
        let q = lts_from_triples(&[(0, "a", 1)]);
        assert!(weak_trace_equivalent(&p, &q, 1 << 16).holds());
        assert!(!equivalent(&p, &q, Equivalence::Strong).holds());
    }

    #[test]
    fn disjoint_union_preserves_sizes() {
        let a = lts_from_triples(&[(0, "a", 1)]);
        let b = lts_from_triples(&[(0, "b", 1), (1, "c", 2)]);
        let (u, ia, ib) = disjoint_union(&a, &b);
        assert_eq!(u.num_states(), 5);
        assert_eq!(u.num_transitions(), 3);
        assert_eq!(ia, 0);
        assert_eq!(ib, 2);
    }

    #[test]
    fn determinize_collapses_nondeterminism() {
        let p = lts_from_triples(&[(0, "a", 1), (0, "a", 2), (1, "b", 3), (2, "c", 4)]);
        let d = determinize(&p, 1024).expect("small LTS determinizes");
        // Initial --a--> {1,2} which enables both b and c.
        assert_eq!(d.edges[0].len(), 1);
        let mid = d.edges[0]["a"] as usize;
        assert_eq!(d.edges[mid].len(), 2);
    }

    #[test]
    fn determinize_cap_respected() {
        // Chain with nondeterministic fan-out can exceed a tiny cap.
        let p = lts_from_triples(&[
            (0, "a", 1),
            (0, "a", 2),
            (1, "a", 3),
            (2, "a", 4),
            (3, "b", 5),
            (4, "c", 5),
        ]);
        assert!(determinize(&p, 1).is_none());
    }
}
