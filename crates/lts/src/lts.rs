//! Explicit labeled transition systems.
//!
//! An [`Lts`] is the central object of the functional-verification flow: the
//! enumerated state space of a process-algebra model (what CADP calls a BCG
//! graph). States are dense `u32` ids, transitions are stored in
//! compressed-sparse-row form for cache-friendly traversal, and labels are
//! interned in a [`LabelTable`].

use crate::label::{gate_of, LabelId, LabelTable};
use std::collections::HashSet;
use std::fmt;

/// Dense identifier of an LTS state.
pub type StateId = u32;

/// A single outgoing transition: label and target state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Transition {
    /// Interned label of the transition.
    pub label: LabelId,
    /// Target state.
    pub target: StateId,
}

/// An explicit labeled transition system.
///
/// Build one with [`LtsBuilder`], by exploring a process-algebra term
/// (`multival-pa`), or by reading an Aldebaran `.aut` file
/// ([`crate::io::read_aut`]).
///
/// # Examples
///
/// ```
/// use multival_lts::{Lts, LtsBuilder};
///
/// let mut b = LtsBuilder::new();
/// let s0 = b.add_state();
/// let s1 = b.add_state();
/// b.add_transition(s0, "HELLO", s1);
/// b.add_transition(s1, "i", s0);
/// let lts = b.build(s0);
/// assert_eq!(lts.num_states(), 2);
/// assert_eq!(lts.num_transitions(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Lts {
    labels: LabelTable,
    initial: StateId,
    /// CSR offsets: transitions of state `s` are `trans[offsets[s]..offsets[s+1]]`.
    offsets: Vec<u32>,
    trans: Vec<Transition>,
}

impl Lts {
    /// Creates an LTS from raw parts. Prefer [`LtsBuilder`].
    ///
    /// `transitions` is a list of `(src, label, dst)` triples; they may be in
    /// any order and will be sorted into CSR form.
    ///
    /// # Panics
    ///
    /// Panics if `initial >= num_states` or any endpoint is out of range.
    pub fn from_parts(
        labels: LabelTable,
        num_states: u32,
        initial: StateId,
        transitions: Vec<(StateId, LabelId, StateId)>,
    ) -> Self {
        assert!(
            initial < num_states,
            "initial state {initial} out of range for {num_states} states"
        );
        let mut counts = vec![0u32; num_states as usize + 1];
        for &(s, _, t) in &transitions {
            assert!(
                s < num_states && t < num_states,
                "transition endpoint out of range: {s} -> {t} with {num_states} states"
            );
            counts[s as usize + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let offsets = counts.clone();
        let mut fill = counts;
        let mut trans = vec![Transition { label: LabelId::TAU, target: 0 }; transitions.len()];
        for (s, l, t) in transitions {
            let pos = fill[s as usize];
            trans[pos as usize] = Transition { label: l, target: t };
            fill[s as usize] += 1;
        }
        // Sort each state's transitions for determinism and binary search.
        for s in 0..num_states as usize {
            let (a, b) = (offsets[s] as usize, offsets[s + 1] as usize);
            trans[a..b].sort_unstable();
        }
        Lts { labels, initial, offsets, trans }
    }

    /// The initial state.
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of transitions.
    pub fn num_transitions(&self) -> usize {
        self.trans.len()
    }

    /// The label table.
    pub fn labels(&self) -> &LabelTable {
        &self.labels
    }

    /// Outgoing transitions of `s`, sorted by `(label, target)`.
    pub fn transitions_from(&self, s: StateId) -> &[Transition] {
        let (a, b) = (self.offsets[s as usize] as usize, self.offsets[s as usize + 1] as usize);
        &self.trans[a..b]
    }

    /// Iterates over all `(src, label, dst)` triples.
    pub fn iter_transitions(&self) -> impl Iterator<Item = (StateId, LabelId, StateId)> + '_ {
        (0..self.num_states() as StateId)
            .flat_map(move |s| self.transitions_from(s).iter().map(move |t| (s, t.label, t.target)))
    }

    /// States with no outgoing transitions (deadlocks, in LOTOS terms `stop`
    /// states; a successfully terminated state with an `exit` loop is not a
    /// deadlock).
    pub fn deadlock_states(&self) -> Vec<StateId> {
        (0..self.num_states() as StateId).filter(|&s| self.transitions_from(s).is_empty()).collect()
    }

    /// Returns `true` if `s` has an outgoing τ transition.
    pub fn has_tau(&self, s: StateId) -> bool {
        self.transitions_from(s).iter().any(|t| t.label.is_tau())
    }

    /// The set of label ids that actually appear on transitions.
    pub fn used_labels(&self) -> HashSet<LabelId> {
        self.trans.iter().map(|t| t.label).collect()
    }

    /// The set of gate names (first token of each used label, τ excluded).
    pub fn used_gates(&self) -> HashSet<String> {
        self.used_labels()
            .into_iter()
            .filter(|l| !l.is_tau())
            .map(|l| gate_of(self.labels.name(l)).to_owned())
            .collect()
    }

    /// Restricts the LTS to the states reachable from the initial state,
    /// renumbering them in BFS order. Returns the new LTS and, for each old
    /// state, its new id (or `None` if unreachable).
    pub fn reachable(&self) -> (Lts, Vec<Option<StateId>>) {
        let n = self.num_states();
        let mut map: Vec<Option<StateId>> = vec![None; n];
        let mut order: Vec<StateId> = Vec::new();
        let mut queue = std::collections::VecDeque::new();
        map[self.initial as usize] = Some(0);
        order.push(self.initial);
        queue.push_back(self.initial);
        while let Some(s) = queue.pop_front() {
            for t in self.transitions_from(s) {
                if map[t.target as usize].is_none() {
                    map[t.target as usize] = Some(order.len() as StateId);
                    order.push(t.target);
                    queue.push_back(t.target);
                }
            }
        }
        let mut transitions = Vec::new();
        for (new_src, &old_src) in order.iter().enumerate() {
            for t in self.transitions_from(old_src) {
                transitions.push((new_src as StateId, t.label, map[t.target as usize].unwrap()));
            }
        }
        let lts = Lts::from_parts(self.labels.clone(), order.len() as u32, 0, transitions);
        (lts, map)
    }

    /// Applies `f` to every label name, producing a relabeled LTS.
    /// Returning `None` maps the label to τ (hiding).
    pub fn relabel(&self, mut f: impl FnMut(&str) -> Option<String>) -> Lts {
        let mut labels = LabelTable::new();
        let mut cache: Vec<Option<LabelId>> = vec![None; self.labels.len()];
        let mut transitions = Vec::with_capacity(self.trans.len());
        for (s, l, t) in self.iter_transitions() {
            let new = match &mut cache[l.index()] {
                Some(id) => *id,
                slot => {
                    let id = if l.is_tau() {
                        LabelId::TAU
                    } else {
                        match f(self.labels.name(l)) {
                            Some(name) => labels.intern(&name),
                            None => LabelId::TAU,
                        }
                    };
                    *slot = Some(id);
                    id
                }
            };
            transitions.push((s, new, t));
        }
        Lts::from_parts(labels, self.num_states() as u32, self.initial, transitions)
    }

    /// Renders a short summary like `lts{states: 10, transitions: 23, labels: 4}`.
    pub fn summary(&self) -> String {
        format!(
            "lts{{states: {}, transitions: {}, labels: {}}}",
            self.num_states(),
            self.num_transitions(),
            self.labels.len()
        )
    }
}

impl fmt::Display for Lts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.summary())?;
        for (s, l, t) in self.iter_transitions() {
            writeln!(f, "  {} --{}--> {}", s, self.labels.name(l), t)?;
        }
        Ok(())
    }
}

/// Incremental builder for [`Lts`].
///
/// # Examples
///
/// ```
/// use multival_lts::LtsBuilder;
///
/// let mut b = LtsBuilder::new();
/// let s0 = b.add_state();
/// let s1 = b.add_state();
/// b.add_transition(s0, "A", s1);
/// let lts = b.build(s0);
/// assert_eq!(lts.transitions_from(s0).len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LtsBuilder {
    labels: LabelTable,
    num_states: u32,
    transitions: Vec<(StateId, LabelId, StateId)>,
}

impl LtsBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        LtsBuilder { labels: LabelTable::new(), num_states: 0, transitions: Vec::new() }
    }

    /// Allocates a fresh state and returns its id.
    pub fn add_state(&mut self) -> StateId {
        let s = self.num_states;
        self.num_states += 1;
        s
    }

    /// Allocates states until at least `n` exist.
    pub fn ensure_states(&mut self, n: u32) {
        self.num_states = self.num_states.max(n);
    }

    /// Current number of states.
    pub fn num_states(&self) -> u32 {
        self.num_states
    }

    /// Interns `label` and records a transition. States must already exist
    /// (see [`LtsBuilder::add_state`]); `"i"` or `"tau"` denote τ.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` has not been allocated.
    pub fn add_transition(&mut self, src: StateId, label: &str, dst: StateId) {
        assert!(src < self.num_states && dst < self.num_states, "state not allocated");
        let l = self.labels.intern(label);
        self.transitions.push((src, l, dst));
    }

    /// Records a transition with an already-interned label id.
    pub fn add_transition_id(&mut self, src: StateId, label: LabelId, dst: StateId) {
        assert!(src < self.num_states && dst < self.num_states, "state not allocated");
        assert!(label.index() < self.labels.len(), "label not interned");
        self.transitions.push((src, label, dst));
    }

    /// Interns a label for later use with [`LtsBuilder::add_transition_id`].
    pub fn intern(&mut self, label: &str) -> LabelId {
        self.labels.intern(label)
    }

    /// Finalizes the LTS with the given initial state.
    ///
    /// # Panics
    ///
    /// Panics if `initial` has not been allocated (unless the LTS is empty,
    /// in which case a single-state LTS is produced).
    pub fn build(self, initial: StateId) -> Lts {
        let n = self.num_states.max(1);
        Lts::from_parts(self.labels, n, initial, self.transitions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Lts {
        // 0 -A-> 1, 0 -B-> 2, 1 -C-> 3, 2 -C-> 3
        let mut b = LtsBuilder::new();
        let s: Vec<_> = (0..4).map(|_| b.add_state()).collect();
        b.add_transition(s[0], "A", s[1]);
        b.add_transition(s[0], "B", s[2]);
        b.add_transition(s[1], "C", s[3]);
        b.add_transition(s[2], "C", s[3]);
        b.build(s[0])
    }

    #[test]
    fn builder_roundtrip() {
        let l = diamond();
        assert_eq!(l.num_states(), 4);
        assert_eq!(l.num_transitions(), 4);
        assert_eq!(l.initial(), 0);
        assert_eq!(l.transitions_from(0).len(), 2);
        assert_eq!(l.deadlock_states(), vec![3]);
    }

    #[test]
    fn transitions_sorted_per_state() {
        let mut b = LtsBuilder::new();
        let s0 = b.add_state();
        let s1 = b.add_state();
        b.add_transition(s0, "Z", s1);
        b.add_transition(s0, "A", s1);
        let lts = b.build(s0);
        let ts = lts.transitions_from(s0);
        // Labels interned in insertion order: Z < A by id? No: Z id 1, A id 2.
        assert_eq!(ts.len(), 2);
        assert!(ts[0].label < ts[1].label);
    }

    #[test]
    fn reachable_prunes_and_renumbers() {
        let mut b = LtsBuilder::new();
        let s0 = b.add_state();
        let s1 = b.add_state();
        let _orphan = b.add_state();
        b.add_transition(s0, "A", s1);
        let lts = b.build(s0);
        let (r, map) = lts.reachable();
        assert_eq!(r.num_states(), 2);
        assert_eq!(map[2], None);
        assert_eq!(map[0], Some(0));
    }

    #[test]
    fn relabel_and_hide() {
        let l = diamond();
        let hidden = l.relabel(|name| if name == "C" { None } else { Some(name.to_owned()) });
        assert!(hidden.has_tau(1));
        assert!(!hidden.has_tau(0));
        let renamed = l.relabel(|name| Some(format!("X_{name}")));
        assert!(renamed.labels().lookup("X_A").is_some());
    }

    #[test]
    fn used_gates_strips_offers() {
        let mut b = LtsBuilder::new();
        let s0 = b.add_state();
        let s1 = b.add_state();
        b.add_transition(s0, "PUSH !1", s1);
        b.add_transition(s1, "PUSH !2", s0);
        b.add_transition(s0, "i", s0);
        let lts = b.build(s0);
        let gates = lts.used_gates();
        assert_eq!(gates.len(), 1);
        assert!(gates.contains("PUSH"));
    }

    #[test]
    #[should_panic(expected = "state not allocated")]
    fn transition_to_unallocated_state_panics() {
        let mut b = LtsBuilder::new();
        let s0 = b.add_state();
        b.add_transition(s0, "A", 7);
    }

    #[test]
    fn empty_builder_builds_single_state() {
        let b = LtsBuilder::new();
        let lts = b.build(0);
        assert_eq!(lts.num_states(), 1);
        assert_eq!(lts.num_transitions(), 0);
    }

    #[test]
    #[should_panic(expected = "initial state 0 out of range for 0 states")]
    fn from_parts_rejects_empty_state_space() {
        Lts::from_parts(LabelTable::new(), 0, 0, Vec::new());
    }

    #[test]
    #[should_panic(expected = "initial state 5 out of range for 2 states")]
    fn from_parts_rejects_out_of_range_initial() {
        Lts::from_parts(LabelTable::new(), 2, 5, Vec::new());
    }

    #[test]
    #[should_panic(expected = "transition endpoint out of range: 1 -> 9 with 2 states")]
    fn from_parts_rejects_out_of_range_endpoint() {
        Lts::from_parts(LabelTable::new(), 2, 0, vec![(1, LabelId::TAU, 9)]);
    }
}
