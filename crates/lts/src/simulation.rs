//! Simulation preorders: one-directional refinement between LTSs.
//!
//! `a ≤ b` (b simulates a) means every behaviour of `a` can be matched
//! step-by-step by `b` — the right relation when an implementation must
//! *refine* a more permissive specification (equivalence is too strong:
//! the spec may allow behaviours the implementation does not exercise).
//!
//! Computed as the greatest fixpoint of the simulation condition over the
//! full relation, with a τ-abstracting *weak* variant (`a`'s τ steps must
//! be matched by `b` via zero or more τ steps; visible steps via
//! `τ* a τ*`).

use crate::label::LabelId;
use crate::lts::{Lts, StateId};
use std::collections::HashSet;

/// A dense bit set over specification states, used to represent, per
/// implementation state, the set of spec states that simulate it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimSet {
    words: Vec<u64>,
    len: usize,
}

impl SimSet {
    /// The full set over `len` elements.
    pub fn full(len: usize) -> SimSet {
        let mut words = vec![!0u64; len.div_ceil(64)];
        let extra = words.len() * 64 - len;
        if extra > 0 {
            if let Some(last) = words.last_mut() {
                *last &= !0u64 >> extra;
            }
        }
        SimSet { words, len }
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        i < self.len && self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Removes `i`.
    pub fn remove(&mut self, i: usize) {
        if i < self.len {
            self.words[i / 64] &= !(1u64 << (i % 64));
        }
    }

    /// Iterates over members.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&i| self.contains(i))
    }
}

/// Strength of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimulationKind {
    /// Every transition must be matched by an identical label.
    Strong,
    /// τ steps are matched by `τ*`; visible steps by `τ* a τ*`.
    Weak,
}

/// Does `spec` simulate `imp` (i.e. `imp ≤ spec`) from their initial
/// states?
///
/// Labels are matched by *name* across the two label tables.
///
/// # Examples
///
/// ```
/// use multival_lts::equiv::lts_from_triples;
/// use multival_lts::simulation::{simulates, SimulationKind};
///
/// // The spec allows a or b; the implementation only ever does a.
/// let spec = lts_from_triples(&[(0, "a", 1), (0, "b", 2)]);
/// let imp = lts_from_triples(&[(0, "a", 1)]);
/// assert!(simulates(&imp, &spec, SimulationKind::Strong));
/// assert!(!simulates(&spec, &imp, SimulationKind::Strong));
/// ```
pub fn simulates(imp: &Lts, spec: &Lts, kind: SimulationKind) -> bool {
    let relation = simulation_relation(imp, spec, kind);
    relation[imp.initial() as usize].contains(spec.initial() as usize)
}

/// Computes the greatest simulation relation: `result[s]` is the set of
/// spec states that simulate implementation state `s`.
pub fn simulation_relation(imp: &Lts, spec: &Lts, kind: SimulationKind) -> Vec<SimSet> {
    // Translate imp's labels into spec's table by name (unmatched visible
    // labels can never be simulated).
    let translate: Vec<Option<LabelId>> = imp
        .labels()
        .iter()
        .map(|(id, name)| if id.is_tau() { Some(LabelId::TAU) } else { spec.labels().lookup(name) })
        .collect();

    let na = imp.num_states();
    let nb = spec.num_states();

    // Weak matching needs spec's τ-closure and weak steps.
    let tau_closure: Vec<Vec<StateId>> = if kind == SimulationKind::Weak {
        (0..nb as StateId).map(|s| tau_reach(spec, s)).collect()
    } else {
        Vec::new()
    };

    // Start from the full relation and strip violating pairs until stable.
    let mut rel: Vec<SimSet> = vec![SimSet::full(nb); na];
    loop {
        let mut changed = false;
        for s in 0..na as StateId {
            let candidates: Vec<usize> = rel[s as usize].iter().collect();
            'cand: for t in candidates {
                // Every move of s must be matched from t.
                for tr in imp.transitions_from(s) {
                    let Some(label) = translate[tr.label.index()] else {
                        rel[s as usize].remove(t);
                        changed = true;
                        continue 'cand;
                    };
                    let matched = match kind {
                        SimulationKind::Strong => {
                            spec.transitions_from(t as StateId).iter().any(|st| {
                                st.label == label
                                    && rel[tr.target as usize].contains(st.target as usize)
                            })
                        }
                        SimulationKind::Weak => {
                            weak_match(spec, &tau_closure, t as StateId, label, |u| {
                                rel[tr.target as usize].contains(u as usize)
                            })
                        }
                    };
                    if !matched {
                        rel[s as usize].remove(t);
                        changed = true;
                        continue 'cand;
                    }
                }
            }
        }
        if !changed {
            return rel;
        }
    }
}

/// States reachable from `s` by τ* (including `s`).
fn tau_reach(lts: &Lts, s: StateId) -> Vec<StateId> {
    let mut seen = HashSet::new();
    let mut stack = vec![s];
    seen.insert(s);
    while let Some(v) = stack.pop() {
        for t in lts.transitions_from(v) {
            if t.label.is_tau() && seen.insert(t.target) {
                stack.push(t.target);
            }
        }
    }
    seen.into_iter().collect()
}

/// Can `spec` match a step labeled `label` from `t` weakly (τ* label τ*,
/// or τ* alone when `label` is τ), landing in a state accepted by `ok`?
fn weak_match(
    spec: &Lts,
    tau_closure: &[Vec<StateId>],
    t: StateId,
    label: LabelId,
    ok: impl Fn(StateId) -> bool,
) -> bool {
    if label.is_tau() {
        // τ* (possibly zero steps).
        return tau_closure[t as usize].iter().any(|&u| ok(u));
    }
    for &u in &tau_closure[t as usize] {
        for tr in spec.transitions_from(u) {
            if tr.label == label && tau_closure[tr.target as usize].iter().any(|&v| ok(v)) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equiv::lts_from_triples;

    #[test]
    fn refinement_is_one_directional() {
        let spec = lts_from_triples(&[(0, "a", 1), (0, "b", 2), (1, "c", 0)]);
        let imp = lts_from_triples(&[(0, "a", 1), (1, "c", 0)]);
        assert!(simulates(&imp, &spec, SimulationKind::Strong));
        assert!(!simulates(&spec, &imp, SimulationKind::Strong));
    }

    #[test]
    fn nondeterministic_spec_simulates_deterministic_imp() {
        // Classic: a.(b + c) simulates a.b (pick the right branch).
        let spec = lts_from_triples(&[(0, "a", 1), (1, "b", 2), (1, "c", 3)]);
        let imp = lts_from_triples(&[(0, "a", 1), (1, "b", 2)]);
        assert!(simulates(&imp, &spec, SimulationKind::Strong));
        // And a.b + a.c is simulated by a.(b + c) but not vice versa.
        let split = lts_from_triples(&[(0, "a", 1), (1, "b", 3), (0, "a", 2), (2, "c", 4)]);
        assert!(simulates(&split, &spec, SimulationKind::Strong));
        assert!(!simulates(&spec, &split, SimulationKind::Strong));
    }

    #[test]
    fn unknown_labels_break_simulation() {
        let spec = lts_from_triples(&[(0, "a", 1)]);
        let imp = lts_from_triples(&[(0, "z", 1)]);
        assert!(!simulates(&imp, &spec, SimulationKind::Strong));
    }

    #[test]
    fn weak_simulation_absorbs_tau() {
        // imp: τ; a — weakly simulated by spec: a.
        let imp = lts_from_triples(&[(0, "i", 1), (1, "a", 2)]);
        let spec = lts_from_triples(&[(0, "a", 1)]);
        assert!(!simulates(&imp, &spec, SimulationKind::Strong));
        assert!(simulates(&imp, &spec, SimulationKind::Weak));
        // And spec with τ padding simulates too.
        let padded = lts_from_triples(&[(0, "i", 1), (1, "a", 2), (2, "i", 3)]);
        assert!(simulates(&padded, &spec, SimulationKind::Weak));
    }

    #[test]
    fn weak_simulation_still_detects_missing_behaviour() {
        let imp = lts_from_triples(&[(0, "i", 1), (1, "a", 2), (2, "b", 3)]);
        let spec = lts_from_triples(&[(0, "a", 1)]);
        assert!(!simulates(&imp, &spec, SimulationKind::Weak), "spec has no b");
    }

    #[test]
    fn bisimilar_systems_simulate_both_ways() {
        let a = lts_from_triples(&[(0, "x", 1), (1, "y", 0)]);
        let b = lts_from_triples(&[(0, "x", 1), (1, "y", 2), (2, "x", 3), (3, "y", 0)]);
        assert!(simulates(&a, &b, SimulationKind::Strong));
        assert!(simulates(&b, &a, SimulationKind::Strong));
    }

    #[test]
    fn self_simulation_always_holds() {
        let a = lts_from_triples(&[(0, "a", 1), (1, "i", 0), (0, "b", 2)]);
        assert!(simulates(&a, &a, SimulationKind::Strong));
        assert!(simulates(&a, &a, SimulationKind::Weak));
    }
}
