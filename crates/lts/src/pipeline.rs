//! Smart compositional reduction pipeline.
//!
//! The paper's weapon against state explosion is *compositional
//! verification*: minimize each component modulo a bisimulation before
//! composing it, so the product never materializes at full size. This
//! module supplies the engine that decides *how* to apply the primitives
//! from [`crate::ops`] and [`crate::minimize`]:
//!
//! 1. **Order** — candidate composition orders are scored with a
//!    smart-reduction-style heuristic (estimated product transitions from
//!    interleaving and synchronization counts, with a bonus for orders
//!    that let internal gates be hidden early);
//! 2. **Hide early** — at each stage, every gate slated for hiding whose
//!    possessors have all been folded in (and every hidden gate that never
//!    synchronizes) is turned into τ before minimization;
//! 3. **Minimize** — the intermediate product is reduced modulo the
//!    chosen [`Equivalence`] (both strong and branching bisimulation are
//!    congruences for parallel composition and hiding, so intermediate
//!    minimization is sound);
//! 4. **Checkpoint** — each stage can be persisted as a compact binary
//!    `.blts` file ([`crate::io::write_blts`]) plus a fingerprinted
//!    manifest, so an interrupted pipeline resumes instead of recomputing.
//!
//! The final result is passed through [`canonicalize`], which renumbers
//! states and labels into a form that depends only on the structure of
//! the LTS — byte-identical [`crate::io::write_aut`] output across
//! composition orders, worker counts, and checkpoint restarts.
//!
//! # Network semantics
//!
//! A [`Network`] is a set of named components plus a set of *sync gates*
//! and a set of *hidden gates*. A sync gate synchronizes among exactly
//! the components whose alphabet contains it (EXP.OPEN-style alphabet
//! scoping); all other gates interleave freely. The special LOTOS
//! termination gate `exit` always synchronizes among **all** components,
//! mirroring [`crate::ops::compose`]. Hidden gates are internalized (τ)
//! in the final result; the pipeline merely hides them as early as is
//! sound.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};
use std::time::Instant;

use crate::io::{read_blts, write_aut, write_blts};
use crate::label::gate_of;
use crate::lts::{Lts, LtsBuilder};
use crate::minimize::{minimize_with, Equivalence};
use crate::ops::{self, Sync};
use crate::reach::{self, ReachOptions};
use crate::store::{StoreConfig, StoreKind};
use crate::ts::LazyProduct;
use multival_par::Workers;

/// The LOTOS successful-termination gate: always joint, never hidden early.
const EXIT_GATE: &str = "exit";

/// A network of components with alphabet-scoped synchronization.
#[derive(Debug, Clone)]
pub struct Network {
    components: Vec<(String, Lts)>,
    sync_gates: BTreeSet<String>,
    hidden: BTreeSet<String>,
}

impl Default for Network {
    fn default() -> Self {
        Network::new()
    }
}

impl Network {
    /// An empty network.
    pub fn new() -> Self {
        Network { components: Vec::new(), sync_gates: BTreeSet::new(), hidden: BTreeSet::new() }
    }

    /// Adds a named component.
    pub fn add_component(&mut self, name: impl Into<String>, lts: Lts) -> &mut Self {
        self.components.push((name.into(), lts));
        self
    }

    /// Declares gates that synchronize among all their possessors.
    pub fn sync_on<I, S>(&mut self, gates: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.sync_gates.extend(gates.into_iter().map(Into::into));
        self
    }

    /// Declares gates hidden (τ) in the final result.
    pub fn hide<I, S>(&mut self, gates: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.hidden.extend(gates.into_iter().map(Into::into));
        self
    }

    /// The components, in declaration order.
    pub fn components(&self) -> &[(String, Lts)] {
        &self.components
    }

    /// The synchronizing gates.
    pub fn sync_gates(&self) -> &BTreeSet<String> {
        &self.sync_gates
    }

    /// The gates hidden in the final result.
    pub fn hidden(&self) -> &BTreeSet<String> {
        &self.hidden
    }

    /// The *static* alphabet of each component: every gate that appears on
    /// a transition (τ excluded). Alphabets are computed from the original
    /// components and never shrink as intermediates are minimized — a sync
    /// gate a possessor can no longer offer must keep blocking its peers.
    fn alphabets(&self) -> Vec<BTreeSet<String>> {
        self.components
            .iter()
            .map(|(_, lts)| lts.used_gates().into_iter().filter(|g| g != "i").collect())
            .collect()
    }

    /// A structural fingerprint of the network (components, sync set, hide
    /// set), used to validate checkpoints.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write(b"network v1\n");
        for (name, lts) in &self.components {
            h.write(b"component\n");
            h.write(name.as_bytes());
            h.write(b"\n");
            h.write(write_aut(lts).as_bytes());
        }
        for g in &self.sync_gates {
            h.write(b"sync ");
            h.write(g.as_bytes());
            h.write(b"\n");
        }
        for g in &self.hidden {
            h.write(b"hide ");
            h.write(g.as_bytes());
            h.write(b"\n");
        }
        h.finish()
    }
}

/// Composition-order policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Order {
    /// Fold components in declaration order.
    Given,
    /// Greedy smart-reduction heuristic (Crouzen & Lang): repeatedly fold
    /// the component minimizing the estimated product transition count,
    /// with a bonus when the fold completes a hidden gate's possessor set.
    Smart,
    /// A seeded pseudo-random permutation (deterministic per seed) — used
    /// by the differential harness to stress order-independence.
    Seeded(u64),
}

impl fmt::Display for Order {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Order::Given => write!(f, "given"),
            Order::Smart => write!(f, "smart"),
            Order::Seeded(s) => write!(f, "seed:{s}"),
        }
    }
}

/// Options for [`run_pipeline`].
#[derive(Debug, Clone)]
pub struct PipelineOptions {
    /// Equivalence used for intermediate and final minimization.
    pub equivalence: Equivalence,
    /// Composition-order policy.
    pub order: Order,
    /// Worker count for composition and partition refinement.
    pub workers: Workers,
    /// Inclusive cap on any intermediate product's state count: the stage
    /// product is scanned lazily first and the pipeline aborts (with
    /// partial progress) before materializing past the cap.
    pub max_states: Option<usize>,
    /// Wall-clock deadline, checked between stages.
    pub deadline: Option<Instant>,
    /// Directory for per-stage `.blts` checkpoints plus a manifest; if it
    /// already holds a manifest matching this network and options, the
    /// pipeline resumes from the last completed stage.
    pub checkpoint_dir: Option<PathBuf>,
    /// State-store backend for the stage products (and memory budget for
    /// the spill backend). Every backend yields byte-identical results;
    /// see [`crate::store`].
    pub store: StoreConfig,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            equivalence: Equivalence::Branching,
            order: Order::Smart,
            workers: Workers::default(),
            max_states: None,
            deadline: None,
            checkpoint_dir: None,
            store: StoreConfig::default(),
        }
    }
}

/// Per-stage statistics: stage 0 is the first component alone, stage `k`
/// folds the `k`-th component of the resolved order into the accumulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageStats {
    /// Stage index (0-based).
    pub stage: usize,
    /// Name of the component folded in at this stage.
    pub component: String,
    /// Product states before hiding/minimization (the stage peak).
    pub states_before: usize,
    /// Product transitions before hiding/minimization.
    pub transitions_before: usize,
    /// States after hiding + minimization.
    pub states_after: usize,
    /// Transitions after hiding + minimization.
    pub transitions_after: usize,
    /// Gates hidden at this stage (their possessors are now all folded).
    pub hidden: Vec<String>,
}

impl StageStats {
    /// `states_after / states_before` (1.0 for an empty stage).
    pub fn reduction_ratio(&self) -> f64 {
        if self.states_before == 0 {
            1.0
        } else {
            self.states_after as f64 / self.states_before as f64
        }
    }
}

/// Why a pipeline stopped early.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbortReason {
    /// The next stage's product would exceed the state cap.
    MaxStates {
        /// Stage that tripped the cap.
        stage: usize,
        /// The configured cap.
        cap: usize,
    },
    /// The deadline passed between stages.
    Timeout {
        /// First stage that was not run.
        stage: usize,
    },
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbortReason::MaxStates { stage, cap } => {
                write!(f, "stage {stage} product exceeds the {cap}-state cap")
            }
            AbortReason::Timeout { stage } => write!(f, "deadline reached before stage {stage}"),
        }
    }
}

/// Result of [`run_pipeline`]: the (possibly partial) reduced LTS plus the
/// full stage-by-stage account.
#[derive(Debug, Clone)]
pub struct PipelineRun {
    /// The canonicalized result. On abort this is the last completed
    /// intermediate (partial progress), already canonicalized.
    pub lts: Lts,
    /// Statistics for every completed stage, in execution order.
    pub stages: Vec<StageStats>,
    /// The resolved composition order (indices into the network's
    /// component list).
    pub order: Vec<usize>,
    /// Present when the budget stopped the pipeline early.
    pub abort: Option<AbortReason>,
    /// Number of leading stages restored from a checkpoint instead of
    /// recomputed.
    pub resumed_stages: usize,
}

impl PipelineRun {
    /// True when every component was folded in.
    pub fn complete(&self) -> bool {
        self.abort.is_none()
    }

    /// Peak intermediate size: the largest state count that ever existed,
    /// inclusive of pre-minimization products.
    pub fn peak_states(&self) -> usize {
        self.stages.iter().map(|s| s.states_before.max(s.states_after)).max().unwrap_or(0)
    }
}

/// Result of the [`monolithic`] reference build.
#[derive(Debug, Clone)]
pub struct MonolithicRun {
    /// The canonicalized minimized product (same observable behaviour as
    /// the pipeline's result).
    pub lts: Lts,
    /// States of the full product before hiding/minimization.
    pub product_states: usize,
    /// Transitions of the full product before hiding/minimization.
    pub product_transitions: usize,
    /// Largest intermediate state count during the fold (the product
    /// itself is always the last and largest candidate).
    pub peak_states: usize,
}

/// The monolithic reference: fold every component in declaration order
/// with the same alphabet-scoped synchronization — but **no** intermediate
/// hiding or minimization — then hide, minimize once, and canonicalize.
///
/// This is the semantic yardstick the differential harness compares the
/// pipeline against, and the baseline the paper's compositional flow is
/// measured by.
///
/// # Panics
///
/// Panics if the network has no components.
pub fn monolithic(network: &Network, eq: Equivalence, workers: Workers) -> MonolithicRun {
    assert!(!network.components.is_empty(), "monolithic build needs at least one component");
    let alphabets = network.alphabets();
    let mut folded_alpha = alphabets[0].clone();
    let mut acc = network.components[0].1.clone();
    let mut peak = acc.num_states();
    for (k, (_, comp)) in network.components.iter().enumerate().skip(1) {
        let sync = stage_sync(&folded_alpha, &alphabets[k], &network.sync_gates);
        acc = ops::compose_with(&acc, comp, &sync, workers);
        folded_alpha.extend(alphabets[k].iter().cloned());
        peak = peak.max(acc.num_states());
    }
    let product_states = acc.num_states();
    let product_transitions = acc.num_transitions();
    let hidden = ops::hide(&acc, network.hidden.iter().map(String::as_str));
    let (minimized, _) = minimize_with(&hidden, eq, workers);
    MonolithicRun {
        lts: canonicalize(&minimized),
        product_states,
        product_transitions,
        peak_states: peak,
    }
}

/// Runs the compositional reduction pipeline on `network`.
///
/// # Panics
///
/// Panics if the network has no components.
pub fn run_pipeline(network: &Network, options: &PipelineOptions) -> PipelineRun {
    let n = network.components.len();
    assert!(n > 0, "pipeline needs at least one component");
    let alphabets = network.alphabets();
    let order = resolve_order(network, &alphabets, options.order);

    let checkpoint = options.checkpoint_dir.as_deref().map(|dir| Checkpoint {
        dir: dir.to_path_buf(),
        fingerprint: checkpoint_fingerprint(network, options, &order),
    });

    let mut stages: Vec<StageStats> = Vec::new();
    let mut acc: Option<Lts> = None;
    let mut resumed_stages = 0usize;
    if let Some(cp) = &checkpoint {
        if let Some((restored_stages, restored_acc)) = cp.try_resume(&order) {
            resumed_stages = restored_stages.len();
            stages = restored_stages;
            acc = Some(restored_acc);
        }
    }
    if resumed_stages == 0 {
        if let Some(cp) = &checkpoint {
            cp.reset(&order);
        }
    }

    // Rebuild the folded bookkeeping for the stages already done.
    let mut folded: BTreeSet<usize> = order[..resumed_stages].iter().copied().collect();
    let mut folded_alpha: BTreeSet<String> = BTreeSet::new();
    for &i in &folded {
        folded_alpha.extend(alphabets[i].iter().cloned());
    }
    let mut hidden_done: BTreeSet<String> =
        stages.iter().flat_map(|s| s.hidden.iter().cloned()).collect();

    let mut abort = None;
    for (k, &idx) in order.iter().enumerate().skip(resumed_stages) {
        if let Some(deadline) = options.deadline {
            if Instant::now() >= deadline {
                abort = Some(AbortReason::Timeout { stage: k });
                break;
            }
        }
        let (name, comp) = &network.components[idx];
        let product = if let Some(prev) = acc.as_ref() {
            let sync = stage_sync(&folded_alpha, &alphabets[idx], &network.sync_gates);
            if let Some(cap) = options.max_states {
                let lazy = LazyProduct::new(&[prev, comp], &sync);
                let summary = reach::scan(&lazy, &ReachOptions::with_max_states(cap));
                if summary.truncated {
                    abort = Some(AbortReason::MaxStates { stage: k, cap });
                    break;
                }
            }
            if options.store.kind == StoreKind::Hash {
                ops::compose_with(prev, comp, &sync, options.workers)
            } else {
                ops::compose_all_store(&[prev, comp], &sync, options.workers, &options.store)
            }
        } else {
            if let Some(cap) = options.max_states {
                if comp.num_states() > cap {
                    abort = Some(AbortReason::MaxStates { stage: k, cap });
                    break;
                }
            }
            comp.clone()
        };
        folded.insert(idx);
        folded_alpha.extend(alphabets[idx].iter().cloned());

        let (to_hide, completed) =
            hideable_now(network, &alphabets, &folded, &folded_alpha, &hidden_done);
        let states_before = product.num_states();
        let transitions_before = product.num_transitions();
        let internalized = if to_hide.is_empty() {
            product
        } else {
            ops::hide(&product, to_hide.iter().map(String::as_str))
        };
        let (minimized, _) = minimize_with(&internalized, options.equivalence, options.workers);
        hidden_done.extend(completed.iter().cloned());
        let stat = StageStats {
            stage: k,
            component: name.clone(),
            states_before,
            transitions_before,
            states_after: minimized.num_states(),
            transitions_after: minimized.num_transitions(),
            hidden: completed,
        };
        if let Some(cp) = &checkpoint {
            cp.record_stage(&stat, &minimized, &stages);
        }
        stages.push(stat);
        acc = Some(minimized);
    }

    let result = match acc {
        Some(lts) => canonicalize(&lts),
        // Aborted before even the first component fit: a single idle state.
        None => {
            let mut b = LtsBuilder::new();
            let s = b.add_state();
            b.build(s)
        }
    };
    PipelineRun { lts: result, stages, order, abort, resumed_stages }
}

/// The synchronization set for folding a component with alphabet `next`
/// onto an accumulator covering `folded`: exactly the declared sync gates
/// both sides possess. (`exit` is joint regardless — [`ops::compose`]
/// enforces that unconditionally.)
fn stage_sync(
    folded: &BTreeSet<String>,
    next: &BTreeSet<String>,
    sync_gates: &BTreeSet<String>,
) -> Sync {
    let shared: Vec<&String> =
        sync_gates.iter().filter(|g| folded.contains(*g) && next.contains(*g)).collect();
    if shared.is_empty() {
        Sync::Interleave
    } else {
        Sync::on(shared.into_iter().map(String::as_str))
    }
}

/// The hidden gates that may be internalized once the components in
/// `folded` are in. Returns `(apply, completed)`:
///
/// * `apply` — gates to hide at this stage. A non-synchronizing gate can
///   be hidden as soon as any possessor is folded (its occurrences never
///   interact across components), but it is hidden again at every stage
///   until the last possessor arrives; a synchronizing gate only once all
///   possessors are in (earlier, hiding would break the pending
///   synchronizations); `exit` only when everything is folded (it is
///   joint among all components).
/// * `completed` — the subset whose possessor set is now complete; these
///   are recorded in the stage stats and never revisited.
fn hideable_now(
    network: &Network,
    alphabets: &[BTreeSet<String>],
    folded: &BTreeSet<usize>,
    folded_alpha: &BTreeSet<String>,
    hidden_done: &BTreeSet<String>,
) -> (Vec<String>, Vec<String>) {
    let n = network.components.len();
    let mut apply = Vec::new();
    let mut completed = Vec::new();
    for g in network.hidden.iter().filter(|g| !hidden_done.contains(*g) && g.as_str() != "i") {
        let all_folded = if g == EXIT_GATE {
            folded.len() == n
        } else {
            (0..n).all(|i| folded.contains(&i) || !alphabets[i].contains(g))
        };
        let syncs = g == EXIT_GATE || network.sync_gates.contains(g);
        if all_folded {
            apply.push(g.clone());
            completed.push(g.clone());
        } else if !syncs && folded_alpha.contains(g) {
            apply.push(g.clone());
        }
    }
    (apply, completed)
}

// ---------------------------------------------------------------------------
// Order resolution
// ---------------------------------------------------------------------------

/// Per-component counts feeding the smart-order estimator.
struct CompStats {
    /// State count (upper bound for the accumulated pseudo-component).
    states: u128,
    /// Transitions on gates *not* in the sync set.
    free_transitions: u128,
    /// Transition count per synchronizing gate.
    sync_counts: BTreeMap<String, u128>,
}

fn comp_stats(lts: &Lts, sync_gates: &BTreeSet<String>) -> CompStats {
    let mut free = 0u128;
    let mut sync_counts: BTreeMap<String, u128> = BTreeMap::new();
    for (_, label, _) in lts.iter_transitions() {
        let name = lts.labels().name(label);
        let gate = gate_of(name);
        if sync_gates.contains(gate) || gate == EXIT_GATE {
            *sync_counts.entry(gate.to_owned()).or_insert(0) += 1;
        } else {
            free += 1;
        }
    }
    CompStats { states: lts.num_states() as u128, free_transitions: free, sync_counts }
}

fn resolve_order(network: &Network, alphabets: &[BTreeSet<String>], order: Order) -> Vec<usize> {
    let n = network.components.len();
    match order {
        Order::Given => (0..n).collect(),
        Order::Seeded(seed) => {
            let mut perm: Vec<usize> = (0..n).collect();
            let mut state = seed;
            // Fisher–Yates driven by splitmix64: deterministic per seed,
            // no dependence on std's RandomState.
            for i in (1..n).rev() {
                let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
                perm.swap(i, j);
            }
            perm
        }
        Order::Smart => smart_order(network, alphabets),
    }
}

/// Greedy smart-reduction order: start from the smallest component, then
/// repeatedly fold the candidate with the lowest estimated product
/// transition count
///
/// ```text
/// score = free(acc)·states(c) + free(c)·states(acc)
///       + Σ_{shared sync gate g} cnt_acc(g)·cnt_c(g)
/// ```
///
/// discounted when the fold completes a hidden gate's possessor set (early
/// hiding is what lets branching minimization collapse the intermediate).
/// Ties break on estimated product states, then component index, so the
/// order is deterministic.
fn smart_order(network: &Network, alphabets: &[BTreeSet<String>]) -> Vec<usize> {
    let n = network.components.len();
    if n <= 1 {
        return (0..n).collect();
    }
    let stats: Vec<CompStats> =
        network.components.iter().map(|(_, lts)| comp_stats(lts, &network.sync_gates)).collect();

    let first = (0..n).min_by_key(|&i| (stats[i].states, i)).expect("non-empty network");
    let mut order = vec![first];
    let mut remaining: Vec<usize> = (0..n).filter(|&i| i != first).collect();

    // Accumulated pseudo-component (coarse upper bounds).
    let mut acc = CompStats {
        states: stats[first].states,
        free_transitions: stats[first].free_transitions,
        sync_counts: stats[first].sync_counts.clone(),
    };
    let mut folded: BTreeSet<usize> = BTreeSet::from([first]);

    while !remaining.is_empty() {
        let mut best: Option<(u128, u128, usize)> = None;
        for &c in &remaining {
            let s = &stats[c];
            let shared: Vec<&String> =
                acc.sync_counts.keys().filter(|g| s.sync_counts.contains_key(*g)).collect();
            let shared_acc: u128 = shared.iter().map(|g| acc.sync_counts[*g]).sum();
            let shared_c: u128 = shared.iter().map(|g| s.sync_counts[*g]).sum();
            let free_acc =
                acc.free_transitions + acc.sync_counts.values().sum::<u128>() - shared_acc;
            let free_c = s.free_transitions + s.sync_counts.values().sum::<u128>() - shared_c;
            let mut score =
                free_acc.saturating_mul(s.states).saturating_add(free_c.saturating_mul(acc.states));
            for g in &shared {
                score = score.saturating_add(acc.sync_counts[*g].saturating_mul(s.sync_counts[*g]));
            }
            // Bonus: each hidden gate whose possessor set this fold
            // completes shaves 20% off the score.
            let mut with_c = folded.clone();
            with_c.insert(c);
            let completed = network
                .hidden
                .iter()
                .filter(|g| network.sync_gates.contains(*g) && alphabets[c].contains(*g))
                .filter(|g| (0..n).all(|i| with_c.contains(&i) || !alphabets[i].contains(*g)))
                .count() as u128;
            score = score.saturating_mul(100) / (100 + 20 * completed);
            let est_states = acc.states.saturating_mul(s.states);
            let key = (score, est_states, c);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
        let (_, _, chosen) = best.expect("remaining is non-empty");
        remaining.retain(|&i| i != chosen);
        folded.insert(chosen);
        order.push(chosen);

        let s = &stats[chosen];
        let prev_states = acc.states;
        let next_states = acc.states.saturating_mul(s.states);
        acc.free_transitions = acc
            .free_transitions
            .saturating_mul(s.states)
            .saturating_add(s.free_transitions.saturating_mul(prev_states));
        let mut merged: BTreeMap<String, u128> = BTreeMap::new();
        for (g, &cnt) in &acc.sync_counts {
            match s.sync_counts.get(g) {
                Some(&other) => {
                    merged.insert(g.clone(), cnt.saturating_mul(other));
                }
                None => {
                    merged.insert(g.clone(), cnt.saturating_mul(s.states));
                }
            }
        }
        for (g, &cnt) in &s.sync_counts {
            merged.entry(g.clone()).or_insert_with(|| cnt.saturating_mul(prev_states));
        }
        acc.sync_counts = merged;
        acc.states = next_states;
    }
    order
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------------
// Canonicalization
// ---------------------------------------------------------------------------

/// Renumbers states and labels of `lts` into a canonical form: the output
/// depends only on the structure of the LTS (up to isomorphism), so two
/// isomorphic inputs — e.g. the same network reduced in different orders,
/// at different worker counts, or across a checkpoint restart — serialize
/// to byte-identical [`write_aut`] text.
///
/// States are ordered by color refinement (iterated strong-bisimulation
/// signatures): on a bisimulation-minimal LTS no two states share a final
/// color, so the refinement yields a total, structure-only order. Labels
/// are re-interned sorted by name (τ stays id 0), and the initial state
/// becomes state 0.
pub fn canonicalize(lts: &Lts) -> Lts {
    let n = lts.num_states();
    if n == 0 {
        return lts.clone();
    }
    // Rank labels by name; τ participates like any other label in the
    // signature (its name "i" sorts deterministically).
    let mut by_name: Vec<(&str, u32)> =
        lts.labels().iter().map(|(id, name)| (name, id.0)).collect();
    by_name.sort_unstable();
    let mut label_rank = vec![0u32; lts.labels().len()];
    for (rank, &(_, id)) in by_name.iter().enumerate() {
        label_rank[id as usize] = rank as u32;
    }

    // Color refinement: start from {initial} vs rest, then iterate
    // signature-based splitting to a fixed point.
    // (own color, sorted deduped (label rank, successor color) pairs, state)
    type Signature = (u32, Vec<(u32, u32)>, usize);
    let mut colors: Vec<u32> = (0..n).map(|s| u32::from(s as u32 == lts.initial())).collect();
    let mut num_colors = if n == 1 { 1 } else { 2 };
    loop {
        let mut sigs: Vec<Signature> = (0..n)
            .map(|s| {
                let mut succ: Vec<(u32, u32)> = lts
                    .transitions_from(s as u32)
                    .iter()
                    .map(|t| (label_rank[t.label.index()], colors[t.target as usize]))
                    .collect();
                succ.sort_unstable();
                succ.dedup();
                (colors[s], succ, s)
            })
            .collect();
        sigs.sort_unstable();
        let mut next = vec![0u32; n];
        let mut fresh = 0u32;
        for i in 0..n {
            if i > 0 && (sigs[i].0, &sigs[i].1) != (sigs[i - 1].0, &sigs[i - 1].1) {
                fresh += 1;
            }
            next[sigs[i].2] = fresh;
        }
        let fresh_count = fresh as usize + 1;
        if fresh_count == num_colors {
            break;
        }
        num_colors = fresh_count;
        colors = next;
    }

    // Canonical state order: initial first, then ascending final color;
    // residual ties (only possible on non-minimal inputs) break on the
    // original id, which is deterministic for a fixed input LTS.
    let mut order: Vec<usize> = (0..n).collect();
    let init = lts.initial() as usize;
    order.sort_by_key(|&s| (s != init, colors[s], s));
    let mut perm = vec![0u32; n];
    for (new, &old) in order.iter().enumerate() {
        perm[old] = new as u32;
    }

    let mut b = LtsBuilder::new();
    b.ensure_states(n as u32);
    let mut new_label = vec![crate::label::LabelId::TAU; lts.labels().len()];
    for &(name, id) in &by_name {
        new_label[id as usize] = b.intern(name);
    }
    for (src, label, dst) in lts.iter_transitions() {
        b.add_transition_id(perm[src as usize], new_label[label.index()], perm[dst as usize]);
    }
    b.build(0)
}

// ---------------------------------------------------------------------------
// Checkpointing
// ---------------------------------------------------------------------------

const MANIFEST_NAME: &str = "pipeline.manifest";
// v2: stage snapshots moved from `.aut` text to `.blts` binary. v1
// checkpoints fail the header check and are recomputed from scratch.
const MANIFEST_HEADER: &str = "multival-pipeline-checkpoint v2";

struct Checkpoint {
    dir: PathBuf,
    fingerprint: u64,
}

/// Fingerprint covering everything the intermediate results depend on:
/// the network, the equivalence, and the resolved order. Worker counts and
/// budgets are deliberately excluded — they never change the stage LTSs.
fn checkpoint_fingerprint(network: &Network, options: &PipelineOptions, order: &[usize]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(&network.fingerprint().to_le_bytes());
    h.write(format!("eq {:?}\n", options.equivalence).as_bytes());
    for &i in order {
        h.write(format!("order {i}\n").as_bytes());
    }
    h.finish()
}

impl Checkpoint {
    fn stage_path(&self, stage: usize) -> PathBuf {
        self.dir.join(format!("stage_{stage}.blts"))
    }

    /// Clears stale checkpoint state and writes a fresh manifest header.
    fn reset(&self, order: &[usize]) {
        let _ = std::fs::create_dir_all(&self.dir);
        let _ = std::fs::remove_file(self.dir.join(MANIFEST_NAME));
        for k in 0..order.len() {
            let _ = std::fs::remove_file(self.stage_path(k));
        }
    }

    /// Persists one completed stage: its `.blts` plus a rewritten manifest
    /// listing every stage done so far (the manifest is small; rewriting
    /// it whole keeps the format trivially robust).
    fn record_stage(&self, stat: &StageStats, lts: &Lts, done: &[StageStats]) {
        let _ = std::fs::create_dir_all(&self.dir);
        if std::fs::write(self.stage_path(stat.stage), write_blts(lts)).is_err() {
            return;
        }
        let mut manifest = String::new();
        manifest.push_str(MANIFEST_HEADER);
        manifest.push('\n');
        manifest.push_str(&format!("fingerprint {:016x}\n", self.fingerprint));
        for s in done.iter().chain(std::iter::once(stat)) {
            manifest.push_str(&format!(
                "stage {} {} {} {} {} {} {}\n",
                s.stage,
                s.states_before,
                s.transitions_before,
                s.states_after,
                s.transitions_after,
                s.component.replace(char::is_whitespace, "_"),
                if s.hidden.is_empty() { "-".to_owned() } else { s.hidden.join(",") },
            ));
        }
        let _ = std::fs::write(self.dir.join(MANIFEST_NAME), manifest);
    }

    /// Attempts to restore completed stages. Returns the restored stats
    /// plus the last stage's LTS, or `None` when the checkpoint is absent,
    /// stale (fingerprint mismatch), or unreadable in any way.
    fn try_resume(&self, order: &[usize]) -> Option<(Vec<StageStats>, Lts)> {
        let manifest = std::fs::read_to_string(self.dir.join(MANIFEST_NAME)).ok()?;
        let mut lines = manifest.lines();
        if lines.next()? != MANIFEST_HEADER {
            return None;
        }
        let fp_line = lines.next()?;
        let fp = u64::from_str_radix(fp_line.strip_prefix("fingerprint ")?, 16).ok()?;
        if fp != self.fingerprint {
            return None;
        }
        let mut stages = Vec::new();
        for line in lines {
            let mut parts = line.split_whitespace();
            if parts.next()? != "stage" {
                return None;
            }
            let stage: usize = parts.next()?.parse().ok()?;
            if stage != stages.len() || stage >= order.len() {
                return None;
            }
            let states_before: usize = parts.next()?.parse().ok()?;
            let transitions_before: usize = parts.next()?.parse().ok()?;
            let states_after: usize = parts.next()?.parse().ok()?;
            let transitions_after: usize = parts.next()?.parse().ok()?;
            let component = parts.next()?.to_owned();
            let hidden_field = parts.next()?;
            let hidden = if hidden_field == "-" {
                Vec::new()
            } else {
                hidden_field.split(',').map(str::to_owned).collect()
            };
            stages.push(StageStats {
                stage,
                component,
                states_before,
                transitions_before,
                states_after,
                transitions_after,
                hidden,
            });
        }
        if stages.is_empty() {
            return None;
        }
        let last = stages.len() - 1;
        let bytes = std::fs::read(self.stage_path(last)).ok()?;
        let lts = read_blts(&bytes).ok()?;
        if lts.num_states() != stages[last].states_after {
            return None;
        }
        Some((stages, lts))
    }
}

/// Lists the checkpoint files a pipeline writes for a network of `n`
/// components into `dir` (manifest plus per-stage `.blts`), for callers
/// that want to report or clean them.
pub fn checkpoint_files(dir: &Path, n: usize) -> Vec<PathBuf> {
    let mut files = vec![dir.join(MANIFEST_NAME)];
    files.extend((0..n).map(|k| dir.join(format!("stage_{k}.blts"))));
    files
}

// ---------------------------------------------------------------------------
// FNV-1a (64-bit) — tiny, dependency-free, stable across platforms.
// ---------------------------------------------------------------------------

struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equiv::{disjoint_union, lts_from_triples};
    use crate::minimize::same_block;

    fn cell(inp: &str, outp: &str) -> Lts {
        lts_from_triples(&[(0, inp, 1), (1, outp, 0)])
    }

    /// A 3-cell buffer chain: enq → h1 → h2 → deq, hops hidden.
    fn chain() -> Network {
        let mut net = Network::new();
        net.add_component("c1", cell("enq", "h1"))
            .add_component("c2", cell("h1", "h2"))
            .add_component("c3", cell("h2", "deq"))
            .sync_on(["h1", "h2"])
            .hide(["h1", "h2"]);
        net
    }

    #[test]
    fn pipeline_matches_monolithic_on_chain() {
        let net = chain();
        let mono = monolithic(&net, Equivalence::Branching, Workers::default());
        for order in [Order::Given, Order::Smart, Order::Seeded(7)] {
            let run = run_pipeline(&net, &PipelineOptions { order, ..PipelineOptions::default() });
            assert!(run.complete());
            assert_eq!(
                write_aut(&run.lts),
                write_aut(&mono.lts),
                "order {order} diverged from the monolithic reference"
            );
        }
    }

    #[test]
    fn pipeline_peak_beats_monolithic_on_long_chain() {
        let mut net = Network::new();
        let k = 7;
        for i in 0..k {
            let inp = if i == 0 { "enq".to_owned() } else { format!("h{i}") };
            let outp = if i + 1 == k { "deq".to_owned() } else { format!("h{}", i + 1) };
            net.add_component(format!("c{i}"), cell(&inp, &outp));
        }
        let hops: Vec<String> = (1..k).map(|i| format!("h{i}")).collect();
        net.sync_on(hops.iter().cloned()).hide(hops);
        let mono = monolithic(&net, Equivalence::Branching, Workers::default());
        let run = run_pipeline(&net, &PipelineOptions::default());
        assert!(run.complete());
        assert_eq!(mono.product_states, 1 << k);
        assert!(
            run.peak_states() < mono.product_states,
            "pipeline peak {} must beat the 2^k product {}",
            run.peak_states(),
            mono.product_states
        );
        assert_eq!(write_aut(&run.lts), write_aut(&mono.lts));
    }

    #[test]
    fn canonical_form_is_order_and_worker_invariant() {
        let net = chain();
        let reference = run_pipeline(&net, &PipelineOptions::default());
        for seed in 0..6 {
            for workers in [1, 4] {
                let run = run_pipeline(
                    &net,
                    &PipelineOptions {
                        order: Order::Seeded(seed),
                        workers: Workers::new(workers),
                        ..PipelineOptions::default()
                    },
                );
                assert_eq!(
                    write_aut(&run.lts),
                    write_aut(&reference.lts),
                    "seed {seed} × {workers} workers broke canonical determinism"
                );
            }
        }
    }

    #[test]
    fn pipeline_is_store_invariant() {
        let net = chain();
        let reference = run_pipeline(&net, &PipelineOptions::default());
        for kind in StoreKind::ALL {
            // A 1-byte budget forces the spill backend to page everything.
            let run = run_pipeline(
                &net,
                &PipelineOptions {
                    store: StoreConfig { kind, mem_budget: Some(1) },
                    ..PipelineOptions::default()
                },
            );
            assert_eq!(
                write_aut(&run.lts),
                write_aut(&reference.lts),
                "store backend {kind} diverged"
            );
        }
    }

    #[test]
    fn strong_equivalence_pipeline_agrees() {
        let net = chain();
        let mono = monolithic(&net, Equivalence::Strong, Workers::default());
        let run = run_pipeline(
            &net,
            &PipelineOptions { equivalence: Equivalence::Strong, ..PipelineOptions::default() },
        );
        assert_eq!(write_aut(&run.lts), write_aut(&mono.lts));
        let (u, ia, ib) = disjoint_union(&run.lts, &mono.lts);
        assert!(same_block(&u, ia, ib, Equivalence::Strong));
    }

    #[test]
    fn single_possessor_sync_gate_moves_freely() {
        // `b` is declared synchronizing but only one component has it: it
        // must interleave (alphabet-scoped synchronization), in any order.
        let mut net = Network::new();
        net.add_component("l", lts_from_triples(&[(0, "a", 1), (1, "b", 0)]))
            .add_component("r", lts_from_triples(&[(0, "a", 1), (1, "c", 0)]))
            .sync_on(["a", "b"]);
        let mono = monolithic(&net, Equivalence::Branching, Workers::default());
        for order in [Order::Given, Order::Seeded(3)] {
            let run = run_pipeline(&net, &PipelineOptions { order, ..PipelineOptions::default() });
            assert_eq!(write_aut(&run.lts), write_aut(&mono.lts));
        }
        // `b` must actually be reachable in the product.
        assert!(mono.lts.used_gates().contains("b"));
    }

    #[test]
    fn exit_stays_joint_and_is_never_hidden_early() {
        // Left exits; right never does: the product must not exit, even
        // though `exit` is slated for hiding and right joins last.
        let mut net = Network::new();
        net.add_component("l", lts_from_triples(&[(0, "a", 1), (1, "exit", 2)]))
            .add_component("m", lts_from_triples(&[(0, "a", 1), (1, "exit", 2)]))
            .add_component("r", lts_from_triples(&[(0, "a", 1), (1, "b", 0)]))
            .sync_on(["a"])
            .hide(["exit", "b"]);
        let mono = monolithic(&net, Equivalence::Branching, Workers::default());
        assert!(!mono.lts.used_gates().contains("exit"));
        for order in [Order::Given, Order::Smart, Order::Seeded(11)] {
            let run = run_pipeline(&net, &PipelineOptions { order, ..PipelineOptions::default() });
            assert_eq!(write_aut(&run.lts), write_aut(&mono.lts), "order {order}");
        }
    }

    #[test]
    fn max_states_aborts_with_partial_progress() {
        let net = chain();
        let run = run_pipeline(
            &net,
            &PipelineOptions { max_states: Some(3), ..PipelineOptions::default() },
        );
        assert!(matches!(run.abort, Some(AbortReason::MaxStates { cap: 3, .. })));
        assert!(!run.stages.is_empty(), "partial progress must be reported");
        assert!(run.lts.num_states() > 0);
    }

    #[test]
    fn expired_deadline_aborts_before_stage() {
        let net = chain();
        let run = run_pipeline(
            &net,
            &PipelineOptions {
                deadline: Some(Instant::now() - std::time::Duration::from_secs(1)),
                ..PipelineOptions::default()
            },
        );
        assert_eq!(run.abort, Some(AbortReason::Timeout { stage: 0 }));
        assert!(run.stages.is_empty());
    }

    #[test]
    fn checkpoint_resumes_and_matches_fresh_run() {
        let dir = std::env::temp_dir().join("multival-pipeline-ckpt-test");
        let _ = std::fs::remove_dir_all(&dir);
        let net = chain();
        let options =
            PipelineOptions { checkpoint_dir: Some(dir.clone()), ..PipelineOptions::default() };
        let fresh = run_pipeline(&net, &options);
        assert_eq!(fresh.resumed_stages, 0);
        // A second run over the same directory restores every stage.
        let resumed = run_pipeline(&net, &options);
        assert_eq!(resumed.resumed_stages, net.components().len());
        assert_eq!(write_aut(&resumed.lts), write_aut(&fresh.lts));
        assert_eq!(resumed.stages, fresh.stages);
        // Truncating the checkpoint to one stage resumes the tail only.
        let manifest_path = dir.join(MANIFEST_NAME);
        let manifest = std::fs::read_to_string(&manifest_path).expect("manifest");
        let head: Vec<&str> = manifest.lines().take(3).collect();
        std::fs::write(&manifest_path, format!("{}\n", head.join("\n"))).expect("truncate");
        let partial = run_pipeline(&net, &options);
        assert_eq!(partial.resumed_stages, 1);
        assert_eq!(write_aut(&partial.lts), write_aut(&fresh.lts));
        assert_eq!(partial.stages, fresh.stages);
        // A different equivalence invalidates the fingerprint.
        let other = run_pipeline(
            &net,
            &PipelineOptions {
                equivalence: Equivalence::Strong,
                checkpoint_dir: Some(dir.clone()),
                ..PipelineOptions::default()
            },
        );
        assert_eq!(other.resumed_stages, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn canonicalize_is_idempotent_and_permutation_invariant() {
        let a = lts_from_triples(&[(0, "b", 1), (1, "a", 2), (2, "b", 0), (0, "a", 0)]);
        // The same structure with states renumbered (0→2, 1→0, 2→1).
        let b = lts_from_triples(&[(2, "b", 0), (0, "a", 1), (1, "b", 2), (2, "a", 2)]);
        let b = Lts::from_parts(b.labels().clone(), 3, 2, b.iter_transitions().collect());
        let ca = canonicalize(&a);
        assert_eq!(write_aut(&ca), write_aut(&canonicalize(&ca)));
        assert_eq!(write_aut(&ca), write_aut(&canonicalize(&b)));
        assert_eq!(ca.initial(), 0);
    }

    #[test]
    fn smart_order_prefers_early_hiding() {
        // A chain declared in an adversarial order: smart must still find
        // a fold that keeps intermediates small (strictly below the
        // full-product bound that the worst order would hit).
        let mut net = Network::new();
        net.add_component("c3", cell("h2", "deq"))
            .add_component("c1", cell("enq", "h1"))
            .add_component("c2", cell("h1", "h2"))
            .sync_on(["h1", "h2"])
            .hide(["h1", "h2"]);
        let run =
            run_pipeline(&net, &PipelineOptions { order: Order::Smart, ..Default::default() });
        assert!(run.complete());
        // Smart must pick a connected fold: c3 and c1 share nothing, so
        // folding them first would interleave into 4 states; a connected
        // order keeps every stage at or below the minimized queue sizes.
        let mono = monolithic(&net, Equivalence::Branching, Workers::default());
        assert!(run.peak_states() <= mono.product_states);
        assert_eq!(write_aut(&run.lts), write_aut(&mono.lts));
    }
}
