//! The SOS successor function exposed as a [`TransitionSystem`]: a
//! specification's behaviour can be explored, composed with observers, and
//! model-checked on the fly, without ever materializing its LTS.
//!
//! [`PaTs`] interns labels *lazily* — the label table grows as new actions
//! are derived — so it sits on the sequential side of the determinism
//! contract (see `multival_lts::ts`): materialize it with
//! `Workers::sequential()`. Search verdicts are unaffected.
//!
//! Semantic errors (undefined process, unguarded recursion, …) cannot be
//! surfaced through the infallible successor signature; they are parked in
//! a side channel instead, and the affected state reports no successors.
//! Callers must check [`PaTs::take_error`] after exploring — a search that
//! hit an error is inconclusive.

use crate::semantics::{transitions, Label, SemError};
use crate::spec::Spec;
use crate::term::Term;
use multival_lts::{LabelId, LabelTable, TransitionSystem};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// A process-algebra specification viewed as an implicit transition system
/// over its terms.
pub struct PaTs<'a> {
    spec: &'a Spec,
    /// Lazily grown label table plus the semantic-label → id cache, guarded
    /// together so an id is never observed before its name is interned.
    labels: Mutex<(LabelTable, HashMap<Label, LabelId>)>,
    /// First semantic error encountered, with the term that raised it.
    error: Mutex<Option<(SemError, Arc<Term>)>>,
}

impl<'a> PaTs<'a> {
    /// Views `spec`'s top behaviour as a transition system.
    ///
    /// # Panics
    ///
    /// Panics if the specification has no top behaviour.
    pub fn new(spec: &'a Spec) -> Self {
        assert!(spec.try_top().is_some(), "specification has no top behaviour");
        PaTs {
            spec,
            labels: Mutex::new((LabelTable::new(), HashMap::new())),
            error: Mutex::new(None),
        }
    }

    /// Takes the first semantic error hit during exploration, if any;
    /// the state that raised it is returned alongside.
    pub fn take_error(&self) -> Option<(SemError, Arc<Term>)> {
        self.error.lock().expect("error channel poisoned").take()
    }

    /// Whether a semantic error has been recorded.
    pub fn has_error(&self) -> bool {
        self.error.lock().expect("error channel poisoned").is_some()
    }

    fn intern(&self, label: &Label) -> LabelId {
        let mut guard = self.labels.lock().expect("label table poisoned");
        let (table, cache) = &mut *guard;
        match cache.get(label) {
            Some(&id) => id,
            None => {
                let id = table.intern(&crate::explorer::render_label(label));
                cache.insert(label.clone(), id);
                id
            }
        }
    }
}

impl TransitionSystem for PaTs<'_> {
    type State = Arc<Term>;

    fn initial_state(&self) -> Arc<Term> {
        self.spec.top().clone()
    }

    fn successors(&self, state: &Arc<Term>) -> Vec<(LabelId, Arc<Term>)> {
        match transitions(state, self.spec) {
            Ok(succ) => succ.into_iter().map(|(label, term)| (self.intern(&label), term)).collect(),
            Err(error) => {
                let mut slot = self.error.lock().expect("error channel poisoned");
                if slot.is_none() {
                    *slot = Some((error, state.clone()));
                }
                Vec::new()
            }
        }
    }

    fn label_table(&self) -> LabelTable {
        self.labels.lock().expect("label table poisoned").0.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_spec;
    use multival_lts::reach::{deadlock_search, materialize, ReachOptions};

    #[test]
    fn pa_ts_matches_eager_explorer() {
        let spec = parse_spec("behaviour hide m in (a; m; stop |[m]| m; b; stop)").expect("parses");
        let ts = PaTs::new(&spec);
        let lazy = materialize(&ts);
        let eager = crate::explorer::explore(&spec, &crate::explorer::ExploreOptions::default())
            .expect("explores");
        assert_eq!(
            multival_lts::io::write_aut(&lazy),
            multival_lts::io::write_aut(&eager.lts),
            "lazy exploration must match the eager explorer byte-for-byte"
        );
        assert!(ts.take_error().is_none());
    }

    #[test]
    fn deadlock_search_runs_directly_on_terms() {
        let spec = parse_spec("behaviour a; b; stop").expect("parses");
        let ts = PaTs::new(&spec);
        let outcome = deadlock_search(&ts, &ReachOptions::default());
        assert_eq!(outcome.witness, Some(vec!["a".to_owned(), "b".to_owned()]));
        assert!(!ts.has_error());
    }

    #[test]
    fn semantic_errors_are_parked_in_the_side_channel() {
        // Unguarded recursion parses fine but fails during derivation.
        let spec = parse_spec(
            "process Loop := Loop endproc\n\
             behaviour Loop",
        )
        .expect("parses");
        let ts = PaTs::new(&spec);
        let _ = materialize(&ts);
        assert!(ts.has_error(), "unguarded recursion must surface as an error");
        let (err, _) = ts.take_error().expect("error recorded");
        assert!(err.to_string().contains("unguarded recursion"), "got: {err}");
    }
}
