//! Behaviour terms: the abstract syntax of the mini-LOTOS dialect.
//!
//! Terms double as *states* during state-space generation: the explorer uses
//! closed terms (all value variables substituted) as canonical state
//! identities, hash-consed through `Arc` and structural equality.

use crate::expr::Expr;
use crate::value::{Sym, Type, Value};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A data offer of an action: emit a value (`!e`) or accept one (`?x:T`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Offer {
    /// `!e` — emit the value of `e`.
    Send(Expr),
    /// `?x:T` — accept any value of type `T`, binding `x`.
    Recv(Sym, Type),
}

/// An action occurrence: a gate with data offers.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Action {
    /// Gate name.
    pub gate: Sym,
    /// Data offers, in order.
    pub offers: Vec<Offer>,
}

impl Action {
    /// Action on `gate` with no offers.
    pub fn bare(gate: &str) -> Action {
        Action { gate: crate::value::sym(gate), offers: Vec::new() }
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.gate)?;
        for o in &self.offers {
            match o {
                Offer::Send(e) => write!(f, " !{e}")?,
                Offer::Recv(x, t) => write!(f, " ?{x}:{t}")?,
            }
        }
        Ok(())
    }
}

/// Synchronization discipline of a parallel composition.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SyncKind {
    /// `|||` — no synchronization.
    Interleave,
    /// `||` — synchronize on all gates.
    Full,
    /// `|[g1, …, gn]|` — synchronize on the listed gates (sorted).
    Gates(Arc<[Sym]>),
}

impl SyncKind {
    /// Builds a gate-set synchronization, sorting the gates for canonicity.
    pub fn gates<I, S>(gates: I) -> SyncKind
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut v: Vec<Sym> = gates.into_iter().map(|g| crate::value::sym(g.as_ref())).collect();
        v.sort();
        v.dedup();
        SyncKind::Gates(v.into())
    }

    /// Does this discipline force gate `g` to synchronize?
    pub fn synchronizes(&self, g: &str) -> bool {
        match self {
            SyncKind::Interleave => false,
            SyncKind::Full => true,
            SyncKind::Gates(gs) => gs.iter().any(|x| &**x == g),
        }
    }
}

/// A behaviour term.
///
/// The constructors mirror LOTOS:
/// `stop`, `exit`, action prefix `a; B`, guard `[e] -> B`, choice `B [] B`,
/// parallel `B |[G]| B`, `hide G in B`, gate renaming, process instantiation
/// `P[g…](e…)`, enabling `B >> accept x:T in B`, disabling `B [> B`, and
/// `let x:T = e in B`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// `stop` — no transitions (deadlock/inaction).
    Stop,
    /// `exit(e…)` — successful termination δ, offering result values.
    Exit(Vec<Expr>),
    /// `a; B` — action prefix.
    Prefix(Action, Arc<Term>),
    /// `[e] -> B` — guarded behaviour.
    Guard(Expr, Arc<Term>),
    /// `B1 [] B2` — choice.
    Choice(Arc<Term>, Arc<Term>),
    /// `B1 |[G]| B2` — parallel composition.
    Par(SyncKind, Arc<Term>, Arc<Term>),
    /// `hide g1, …, gn in B`.
    Hide(Arc<[Sym]>, Arc<Term>),
    /// Gate renaming `B [h1/g1, …]` (maps old gate → new gate).
    Rename(Arc<[(Sym, Sym)]>, Arc<Term>),
    /// `P[g…](e…)` — process instantiation.
    Call(Sym, Vec<Sym>, Vec<Expr>),
    /// `B1 >> accept x1:T1, … in B2` — sequential composition (enabling).
    Enable(Arc<Term>, Vec<(Sym, Type)>, Arc<Term>),
    /// `B1 [> B2` — disabling (interrupt).
    Disable(Arc<Term>, Arc<Term>),
    /// `let x1:T1 = e1, … in B`.
    Let(Vec<(Sym, Type, Expr)>, Arc<Term>),
}

impl Term {
    /// Wraps the term in an `Arc` (states are always shared).
    pub fn rc(self) -> Arc<Term> {
        Arc::new(self)
    }

    /// Substitutes free *value variables* by constants.
    ///
    /// Respects binders: `?x:T` offers, `accept` clauses and `let` bindings
    /// shadow outer variables in their scope.
    pub fn subst_vars(self: &Arc<Term>, env: &HashMap<Sym, Value>) -> Arc<Term> {
        if env.is_empty() {
            return self.clone();
        }
        match &**self {
            Term::Stop => self.clone(),
            Term::Exit(es) => Term::Exit(es.iter().map(|e| e.subst_fold(env)).collect()).rc(),
            Term::Prefix(a, cont) => {
                let mut inner = env.clone();
                let offers: Vec<Offer> = a
                    .offers
                    .iter()
                    .map(|o| match o {
                        Offer::Send(e) => Offer::Send(e.subst_fold(env)),
                        Offer::Recv(x, t) => {
                            inner.remove(x); // ?x binds from here on
                            Offer::Recv(x.clone(), t.clone())
                        }
                    })
                    .collect();
                let cont2 = if inner.is_empty() { cont.clone() } else { cont.subst_vars(&inner) };
                Term::Prefix(Action { gate: a.gate.clone(), offers }, cont2).rc()
            }
            Term::Guard(e, b) => Term::Guard(e.subst_fold(env), b.subst_vars(env)).rc(),
            Term::Choice(l, r) => Term::Choice(l.subst_vars(env), r.subst_vars(env)).rc(),
            Term::Par(k, l, r) => Term::Par(k.clone(), l.subst_vars(env), r.subst_vars(env)).rc(),
            Term::Hide(gs, b) => Term::Hide(gs.clone(), b.subst_vars(env)).rc(),
            Term::Rename(m, b) => Term::Rename(m.clone(), b.subst_vars(env)).rc(),
            Term::Call(p, gs, es) => {
                Term::Call(p.clone(), gs.clone(), es.iter().map(|e| e.subst_fold(env)).collect())
                    .rc()
            }
            Term::Enable(l, binders, r) => {
                let mut inner = env.clone();
                for (x, _) in binders {
                    inner.remove(x);
                }
                let r2 = if inner.is_empty() { r.clone() } else { r.subst_vars(&inner) };
                Term::Enable(l.subst_vars(env), binders.clone(), r2).rc()
            }
            Term::Disable(l, r) => Term::Disable(l.subst_vars(env), r.subst_vars(env)).rc(),
            Term::Let(binds, b) => {
                let mut inner = env.clone();
                let binds2: Vec<(Sym, Type, Expr)> = binds
                    .iter()
                    .map(|(x, t, e)| {
                        // Bindings are sequential: each RHS sees outer env plus
                        // earlier bindings (which are not in `env`, so just the
                        // progressively shadowed env).
                        let e2 = e.subst(&inner);
                        inner.remove(x);
                        (x.clone(), t.clone(), e2)
                    })
                    .collect();
                let b2 = if inner.is_empty() { b.clone() } else { b.subst_vars(&inner) };
                Term::Let(binds2, b2).rc()
            }
        }
    }

    /// Substitutes *gate names* (used when instantiating process calls and
    /// applying renamings). `hide` binds gates: hidden gates are local and
    /// are not renamed inside their scope.
    pub fn subst_gates(self: &Arc<Term>, map: &HashMap<Sym, Sym>) -> Arc<Term> {
        if map.is_empty() {
            return self.clone();
        }
        let ren = |g: &Sym| -> Sym { map.get(g).cloned().unwrap_or_else(|| g.clone()) };
        match &**self {
            Term::Stop | Term::Exit(_) => self.clone(),
            Term::Prefix(a, cont) => Term::Prefix(
                Action { gate: ren(&a.gate), offers: a.offers.clone() },
                cont.subst_gates(map),
            )
            .rc(),
            Term::Guard(e, b) => Term::Guard(e.clone(), b.subst_gates(map)).rc(),
            Term::Choice(l, r) => Term::Choice(l.subst_gates(map), r.subst_gates(map)).rc(),
            Term::Par(k, l, r) => {
                let k2 = match k {
                    SyncKind::Gates(gs) => {
                        let mut v: Vec<Sym> = gs.iter().map(ren).collect();
                        v.sort();
                        v.dedup();
                        SyncKind::Gates(v.into())
                    }
                    other => other.clone(),
                };
                Term::Par(k2, l.subst_gates(map), r.subst_gates(map)).rc()
            }
            Term::Hide(gs, b) => {
                let mut inner = map.clone();
                for g in gs.iter() {
                    inner.remove(g);
                }
                let b2 = if inner.is_empty() { b.clone() } else { b.subst_gates(&inner) };
                Term::Hide(gs.clone(), b2).rc()
            }
            Term::Rename(m, b) => {
                // Composition: inner renaming applies first at runtime, so the
                // outer substitution applies to the *targets* of `m`.
                let m2: Vec<(Sym, Sym)> = m.iter().map(|(a, c)| (a.clone(), ren(c))).collect();
                // Gates not mentioned as a source of `m` flow through, so the
                // body still needs the substitution for those… but renaming at
                // derivation time handles pass-through labels via `m` lookup
                // only. To keep semantics simple we also substitute the body
                // for gates that are not sources of `m`.
                let mut inner = map.clone();
                for (a, _) in m.iter() {
                    inner.remove(a);
                }
                let b2 = if inner.is_empty() { b.clone() } else { b.subst_gates(&inner) };
                Term::Rename(m2.into(), b2).rc()
            }
            Term::Call(p, gs, es) => {
                Term::Call(p.clone(), gs.iter().map(ren).collect(), es.clone()).rc()
            }
            Term::Enable(l, binders, r) => {
                Term::Enable(l.subst_gates(map), binders.clone(), r.subst_gates(map)).rc()
            }
            Term::Disable(l, r) => Term::Disable(l.subst_gates(map), r.subst_gates(map)).rc(),
            Term::Let(binds, b) => Term::Let(binds.clone(), b.subst_gates(map)).rc(),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Stop => write!(f, "stop"),
            Term::Exit(es) if es.is_empty() => write!(f, "exit"),
            Term::Exit(es) => {
                write!(f, "exit(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            Term::Prefix(a, b) => write!(f, "{a}; {b}"),
            Term::Guard(e, b) => write!(f, "[{e}] -> {b}"),
            Term::Choice(l, r) => write!(f, "({l} [] {r})"),
            Term::Par(SyncKind::Interleave, l, r) => write!(f, "({l} ||| {r})"),
            Term::Par(SyncKind::Full, l, r) => write!(f, "({l} || {r})"),
            Term::Par(SyncKind::Gates(gs), l, r) => {
                write!(f, "({l} |[")?;
                for (i, g) in gs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{g}")?;
                }
                write!(f, "]| {r})")
            }
            Term::Hide(gs, b) => {
                write!(f, "hide ")?;
                for (i, g) in gs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{g}")?;
                }
                write!(f, " in {b}")
            }
            Term::Rename(m, b) => {
                write!(f, "(rename ")?;
                for (i, (a, c)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a} -> {c}")?;
                }
                write!(f, " in {b})")
            }
            Term::Call(p, gs, es) => {
                write!(f, "{p}")?;
                if !gs.is_empty() {
                    write!(f, "[")?;
                    for (i, g) in gs.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{g}")?;
                    }
                    write!(f, "]")?;
                }
                if !es.is_empty() {
                    write!(f, "(")?;
                    for (i, e) in es.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{e}")?;
                    }
                    write!(f, ")")?;
                }
                Ok(())
            }
            Term::Enable(l, binders, r) => {
                write!(f, "({l} >> ")?;
                if !binders.is_empty() {
                    write!(f, "accept ")?;
                    for (i, (x, t)) in binders.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{x}:{t}")?;
                    }
                    write!(f, " in ")?;
                }
                write!(f, "{r})")
            }
            Term::Disable(l, r) => write!(f, "({l} [> {r})"),
            Term::Let(binds, b) => {
                write!(f, "let ")?;
                for (i, (x, t, e)) in binds.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}:{t} = {e}")?;
                }
                write!(f, " in {b}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{sym, Value};

    fn env(pairs: &[(&str, i64)]) -> HashMap<Sym, Value> {
        pairs.iter().map(|&(k, v)| (sym(k), Value::Int(v))).collect()
    }

    #[test]
    fn subst_vars_respects_recv_binder() {
        // g !x ?x:int 0..1; h !x; stop — the !x after ?x refers to the bound x.
        let t = Term::Prefix(
            Action {
                gate: sym("g"),
                offers: vec![Offer::Send(Expr::var("x")), Offer::Recv(sym("x"), Type::Int(0, 1))],
            },
            Term::Prefix(
                Action { gate: sym("h"), offers: vec![Offer::Send(Expr::var("x"))] },
                Term::Stop.rc(),
            )
            .rc(),
        )
        .rc();
        let s = t.subst_vars(&env(&[("x", 9)]));
        // First offer closed to 9; the h-offer must still be the variable.
        match &*s {
            Term::Prefix(a, cont) => {
                assert_eq!(a.offers[0], Offer::Send(Expr::int(9)));
                match &**cont {
                    Term::Prefix(h, _) => {
                        assert_eq!(h.offers[0], Offer::Send(Expr::var("x")));
                    }
                    other => panic!("unexpected {other}"),
                }
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn subst_vars_respects_let_binder() {
        let t = Term::Let(
            vec![(sym("x"), Type::Int(0, 9), Expr::int(1))],
            Term::Exit(vec![Expr::var("x")]).rc(),
        )
        .rc();
        let s = t.subst_vars(&env(&[("x", 5)]));
        // Outer x must not penetrate the let body.
        match &*s {
            Term::Let(_, body) => match &**body {
                Term::Exit(es) => assert_eq!(es[0], Expr::var("x")),
                other => panic!("unexpected {other}"),
            },
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn subst_gates_respects_hide_binder() {
        let t = Term::Hide(
            vec![sym("g")].into(),
            Term::Prefix(Action::bare("g"), Term::Stop.rc()).rc(),
        )
        .rc();
        let mut map = HashMap::new();
        map.insert(sym("g"), sym("h"));
        let s = t.subst_gates(&map);
        match &*s {
            Term::Hide(_, body) => match &**body {
                Term::Prefix(a, _) => assert_eq!(&*a.gate, "g", "hidden gate is local"),
                other => panic!("unexpected {other}"),
            },
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn subst_gates_renames_sync_sets() {
        let t = Term::Par(
            SyncKind::gates(["g"]),
            Term::Prefix(Action::bare("g"), Term::Stop.rc()).rc(),
            Term::Prefix(Action::bare("g"), Term::Stop.rc()).rc(),
        )
        .rc();
        let mut map = HashMap::new();
        map.insert(sym("g"), sym("h"));
        let s = t.subst_gates(&map);
        match &*s {
            Term::Par(SyncKind::Gates(gs), _, _) => assert_eq!(&*gs[0], "h"),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn structural_equality_is_state_identity() {
        let mk = || Term::Prefix(Action::bare("a"), Term::Stop.rc()).rc();
        assert_eq!(mk(), mk());
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |t: &Arc<Term>| {
            let mut s = DefaultHasher::new();
            t.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&mk()), h(&mk()));
    }

    #[test]
    fn display_is_readable() {
        let t = Term::Choice(
            Term::Prefix(Action::bare("a"), Term::Stop.rc()).rc(),
            Term::Exit(vec![]).rc(),
        );
        assert_eq!(t.to_string(), "(a; stop [] exit)");
    }

    #[test]
    fn sync_gates_sorted_and_deduped() {
        let k = SyncKind::gates(["b", "a", "b"]);
        match k {
            SyncKind::Gates(gs) => {
                assert_eq!(gs.len(), 2);
                assert_eq!(&*gs[0], "a");
            }
            _ => unreachable!(),
        }
    }
}
