//! Lexer for the mini-LOTOS textual syntax.
//!
//! Comments: `(* … *)` (nestable) and `-- …` to end of line.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier (process, gate, variable, or type name).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Keyword (lowercase reserved word).
    Kw(&'static str),
    /// `[]`
    ChoiceOp,
    /// `[>`
    DisableOp,
    /// `|[`
    LBrackBar,
    /// `]|`
    RBrackBar,
    /// `|||`
    Interleave,
    /// `||`
    FullSync,
    /// `>>`
    Enable,
    /// `->`
    Arrow,
    /// `..`
    DotDot,
    /// `:=`
    Define,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBrack,
    /// `]`
    RBrack,
    /// `!`
    Bang,
    /// `?`
    Quest,
    /// `==` (also written `=`)
    EqEq,
    /// `!=`
    Ne,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Int(i) => write!(f, "integer `{i}`"),
            Tok::Kw(k) => write!(f, "keyword `{k}`"),
            Tok::ChoiceOp => write!(f, "`[]`"),
            Tok::DisableOp => write!(f, "`[>`"),
            Tok::LBrackBar => write!(f, "`|[`"),
            Tok::RBrackBar => write!(f, "`]|`"),
            Tok::Interleave => write!(f, "`|||`"),
            Tok::FullSync => write!(f, "`||`"),
            Tok::Enable => write!(f, "`>>`"),
            Tok::Arrow => write!(f, "`->`"),
            Tok::DotDot => write!(f, "`..`"),
            Tok::Define => write!(f, "`:=`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Colon => write!(f, "`:`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::LBrack => write!(f, "`[`"),
            Tok::RBrack => write!(f, "`]`"),
            Tok::Bang => write!(f, "`!`"),
            Tok::Quest => write!(f, "`?`"),
            Tok::EqEq => write!(f, "`==`"),
            Tok::Ne => write!(f, "`!=`"),
            Tok::Le => write!(f, "`<=`"),
            Tok::Ge => write!(f, "`>=`"),
            Tok::Lt => write!(f, "`<`"),
            Tok::Gt => write!(f, "`>`"),
            Tok::Plus => write!(f, "`+`"),
            Tok::Minus => write!(f, "`-`"),
            Tok::Star => write!(f, "`*`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// Reserved words of the dialect.
pub const KEYWORDS: &[&str] = &[
    "process",
    "endproc",
    "type",
    "endtype",
    "is",
    "behaviour",
    "behavior",
    "endspec",
    "stop",
    "exit",
    "hide",
    "rename",
    "in",
    "let",
    "accept",
    "choice",
    "bool",
    "int",
    "and",
    "or",
    "not",
    "div",
    "mod",
    "if",
    "then",
    "else",
    "true",
    "false",
];

/// A token plus its 1-based source line (for diagnostics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based line number.
    pub line: usize,
}

/// Lexing error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// 1-based line of the offending character.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes `src`, ending with a [`Tok::Eof`] token.
///
/// # Errors
///
/// Returns [`LexError`] on unknown characters, unterminated comments, or
/// integer overflow.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line = 1;
    let mut out = Vec::new();
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                let start_line = line;
                let mut depth = 1;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if i + 1 < bytes.len() && bytes[i] == b'(' && bytes[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if i + 1 < bytes.len() && bytes[i] == b'*' && bytes[i + 1] == b')' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                if depth > 0 {
                    return Err(LexError {
                        line: start_line,
                        message: "unterminated comment".into(),
                    });
                }
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let text = &src[start..i];
                let v: i64 = text.parse().map_err(|_| LexError {
                    line,
                    message: format!("integer literal `{text}` overflows i64"),
                })?;
                out.push(Spanned { tok: Tok::Int(v), line });
            }
            _ if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let ch = bytes[i] as char;
                    if ch.is_ascii_alphanumeric() || ch == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                let word = &src[start..i];
                let tok = match KEYWORDS.iter().find(|&&k| k == word) {
                    Some(&k) => Tok::Kw(k),
                    None => Tok::Ident(word.to_owned()),
                };
                out.push(Spanned { tok, line });
            }
            _ => {
                let rest = &src[i..];
                let (tok, len) = if rest.starts_with("|||") {
                    (Tok::Interleave, 3)
                } else if rest.starts_with("|[") {
                    (Tok::LBrackBar, 2)
                } else if rest.starts_with("||") {
                    (Tok::FullSync, 2)
                } else if rest.starts_with("]|") {
                    (Tok::RBrackBar, 2)
                } else if rest.starts_with("[]") {
                    (Tok::ChoiceOp, 2)
                } else if rest.starts_with("[>") {
                    (Tok::DisableOp, 2)
                } else if rest.starts_with(">>") {
                    (Tok::Enable, 2)
                } else if rest.starts_with("->") {
                    (Tok::Arrow, 2)
                } else if rest.starts_with("..") {
                    (Tok::DotDot, 2)
                } else if rest.starts_with(":=") {
                    (Tok::Define, 2)
                } else if rest.starts_with("==") {
                    (Tok::EqEq, 2)
                } else if rest.starts_with("!=") {
                    (Tok::Ne, 2)
                } else if rest.starts_with("<=") {
                    (Tok::Le, 2)
                } else if rest.starts_with(">=") {
                    (Tok::Ge, 2)
                } else {
                    match c {
                        ';' => (Tok::Semi, 1),
                        ',' => (Tok::Comma, 1),
                        ':' => (Tok::Colon, 1),
                        '(' => (Tok::LParen, 1),
                        ')' => (Tok::RParen, 1),
                        '[' => (Tok::LBrack, 1),
                        ']' => (Tok::RBrack, 1),
                        '!' => (Tok::Bang, 1),
                        '?' => (Tok::Quest, 1),
                        '=' => (Tok::EqEq, 1),
                        '<' => (Tok::Lt, 1),
                        '>' => (Tok::Gt, 1),
                        '+' => (Tok::Plus, 1),
                        '-' => (Tok::Minus, 1),
                        '*' => (Tok::Star, 1),
                        other => {
                            return Err(LexError {
                                line,
                                message: format!("unexpected character `{other}`"),
                            })
                        }
                    }
                };
                out.push(Spanned { tok, line });
                i += len;
            }
        }
    }
    out.push(Spanned { tok: Tok::Eof, line });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).expect("lexes").into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn operators_max_munch() {
        assert_eq!(
            toks("[] [> |[ ]| ||| || >> -> .. := == != <= >="),
            vec![
                Tok::ChoiceOp,
                Tok::DisableOp,
                Tok::LBrackBar,
                Tok::RBrackBar,
                Tok::Interleave,
                Tok::FullSync,
                Tok::Enable,
                Tok::Arrow,
                Tok::DotDot,
                Tok::Define,
                Tok::EqEq,
                Tok::Ne,
                Tok::Le,
                Tok::Ge,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn keywords_vs_identifiers() {
        assert_eq!(
            toks("process Pro stop stopit"),
            vec![
                Tok::Kw("process"),
                Tok::Ident("Pro".into()),
                Tok::Kw("stop"),
                Tok::Ident("stopit".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("a -- line comment\n(* block (* nested *) *) b"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]
        );
    }

    #[test]
    fn unterminated_comment_is_error() {
        assert!(lex("(* oops").is_err());
    }

    #[test]
    fn line_numbers_tracked() {
        let spanned = lex("a\nb\n\nc").expect("lexes");
        assert_eq!(spanned[0].line, 1);
        assert_eq!(spanned[1].line, 2);
        assert_eq!(spanned[2].line, 4);
    }

    #[test]
    fn guard_brackets_lex_separately() {
        assert_eq!(
            toks("[n < 3] ->"),
            vec![
                Tok::LBrack,
                Tok::Ident("n".into()),
                Tok::Lt,
                Tok::Int(3),
                Tok::RBrack,
                Tok::Arrow,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn unknown_character_is_error() {
        let err = lex("a # b").expect_err("hash is not a token");
        assert!(err.message.contains('#'));
    }
}
