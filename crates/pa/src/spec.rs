//! Specifications: named process definitions, type declarations, and a top
//! behaviour.

use crate::expr::Expr;
use crate::term::{Offer, Term};
use crate::value::{EnumDef, Sym, Type};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

/// A process definition: `process P[g…](x:T…) := B endproc`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcDef {
    /// Process name.
    pub name: Sym,
    /// Formal gate parameters.
    pub gates: Vec<Sym>,
    /// Formal value parameters with their types.
    pub params: Vec<(Sym, Type)>,
    /// Body behaviour.
    pub body: Arc<Term>,
}

/// A complete specification: types, processes, and the top-level behaviour.
#[derive(Debug, Clone, Default)]
pub struct Spec {
    types: HashMap<Sym, Arc<EnumDef>>,
    procs: HashMap<Sym, ProcDef>,
    top: Option<Arc<Term>>,
}

/// Error raised by [`Spec::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateError(pub String);

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid specification: {}", self.0)
    }
}

impl std::error::Error for ValidateError {}

impl Spec {
    /// Creates an empty specification.
    pub fn new() -> Self {
        Spec::default()
    }

    /// Declares an enumeration type.
    pub fn add_type(&mut self, def: EnumDef) -> Arc<EnumDef> {
        let arc = Arc::new(def);
        self.types.insert(arc.name.clone(), arc.clone());
        arc
    }

    /// Looks up an enumeration type by name.
    pub fn enum_type(&self, name: &str) -> Option<&Arc<EnumDef>> {
        self.types.get(name)
    }

    /// Adds a process definition (replacing any previous one of that name).
    pub fn add_process(&mut self, def: ProcDef) {
        self.procs.insert(def.name.clone(), def);
    }

    /// Looks up a process definition by name.
    pub fn process(&self, name: &str) -> Option<&ProcDef> {
        self.procs.get(name)
    }

    /// Iterates over all process definitions.
    pub fn processes(&self) -> impl Iterator<Item = &ProcDef> {
        self.procs.values()
    }

    /// Sets the top-level behaviour.
    pub fn set_top(&mut self, top: Arc<Term>) {
        self.top = Some(top);
    }

    /// The top-level behaviour.
    ///
    /// # Panics
    ///
    /// Panics if no top behaviour was set; use [`Spec::try_top`] to probe.
    pub fn top(&self) -> &Arc<Term> {
        self.top.as_ref().expect("specification has no top behaviour")
    }

    /// The top-level behaviour, if set.
    pub fn try_top(&self) -> Option<&Arc<Term>> {
        self.top.as_ref()
    }

    /// Static sanity checks: every process call refers to a defined process
    /// with matching gate/argument arity, and every expression variable is
    /// bound by an enclosing binder or process parameter.
    ///
    /// # Errors
    ///
    /// Returns the first problem found.
    pub fn validate(&self) -> Result<(), ValidateError> {
        for def in self.procs.values() {
            let mut bound: HashSet<Sym> = def.params.iter().map(|(x, _)| x.clone()).collect();
            self.check_term(&def.body, &mut bound, &def.name)?;
        }
        if let Some(top) = &self.top {
            let mut bound = HashSet::new();
            self.check_term(top, &mut bound, &crate::value::sym("<top>"))?;
        }
        Ok(())
    }

    fn check_expr(&self, e: &Expr, bound: &HashSet<Sym>, ctx: &Sym) -> Result<(), ValidateError> {
        let mut vars = HashSet::new();
        e.free_vars(&mut vars);
        for v in vars {
            if !bound.contains(&v) && self.enum_variant_exists(&v).is_none() {
                return Err(ValidateError(format!("in `{ctx}`: unbound variable `{v}`")));
            }
        }
        Ok(())
    }

    /// If `name` is a variant of some declared enum, returns that enum.
    pub fn enum_variant_exists(&self, name: &str) -> Option<&Arc<EnumDef>> {
        self.types.values().find(|d| d.variant_index(name).is_some())
    }

    fn check_term(
        &self,
        t: &Arc<Term>,
        bound: &mut HashSet<Sym>,
        ctx: &Sym,
    ) -> Result<(), ValidateError> {
        match &**t {
            Term::Stop => Ok(()),
            Term::Exit(es) => es.iter().try_for_each(|e| self.check_expr(e, bound, ctx)),
            Term::Prefix(a, cont) => {
                let mut added = Vec::new();
                for o in &a.offers {
                    match o {
                        Offer::Send(e) => self.check_expr(e, bound, ctx)?,
                        Offer::Recv(x, _) => {
                            if bound.insert(x.clone()) {
                                added.push(x.clone());
                            }
                        }
                    }
                }
                let r = self.check_term(cont, bound, ctx);
                for x in added {
                    bound.remove(&x);
                }
                r
            }
            Term::Guard(e, b) => {
                self.check_expr(e, bound, ctx)?;
                self.check_term(b, bound, ctx)
            }
            Term::Choice(l, r) | Term::Disable(l, r) => {
                self.check_term(l, bound, ctx)?;
                self.check_term(r, bound, ctx)
            }
            Term::Par(_, l, r) => {
                self.check_term(l, bound, ctx)?;
                self.check_term(r, bound, ctx)
            }
            Term::Hide(_, b) | Term::Rename(_, b) => self.check_term(b, bound, ctx),
            Term::Call(p, gates, args) => {
                let def = self.procs.get(p).ok_or_else(|| {
                    ValidateError(format!("in `{ctx}`: call to undefined process `{p}`"))
                })?;
                if def.gates.len() != gates.len() {
                    return Err(ValidateError(format!(
                        "in `{ctx}`: `{p}` expects {} gates, got {}",
                        def.gates.len(),
                        gates.len()
                    )));
                }
                if def.params.len() != args.len() {
                    return Err(ValidateError(format!(
                        "in `{ctx}`: `{p}` expects {} arguments, got {}",
                        def.params.len(),
                        args.len()
                    )));
                }
                args.iter().try_for_each(|e| self.check_expr(e, bound, ctx))
            }
            Term::Enable(l, binders, r) => {
                self.check_term(l, bound, ctx)?;
                let mut added = Vec::new();
                for (x, _) in binders {
                    if bound.insert(x.clone()) {
                        added.push(x.clone());
                    }
                }
                let res = self.check_term(r, bound, ctx);
                for x in added {
                    bound.remove(&x);
                }
                res
            }
            Term::Let(binds, b) => {
                let mut added = Vec::new();
                for (x, _, e) in binds {
                    self.check_expr(e, bound, ctx)?;
                    if bound.insert(x.clone()) {
                        added.push(x.clone());
                    }
                }
                let res = self.check_term(b, bound, ctx);
                for x in added {
                    bound.remove(&x);
                }
                res
            }
        }
    }
}

/// Normalizes a term for pretty display in diagnostics (no rewriting; kept
/// as an extension point).
pub fn display_term(t: &Term) -> String {
    t.to_string()
}

impl Spec {
    /// Renders the specification back to mini-LOTOS source. The output
    /// re-parses to a specification whose state space is strongly bisimilar
    /// to the original (round-trip tested).
    pub fn to_source(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        // Types first (the parser resolves enum names eagerly).
        let mut types: Vec<_> = self.types.values().collect();
        types.sort_by(|a, b| a.name.cmp(&b.name));
        for def in types {
            let variants: Vec<&str> = def.variants.iter().map(|v| &**v).collect();
            let _ = writeln!(out, "type {} is {} endtype", def.name, variants.join(", "));
        }
        let mut procs: Vec<_> = self.procs.values().collect();
        procs.sort_by(|a, b| a.name.cmp(&b.name));
        for def in procs {
            let _ = write!(out, "process {}", def.name);
            if !def.gates.is_empty() {
                let gates: Vec<&str> = def.gates.iter().map(|g| &**g).collect();
                let _ = write!(out, "[{}]", gates.join(", "));
            }
            if !def.params.is_empty() {
                let params: Vec<String> =
                    def.params.iter().map(|(x, t)| format!("{x}: {t}")).collect();
                let _ = write!(out, "({})", params.join(", "));
            }
            let _ = writeln!(out, " :=\n    {}\nendproc", def.body);
        }
        if let Some(top) = &self.top {
            let _ = writeln!(out, "behaviour\n    {top}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Action;
    use crate::value::sym;

    fn stop() -> Arc<Term> {
        Term::Stop.rc()
    }

    #[test]
    fn validate_accepts_wellformed() {
        let mut s = Spec::new();
        s.add_process(ProcDef {
            name: sym("P"),
            gates: vec![sym("g")],
            params: vec![(sym("n"), Type::Int(0, 3))],
            body: Term::Guard(
                Expr::bin(crate::expr::BinOp::Lt, Expr::var("n"), Expr::int(3)),
                Term::Prefix(
                    Action::bare("g"),
                    Term::Call(
                        sym("P"),
                        vec![sym("g")],
                        vec![Expr::bin(crate::expr::BinOp::Add, Expr::var("n"), Expr::int(1))],
                    )
                    .rc(),
                )
                .rc(),
            )
            .rc(),
        });
        s.set_top(Term::Call(sym("P"), vec![sym("g")], vec![Expr::int(0)]).rc());
        assert!(s.validate().is_ok());
    }

    #[test]
    fn validate_rejects_undefined_process() {
        let mut s = Spec::new();
        s.set_top(Term::Call(sym("Nope"), vec![], vec![]).rc());
        let err = s.validate().expect_err("undefined process");
        assert!(err.0.contains("undefined process"));
    }

    #[test]
    fn validate_rejects_wrong_arity() {
        let mut s = Spec::new();
        s.add_process(ProcDef {
            name: sym("P"),
            gates: vec![sym("g")],
            params: vec![],
            body: stop(),
        });
        s.set_top(Term::Call(sym("P"), vec![], vec![]).rc());
        let err = s.validate().expect_err("gate arity");
        assert!(err.0.contains("expects 1 gates"));
    }

    #[test]
    fn validate_rejects_unbound_variable() {
        let mut s = Spec::new();
        s.set_top(Term::Exit(vec![Expr::var("ghost")]).rc());
        let err = s.validate().expect_err("unbound");
        assert!(err.0.contains("unbound variable"));
    }

    #[test]
    fn enum_variants_count_as_bound() {
        let mut s = Spec::new();
        s.add_type(EnumDef { name: sym("st"), variants: vec![sym("I"), sym("M")] });
        // Using `M` as a bare name refers to the enum constant.
        s.set_top(Term::Exit(vec![Expr::var("M")]).rc());
        assert!(s.validate().is_ok());
    }

    #[test]
    fn recv_binds_in_continuation_only() {
        let mut s = Spec::new();
        // g ?x:bool; exit(x) — fine.
        s.set_top(
            Term::Prefix(
                Action { gate: sym("g"), offers: vec![Offer::Recv(sym("x"), Type::Bool)] },
                Term::Exit(vec![Expr::var("x")]).rc(),
            )
            .rc(),
        );
        assert!(s.validate().is_ok());
        // exit(x); after scope — unbound.
        let mut s2 = Spec::new();
        s2.set_top(
            Term::Choice(
                Term::Prefix(
                    Action { gate: sym("g"), offers: vec![Offer::Recv(sym("x"), Type::Bool)] },
                    stop(),
                )
                .rc(),
                Term::Exit(vec![Expr::var("x")]).rc(),
            )
            .rc(),
        );
        assert!(s2.validate().is_err());
    }
}
