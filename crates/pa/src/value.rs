//! Data values and finite types of the mini-LOTOS dialect.
//!
//! Full LOTOS uses ACT-ONE algebraic data types; the Multival models quotient
//! to finite state spaces, so this dialect restricts data to *finite scalar
//! types*: booleans, bounded integer ranges, and enumerations. Finiteness is
//! what makes input offers (`g ?x:T`) enumerable during state-space
//! generation.

use std::fmt;
use std::sync::Arc;

/// Interned symbol (identifier) — cheap to clone, compared by content.
pub type Sym = Arc<str>;

/// Creates a [`Sym`] from a string slice.
///
/// # Examples
///
/// ```
/// let s = multival_pa::value::sym("PUSH");
/// assert_eq!(&*s, "PUSH");
/// ```
pub fn sym(s: &str) -> Sym {
    Arc::from(s)
}

/// An enumeration type declaration (`type mesi is I, S, E, M endtype`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EnumDef {
    /// Type name.
    pub name: Sym,
    /// Variant names, in declaration order.
    pub variants: Vec<Sym>,
}

impl EnumDef {
    /// Index of a variant by name.
    pub fn variant_index(&self, v: &str) -> Option<usize> {
        self.variants.iter().position(|x| &**x == v)
    }
}

/// A finite scalar type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// `bool` — two values.
    Bool,
    /// `int lo..hi` — an inclusive integer range.
    Int(i64, i64),
    /// A declared enumeration.
    Enum(Arc<EnumDef>),
}

impl Type {
    /// All values of the type, in canonical order.
    ///
    /// # Examples
    ///
    /// ```
    /// use multival_pa::value::{Type, Value};
    /// assert_eq!(Type::Int(1, 3).values().len(), 3);
    /// assert_eq!(Type::Bool.values(), vec![Value::Bool(false), Value::Bool(true)]);
    /// ```
    pub fn values(&self) -> Vec<Value> {
        match self {
            Type::Bool => vec![Value::Bool(false), Value::Bool(true)],
            Type::Int(lo, hi) => (*lo..=*hi).map(Value::Int).collect(),
            Type::Enum(def) => def.variants.iter().map(|v| Value::Sym(v.clone())).collect(),
        }
    }

    /// Number of values of the type.
    pub fn cardinality(&self) -> usize {
        match self {
            Type::Bool => 2,
            Type::Int(lo, hi) => (hi - lo + 1).max(0) as usize,
            Type::Enum(def) => def.variants.len(),
        }
    }

    /// Checks membership of a value in the type.
    pub fn contains(&self, v: &Value) -> bool {
        match (self, v) {
            (Type::Bool, Value::Bool(_)) => true,
            (Type::Int(lo, hi), Value::Int(i)) => lo <= i && i <= hi,
            (Type::Enum(def), Value::Sym(s)) => def.variant_index(s).is_some(),
            _ => false,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Bool => write!(f, "bool"),
            Type::Int(lo, hi) => write!(f, "int {lo}..{hi}"),
            Type::Enum(def) => write!(f, "{}", def.name),
        }
    }
}

/// A runtime value: boolean, integer, or enumeration constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// Boolean.
    Bool(bool),
    /// Integer.
    Int(i64),
    /// Enumeration constant (by variant name).
    Sym(Sym),
}

impl Value {
    /// The boolean payload.
    ///
    /// # Errors
    ///
    /// Returns a type-mismatch message if the value is not a boolean.
    pub fn as_bool(&self) -> Result<bool, String> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, got {other}")),
        }
    }

    /// The integer payload.
    ///
    /// # Errors
    ///
    /// Returns a type-mismatch message if the value is not an integer.
    pub fn as_int(&self) -> Result<i64, String> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(format!("expected int, got {other}")),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Sym(s) => write!(f, "{s}"),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_range_values() {
        let t = Type::Int(-1, 2);
        assert_eq!(t.values(), vec![Value::Int(-1), Value::Int(0), Value::Int(1), Value::Int(2)]);
        assert_eq!(t.cardinality(), 4);
    }

    #[test]
    fn empty_range_has_no_values() {
        let t = Type::Int(3, 2);
        assert!(t.values().is_empty());
        assert_eq!(t.cardinality(), 0);
    }

    #[test]
    fn enum_membership() {
        let def =
            Arc::new(EnumDef { name: sym("mesi"), variants: vec![sym("I"), sym("S"), sym("M")] });
        let t = Type::Enum(def);
        assert!(t.contains(&Value::Sym(sym("S"))));
        assert!(!t.contains(&Value::Sym(sym("E"))));
        assert!(!t.contains(&Value::Int(0)));
        assert_eq!(t.cardinality(), 3);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::Bool(true).to_string(), "true");
        assert_eq!(Value::Sym(sym("M")).to_string(), "M");
        assert_eq!(Type::Int(0, 5).to_string(), "int 0..5");
    }

    #[test]
    fn coercions() {
        assert_eq!(Value::Int(3).as_int(), Ok(3));
        assert!(Value::Bool(true).as_int().is_err());
        assert_eq!(Value::Bool(true).as_bool(), Ok(true));
        assert!(Value::Sym(sym("X")).as_bool().is_err());
    }
}
