//! Recursive-descent parser for the mini-LOTOS textual syntax.
//!
//! # Grammar
//!
//! ```text
//! spec        := item* ("behaviour" | "behavior") behaviour "endspec"?
//! item        := "type" IDENT "is" IDENT ("," IDENT)* "endtype"
//!              | "process" IDENT gates? params? ":=" behaviour "endproc"
//! gates       := "[" IDENT ("," IDENT)* "]"
//! params      := "(" param ("," param)* ")"
//! param       := IDENT ":" type
//! type        := "bool" | "int" int ".." int | IDENT        -- IDENT: enum
//!
//! behaviour   := disable (">>" ("accept" param ("," param)* "in")? behaviour)?
//! disable     := parallel ("[>" parallel)*
//! parallel    := choice (("|||" | "||" | "|[" IDENT,* "]|") choice)*
//! choice      := prefix ("[]" prefix)*
//! prefix      := "stop"
//!              | "exit" ("(" expr ("," expr)* ")")?
//!              | "hide" IDENT ("," IDENT)* "in" behaviour
//!              | "rename" IDENT "->" IDENT ("," IDENT "->" IDENT)* "in" behaviour
//!              | "let" letbind ("," letbind)* "in" behaviour
//!              | "choice" IDENT ":" type "[]" behaviour   -- value choice
//!              | "[" expr "]" "->" prefix
//!              | "(" behaviour ")"
//!              | IDENT offer* ";" prefix                     -- action prefix
//!              | IDENT gates? args?                          -- process call
//! offer       := "!" atom | "?" IDENT ":" type
//! letbind     := IDENT ":" type "=" expr
//! ```
//!
//! Operator precedence, loosest to tightest: `>>`, `[>`, parallel, `[]`,
//! prefix. `hide`/`rename`/`let` bodies extend maximally (parenthesize to
//! restrict). Expressions use conventional precedence (`or` < `and` < `not`
//! < comparisons < `+ -` < `* div mod` < unary `-`).

use crate::expr::{BinOp, Expr, UnOp};
use crate::lexer::{lex, LexError, Spanned, Tok};
use crate::spec::{ProcDef, Spec};
use crate::term::{Action, Offer, SyncKind, Term};
use crate::value::{sym, EnumDef, Sym, Type};
use std::fmt;
use std::sync::Arc;

/// Parsing error with a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending token.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError { line: e.line, message: e.message }
    }
}

/// Parses a complete specification.
///
/// # Errors
///
/// Returns [`ParseError`] on syntax errors; the result is additionally run
/// through [`Spec::validate`] so undefined processes and unbound variables
/// are reported at parse time.
///
/// # Examples
///
/// ```
/// use multival_pa::parser::parse_spec;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let spec = parse_spec(
///     "process Buf[put, get](x: int 0..1, full: bool) :=
///          [not full] -> put ?v:int 0..1; Buf[put, get](v, true)
///       [] [full]     -> get !x;          Buf[put, get](x, false)
///      endproc
///      behaviour Buf[a, b](0, false)",
/// )?;
/// assert!(spec.process("Buf").is_some());
/// # Ok(())
/// # }
/// ```
pub fn parse_spec(src: &str) -> Result<Spec, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0, spec: Spec::new() };
    p.spec()?;
    let spec = p.spec;
    spec.validate().map_err(|e| ParseError { line: 0, message: e.0 })?;
    Ok(spec)
}

/// Parses a standalone behaviour expression against an existing spec's
/// type/process tables (useful for tests and interactive exploration).
///
/// # Errors
///
/// Returns [`ParseError`] on syntax errors.
pub fn parse_behaviour(src: &str, spec: &Spec) -> Result<Arc<Term>, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0, spec: spec.clone() };
    let b = p.behaviour()?;
    p.expect_eof()?;
    Ok(b)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    spec: Spec,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].tok
    }

    fn line(&self) -> usize {
        self.tokens[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].tok.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok) -> Result<(), ParseError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(format!("expected {t}, found {}", self.peek())))
        }
    }

    fn err(&self, message: String) -> ParseError {
        ParseError { line: self.line(), message }
    }

    fn ident(&mut self) -> Result<Sym, ParseError> {
        match self.bump() {
            Tok::Ident(s) => Ok(sym(&s)),
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        if matches!(self.peek(), Tok::Eof) {
            Ok(())
        } else {
            Err(self.err(format!("unexpected {} after behaviour", self.peek())))
        }
    }

    // ---- top level --------------------------------------------------------

    fn spec(&mut self) -> Result<(), ParseError> {
        loop {
            match self.peek() {
                Tok::Kw("type") => self.typedecl()?,
                Tok::Kw("process") => self.procdecl()?,
                Tok::Kw("behaviour") | Tok::Kw("behavior") => {
                    self.bump();
                    let top = self.behaviour()?;
                    self.eat(&Tok::Kw("endspec"));
                    self.expect_eof()?;
                    self.spec.set_top(top);
                    return Ok(());
                }
                Tok::Eof => {
                    // Specification without a top behaviour is allowed (a
                    // library of processes); callers set the top explicitly.
                    return Ok(());
                }
                other => {
                    return Err(self
                        .err(format!("expected `type`, `process` or `behaviour`, found {other}")))
                }
            }
        }
    }

    fn typedecl(&mut self) -> Result<(), ParseError> {
        self.expect(&Tok::Kw("type"))?;
        let name = self.ident()?;
        self.expect(&Tok::Kw("is"))?;
        let mut variants = vec![self.ident()?];
        while self.eat(&Tok::Comma) {
            variants.push(self.ident()?);
        }
        self.expect(&Tok::Kw("endtype"))?;
        self.spec.add_type(EnumDef { name, variants });
        Ok(())
    }

    fn procdecl(&mut self) -> Result<(), ParseError> {
        self.expect(&Tok::Kw("process"))?;
        let name = self.ident()?;
        let mut gates = Vec::new();
        if self.eat(&Tok::LBrack) {
            gates.push(self.ident()?);
            while self.eat(&Tok::Comma) {
                gates.push(self.ident()?);
            }
            self.expect(&Tok::RBrack)?;
        }
        let mut params = Vec::new();
        if self.eat(&Tok::LParen) {
            params.push(self.param()?);
            while self.eat(&Tok::Comma) {
                params.push(self.param()?);
            }
            self.expect(&Tok::RParen)?;
        }
        self.expect(&Tok::Define)?;
        let body = self.behaviour()?;
        self.expect(&Tok::Kw("endproc"))?;
        self.spec.add_process(ProcDef { name, gates, params, body });
        Ok(())
    }

    fn param(&mut self) -> Result<(Sym, Type), ParseError> {
        let name = self.ident()?;
        self.expect(&Tok::Colon)?;
        let ty = self.ty()?;
        Ok((name, ty))
    }

    fn ty(&mut self) -> Result<Type, ParseError> {
        match self.bump() {
            Tok::Kw("bool") => Ok(Type::Bool),
            Tok::Kw("int") => {
                let lo = self.int_lit()?;
                self.expect(&Tok::DotDot)?;
                let hi = self.int_lit()?;
                if lo > hi {
                    return Err(self.err(format!("empty integer range {lo}..{hi}")));
                }
                Ok(Type::Int(lo, hi))
            }
            Tok::Ident(name) => match self.spec.enum_type(&name) {
                Some(def) => Ok(Type::Enum(def.clone())),
                None => Err(self.err(format!("unknown type `{name}` (declare it with `type`)"))),
            },
            other => Err(self.err(format!("expected a type, found {other}"))),
        }
    }

    fn int_lit(&mut self) -> Result<i64, ParseError> {
        let neg = self.eat(&Tok::Minus);
        match self.bump() {
            Tok::Int(i) => Ok(if neg { -i } else { i }),
            other => Err(self.err(format!("expected integer, found {other}"))),
        }
    }

    // ---- behaviours -------------------------------------------------------

    fn behaviour(&mut self) -> Result<Arc<Term>, ParseError> {
        let left = self.disable()?;
        if self.eat(&Tok::Enable) {
            let mut binders = Vec::new();
            if self.eat(&Tok::Kw("accept")) {
                binders.push(self.param()?);
                while self.eat(&Tok::Comma) {
                    binders.push(self.param()?);
                }
                self.expect(&Tok::Kw("in"))?;
            }
            let right = self.behaviour()?; // right associative
            return Ok(Term::Enable(left, binders, right).rc());
        }
        Ok(left)
    }

    fn disable(&mut self) -> Result<Arc<Term>, ParseError> {
        let mut acc = self.parallel()?;
        while self.eat(&Tok::DisableOp) {
            let rhs = self.parallel()?;
            acc = Term::Disable(acc, rhs).rc();
        }
        Ok(acc)
    }

    fn parallel(&mut self) -> Result<Arc<Term>, ParseError> {
        let mut acc = self.choice()?;
        loop {
            let kind = match self.peek() {
                Tok::Interleave => {
                    self.bump();
                    SyncKind::Interleave
                }
                Tok::FullSync => {
                    self.bump();
                    SyncKind::Full
                }
                Tok::LBrackBar => {
                    self.bump();
                    let mut gates = vec![self.ident()?];
                    while self.eat(&Tok::Comma) {
                        gates.push(self.ident()?);
                    }
                    self.expect(&Tok::RBrackBar)?;
                    SyncKind::gates(gates.iter().map(|g| &**g))
                }
                _ => break,
            };
            let rhs = self.choice()?;
            acc = Term::Par(kind, acc, rhs).rc();
        }
        Ok(acc)
    }

    fn choice(&mut self) -> Result<Arc<Term>, ParseError> {
        let mut acc = self.prefix()?;
        while self.eat(&Tok::ChoiceOp) {
            let rhs = self.prefix()?;
            acc = Term::Choice(acc, rhs).rc();
        }
        Ok(acc)
    }

    fn prefix(&mut self) -> Result<Arc<Term>, ParseError> {
        match self.peek().clone() {
            Tok::Kw("stop") => {
                self.bump();
                Ok(Term::Stop.rc())
            }
            Tok::Kw("exit") => {
                self.bump();
                let mut args = Vec::new();
                if self.eat(&Tok::LParen) {
                    args.push(self.expr()?);
                    while self.eat(&Tok::Comma) {
                        args.push(self.expr()?);
                    }
                    self.expect(&Tok::RParen)?;
                }
                Ok(Term::Exit(args).rc())
            }
            Tok::Kw("hide") => {
                self.bump();
                let mut gates = vec![self.ident()?];
                while self.eat(&Tok::Comma) {
                    gates.push(self.ident()?);
                }
                self.expect(&Tok::Kw("in"))?;
                let body = self.behaviour()?;
                Ok(Term::Hide(gates.into(), body).rc())
            }
            Tok::Kw("rename") => {
                self.bump();
                let mut map = Vec::new();
                loop {
                    let from = self.ident()?;
                    self.expect(&Tok::Arrow)?;
                    let to = self.ident()?;
                    map.push((from, to));
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
                self.expect(&Tok::Kw("in"))?;
                let body = self.behaviour()?;
                Ok(Term::Rename(map.into(), body).rc())
            }
            Tok::Kw("choice") => {
                // Value choice: `choice x:T [] B` desugars into the finite
                // `[]`-sum of B[x:=v] over all values v of T.
                self.bump();
                let x = self.ident()?;
                self.expect(&Tok::Colon)?;
                let ty = self.ty()?;
                self.expect(&Tok::ChoiceOp)?;
                let body = self.behaviour()?;
                let values = ty.values();
                if values.is_empty() {
                    return Ok(Term::Stop.rc());
                }
                let mut alts = values.into_iter().map(|v| {
                    let mut env = std::collections::HashMap::new();
                    env.insert(x.clone(), v);
                    body.subst_vars(&env)
                });
                let first = alts.next().expect("nonempty");
                Ok(alts.fold(first, |acc, alt| Term::Choice(acc, alt).rc()))
            }
            Tok::Kw("let") => {
                self.bump();
                let mut binds = Vec::new();
                loop {
                    let name = self.ident()?;
                    self.expect(&Tok::Colon)?;
                    let ty = self.ty()?;
                    self.expect(&Tok::EqEq)?;
                    let e = self.expr()?;
                    binds.push((name, ty, e));
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
                self.expect(&Tok::Kw("in"))?;
                let body = self.behaviour()?;
                Ok(Term::Let(binds, body).rc())
            }
            Tok::LBrack => {
                // Guard: [expr] -> prefix
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::RBrack)?;
                self.expect(&Tok::Arrow)?;
                let body = self.prefix()?;
                Ok(Term::Guard(e, body).rc())
            }
            Tok::LParen => {
                self.bump();
                let b = self.behaviour()?;
                self.expect(&Tok::RParen)?;
                Ok(b)
            }
            Tok::Ident(name) => {
                self.bump();
                // Offers → action prefix; otherwise a process call.
                let mut offers = Vec::new();
                loop {
                    match self.peek() {
                        Tok::Bang => {
                            self.bump();
                            offers.push(Offer::Send(self.atom()?));
                        }
                        Tok::Quest => {
                            self.bump();
                            let x = self.ident()?;
                            self.expect(&Tok::Colon)?;
                            let ty = self.ty()?;
                            offers.push(Offer::Recv(x, ty));
                        }
                        _ => break,
                    }
                }
                if !offers.is_empty() || matches!(self.peek(), Tok::Semi) {
                    self.expect(&Tok::Semi)?;
                    let cont = self.prefix()?;
                    return Ok(Term::Prefix(Action { gate: sym(&name), offers }, cont).rc());
                }
                // Process call.
                let mut gates = Vec::new();
                if self.eat(&Tok::LBrack) {
                    gates.push(self.ident()?);
                    while self.eat(&Tok::Comma) {
                        gates.push(self.ident()?);
                    }
                    self.expect(&Tok::RBrack)?;
                }
                let mut args = Vec::new();
                if self.eat(&Tok::LParen) {
                    args.push(self.expr()?);
                    while self.eat(&Tok::Comma) {
                        args.push(self.expr()?);
                    }
                    self.expect(&Tok::RParen)?;
                }
                Ok(Term::Call(sym(&name), gates, args).rc())
            }
            other => Err(self.err(format!("expected a behaviour, found {other}"))),
        }
    }

    // ---- expressions ------------------------------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut acc = self.and_expr()?;
        while self.eat(&Tok::Kw("or")) {
            let rhs = self.and_expr()?;
            acc = Expr::bin(BinOp::Or, acc, rhs);
        }
        Ok(acc)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut acc = self.not_expr()?;
        while self.eat(&Tok::Kw("and")) {
            let rhs = self.not_expr()?;
            acc = Expr::bin(BinOp::And, acc, rhs);
        }
        Ok(acc)
    }

    fn not_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&Tok::Kw("not")) {
            let e = self.not_expr()?;
            return Ok(Expr::Un(UnOp::Not, Box::new(e)));
        }
        self.cmp_expr()
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Tok::EqEq => BinOp::Eq,
            Tok::Ne => BinOp::Ne,
            Tok::Lt => BinOp::Lt,
            Tok::Le => BinOp::Le,
            Tok::Gt => BinOp::Gt,
            Tok::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        Ok(Expr::bin(op, lhs, rhs))
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut acc = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            acc = Expr::bin(op, acc, rhs);
        }
        Ok(acc)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut acc = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Kw("div") => BinOp::Div,
                Tok::Kw("mod") => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            acc = Expr::bin(op, acc, rhs);
        }
        Ok(acc)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&Tok::Minus) {
            let e = self.unary_expr()?;
            return Ok(Expr::Un(UnOp::Neg, Box::new(e)));
        }
        self.atom()
    }

    /// An atomic expression. Also used for `!` offers, so that `g !x !1` has
    /// unambiguous offer boundaries; write `!(a + b)` for compound offers.
    fn atom(&mut self) -> Result<Expr, ParseError> {
        match self.bump() {
            Tok::Int(i) => Ok(Expr::int(i)),
            Tok::Kw("true") => Ok(Expr::bool(true)),
            Tok::Kw("false") => Ok(Expr::bool(false)),
            Tok::Ident(name) => Ok(Expr::Var(sym(&name))),
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Tok::Kw("if") => {
                let c = self.expr()?;
                self.expect(&Tok::Kw("then"))?;
                let a = self.expr()?;
                self.expect(&Tok::Kw("else"))?;
                let b = self.expr()?;
                Ok(Expr::Ite(Box::new(c), Box::new(a), Box::new(b)))
            }
            other => Err(self.err(format!("expected an expression, found {other}"))),
        }
    }
}

// `peek2` is kept for grammar extensions (look-ahead on offers).
impl Parser {
    #[allow(dead_code)]
    fn lookahead_is_offer(&self) -> bool {
        matches!(self.peek2(), Tok::Bang | Tok::Quest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explorer::{explore, ExploreOptions};

    #[test]
    fn parses_buffer_and_explores() {
        let spec = parse_spec(
            "process Buf[put, get](full: bool) :=
                 [not full] -> put; Buf[put, get](true)
              [] [full] -> get; Buf[put, get](false)
             endproc
             behaviour Buf[p, g](false)",
        )
        .expect("parses");
        let e = explore(&spec, &ExploreOptions::default()).expect("explores");
        assert_eq!(e.lts.num_states(), 2);
        assert_eq!(e.lts.num_transitions(), 2);
    }

    #[test]
    fn parses_enum_types() {
        let spec = parse_spec(
            "type msi is I, S, M endtype
             process Cache[req](st: msi) :=
                 [st == I] -> req !S; Cache[req](S)
              [] [st == S] -> req !M; Cache[req](M)
             endproc
             behaviour Cache[r](I)",
        )
        .expect("parses");
        let e = explore(&spec, &ExploreOptions::default()).expect("explores");
        assert_eq!(e.lts.num_states(), 3);
        let labels: Vec<String> =
            e.lts.iter_transitions().map(|(_, l, _)| e.lts.labels().name(l).to_owned()).collect();
        // Gate `req` was instantiated as `r` at the top behaviour.
        assert!(labels.contains(&"r !S".to_owned()), "labels: {labels:?}");
    }

    #[test]
    fn parses_parallel_and_hide() {
        let spec = parse_spec(
            "behaviour hide mid in
               (a; mid; stop |[mid]| mid; b; stop)",
        )
        .expect("parses");
        let e = explore(&spec, &ExploreOptions::default()).expect("explores");
        // a; tau; b; stop — 4 states.
        assert_eq!(e.lts.num_states(), 4);
        assert!(e.lts.iter_transitions().any(|(_, l, _)| l.is_tau()));
    }

    #[test]
    fn parses_data_offers() {
        let spec = parse_spec("behaviour ch ?x:int 0..2 !x; stop").expect("parses");
        let e = explore(&spec, &ExploreOptions::default()).expect("explores");
        assert_eq!(e.lts.num_transitions(), 3);
    }

    #[test]
    fn parses_enable_and_accept() {
        let spec = parse_spec("behaviour (a; exit(3)) >> accept n:int 0..9 in b !n; stop")
            .expect("parses");
        let e = explore(&spec, &ExploreOptions::default()).expect("explores");
        let labels: Vec<String> =
            e.lts.iter_transitions().map(|(_, l, _)| e.lts.labels().name(l).to_owned()).collect();
        assert!(labels.contains(&"b !3".to_owned()));
    }

    #[test]
    fn parses_disable() {
        let spec = parse_spec("behaviour (a; stop) [> (kill; stop)").expect("parses");
        let e = explore(&spec, &ExploreOptions::default()).expect("explores");
        let labels: Vec<String> =
            e.lts.iter_transitions().map(|(_, l, _)| e.lts.labels().name(l).to_owned()).collect();
        assert!(labels.contains(&"kill".to_owned()));
    }

    #[test]
    fn parses_let_and_rename() {
        let spec = parse_spec(
            "behaviour let n:int 0..9 = 4 in
               rename g -> h in g !n; stop",
        )
        .expect("parses");
        let e = explore(&spec, &ExploreOptions::default()).expect("explores");
        let labels: Vec<String> =
            e.lts.iter_transitions().map(|(_, l, _)| e.lts.labels().name(l).to_owned()).collect();
        assert_eq!(labels, vec!["h !4"]);
    }

    #[test]
    fn reports_unknown_type() {
        let err = parse_spec("behaviour g ?x:color; stop").expect_err("unknown type");
        assert!(err.message.contains("unknown type"));
    }

    #[test]
    fn reports_undefined_process_at_parse_time() {
        let err = parse_spec("behaviour Ghost[g]").expect_err("undefined process");
        assert!(err.message.contains("undefined process"));
    }

    #[test]
    fn reports_syntax_error_with_line() {
        let err = parse_spec("behaviour\n  a; ; stop").expect_err("syntax");
        assert_eq!(err.line, 2);
    }

    #[test]
    fn precedence_choice_binds_tighter_than_par() {
        // a; stop [] b; stop ||| c; stop ≡ (a;stop [] b;stop) ||| (c;stop)
        let spec = parse_spec("behaviour a; stop [] b; stop ||| c; stop").expect("parses");
        let e = explore(&spec, &ExploreOptions::default()).expect("explores");
        // Initial state must offer a, b, and c.
        assert_eq!(e.lts.transitions_from(0).len(), 3);
    }

    #[test]
    fn library_spec_without_top() {
        let spec = parse_spec("process P[g] := g; P[g] endproc").expect("parses");
        assert!(spec.try_top().is_none());
        assert!(spec.process("P").is_some());
    }

    #[test]
    fn parse_behaviour_against_library() {
        let spec = parse_spec("process P[g] := g; P[g] endproc").expect("parses");
        let b = parse_behaviour("P[tick] ||| P[tock]", &spec).expect("parses");
        let e =
            crate::explorer::explore_term(b, &spec, &ExploreOptions::default()).expect("explores");
        assert_eq!(e.lts.num_states(), 1);
        assert_eq!(e.lts.num_transitions(), 2);
    }

    #[test]
    fn value_choice_desugars_to_finite_sum() {
        // choice d:int 0..2 [] send !d; stop ≡ the 3-way [] sum.
        let spec = parse_spec("behaviour choice d:int 0..2 [] send !d; stop").expect("parses");
        let e = explore(&spec, &ExploreOptions::default()).expect("explores");
        assert_eq!(e.lts.transitions_from(0).len(), 3);
        let labels: Vec<String> =
            e.lts.iter_transitions().map(|(_, l, _)| e.lts.labels().name(l).to_owned()).collect();
        assert!(labels.contains(&"send !0".to_owned()));
        assert!(labels.contains(&"send !2".to_owned()));
    }

    #[test]
    fn value_choice_over_enum() {
        let spec = parse_spec(
            "type st is I, S, M endtype
             behaviour choice c:st [] probe !c; stop",
        )
        .expect("parses");
        let e = explore(&spec, &ExploreOptions::default()).expect("explores");
        assert_eq!(e.lts.transitions_from(0).len(), 3);
    }

    #[test]
    fn value_choice_binds_like_recv() {
        // Equivalent to g ?d:int 0..1; use !d; stop.
        let a = parse_spec("behaviour choice d:int 0..1 [] g !d; use !d; stop").expect("parses");
        let b = parse_spec("behaviour g ?d:int 0..1; use !d; stop").expect("parses");
        let la = explore(&a, &ExploreOptions::default()).expect("explores").lts;
        let lb = explore(&b, &ExploreOptions::default()).expect("explores").lts;
        // Same labels reachable (`g !v` then `use !v`), same sizes.
        assert_eq!(la.num_transitions(), lb.num_transitions());
    }

    #[test]
    fn guard_chains_with_arith() {
        let spec = parse_spec("behaviour [1 + 2 * 3 == 7] -> ok; stop").expect("parses");
        let e = explore(&spec, &ExploreOptions::default()).expect("explores");
        assert_eq!(e.lts.num_transitions(), 1);
    }
}
