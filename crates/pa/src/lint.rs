//! Static lints for mini-LOTOS specifications: common modeling pitfalls
//! that are legal but almost always wrong.
//!
//! The flagship lint is the *blocked synchronization gate*: composing
//! `B1 |[g]| B2` when one side can never offer `g` silently blocks the gate
//! forever — the classic LOTOS mistake (the other side's `g`-transitions
//! vanish from the product with no diagnostic).

use crate::spec::Spec;
use crate::term::{SyncKind, Term};
use crate::value::Sym;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

/// A lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lint {
    /// A gate appears in a `|[G]|` synchronization set but one operand can
    /// never perform it: all its occurrences on the other side block.
    BlockedSyncGate {
        /// The gate.
        gate: String,
        /// Which side lacks it (`"left"` / `"right"`).
        missing_side: &'static str,
        /// Where (process name or `<top>`).
        context: String,
    },
    /// A process is defined but never instantiated (from the top behaviour
    /// or any other process).
    UnusedProcess {
        /// The process name.
        name: String,
    },
    /// A guard is the constant `false`: the branch is dead.
    DeadGuard {
        /// Where (process name or `<top>`).
        context: String,
    },
    /// A gate is hidden but the body can never perform it.
    UselessHide {
        /// The gate.
        gate: String,
        /// Where.
        context: String,
    },
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lint::BlockedSyncGate { gate, missing_side, context } => write!(
                f,
                "in `{context}`: gate `{gate}` is in a |[..]| sync set but the \
                 {missing_side} operand never offers it — the gate blocks forever"
            ),
            Lint::UnusedProcess { name } => {
                write!(f, "process `{name}` is defined but never instantiated")
            }
            Lint::DeadGuard { context } => {
                write!(f, "in `{context}`: guard is constant false (dead branch)")
            }
            Lint::UselessHide { gate, context } => {
                write!(f, "in `{context}`: gate `{gate}` is hidden but never offered by the body")
            }
        }
    }
}

/// Computes the set of gates a term may perform, following process calls
/// (fixed point over the call graph; gate parameters are resolved through
/// the instantiation map).
pub fn term_gates(term: &Arc<Term>, spec: &Spec) -> HashSet<Sym> {
    let mut memo: HashMap<Sym, HashSet<Sym>> = HashMap::new();
    // Fixed point over process definitions: gates of a body in terms of the
    // *formal* gate names.
    loop {
        let mut changed = false;
        for def in spec.processes() {
            let current = gates_of(&def.body, spec, &memo);
            let entry = memo.entry(def.name.clone()).or_default();
            if &current != entry {
                *entry = current;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    gates_of(term, spec, &memo)
}

fn gates_of(term: &Arc<Term>, spec: &Spec, memo: &HashMap<Sym, HashSet<Sym>>) -> HashSet<Sym> {
    match &**term {
        Term::Stop => HashSet::new(),
        Term::Exit(_) => {
            let mut s = HashSet::new();
            s.insert(crate::value::sym("exit"));
            s
        }
        Term::Prefix(a, cont) => {
            let mut s = gates_of(cont, spec, memo);
            if &*a.gate != "i" && &*a.gate != "tau" {
                s.insert(a.gate.clone());
            }
            s
        }
        Term::Guard(_, b) | Term::Hide(_, b) | Term::Rename(_, b) | Term::Let(_, b) => {
            // Hide keeps the gate *possible* internally; for sync-blocking
            // analysis only the visible alphabet matters, so hidden gates
            // are removed; renaming maps them.
            match &**term {
                Term::Hide(gs, _) => {
                    let mut s = gates_of(b, spec, memo);
                    for g in gs.iter() {
                        s.remove(g);
                    }
                    s
                }
                Term::Rename(m, _) => {
                    let inner = gates_of(b, spec, memo);
                    inner
                        .into_iter()
                        .map(|g| {
                            m.iter()
                                .find(|(from, _)| *from == g)
                                .map(|(_, to)| to.clone())
                                .unwrap_or(g)
                        })
                        .collect()
                }
                _ => gates_of(b, spec, memo),
            }
        }
        Term::Choice(l, r) | Term::Par(_, l, r) | Term::Disable(l, r) => {
            let mut s = gates_of(l, spec, memo);
            s.extend(gates_of(r, spec, memo));
            s
        }
        Term::Enable(l, _, r) => {
            let mut s = gates_of(l, spec, memo);
            s.extend(gates_of(r, spec, memo));
            s.remove(&crate::value::sym("exit"));
            s
        }
        Term::Call(name, actual_gates, _) => {
            let Some(def) = spec.process(name) else { return HashSet::new() };
            let formals = memo.get(name).cloned().unwrap_or_default();
            // Map formal gates to actual gates.
            let map: HashMap<&Sym, &Sym> = def.gates.iter().zip(actual_gates.iter()).collect();
            formals.into_iter().map(|g| map.get(&g).map(|&a| a.clone()).unwrap_or(g)).collect()
        }
    }
}

/// Runs all lints over a specification.
pub fn lint(spec: &Spec) -> Vec<Lint> {
    let mut findings = Vec::new();

    // Unused processes: reachable from the top (or from any process if
    // there is no top, i.e. a library — then nothing is "unused").
    if let Some(top) = spec.try_top() {
        let mut used: HashSet<Sym> = HashSet::new();
        let mut stack: Vec<Arc<Term>> = vec![top.clone()];
        while let Some(t) = stack.pop() {
            collect_calls(&t, &mut |name| {
                if used.insert(name.clone()) {
                    if let Some(def) = spec.process(&name) {
                        stack.push(def.body.clone());
                    }
                }
            });
        }
        for def in spec.processes() {
            if !used.contains(&def.name) {
                findings.push(Lint::UnusedProcess { name: def.name.to_string() });
            }
        }
    }

    // Per-term lints, in every process body and the top behaviour.
    let mut contexts: Vec<(String, Arc<Term>)> =
        spec.processes().map(|d| (d.name.to_string(), d.body.clone())).collect();
    contexts.sort_by(|a, b| a.0.cmp(&b.0));
    if let Some(top) = spec.try_top() {
        contexts.push(("<top>".to_owned(), top.clone()));
    }
    for (ctx, body) in contexts {
        walk(&body, spec, &ctx, &mut findings);
    }
    findings
}

fn collect_calls(term: &Arc<Term>, f: &mut impl FnMut(Sym)) {
    match &**term {
        Term::Call(name, _, _) => f(name.clone()),
        Term::Stop | Term::Exit(_) => {}
        Term::Prefix(_, b)
        | Term::Guard(_, b)
        | Term::Hide(_, b)
        | Term::Rename(_, b)
        | Term::Let(_, b) => collect_calls(b, f),
        Term::Choice(l, r) | Term::Par(_, l, r) | Term::Disable(l, r) => {
            collect_calls(l, f);
            collect_calls(r, f);
        }
        Term::Enable(l, _, r) => {
            collect_calls(l, f);
            collect_calls(r, f);
        }
    }
}

fn walk(term: &Arc<Term>, spec: &Spec, ctx: &str, findings: &mut Vec<Lint>) {
    match &**term {
        Term::Par(SyncKind::Gates(gs), l, r) => {
            let lg = term_gates(l, spec);
            let rg = term_gates(r, spec);
            for g in gs.iter() {
                if &**g == "exit" {
                    continue;
                }
                if !lg.contains(g) {
                    findings.push(Lint::BlockedSyncGate {
                        gate: g.to_string(),
                        missing_side: "left",
                        context: ctx.to_owned(),
                    });
                } else if !rg.contains(g) {
                    findings.push(Lint::BlockedSyncGate {
                        gate: g.to_string(),
                        missing_side: "right",
                        context: ctx.to_owned(),
                    });
                }
            }
            walk(l, spec, ctx, findings);
            walk(r, spec, ctx, findings);
        }
        Term::Guard(e, b) => {
            if e == &crate::expr::Expr::bool(false) {
                findings.push(Lint::DeadGuard { context: ctx.to_owned() });
            }
            walk(b, spec, ctx, findings);
        }
        Term::Hide(gs, b) => {
            let bg = term_gates(b, spec);
            for g in gs.iter() {
                if !bg.contains(g) {
                    findings
                        .push(Lint::UselessHide { gate: g.to_string(), context: ctx.to_owned() });
                }
            }
            walk(b, spec, ctx, findings);
        }
        Term::Stop | Term::Exit(_) | Term::Call(..) => {}
        Term::Prefix(_, b) | Term::Rename(_, b) | Term::Let(_, b) => walk(b, spec, ctx, findings),
        Term::Choice(l, r) | Term::Par(_, l, r) | Term::Disable(l, r) => {
            walk(l, spec, ctx, findings);
            walk(r, spec, ctx, findings);
        }
        Term::Enable(l, _, r) => {
            walk(l, spec, ctx, findings);
            walk(r, spec, ctx, findings);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_spec;

    #[test]
    fn blocked_sync_gate_detected() {
        let spec = parse_spec("behaviour (a; stop) |[a, b]| (a; stop)").expect("parses");
        let findings = lint(&spec);
        assert!(
            findings.iter().any(|l| matches!(
                l,
                Lint::BlockedSyncGate { gate, .. } if gate == "b"
            )),
            "{findings:?}"
        );
    }

    #[test]
    fn clean_sync_not_flagged() {
        let spec = parse_spec("behaviour (a; b; stop) |[a, b]| (a; b; stop)").expect("parses");
        let findings = lint(&spec);
        assert!(
            !findings.iter().any(|l| matches!(l, Lint::BlockedSyncGate { .. })),
            "{findings:?}"
        );
    }

    #[test]
    fn sync_through_process_calls_resolved() {
        // The gate flows through a call with renamed gate parameters.
        let spec = parse_spec(
            "process P[g] := g; P[g] endproc
             behaviour P[x] |[x]| P[x]",
        )
        .expect("parses");
        let findings = lint(&spec);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn unused_process_detected() {
        let spec = parse_spec(
            "process Used[g] := g; Used[g] endproc
             process Orphan[h] := h; stop endproc
             behaviour Used[a]",
        )
        .expect("parses");
        let findings = lint(&spec);
        assert!(findings
            .iter()
            .any(|l| matches!(l, Lint::UnusedProcess { name } if name == "Orphan")));
        assert!(!findings
            .iter()
            .any(|l| matches!(l, Lint::UnusedProcess { name } if name == "Used")));
    }

    #[test]
    fn dead_guard_detected() {
        let spec = parse_spec("behaviour [false] -> a; stop [] b; stop").expect("parses");
        let findings = lint(&spec);
        assert!(findings.iter().any(|l| matches!(l, Lint::DeadGuard { .. })));
    }

    #[test]
    fn useless_hide_detected() {
        let spec = parse_spec("behaviour hide ghost in a; stop").expect("parses");
        let findings = lint(&spec);
        assert!(findings
            .iter()
            .any(|l| matches!(l, Lint::UselessHide { gate, .. } if gate == "ghost")));
    }

    #[test]
    fn term_gates_follows_recursion_and_renaming() {
        let spec = parse_spec(
            "process Ping[a, b] := a; Pong[a, b] endproc
             process Pong[a, b] := b; Ping[a, b] endproc
             behaviour Ping[x, y]",
        )
        .expect("parses");
        let gates = term_gates(spec.top(), &spec);
        let names: HashSet<&str> = gates.iter().map(|g| &**g).collect();
        assert_eq!(names, HashSet::from(["x", "y"]));
    }

    #[test]
    fn library_spec_has_no_unused_findings() {
        let spec = parse_spec("process P[g] := g; P[g] endproc").expect("parses");
        assert!(lint(&spec).is_empty());
    }
}
