//! Injective byte encoding of behaviour terms.
//!
//! Store-backed exploration ([`crate::explorer::explore_store`]) dedups
//! states on *packed byte keys* instead of retaining an `Arc<Term>` per
//! state in a hash map. This module defines that key: a compact prefix
//! code over the term AST — one tag byte per constructor, LEB128 varints
//! for integers (zigzag-folded when signed), and length-prefixed bytes
//! for symbols and sequences. Because every variable-length component
//! carries its length up front, no encoding is a prefix of another and
//! the map `Term → bytes` is injective: equal keys ⇔ equal terms.

use crate::expr::{BinOp, Expr, UnOp};
use crate::term::{Action, Offer, SyncKind, Term};
use crate::value::{Sym, Type, Value};
use multival_lts::vbyte::{write_uv, zigzag};

/// Appends the packed encoding of `term` to `out`.
///
/// The buffer is *not* cleared: callers reuse one allocation across many
/// states and clear it themselves.
///
/// # Examples
///
/// ```
/// use multival_pa::pack::pack_term;
/// use multival_pa::term::Term;
///
/// let mut a = Vec::new();
/// pack_term(&Term::Stop, &mut a);
/// let mut b = Vec::new();
/// pack_term(&Term::Exit(vec![]), &mut b);
/// assert_ne!(a, b);
/// ```
pub fn pack_term(term: &Term, out: &mut Vec<u8>) {
    match term {
        Term::Stop => out.push(0),
        Term::Exit(es) => {
            out.push(1);
            write_uv(out, es.len() as u64);
            for e in es {
                pack_expr(e, out);
            }
        }
        Term::Prefix(a, b) => {
            out.push(2);
            pack_action(a, out);
            pack_term(b, out);
        }
        Term::Guard(e, b) => {
            out.push(3);
            pack_expr(e, out);
            pack_term(b, out);
        }
        Term::Choice(l, r) => {
            out.push(4);
            pack_term(l, out);
            pack_term(r, out);
        }
        Term::Par(k, l, r) => {
            out.push(5);
            pack_sync(k, out);
            pack_term(l, out);
            pack_term(r, out);
        }
        Term::Hide(gs, b) => {
            out.push(6);
            write_uv(out, gs.len() as u64);
            for g in gs.iter() {
                pack_sym(g, out);
            }
            pack_term(b, out);
        }
        Term::Rename(m, b) => {
            out.push(7);
            write_uv(out, m.len() as u64);
            for (from, to) in m.iter() {
                pack_sym(from, out);
                pack_sym(to, out);
            }
            pack_term(b, out);
        }
        Term::Call(p, gs, es) => {
            out.push(8);
            pack_sym(p, out);
            write_uv(out, gs.len() as u64);
            for g in gs {
                pack_sym(g, out);
            }
            write_uv(out, es.len() as u64);
            for e in es {
                pack_expr(e, out);
            }
        }
        Term::Enable(l, binders, r) => {
            out.push(9);
            pack_term(l, out);
            write_uv(out, binders.len() as u64);
            for (x, t) in binders {
                pack_sym(x, out);
                pack_type(t, out);
            }
            pack_term(r, out);
        }
        Term::Disable(l, r) => {
            out.push(10);
            pack_term(l, out);
            pack_term(r, out);
        }
        Term::Let(binds, b) => {
            out.push(11);
            write_uv(out, binds.len() as u64);
            for (x, t, e) in binds {
                pack_sym(x, out);
                pack_type(t, out);
                pack_expr(e, out);
            }
            pack_term(b, out);
        }
    }
}

fn pack_sym(s: &Sym, out: &mut Vec<u8>) {
    write_uv(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn pack_action(a: &Action, out: &mut Vec<u8>) {
    pack_sym(&a.gate, out);
    write_uv(out, a.offers.len() as u64);
    for o in &a.offers {
        match o {
            Offer::Send(e) => {
                out.push(0);
                pack_expr(e, out);
            }
            Offer::Recv(x, t) => {
                out.push(1);
                pack_sym(x, out);
                pack_type(t, out);
            }
        }
    }
}

fn pack_sync(k: &SyncKind, out: &mut Vec<u8>) {
    match k {
        SyncKind::Interleave => out.push(0),
        SyncKind::Full => out.push(1),
        SyncKind::Gates(gs) => {
            out.push(2);
            write_uv(out, gs.len() as u64);
            for g in gs.iter() {
                pack_sym(g, out);
            }
        }
    }
}

fn pack_type(t: &Type, out: &mut Vec<u8>) {
    match t {
        Type::Bool => out.push(0),
        Type::Int(lo, hi) => {
            out.push(1);
            write_uv(out, zigzag(*lo));
            write_uv(out, zigzag(*hi));
        }
        Type::Enum(def) => {
            // The enum's *shape* is its identity: two declarations with the
            // same name but different variants must pack differently.
            out.push(2);
            pack_sym(&def.name, out);
            write_uv(out, def.variants.len() as u64);
            for v in &def.variants {
                pack_sym(v, out);
            }
        }
    }
}

fn pack_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Bool(b) => out.push(u8::from(*b)),
        Value::Int(i) => {
            out.push(2);
            write_uv(out, zigzag(*i));
        }
        Value::Sym(s) => {
            out.push(3);
            pack_sym(s, out);
        }
    }
}

fn pack_expr(e: &Expr, out: &mut Vec<u8>) {
    match e {
        Expr::Const(v) => {
            out.push(0);
            pack_value(v, out);
        }
        Expr::Var(x) => {
            out.push(1);
            pack_sym(x, out);
        }
        Expr::Un(op, a) => {
            out.push(2);
            out.push(match op {
                UnOp::Not => 0,
                UnOp::Neg => 1,
            });
            pack_expr(a, out);
        }
        Expr::Bin(op, a, b) => {
            out.push(3);
            out.push(match op {
                BinOp::Add => 0,
                BinOp::Sub => 1,
                BinOp::Mul => 2,
                BinOp::Div => 3,
                BinOp::Mod => 4,
                BinOp::Eq => 5,
                BinOp::Ne => 6,
                BinOp::Lt => 7,
                BinOp::Le => 8,
                BinOp::Gt => 9,
                BinOp::Ge => 10,
                BinOp::And => 11,
                BinOp::Or => 12,
            });
            pack_expr(a, out);
            pack_expr(b, out);
        }
        Expr::Ite(c, a, b) => {
            out.push(4);
            pack_expr(c, out);
            pack_expr(a, out);
            pack_expr(b, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{sym, EnumDef};
    use std::collections::HashMap;
    use std::sync::Arc;

    fn packed(t: &Term) -> Vec<u8> {
        let mut out = Vec::new();
        pack_term(t, &mut out);
        out
    }

    #[test]
    fn equal_terms_pack_equal() {
        let mk = || {
            Term::Par(
                SyncKind::gates(["g", "h"]),
                Term::Prefix(Action::bare("g"), Term::Stop.rc()).rc(),
                Term::Call(sym("P"), vec![sym("h")], vec![Expr::int(-3)]).rc(),
            )
        };
        assert_eq!(packed(&mk()), packed(&mk()));
    }

    /// A zoo of pairwise-distinct terms, including near-collisions that a
    /// sloppy (non-length-prefixed) encoding would conflate.
    fn zoo() -> Vec<Term> {
        let stop = Term::Stop.rc();
        let e = Arc::new(EnumDef { name: sym("m"), variants: vec![sym("I"), sym("S")] });
        let e2 = Arc::new(EnumDef { name: sym("m"), variants: vec![sym("IS")] });
        vec![
            Term::Stop,
            Term::Exit(vec![]),
            Term::Exit(vec![Expr::int(0)]),
            Term::Exit(vec![Expr::bool(false)]),
            Term::Exit(vec![Expr::int(1), Expr::int(2)]),
            Term::Exit(vec![Expr::bin(BinOp::Add, Expr::int(1), Expr::int(2))]),
            Term::Prefix(Action::bare("a"), stop.clone()),
            Term::Prefix(Action::bare("ab"), stop.clone()),
            // Same spelled-out gates, different split: `a b` vs `ab` + ``.
            Term::Hide(vec![sym("a"), sym("b")].into(), stop.clone()),
            Term::Hide(vec![sym("ab"), sym("")].into(), stop.clone()),
            Term::Hide(vec![sym("ab")].into(), stop.clone()),
            Term::Rename(vec![(sym("a"), sym("b"))].into(), stop.clone()),
            Term::Rename(vec![(sym("b"), sym("a"))].into(), stop.clone()),
            Term::Call(sym("P"), vec![sym("g")], vec![]),
            Term::Call(sym("Pg"), vec![], vec![]),
            Term::Call(sym("P"), vec![], vec![Expr::var("g")]),
            Term::Choice(stop.clone(), Term::Exit(vec![]).rc()),
            Term::Choice(Term::Exit(vec![]).rc(), stop.clone()),
            Term::Par(SyncKind::Interleave, stop.clone(), stop.clone()),
            Term::Par(SyncKind::Full, stop.clone(), stop.clone()),
            Term::Par(SyncKind::gates(["x"]), stop.clone(), stop.clone()),
            Term::Enable(stop.clone(), vec![], stop.clone()),
            Term::Enable(stop.clone(), vec![(sym("x"), Type::Bool)], stop.clone()),
            Term::Disable(stop.clone(), stop.clone()),
            Term::Let(vec![(sym("x"), Type::Int(0, 1), Expr::int(0))], stop.clone()),
            Term::Let(vec![(sym("x"), Type::Int(0, 10), Expr::int(0))], stop.clone()),
            Term::Let(vec![(sym("x"), Type::Enum(e), Expr::int(0))], stop.clone()),
            Term::Let(vec![(sym("x"), Type::Enum(e2), Expr::int(0))], stop.clone()),
            Term::Guard(Expr::bool(true), stop.clone()),
            Term::Guard(Expr::Un(UnOp::Not, Box::new(Expr::bool(false))), stop.clone()),
            Term::Guard(Expr::Un(UnOp::Neg, Box::new(Expr::int(1))), stop.clone()),
            Term::Guard(
                Expr::Ite(
                    Box::new(Expr::bool(true)),
                    Box::new(Expr::int(0)),
                    Box::new(Expr::int(1)),
                ),
                stop.clone(),
            ),
            Term::Prefix(
                Action {
                    gate: sym("g"),
                    offers: vec![Offer::Send(Expr::int(1)), Offer::Recv(sym("x"), Type::Bool)],
                },
                stop.clone(),
            ),
            Term::Prefix(
                Action {
                    gate: sym("g"),
                    offers: vec![Offer::Recv(sym("x"), Type::Bool), Offer::Send(Expr::int(1))],
                },
                stop,
            ),
        ]
    }

    #[test]
    fn distinct_terms_pack_distinct() {
        let terms = zoo();
        let mut seen: HashMap<Vec<u8>, &Term> = HashMap::new();
        for t in &terms {
            if let Some(prev) = seen.insert(packed(t), t) {
                panic!("collision between `{prev}` and `{t}`");
            }
        }
        assert_eq!(seen.len(), terms.len());
    }

    #[test]
    fn negative_ints_fold_small() {
        // Zigzag keeps small magnitudes short: -1 must not cost 10 bytes.
        let a = packed(&Term::Exit(vec![Expr::int(-1)]));
        let b = packed(&Term::Exit(vec![Expr::int(1)]));
        assert_eq!(a.len(), b.len());
    }
}
