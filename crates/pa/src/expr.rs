//! Value expressions: the guard and offer language of the mini-LOTOS dialect.

use crate::value::{Sym, Value};
use std::collections::HashMap;
use std::fmt;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `div` (integer division)
    Div,
    /// `mod` (Euclidean remainder)
    Mod,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `and`
    And,
    /// `or`
    Or,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "div",
            BinOp::Mod => "mod",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "and",
            BinOp::Or => "or",
        };
        write!(f, "{s}")
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// `not`
    Not,
    /// unary `-`
    Neg,
}

/// A value expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Literal value.
    Const(Value),
    /// Variable reference (substituted away in closed terms).
    Var(Sym),
    /// Unary application.
    Un(UnOp, Box<Expr>),
    /// Binary application.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Conditional: `if c then a else b`.
    Ite(Box<Expr>, Box<Expr>, Box<Expr>),
}

/// Error produced when evaluating an expression fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalError(pub String);

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "evaluation error: {}", self.0)
    }
}

impl std::error::Error for EvalError {}

impl Expr {
    /// Integer literal.
    pub fn int(i: i64) -> Expr {
        Expr::Const(Value::Int(i))
    }

    /// Boolean literal.
    pub fn bool(b: bool) -> Expr {
        Expr::Const(Value::Bool(b))
    }

    /// Variable reference.
    pub fn var(name: &str) -> Expr {
        Expr::Var(crate::value::sym(name))
    }

    /// Binary application helper.
    pub fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Bin(op, Box::new(a), Box::new(b))
    }

    /// Evaluates a *closed* expression (no free variables).
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] on free variables, type mismatches, or division
    /// by zero.
    pub fn eval_closed(&self) -> Result<Value, EvalError> {
        self.eval(&HashMap::new())
    }

    /// Evaluates the expression under a variable environment.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] on unbound variables, type mismatches, or
    /// division by zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use multival_pa::expr::{Expr, BinOp};
    /// use multival_pa::value::Value;
    /// use std::collections::HashMap;
    ///
    /// let e = Expr::bin(BinOp::Add, Expr::var("x"), Expr::int(1));
    /// let mut env = HashMap::new();
    /// env.insert(multival_pa::value::sym("x"), Value::Int(41));
    /// assert_eq!(e.eval(&env), Ok(Value::Int(42)));
    /// ```
    pub fn eval(&self, env: &HashMap<Sym, Value>) -> Result<Value, EvalError> {
        match self {
            Expr::Const(v) => Ok(v.clone()),
            Expr::Var(x) => {
                env.get(x).cloned().ok_or_else(|| EvalError(format!("unbound variable `{x}`")))
            }
            Expr::Un(op, e) => {
                let v = e.eval(env)?;
                match op {
                    UnOp::Not => Ok(Value::Bool(!v.as_bool().map_err(EvalError)?)),
                    UnOp::Neg => Ok(Value::Int(-v.as_int().map_err(EvalError)?)),
                }
            }
            Expr::Bin(op, a, b) => {
                let va = a.eval(env)?;
                // Short-circuit boolean operators.
                match op {
                    BinOp::And => {
                        return if !va.as_bool().map_err(EvalError)? {
                            Ok(Value::Bool(false))
                        } else {
                            b.eval(env)
                        };
                    }
                    BinOp::Or => {
                        return if va.as_bool().map_err(EvalError)? {
                            Ok(Value::Bool(true))
                        } else {
                            b.eval(env)
                        };
                    }
                    _ => {}
                }
                let vb = b.eval(env)?;
                match op {
                    BinOp::Add => Ok(Value::Int(
                        va.as_int().map_err(EvalError)? + vb.as_int().map_err(EvalError)?,
                    )),
                    BinOp::Sub => Ok(Value::Int(
                        va.as_int().map_err(EvalError)? - vb.as_int().map_err(EvalError)?,
                    )),
                    BinOp::Mul => Ok(Value::Int(
                        va.as_int().map_err(EvalError)? * vb.as_int().map_err(EvalError)?,
                    )),
                    BinOp::Div => {
                        let d = vb.as_int().map_err(EvalError)?;
                        if d == 0 {
                            return Err(EvalError("division by zero".into()));
                        }
                        Ok(Value::Int(va.as_int().map_err(EvalError)?.div_euclid(d)))
                    }
                    BinOp::Mod => {
                        let d = vb.as_int().map_err(EvalError)?;
                        if d == 0 {
                            return Err(EvalError("modulo by zero".into()));
                        }
                        Ok(Value::Int(va.as_int().map_err(EvalError)?.rem_euclid(d)))
                    }
                    BinOp::Eq => Ok(Value::Bool(va == vb)),
                    BinOp::Ne => Ok(Value::Bool(va != vb)),
                    BinOp::Lt => Ok(Value::Bool(
                        va.as_int().map_err(EvalError)? < vb.as_int().map_err(EvalError)?,
                    )),
                    BinOp::Le => Ok(Value::Bool(
                        va.as_int().map_err(EvalError)? <= vb.as_int().map_err(EvalError)?,
                    )),
                    BinOp::Gt => Ok(Value::Bool(
                        va.as_int().map_err(EvalError)? > vb.as_int().map_err(EvalError)?,
                    )),
                    BinOp::Ge => Ok(Value::Bool(
                        va.as_int().map_err(EvalError)? >= vb.as_int().map_err(EvalError)?,
                    )),
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                }
            }
            Expr::Ite(c, a, b) => {
                if c.eval(env)?.as_bool().map_err(EvalError)? {
                    a.eval(env)
                } else {
                    b.eval(env)
                }
            }
        }
    }

    /// Substitutes variables and then constant-folds if the result is
    /// closed. Keeping closed expressions in evaluated form is essential for
    /// state canonicity during exploration: `0 + 1` and `1` must be the same
    /// state. Expressions that fail to evaluate (e.g. division by zero) are
    /// left untouched so the error surfaces at transition derivation with
    /// proper context.
    pub fn subst_fold(&self, env: &HashMap<Sym, Value>) -> Expr {
        let e = self.subst(env);
        let mut vars = std::collections::HashSet::new();
        e.free_vars(&mut vars);
        if vars.is_empty() {
            if let Ok(v) = e.eval(&HashMap::new()) {
                return Expr::Const(v);
            }
        }
        e
    }

    /// Substitutes variables by constant values, leaving other variables.
    pub fn subst(&self, env: &HashMap<Sym, Value>) -> Expr {
        match self {
            Expr::Const(_) => self.clone(),
            Expr::Var(x) => match env.get(x) {
                Some(v) => Expr::Const(v.clone()),
                None => self.clone(),
            },
            Expr::Un(op, e) => Expr::Un(*op, Box::new(e.subst(env))),
            Expr::Bin(op, a, b) => Expr::Bin(*op, Box::new(a.subst(env)), Box::new(b.subst(env))),
            Expr::Ite(c, a, b) => {
                Expr::Ite(Box::new(c.subst(env)), Box::new(a.subst(env)), Box::new(b.subst(env)))
            }
        }
    }

    /// Collects the free variables of the expression into `out`.
    pub fn free_vars(&self, out: &mut std::collections::HashSet<Sym>) {
        match self {
            Expr::Const(_) => {}
            Expr::Var(x) => {
                out.insert(x.clone());
            }
            Expr::Un(_, e) => e.free_vars(out),
            Expr::Bin(_, a, b) => {
                a.free_vars(out);
                b.free_vars(out);
            }
            Expr::Ite(c, a, b) => {
                c.free_vars(out);
                a.free_vars(out);
                b.free_vars(out);
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Var(x) => write!(f, "{x}"),
            Expr::Un(UnOp::Not, e) => write!(f, "not ({e})"),
            Expr::Un(UnOp::Neg, e) => write!(f, "-({e})"),
            Expr::Bin(op, a, b) => write!(f, "({a} {op} {b})"),
            Expr::Ite(c, a, b) => write!(f, "(if {c} then {a} else {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::sym;

    fn env(pairs: &[(&str, Value)]) -> HashMap<Sym, Value> {
        pairs.iter().map(|(k, v)| (sym(k), v.clone())).collect()
    }

    #[test]
    fn arithmetic() {
        let e =
            Expr::bin(BinOp::Add, Expr::int(2), Expr::bin(BinOp::Mul, Expr::int(3), Expr::int(4)));
        assert_eq!(e.eval_closed(), Ok(Value::Int(14)));
    }

    #[test]
    fn euclidean_div_mod() {
        let e = Expr::bin(BinOp::Mod, Expr::int(-1), Expr::int(4));
        assert_eq!(e.eval_closed(), Ok(Value::Int(3)), "rem_euclid semantics");
        let d = Expr::bin(BinOp::Div, Expr::int(7), Expr::int(2));
        assert_eq!(d.eval_closed(), Ok(Value::Int(3)));
    }

    #[test]
    fn division_by_zero_is_error() {
        let e = Expr::bin(BinOp::Div, Expr::int(1), Expr::int(0));
        assert!(e.eval_closed().is_err());
        let m = Expr::bin(BinOp::Mod, Expr::int(1), Expr::int(0));
        assert!(m.eval_closed().is_err());
    }

    #[test]
    fn short_circuit_avoids_errors() {
        // false and (1 div 0 == 1) must evaluate to false, not error.
        let bad =
            Expr::bin(BinOp::Eq, Expr::bin(BinOp::Div, Expr::int(1), Expr::int(0)), Expr::int(1));
        let e = Expr::bin(BinOp::And, Expr::bool(false), bad.clone());
        assert_eq!(e.eval_closed(), Ok(Value::Bool(false)));
        let o = Expr::bin(BinOp::Or, Expr::bool(true), bad);
        assert_eq!(o.eval_closed(), Ok(Value::Bool(true)));
    }

    #[test]
    fn unbound_variable_is_error() {
        assert!(Expr::var("x").eval_closed().is_err());
    }

    #[test]
    fn substitution_closes_expression() {
        let e = Expr::bin(BinOp::Lt, Expr::var("x"), Expr::int(5));
        let closed = e.subst(&env(&[("x", Value::Int(3))]));
        assert_eq!(closed.eval_closed(), Ok(Value::Bool(true)));
    }

    #[test]
    fn enum_equality() {
        let e = Expr::bin(
            BinOp::Eq,
            Expr::Const(Value::Sym(sym("M"))),
            Expr::Const(Value::Sym(sym("M"))),
        );
        assert_eq!(e.eval_closed(), Ok(Value::Bool(true)));
    }

    #[test]
    fn ite_selects_branch() {
        let e =
            Expr::Ite(Box::new(Expr::bool(false)), Box::new(Expr::int(1)), Box::new(Expr::int(2)));
        assert_eq!(e.eval_closed(), Ok(Value::Int(2)));
    }

    #[test]
    fn free_vars_collected() {
        let e = Expr::bin(
            BinOp::Add,
            Expr::var("x"),
            Expr::bin(BinOp::Mul, Expr::var("y"), Expr::int(2)),
        );
        let mut vars = std::collections::HashSet::new();
        e.free_vars(&mut vars);
        assert_eq!(vars.len(), 2);
        assert!(vars.contains(&sym("x")) && vars.contains(&sym("y")));
    }

    #[test]
    fn type_mismatch_reported() {
        let e = Expr::bin(BinOp::Add, Expr::bool(true), Expr::int(1));
        let err = e.eval_closed().expect_err("bool + int");
        assert!(err.0.contains("expected int"));
    }
}
