//! # multival-pa — a mini-LOTOS process algebra
//!
//! The modeling front-end of the Multival reproduction (DATE'08): a
//! LOTOS-style process algebra with finite data types, a textual parser, a
//! programmatic AST, structural operational semantics, and a state-space
//! explorer producing [`multival_lts::Lts`] graphs.
//!
//! CHP (the hardware process algebra used for the FAUST router) maps onto
//! this dialect the same way the published CHP→LOTOS translation works:
//! handshake channels become rendezvous gates.
//!
//! # Examples
//!
//! A one-place buffer, explored to a 2-state LTS:
//!
//! ```
//! use multival_pa::parser::parse_spec;
//! use multival_pa::explorer::{explore, ExploreOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = parse_spec(
//!     "process Buf[put, get](full: bool) :=
//!          [not full] -> put; Buf[put, get](true)
//!       [] [full]     -> get; Buf[put, get](false)
//!      endproc
//!      behaviour Buf[put, get](false)",
//! )?;
//! let explored = explore(&spec, &ExploreOptions::default())?;
//! assert_eq!(explored.lts.num_states(), 2);
//! # Ok(())
//! # }
//! ```

pub mod explorer;
pub mod expr;
pub mod lexer;
pub mod lint;
pub mod network;
pub mod pack;
pub mod parser;
pub mod semantics;
pub mod spec;
pub mod term;
pub mod ts;
pub mod value;

pub use explorer::{
    explore, explore_partial, explore_store, explore_term, explore_term_partial,
    explore_term_store, explore_term_store_partial, Exploration, ExploreError, ExploreOptions,
    Explored, StoreExploration,
};
pub use lint::{lint, Lint};
pub use network::{extract_network, NetworkError};
pub use pack::pack_term;
pub use parser::{parse_behaviour, parse_spec, ParseError};
pub use semantics::{transitions, Label, SemError};
pub use spec::{ProcDef, Spec};
pub use term::{Action, Offer, SyncKind, Term};
pub use ts::PaTs;
pub use value::{sym, EnumDef, Sym, Type, Value};
