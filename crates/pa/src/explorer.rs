//! State-space generation: breadth-first enumeration of the SOS semantics
//! into an explicit LTS (the CADP `cæsar`/`generator` role).

use crate::semantics::{transitions, Label, SemError};
use crate::spec::Spec;
use crate::term::Term;
use multival_lts::{Lts, LtsBuilder, StateId};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::Arc;

/// Exploration limits and options.
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Maximum number of states to enumerate before aborting.
    pub max_states: usize,
    /// Maximum number of transitions to enumerate before aborting.
    pub max_transitions: usize,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions { max_states: 1_000_000, max_transitions: 8_000_000 }
    }
}

impl ExploreOptions {
    /// Options with a custom state cap (transition cap scales 8×).
    pub fn with_max_states(max_states: usize) -> Self {
        ExploreOptions { max_states, max_transitions: max_states.saturating_mul(8) }
    }
}

/// Error raised by [`explore`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExploreError {
    /// The state or transition cap was exceeded (state-space explosion).
    Explosion {
        /// States enumerated when the cap was hit.
        states: usize,
        /// Transitions enumerated when the cap was hit.
        transitions: usize,
    },
    /// The semantics reported a modeling error, with the shortest-path
    /// offending state printed for diagnosis.
    Semantics {
        /// The underlying error.
        error: SemError,
        /// Display form of the state whose transitions failed to derive.
        state: String,
    },
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::Explosion { states, transitions } => write!(
                f,
                "state-space explosion: exceeded caps at {states} states / {transitions} transitions"
            ),
            ExploreError::Semantics { error, state } => {
                write!(f, "{error} (in state `{state}`)")
            }
        }
    }
}

impl std::error::Error for ExploreError {}

/// The result of a successful exploration: the LTS plus the term each state
/// id denotes (for state-predicate checks on the model's data).
#[derive(Debug, Clone)]
pub struct Explored {
    /// The generated LTS; state ids are BFS discovery order, state 0 initial.
    pub lts: Lts,
    /// `states[i]` is the closed term that state `i` denotes.
    pub states: Vec<Arc<Term>>,
}

impl Explored {
    /// Finds all states whose term satisfies `pred`.
    pub fn states_where(&self, mut pred: impl FnMut(&Term) -> bool) -> Vec<StateId> {
        self.states
            .iter()
            .enumerate()
            .filter(|(_, t)| pred(t))
            .map(|(i, _)| i as StateId)
            .collect()
    }
}

/// Explores the state space of `spec`'s top behaviour.
///
/// # Errors
///
/// Returns [`ExploreError::Explosion`] when a cap is exceeded and
/// [`ExploreError::Semantics`] when transition derivation fails (which
/// pinpoints the offending reachable state).
///
/// # Examples
///
/// ```
/// use multival_pa::parser::parse_spec;
/// use multival_pa::explorer::{explore, ExploreOptions};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let spec = parse_spec(
///     "process P[a, b] := a; b; P[a, b] endproc
///      behaviour P[x, y]",
/// )?;
/// let explored = explore(&spec, &ExploreOptions::default())?;
/// assert_eq!(explored.lts.num_states(), 2);
/// # Ok(())
/// # }
/// ```
pub fn explore(spec: &Spec, options: &ExploreOptions) -> Result<Explored, ExploreError> {
    explore_term(spec.top().clone(), spec, options)
}

/// Explores from an explicit initial term (rather than the spec's top).
///
/// # Errors
///
/// Same as [`explore`].
pub fn explore_term(
    initial: Arc<Term>,
    spec: &Spec,
    options: &ExploreOptions,
) -> Result<Explored, ExploreError> {
    let mut builder = LtsBuilder::new();
    let mut index: HashMap<Arc<Term>, StateId> = HashMap::new();
    let mut states: Vec<Arc<Term>> = Vec::new();
    let mut queue: VecDeque<StateId> = VecDeque::new();
    let mut ntrans = 0usize;

    let s0 = builder.add_state();
    index.insert(initial.clone(), s0);
    states.push(initial);
    queue.push_back(s0);

    while let Some(s) = queue.pop_front() {
        let term = states[s as usize].clone();
        let outgoing = transitions(&term, spec).map_err(|error| ExploreError::Semantics {
            error,
            state: term.to_string(),
        })?;
        for (label, target) in outgoing {
            let dst = match index.get(&target) {
                Some(&d) => d,
                None => {
                    if states.len() >= options.max_states {
                        return Err(ExploreError::Explosion {
                            states: states.len(),
                            transitions: ntrans,
                        });
                    }
                    let d = builder.add_state();
                    index.insert(target.clone(), d);
                    states.push(target);
                    queue.push_back(d);
                    d
                }
            };
            ntrans += 1;
            if ntrans > options.max_transitions {
                return Err(ExploreError::Explosion { states: states.len(), transitions: ntrans });
            }
            builder.add_transition(s, &render_label(&label), dst);
        }
    }
    Ok(Explored { lts: builder.build(s0), states })
}

/// Renders a semantic label in the LTS textual convention
/// (`i`, `exit !v…`, `GATE !v…`).
pub fn render_label(label: &Label) -> String {
    label.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BinOp, Expr};
    use crate::spec::ProcDef;
    use crate::term::{Action, Offer, SyncKind};
    use crate::value::{sym, Type};

    fn counter_spec(max: i64) -> Spec {
        // Count[up, down](n): up when n<max, down when n>0.
        let mut s = Spec::new();
        s.add_process(ProcDef {
            name: sym("Count"),
            gates: vec![sym("up"), sym("down")],
            params: vec![(sym("n"), Type::Int(0, max))],
            body: Term::Choice(
                Term::Guard(
                    Expr::bin(BinOp::Lt, Expr::var("n"), Expr::int(max)),
                    Term::Prefix(
                        Action::bare("up"),
                        Term::Call(
                            sym("Count"),
                            vec![sym("up"), sym("down")],
                            vec![Expr::bin(BinOp::Add, Expr::var("n"), Expr::int(1))],
                        )
                        .rc(),
                    )
                    .rc(),
                )
                .rc(),
                Term::Guard(
                    Expr::bin(BinOp::Gt, Expr::var("n"), Expr::int(0)),
                    Term::Prefix(
                        Action::bare("down"),
                        Term::Call(
                            sym("Count"),
                            vec![sym("up"), sym("down")],
                            vec![Expr::bin(BinOp::Sub, Expr::var("n"), Expr::int(1))],
                        )
                        .rc(),
                    )
                    .rc(),
                )
                .rc(),
            )
            .rc(),
        });
        s.set_top(Term::Call(sym("Count"), vec![sym("up"), sym("down")], vec![Expr::int(0)]).rc());
        s
    }

    #[test]
    fn counter_has_linear_state_space() {
        let s = counter_spec(4);
        let e = explore(&s, &ExploreOptions::default()).expect("explores");
        assert_eq!(e.lts.num_states(), 5);
        assert_eq!(e.lts.num_transitions(), 8); // 4 up + 4 down
        assert!(e.lts.deadlock_states().is_empty());
    }

    #[test]
    fn state_cap_triggers_explosion_error() {
        let s = counter_spec(100);
        let err = explore(&s, &ExploreOptions::with_max_states(10)).expect_err("cap");
        assert!(matches!(err, ExploreError::Explosion { .. }));
    }

    #[test]
    fn semantic_error_pinpoints_state() {
        let mut s = Spec::new();
        s.set_top(Term::Exit(vec![Expr::var("ghost")]).rc());
        let err = explore(&s, &ExploreOptions::default()).expect_err("unbound");
        match err {
            ExploreError::Semantics { error, state } => {
                assert!(matches!(error, SemError::Eval(_)));
                assert!(state.contains("ghost"));
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn interleaving_counters_multiply() {
        // Two independent 3-state counters → 9 product states.
        let s = counter_spec(2);
        let top = Term::Par(
            SyncKind::Interleave,
            Term::Call(sym("Count"), vec![sym("u1"), sym("d1")], vec![Expr::int(0)]).rc(),
            Term::Call(sym("Count"), vec![sym("u2"), sym("d2")], vec![Expr::int(0)]).rc(),
        )
        .rc();
        let e = explore_term(top, &s, &ExploreOptions::default()).expect("explores");
        assert_eq!(e.lts.num_states(), 9);
    }

    #[test]
    fn states_where_inspects_terms() {
        let s = counter_spec(3);
        let e = explore(&s, &ExploreOptions::default()).expect("explores");
        // All states are process calls Count(..) — count those with arg 0.
        let zeros = e.states_where(|t| matches!(t, Term::Call(_, _, args)
            if args == &vec![Expr::int(0)]));
        assert_eq!(zeros.len(), 1);
    }

    #[test]
    fn data_offers_fan_out() {
        let mut s = Spec::new();
        s.set_top(
            Term::Prefix(
                Action {
                    gate: sym("g"),
                    offers: vec![Offer::Recv(sym("x"), Type::Int(0, 4))],
                },
                Term::Stop.rc(),
            )
            .rc(),
        );
        let e = explore(&s, &ExploreOptions::default()).expect("explores");
        assert_eq!(e.lts.num_transitions(), 5);
        assert_eq!(e.lts.num_states(), 2, "all branches reach the same stop state");
    }
}
