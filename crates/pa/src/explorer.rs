//! State-space generation: breadth-first enumeration of the SOS semantics
//! into an explicit LTS (the CADP `cæsar`/`generator` role).
//!
//! Exploration is parallel when [`ExploreOptions::threads`] asks for it,
//! yet **bit-identical to sequential execution**: workers only compute
//! transition derivations (the expensive part) level by level, while
//! state numbering, label interning, and cap enforcement happen in a
//! sequential merge that walks the frontier in canonical order. See
//! `DESIGN.md` §6 for the full scheme.

use crate::pack::pack_term;
use crate::semantics::{transitions, Label, SemError};
use crate::spec::Spec;
use crate::term::Term;
use multival_lts::store::{make_store, StateStore, StoreConfig, StoreStats};
use multival_lts::{LabelId, Lts, LtsBuilder, StateId};
use multival_par::fx::FxHashMap;
use multival_par::{par_map, ShardedIndex, Workers};
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

/// Exploration limits and options.
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Maximum number of states to enumerate before aborting.
    pub max_states: usize,
    /// Maximum number of transitions to enumerate before aborting.
    pub max_transitions: usize,
    /// Worker threads for transition derivation: `1` (the default) is
    /// strictly sequential, `0` means one per hardware thread. The result
    /// is identical whatever the value.
    pub threads: usize,
    /// Wall-clock budget: exploration aborts (keeping partial work) once
    /// this instant passes. `None` (the default) runs unbounded. Unlike the
    /// state caps, where the abort lands depends on machine speed — callers
    /// wanting reproducible truncation should cap states instead.
    pub deadline: Option<std::time::Instant>,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            max_states: 1_000_000,
            max_transitions: 8_000_000,
            threads: 1,
            deadline: None,
        }
    }
}

impl ExploreOptions {
    /// Options with a custom state cap (transition cap scales 8×).
    pub fn with_max_states(max_states: usize) -> Self {
        ExploreOptions {
            max_states,
            max_transitions: max_states.saturating_mul(8),
            ..Self::default()
        }
    }

    /// Sets the worker-thread count (`0` = one per hardware thread).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the wall-clock deadline.
    pub fn with_deadline(mut self, deadline: std::time::Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    fn workers(&self) -> Workers {
        match self.threads {
            0 => Workers::auto(),
            n => Workers::new(n),
        }
    }
}

/// Error raised by [`explore`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExploreError {
    /// A cap was exceeded (state-space explosion). The counts report the
    /// work actually admitted before the abort — both caps are inclusive:
    /// exploration fails on the first state/transition that would push a
    /// count *past* its cap.
    Explosion {
        /// States enumerated when the cap was hit.
        states: usize,
        /// Transitions enumerated when the cap was hit.
        transitions: usize,
        /// BFS depth of the state being expanded when the cap was hit.
        depth: usize,
    },
    /// The semantics reported a modeling error, with the shortest-path
    /// offending state printed for diagnosis.
    Semantics {
        /// The underlying error.
        error: SemError,
        /// Display form of the state whose transitions failed to derive.
        state: String,
    },
    /// The wall-clock budget ([`ExploreOptions::deadline`]) ran out. The
    /// counts report the work admitted before the abort.
    Deadline {
        /// States enumerated when the budget ran out.
        states: usize,
        /// Transitions enumerated when the budget ran out.
        transitions: usize,
    },
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::Explosion { states, transitions, depth } => write!(
                f,
                "state-space explosion: caps exceeded after {states} states / \
                 {transitions} transitions (BFS depth {depth})"
            ),
            ExploreError::Semantics { error, state } => {
                write!(f, "{error} (in state `{state}`)")
            }
            ExploreError::Deadline { states, transitions } => write!(
                f,
                "wall-clock budget exhausted after {states} states / \
                 {transitions} transitions"
            ),
        }
    }
}

impl std::error::Error for ExploreError {}

/// The result of a successful exploration: the LTS plus the term each state
/// id denotes (for state-predicate checks on the model's data).
#[derive(Debug, Clone)]
#[must_use]
pub struct Explored {
    /// The generated LTS; state ids are BFS discovery order, state 0 initial.
    pub lts: Lts,
    /// `states[i]` is the closed term that state `i` denotes.
    pub states: Vec<Arc<Term>>,
}

impl Explored {
    /// Finds all states whose term satisfies `pred`.
    pub fn states_where(&self, mut pred: impl FnMut(&Term) -> bool) -> Vec<StateId> {
        self.states.iter().enumerate().filter(|(_, t)| pred(t)).map(|(i, _)| i as StateId).collect()
    }
}

/// An exploration outcome that keeps partial work on failure: `explored`
/// holds whatever was enumerated before completion or abort.
#[derive(Debug, Clone)]
#[must_use]
pub struct Exploration {
    /// Everything enumerated so far (complete iff `aborted` is `None`).
    pub explored: Explored,
    /// `None` when exploration ran to completion; the abort reason
    /// otherwise.
    pub aborted: Option<ExploreError>,
}

impl Exploration {
    /// Converts to a plain result, dropping partial work on failure.
    pub fn into_result(self) -> Result<Explored, ExploreError> {
        match self.aborted {
            None => Ok(self.explored),
            Some(e) => Err(e),
        }
    }
}

/// Explores the state space of `spec`'s top behaviour.
///
/// # Errors
///
/// Returns [`ExploreError::Explosion`] when a cap is exceeded and
/// [`ExploreError::Semantics`] when transition derivation fails (which
/// pinpoints the offending reachable state).
///
/// # Examples
///
/// ```
/// use multival_pa::parser::parse_spec;
/// use multival_pa::explorer::{explore, ExploreOptions};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let spec = parse_spec(
///     "process P[a, b] := a; b; P[a, b] endproc
///      behaviour P[x, y]",
/// )?;
/// let explored = explore(&spec, &ExploreOptions::default())?;
/// assert_eq!(explored.lts.num_states(), 2);
/// # Ok(())
/// # }
/// ```
pub fn explore(spec: &Spec, options: &ExploreOptions) -> Result<Explored, ExploreError> {
    explore_term(spec.top().clone(), spec, options)
}

/// Explores from an explicit initial term (rather than the spec's top).
///
/// # Errors
///
/// Same as [`explore`].
pub fn explore_term(
    initial: Arc<Term>,
    spec: &Spec,
    options: &ExploreOptions,
) -> Result<Explored, ExploreError> {
    explore_term_partial(initial, spec, options).into_result()
}

/// Like [`explore`], but retains partial work when exploration aborts.
pub fn explore_partial(spec: &Spec, options: &ExploreOptions) -> Exploration {
    explore_term_partial(spec.top().clone(), spec, options)
}

/// Like [`explore_term`], but retains partial work when exploration
/// aborts: on a cap hit or semantics error, `explored` holds exactly the
/// states and transitions admitted before the abort (identical between
/// sequential and parallel runs).
pub fn explore_term_partial(
    initial: Arc<Term>,
    spec: &Spec,
    options: &ExploreOptions,
) -> Exploration {
    let workers = options.workers();
    if workers.is_sequential() {
        explore_sequential(initial, spec, options)
    } else {
        explore_parallel(initial, spec, options, workers)
    }
}

/// Interned label ids keyed by *semantic* label, so each distinct label
/// is rendered to its textual form exactly once per exploration instead
/// of once per transition.
#[derive(Default)]
struct LabelCache {
    // Fx-hashed: looked up once per derived transition.
    ids: FxHashMap<Label, LabelId>,
}

impl LabelCache {
    fn id(&mut self, builder: &mut LtsBuilder, label: Label) -> LabelId {
        match self.ids.get(&label) {
            Some(&id) => id,
            None => {
                let id = builder.intern(&render_label(&label));
                self.ids.insert(label, id);
                id
            }
        }
    }
}

/// How many dequeued states pass between wall-clock checks in the
/// sequential loop — keeps `Instant::now` off the per-state hot path.
const DEADLINE_STRIDE: usize = 128;

/// Whether the options' wall-clock budget has run out.
fn past_deadline(options: &ExploreOptions) -> bool {
    options.deadline.is_some_and(|d| std::time::Instant::now() >= d)
}

fn explore_sequential(initial: Arc<Term>, spec: &Spec, options: &ExploreOptions) -> Exploration {
    let mut builder = LtsBuilder::new();
    let mut labels = LabelCache::default();
    let mut index: FxHashMap<Arc<Term>, StateId> = FxHashMap::default();
    let mut states: Vec<Arc<Term>> = Vec::new();
    let mut queue: VecDeque<(StateId, usize)> = VecDeque::new();
    let mut ntrans = 0usize;
    let mut since_check = 0usize;

    let s0 = builder.add_state();
    index.insert(initial.clone(), s0);
    states.push(initial);
    queue.push_back((s0, 0));

    while let Some((s, depth)) = queue.pop_front() {
        since_check += 1;
        if since_check >= DEADLINE_STRIDE {
            since_check = 0;
            if past_deadline(options) {
                let aborted = ExploreError::Deadline { states: states.len(), transitions: ntrans };
                return finish(builder, states, Some(aborted));
            }
        }
        let term = states[s as usize].clone();
        let outgoing = match transitions(&term, spec) {
            Ok(o) => o,
            Err(error) => {
                let aborted = ExploreError::Semantics { error, state: term.to_string() };
                return finish(builder, states, Some(aborted));
            }
        };
        for (label, target) in outgoing {
            let dst = match index.get(&target) {
                Some(&d) => d,
                None => {
                    if states.len() >= options.max_states {
                        let aborted = ExploreError::Explosion {
                            states: states.len(),
                            transitions: ntrans,
                            depth,
                        };
                        return finish(builder, states, Some(aborted));
                    }
                    let d = builder.add_state();
                    index.insert(target.clone(), d);
                    states.push(target);
                    queue.push_back((d, depth + 1));
                    d
                }
            };
            if ntrans >= options.max_transitions {
                let aborted =
                    ExploreError::Explosion { states: states.len(), transitions: ntrans, depth };
                return finish(builder, states, Some(aborted));
            }
            ntrans += 1;
            let lid = labels.id(&mut builder, label);
            builder.add_transition_id(s, lid, dst);
        }
    }
    finish(builder, states, None)
}

/// Outgoing transitions derived from one term: `(label, successor term)`.
type Outgoing = Vec<(Label, Arc<Term>)>;

/// Per-frontier-state output of a parallel derivation worker.
struct LevelOut {
    /// `(label, provisional target id)` in derivation order.
    succ: Vec<(Label, u32)>,
    /// Targets whose provisional id this worker allocated.
    fresh: Vec<(u32, Arc<Term>)>,
}

/// Sentinel: a provisional id with no canonical number assigned yet.
const NO_CANON: StateId = StateId::MAX;

fn explore_parallel(
    initial: Arc<Term>,
    spec: &Spec,
    options: &ExploreOptions,
    workers: Workers,
) -> Exploration {
    let mut builder = LtsBuilder::new();
    let mut labels = LabelCache::default();
    let index: ShardedIndex<Arc<Term>> = ShardedIndex::new();
    let mut states: Vec<Arc<Term>> = Vec::new();
    // Provisional id -> canonical (BFS discovery order) id.
    let mut prov2canon: Vec<StateId> = Vec::new();
    let mut ntrans = 0usize;

    let s0 = builder.add_state();
    let (p0, _) = index.get_or_insert(initial.clone());
    debug_assert_eq!(p0, 0);
    prov2canon.push(s0);
    states.push(initial);

    let mut frontier: Vec<StateId> = vec![s0];
    let mut depth = 0usize;

    while !frontier.is_empty() {
        // Wall-clock budget, checked once per BFS level (the sequential
        // loop checks every few states; a level is the coarser analogue).
        if past_deadline(options) {
            let aborted = ExploreError::Deadline { states: states.len(), transitions: ntrans };
            return finish(builder, states, Some(aborted));
        }
        // Parallel stage: derive successors of every frontier state.
        // Workers touch only the sharded index; ids they hand out are
        // provisional (scheduling-dependent) and renumbered below.
        let results: Vec<Result<LevelOut, ExploreError>> = par_map(workers, &frontier, |_, &s| {
            let term = &states[s as usize];
            let outgoing = transitions(term, spec)
                .map_err(|error| ExploreError::Semantics { error, state: term.to_string() })?;
            let mut succ = Vec::with_capacity(outgoing.len());
            let mut fresh = Vec::new();
            for (label, target) in outgoing {
                let (prov, was_new) = index.get_or_insert(target.clone());
                if was_new {
                    fresh.push((prov, target));
                }
                succ.push((label, prov));
            }
            Ok(LevelOut { succ, fresh })
        });

        // Collect the term behind every provisional id allocated this
        // level: first canonical sight of an id may come from a *different*
        // frontier state than the one whose worker inserted it.
        let first_new = prov2canon.len() as u32;
        let new_count = (index.next_id() - first_new) as usize;
        let mut fresh_terms: Vec<Option<Arc<Term>>> = vec![None; new_count];
        for out in results.iter().filter_map(|r| r.as_ref().ok()) {
            for (prov, term) in &out.fresh {
                fresh_terms[(prov - first_new) as usize] = Some(term.clone());
            }
        }
        prov2canon.resize(index.next_id() as usize, NO_CANON);

        // Sequential merge in frontier order: canonical numbering, label
        // interning, cap checks, and transition emission — byte-for-byte
        // the order the sequential loop would produce.
        let mut next_frontier: Vec<StateId> = Vec::new();
        for (i, result) in results.into_iter().enumerate() {
            let src = frontier[i];
            let out = match result {
                Ok(out) => out,
                Err(aborted) => return finish(builder, states, Some(aborted)),
            };
            for (label, prov) in out.succ {
                let mut dst = prov2canon[prov as usize];
                if dst == NO_CANON {
                    if states.len() >= options.max_states {
                        let aborted = ExploreError::Explosion {
                            states: states.len(),
                            transitions: ntrans,
                            depth,
                        };
                        return finish(builder, states, Some(aborted));
                    }
                    dst = builder.add_state();
                    prov2canon[prov as usize] = dst;
                    let term = fresh_terms[(prov - first_new) as usize]
                        .clone()
                        .expect("every provisional id has a registered term");
                    states.push(term);
                    next_frontier.push(dst);
                }
                if ntrans >= options.max_transitions {
                    let aborted = ExploreError::Explosion {
                        states: states.len(),
                        transitions: ntrans,
                        depth,
                    };
                    return finish(builder, states, Some(aborted));
                }
                ntrans += 1;
                let lid = labels.id(&mut builder, label);
                builder.add_transition_id(src, lid, dst);
            }
        }
        frontier = next_frontier;
        depth += 1;
    }
    finish(builder, states, None)
}

fn finish(
    builder: LtsBuilder,
    states: Vec<Arc<Term>>,
    aborted: Option<ExploreError>,
) -> Exploration {
    Exploration { explored: Explored { lts: builder.build(0), states }, aborted }
}

/// Result of a store-backed exploration: the LTS plus the dedup store's
/// accounting. Unlike [`Explored`], per-state terms are *not* retained —
/// only the current BFS frontier's terms stay resident, and the dedup
/// index holds packed byte keys (see [`crate::pack`]) in the configured
/// [`StateStore`] backend. This is the
/// million-state entry point: with [`StoreKind::Spill`], resident memory
/// is bounded by the budget plus the frontier.
///
/// [`StoreKind::Spill`]: multival_lts::store::StoreKind::Spill
#[derive(Debug, Clone)]
#[must_use]
pub struct StoreExploration {
    /// The generated LTS; numbering is identical to [`explore`]'s.
    pub lts: Lts,
    /// Dedup-store counters (states, key bytes, resident/spilled bytes).
    pub store: StoreStats,
    /// `None` when exploration ran to completion; the abort reason
    /// otherwise (partial work is kept in `lts`).
    pub aborted: Option<ExploreError>,
}

/// Explores `spec`'s top behaviour through a pluggable state store,
/// without retaining a term per state.
///
/// The LTS — state numbering, label table, transitions — is byte-identical
/// to [`explore`]'s at any backend and worker count.
///
/// # Errors
///
/// Same as [`explore`].
pub fn explore_store(
    spec: &Spec,
    options: &ExploreOptions,
    config: &StoreConfig,
) -> Result<Lts, ExploreError> {
    explore_term_store(spec.top().clone(), spec, options, config)
}

/// [`explore_store`] from an explicit initial term.
///
/// # Errors
///
/// Same as [`explore`].
pub fn explore_term_store(
    initial: Arc<Term>,
    spec: &Spec,
    options: &ExploreOptions,
    config: &StoreConfig,
) -> Result<Lts, ExploreError> {
    let run = explore_term_store_partial(initial, spec, options, config);
    match run.aborted {
        None => Ok(run.lts),
        Some(e) => Err(e),
    }
}

/// Like [`explore_term_store`], but retains partial work when exploration
/// aborts. The wall-clock budget is checked once per BFS level (as in the
/// parallel path), so deadline aborts land on level boundaries.
pub fn explore_term_store_partial(
    initial: Arc<Term>,
    spec: &Spec,
    options: &ExploreOptions,
    config: &StoreConfig,
) -> StoreExploration {
    let workers = options.workers();
    let mut store = make_store(config);
    let mut builder = LtsBuilder::new();
    let mut labels = LabelCache::default();
    let mut buf: Vec<u8> = Vec::new();

    pack_term(&initial, &mut buf);
    let s0 = builder.add_state();
    let (k0, _) = store.get_or_insert(&buf);
    debug_assert_eq!(k0, s0);

    // States of the last discovered BFS level, in id order: frontier[i]
    // denotes state `level_base + i`. Terms live only this long.
    let mut frontier: Vec<Arc<Term>> = vec![initial];
    let mut level_base = 0usize;
    let mut nstates = 1usize;
    let mut ntrans = 0usize;
    let mut depth = 0usize;

    while !frontier.is_empty() {
        if past_deadline(options) {
            let aborted = ExploreError::Deadline { states: nstates, transitions: ntrans };
            return store_finish(builder, store, Some(aborted));
        }
        // Parallel stage: derive successor terms of every frontier state.
        let results: Vec<Result<Outgoing, ExploreError>> =
            par_map(workers, &frontier, |_, term| {
                transitions(term, spec)
                    .map_err(|error| ExploreError::Semantics { error, state: term.to_string() })
            });
        // Sequential merge in frontier order: packing, dedup, numbering,
        // label interning, and cap checks — the same admission order as
        // the sequential loop, hence identical ids and abort reports.
        let mut next: Vec<Arc<Term>> = Vec::new();
        for (i, result) in results.into_iter().enumerate() {
            let src = (level_base + i) as StateId;
            let outgoing = match result {
                Ok(o) => o,
                Err(aborted) => return store_finish(builder, store, Some(aborted)),
            };
            for (label, target) in outgoing {
                buf.clear();
                pack_term(&target, &mut buf);
                let (dst, is_new) = store.get_or_insert(&buf);
                if is_new {
                    if nstates >= options.max_states {
                        let aborted =
                            ExploreError::Explosion { states: nstates, transitions: ntrans, depth };
                        return store_finish(builder, store, Some(aborted));
                    }
                    let b = builder.add_state();
                    debug_assert_eq!(b, dst);
                    nstates += 1;
                    next.push(target);
                }
                if ntrans >= options.max_transitions {
                    let aborted =
                        ExploreError::Explosion { states: nstates, transitions: ntrans, depth };
                    return store_finish(builder, store, Some(aborted));
                }
                ntrans += 1;
                let lid = labels.id(&mut builder, label);
                builder.add_transition_id(src, lid, dst);
            }
        }
        level_base += frontier.len();
        frontier = next;
        depth += 1;
    }
    store_finish(builder, store, None)
}

fn store_finish(
    builder: LtsBuilder,
    store: Box<dyn StateStore>,
    aborted: Option<ExploreError>,
) -> StoreExploration {
    StoreExploration { lts: builder.build(0), store: store.stats(), aborted }
}

/// Renders a semantic label in the LTS textual convention
/// (`i`, `exit !v…`, `GATE !v…`).
pub fn render_label(label: &Label) -> String {
    label.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BinOp, Expr};
    use crate::spec::ProcDef;
    use crate::term::{Action, Offer, SyncKind};
    use crate::value::{sym, Type};
    use multival_lts::io::write_aut;

    fn counter_spec(max: i64) -> Spec {
        // Count[up, down](n): up when n<max, down when n>0.
        let mut s = Spec::new();
        s.add_process(ProcDef {
            name: sym("Count"),
            gates: vec![sym("up"), sym("down")],
            params: vec![(sym("n"), Type::Int(0, max))],
            body: Term::Choice(
                Term::Guard(
                    Expr::bin(BinOp::Lt, Expr::var("n"), Expr::int(max)),
                    Term::Prefix(
                        Action::bare("up"),
                        Term::Call(
                            sym("Count"),
                            vec![sym("up"), sym("down")],
                            vec![Expr::bin(BinOp::Add, Expr::var("n"), Expr::int(1))],
                        )
                        .rc(),
                    )
                    .rc(),
                )
                .rc(),
                Term::Guard(
                    Expr::bin(BinOp::Gt, Expr::var("n"), Expr::int(0)),
                    Term::Prefix(
                        Action::bare("down"),
                        Term::Call(
                            sym("Count"),
                            vec![sym("up"), sym("down")],
                            vec![Expr::bin(BinOp::Sub, Expr::var("n"), Expr::int(1))],
                        )
                        .rc(),
                    )
                    .rc(),
                )
                .rc(),
            )
            .rc(),
        });
        s.set_top(Term::Call(sym("Count"), vec![sym("up"), sym("down")], vec![Expr::int(0)]).rc());
        s
    }

    /// Three interleaved counters: 5³ = 125 states, a frontier wide enough
    /// to exercise the parallel merge across several levels.
    fn triple_counter_top() -> (Spec, Arc<Term>) {
        let s = counter_spec(4);
        let call = |u: &str, d: &str| {
            Term::Call(sym("Count"), vec![sym(u), sym(d)], vec![Expr::int(0)]).rc()
        };
        let top = Term::Par(
            SyncKind::Interleave,
            call("u1", "d1"),
            Term::Par(SyncKind::Interleave, call("u2", "d2"), call("u3", "d3")).rc(),
        )
        .rc();
        (s, top)
    }

    #[test]
    fn counter_has_linear_state_space() {
        let s = counter_spec(4);
        let e = explore(&s, &ExploreOptions::default()).expect("explores");
        assert_eq!(e.lts.num_states(), 5);
        assert_eq!(e.lts.num_transitions(), 8); // 4 up + 4 down
        assert!(e.lts.deadlock_states().is_empty());
    }

    #[test]
    fn state_cap_triggers_explosion_error() {
        let s = counter_spec(100);
        let err = explore(&s, &ExploreOptions::with_max_states(10)).expect_err("cap");
        assert!(matches!(err, ExploreError::Explosion { .. }));
    }

    #[test]
    fn state_cap_is_inclusive_at_the_boundary() {
        // The full space is 5 states / 8 transitions: caps equal to the
        // exact counts must succeed, caps one below must fail and report
        // exactly the admitted work.
        let s = counter_spec(4);
        let exact =
            ExploreOptions { max_states: 5, max_transitions: 8, ..ExploreOptions::default() };
        let e = explore(&s, &exact).expect("caps equal to the space succeed");
        assert_eq!(e.lts.num_states(), 5);
        assert_eq!(e.lts.num_transitions(), 8);

        let tight_states =
            ExploreOptions { max_states: 4, max_transitions: 8, ..ExploreOptions::default() };
        match explore(&s, &tight_states).expect_err("state cap") {
            ExploreError::Explosion { states, .. } => assert_eq!(states, 4),
            other => panic!("unexpected {other}"),
        }

        let tight_trans =
            ExploreOptions { max_states: 5, max_transitions: 7, ..ExploreOptions::default() };
        match explore(&s, &tight_trans).expect_err("transition cap") {
            ExploreError::Explosion { transitions, .. } => assert_eq!(transitions, 7),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn explosion_retains_partial_work() {
        let s = counter_spec(100);
        let opts =
            ExploreOptions { max_states: 10, max_transitions: 800, ..ExploreOptions::default() };
        let partial = explore_partial(&s, &opts);
        let err = partial.aborted.expect("cap hit");
        match err {
            ExploreError::Explosion { states, transitions, depth } => {
                assert_eq!(states, 10, "all admitted states reported");
                assert_eq!(partial.explored.states.len(), 10);
                assert_eq!(partial.explored.lts.num_states(), 10);
                assert_eq!(partial.explored.lts.num_transitions(), transitions);
                assert!(depth > 0, "the counter chain is deeper than one level");
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn semantic_error_pinpoints_state() {
        let mut s = Spec::new();
        s.set_top(Term::Exit(vec![Expr::var("ghost")]).rc());
        let err = explore(&s, &ExploreOptions::default()).expect_err("unbound");
        match err {
            ExploreError::Semantics { error, state } => {
                assert!(matches!(error, SemError::Eval(_)));
                assert!(state.contains("ghost"));
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn interleaving_counters_multiply() {
        // Two independent 3-state counters → 9 product states.
        let s = counter_spec(2);
        let top = Term::Par(
            SyncKind::Interleave,
            Term::Call(sym("Count"), vec![sym("u1"), sym("d1")], vec![Expr::int(0)]).rc(),
            Term::Call(sym("Count"), vec![sym("u2"), sym("d2")], vec![Expr::int(0)]).rc(),
        )
        .rc();
        let e = explore_term(top, &s, &ExploreOptions::default()).expect("explores");
        assert_eq!(e.lts.num_states(), 9);
    }

    #[test]
    fn parallel_exploration_is_bit_identical() {
        let (s, top) = triple_counter_top();
        let seq = explore_term(top.clone(), &s, &ExploreOptions::default()).expect("seq");
        for threads in [2, 4, 8] {
            let opts = ExploreOptions::default().with_threads(threads);
            let par = explore_term(top.clone(), &s, &opts).expect("par");
            assert_eq!(par.states, seq.states, "state numbering at {threads} threads");
            assert_eq!(
                write_aut(&par.lts),
                write_aut(&seq.lts),
                "transition listing at {threads} threads"
            );
        }
    }

    #[test]
    fn parallel_explosion_matches_sequential_partial_work() {
        let (s, top) = triple_counter_top();
        let opts =
            ExploreOptions { max_states: 60, max_transitions: 480, ..ExploreOptions::default() };
        let seq = explore_term_partial(top.clone(), &s, &opts);
        let par = explore_term_partial(top, &s, &opts.clone().with_threads(4));
        assert_eq!(seq.aborted, par.aborted, "identical abort report");
        assert!(seq.aborted.is_some(), "cap must trigger");
        assert_eq!(seq.explored.states, par.explored.states);
        assert_eq!(write_aut(&seq.explored.lts), write_aut(&par.explored.lts));
    }

    #[test]
    fn parallel_semantic_error_matches_sequential() {
        // A guard that errors only after a few steps: `down` below zero is
        // fine, but an unbound variable appears at n = 3.
        let mut s = Spec::new();
        s.add_process(ProcDef {
            name: sym("Bad"),
            gates: vec![sym("g")],
            params: vec![(sym("n"), Type::Int(0, 10))],
            body: Term::Choice(
                Term::Prefix(
                    Action::bare("g"),
                    Term::Call(
                        sym("Bad"),
                        vec![sym("g")],
                        vec![Expr::bin(BinOp::Add, Expr::var("n"), Expr::int(1))],
                    )
                    .rc(),
                )
                .rc(),
                Term::Guard(
                    Expr::bin(BinOp::Lt, Expr::int(2), Expr::var("n")),
                    Term::Exit(vec![Expr::var("ghost")]).rc(),
                )
                .rc(),
            )
            .rc(),
        });
        s.set_top(Term::Call(sym("Bad"), vec![sym("g")], vec![Expr::int(0)]).rc());
        let seq = explore_partial(&s, &ExploreOptions::default());
        let par = explore_partial(&s, &ExploreOptions::default().with_threads(4));
        assert!(matches!(seq.aborted, Some(ExploreError::Semantics { .. })));
        assert_eq!(seq.aborted, par.aborted);
        assert_eq!(seq.explored.states, par.explored.states);
    }

    #[test]
    fn store_backed_exploration_is_backend_and_thread_invariant() {
        use multival_lts::store::StoreKind;
        let (s, top) = triple_counter_top();
        let base = explore_term(top.clone(), &s, &ExploreOptions::default()).expect("baseline");
        for kind in StoreKind::ALL {
            // A 1-byte budget forces the spill backend to page on every
            // sealed segment.
            let config = StoreConfig { kind, mem_budget: Some(1) };
            for threads in [1, 4] {
                let opts = ExploreOptions::default().with_threads(threads);
                let lts = explore_term_store(top.clone(), &s, &opts, &config).expect("store run");
                assert_eq!(write_aut(&lts), write_aut(&base.lts), "{kind:?} at {threads} threads");
            }
        }
    }

    #[test]
    fn store_backed_explosion_matches_sequential_partial_work() {
        let (s, top) = triple_counter_top();
        let opts =
            ExploreOptions { max_states: 60, max_transitions: 480, ..ExploreOptions::default() };
        let seq = explore_term_partial(top.clone(), &s, &opts);
        let run = explore_term_store_partial(top, &s, &opts, &StoreConfig::default());
        assert_eq!(seq.aborted, run.aborted, "identical abort report");
        assert!(run.aborted.is_some(), "cap must trigger");
        assert_eq!(write_aut(&seq.explored.lts), write_aut(&run.lts));
        assert!(run.store.states >= run.lts.num_states(), "store saw every admitted state");
    }

    #[test]
    fn store_backed_semantic_error_matches_sequential() {
        let mut s = Spec::new();
        s.set_top(Term::Exit(vec![Expr::var("ghost")]).rc());
        let seq = explore_partial(&s, &ExploreOptions::default());
        let run = explore_term_store_partial(
            s.top().clone(),
            &s,
            &ExploreOptions::default(),
            &StoreConfig::default(),
        );
        assert_eq!(seq.aborted, run.aborted);
    }

    #[test]
    fn states_where_inspects_terms() {
        let s = counter_spec(3);
        let e = explore(&s, &ExploreOptions::default()).expect("explores");
        // All states are process calls Count(..) — count those with arg 0.
        let zeros = e.states_where(|t| {
            matches!(t, Term::Call(_, _, args)
            if args == &vec![Expr::int(0)])
        });
        assert_eq!(zeros.len(), 1);
    }

    #[test]
    fn data_offers_fan_out() {
        let mut s = Spec::new();
        s.set_top(
            Term::Prefix(
                Action { gate: sym("g"), offers: vec![Offer::Recv(sym("x"), Type::Int(0, 4))] },
                Term::Stop.rc(),
            )
            .rc(),
        );
        let e = explore(&s, &ExploreOptions::default()).expect("explores");
        assert_eq!(e.lts.num_transitions(), 5);
        assert_eq!(e.lts.num_states(), 2, "all branches reach the same stop state");
    }
}
