//! Structural operational semantics of the mini-LOTOS dialect.
//!
//! [`transitions`] derives the outgoing transitions of a *closed* behaviour
//! term. Closed terms are the states of the generated LTS; the explorer
//! (`crate::explorer`) drives this function from the initial term.

use crate::expr::EvalError;
use crate::spec::Spec;
use crate::term::{Action, Offer, SyncKind, Term};
use crate::value::{Sym, Value};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A transition label: internal τ, successful termination δ, or a gate with
/// negotiated data values.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Label {
    /// Internal action τ (displayed `i`).
    Tau,
    /// Successful termination δ (displayed `exit`), with result values.
    Exit(Vec<Value>),
    /// Visible gate with negotiated offer values.
    Gate(Sym, Vec<Value>),
}

impl Label {
    /// Is this the internal action?
    pub fn is_tau(&self) -> bool {
        matches!(self, Label::Tau)
    }

    /// The gate name of a visible label (`exit` for δ), or `None` for τ.
    pub fn gate(&self) -> Option<&str> {
        match self {
            Label::Tau => None,
            Label::Exit(_) => Some("exit"),
            Label::Gate(g, _) => Some(g),
        }
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Label::Tau => write!(f, "i"),
            Label::Exit(vs) => {
                write!(f, "exit")?;
                for v in vs {
                    write!(f, " !{v}")?;
                }
                Ok(())
            }
            Label::Gate(g, vs) => {
                write!(f, "{g}")?;
                for v in vs {
                    write!(f, " !{v}")?;
                }
                Ok(())
            }
        }
    }
}

/// Error during transition derivation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SemError {
    /// An expression failed to evaluate (unbound variable, div-by-zero, …).
    Eval(String),
    /// Call to an undefined process.
    UndefinedProcess(String),
    /// Gate or value argument arity mismatch on a process call.
    Arity(String),
    /// Too many process unfoldings without an action: the recursion is not
    /// action-guarded (e.g. `P := P [] a; Q`).
    UnguardedRecursion(String),
    /// `exit` offered a different number of values than `accept` expects.
    ExitArity(String),
    /// A value escaped its declared type (e.g. `let x:int 0..3 = 7`).
    TypeRange(String),
}

impl fmt::Display for SemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SemError::Eval(m) => write!(f, "evaluation failed: {m}"),
            SemError::UndefinedProcess(p) => write!(f, "undefined process `{p}`"),
            SemError::Arity(m) => write!(f, "arity mismatch: {m}"),
            SemError::UnguardedRecursion(p) => {
                write!(f, "unguarded recursion while unfolding `{p}`")
            }
            SemError::ExitArity(m) => write!(f, "exit/accept mismatch: {m}"),
            SemError::TypeRange(m) => write!(f, "value out of type range: {m}"),
        }
    }
}

impl std::error::Error for SemError {}

impl From<EvalError> for SemError {
    fn from(e: EvalError) -> Self {
        SemError::Eval(e.0)
    }
}

/// Maximum process unfoldings inside a single [`transitions`] call before
/// recursion is declared unguarded.
const MAX_UNFOLD: usize = 256;

/// Derives all outgoing transitions of a closed term.
///
/// # Errors
///
/// Returns [`SemError`] on malformed models (open expressions, undefined
/// processes, unguarded recursion, …).
pub fn transitions(term: &Arc<Term>, spec: &Spec) -> Result<Vec<(Label, Arc<Term>)>, SemError> {
    derive(term, spec, 0)
}

fn derive(
    term: &Arc<Term>,
    spec: &Spec,
    unfolds: usize,
) -> Result<Vec<(Label, Arc<Term>)>, SemError> {
    match &**term {
        Term::Stop => Ok(Vec::new()),
        Term::Exit(es) => {
            let mut vals = Vec::with_capacity(es.len());
            for e in es {
                vals.push(eval_closed(e, spec)?);
            }
            Ok(vec![(Label::Exit(vals), Term::Stop.rc())])
        }
        Term::Prefix(action, cont) => derive_prefix(action, cont, spec),
        Term::Guard(e, b) => {
            if eval_closed(e, spec)?.as_bool().map_err(SemError::Eval)? {
                derive(b, spec, unfolds)
            } else {
                Ok(Vec::new())
            }
        }
        Term::Choice(l, r) => {
            let mut out = derive(l, spec, unfolds)?;
            out.extend(derive(r, spec, unfolds)?);
            Ok(out)
        }
        Term::Par(kind, l, r) => derive_par(kind, l, r, spec, unfolds),
        Term::Hide(gates, b) => {
            let inner = derive(b, spec, unfolds)?;
            Ok(inner
                .into_iter()
                .map(|(lab, t)| {
                    let lab = match &lab {
                        Label::Gate(g, _) if gates.iter().any(|h| h == g) => Label::Tau,
                        _ => lab,
                    };
                    (lab, Term::Hide(gates.clone(), t).rc())
                })
                .collect())
        }
        Term::Rename(map, b) => {
            let inner = derive(b, spec, unfolds)?;
            Ok(inner
                .into_iter()
                .map(|(lab, t)| {
                    let lab = match lab {
                        Label::Gate(g, vs) => {
                            let g2 = map
                                .iter()
                                .find(|(a, _)| *a == g)
                                .map(|(_, c)| c.clone())
                                .unwrap_or(g);
                            Label::Gate(g2, vs)
                        }
                        other => other,
                    };
                    (lab, Term::Rename(map.clone(), t).rc())
                })
                .collect())
        }
        Term::Call(name, gates, args) => {
            if unfolds >= MAX_UNFOLD {
                return Err(SemError::UnguardedRecursion(name.to_string()));
            }
            let def =
                spec.process(name).ok_or_else(|| SemError::UndefinedProcess(name.to_string()))?;
            if def.gates.len() != gates.len() {
                return Err(SemError::Arity(format!(
                    "`{name}` expects {} gates, got {}",
                    def.gates.len(),
                    gates.len()
                )));
            }
            if def.params.len() != args.len() {
                return Err(SemError::Arity(format!(
                    "`{name}` expects {} arguments, got {}",
                    def.params.len(),
                    args.len()
                )));
            }
            let gate_map: HashMap<Sym, Sym> = def
                .gates
                .iter()
                .cloned()
                .zip(gates.iter().cloned())
                .filter(|(a, b)| a != b)
                .collect();
            let mut var_map: HashMap<Sym, Value> = HashMap::with_capacity(args.len());
            for ((x, t), e) in def.params.iter().zip(args) {
                let v = eval_closed(e, spec)?;
                if !t.contains(&v) {
                    return Err(SemError::TypeRange(format!(
                        "argument `{x}` of `{name}`: {v} is not in {t}"
                    )));
                }
                var_map.insert(x.clone(), v);
            }
            let body = def.body.subst_gates(&gate_map).subst_vars(&var_map);
            derive(&body, spec, unfolds + 1)
        }
        Term::Enable(l, binders, r) => {
            let inner = derive(l, spec, unfolds)?;
            let mut out = Vec::with_capacity(inner.len());
            for (lab, t) in inner {
                match lab {
                    Label::Exit(vals) => {
                        if vals.len() != binders.len() {
                            return Err(SemError::ExitArity(format!(
                                "exit offers {} values but accept expects {}",
                                vals.len(),
                                binders.len()
                            )));
                        }
                        let mut env = HashMap::with_capacity(binders.len());
                        for ((x, ty), v) in binders.iter().zip(vals) {
                            if !ty.contains(&v) {
                                return Err(SemError::TypeRange(format!(
                                    "accept `{x}`: {v} is not in {ty}"
                                )));
                            }
                            env.insert(x.clone(), v);
                        }
                        out.push((Label::Tau, r.subst_vars(&env)));
                    }
                    other => {
                        out.push((other, Term::Enable(t, binders.clone(), r.clone()).rc()));
                    }
                }
            }
            Ok(out)
        }
        Term::Disable(l, r) => {
            let mut out = Vec::new();
            for (lab, t) in derive(l, spec, unfolds)? {
                match lab {
                    Label::Exit(vals) => out.push((Label::Exit(vals), Term::Stop.rc())),
                    other => out.push((other, Term::Disable(t, r.clone()).rc())),
                }
            }
            // The disabler may preempt at any time; once it moves, the left
            // behaviour is discarded.
            out.extend(derive(r, spec, unfolds)?);
            Ok(out)
        }
        Term::Let(binds, b) => {
            let mut env: HashMap<Sym, Value> = HashMap::with_capacity(binds.len());
            for (x, t, e) in binds {
                // Sequential bindings: later RHS may use earlier variables.
                let closed = e.subst(&env);
                let v = eval_closed(&closed, spec)?;
                if !t.contains(&v) {
                    return Err(SemError::TypeRange(format!("let `{x}`: {v} is not in {t}")));
                }
                env.insert(x.clone(), v);
            }
            derive(&b.subst_vars(&env), spec, unfolds)
        }
    }
}

/// Evaluates a closed expression, resolving bare enum-variant names to
/// enumeration constants.
fn eval_closed(e: &crate::expr::Expr, spec: &Spec) -> Result<Value, SemError> {
    let mut vars = std::collections::HashSet::new();
    e.free_vars(&mut vars);
    if vars.is_empty() {
        return e.eval(&HashMap::new()).map_err(SemError::from);
    }
    // Remaining free names may be enum constants: bind them to themselves.
    let mut env = HashMap::new();
    for v in vars {
        if spec.enum_variant_exists(&v).is_some() {
            env.insert(v.clone(), Value::Sym(v));
        }
    }
    e.eval(&env).map_err(SemError::from)
}

fn derive_prefix(
    action: &Action,
    cont: &Arc<Term>,
    spec: &Spec,
) -> Result<Vec<(Label, Arc<Term>)>, SemError> {
    // Enumerate offer combinations. Later offers may reference variables
    // bound by earlier `?x:T` offers of the same action.
    let mut branches: Vec<(Vec<Value>, HashMap<Sym, Value>)> = vec![(Vec::new(), HashMap::new())];
    for offer in &action.offers {
        let mut next = Vec::new();
        match offer {
            Offer::Send(e) => {
                for (mut vals, env) in branches {
                    let v = eval_closed(&e.subst(&env), spec)?;
                    vals.push(v);
                    next.push((vals, env));
                }
            }
            Offer::Recv(x, ty) => {
                let ty = resolve_type(ty, spec)?;
                for (vals, env) in branches {
                    for v in ty.values() {
                        let mut vals2 = vals.clone();
                        vals2.push(v.clone());
                        let mut env2 = env.clone();
                        env2.insert(x.clone(), v);
                        next.push((vals2, env2));
                    }
                }
            }
        }
        branches = next;
    }
    let mut out = Vec::with_capacity(branches.len());
    for (vals, env) in branches {
        let target = cont.subst_vars(&env);
        let label = if &*action.gate == "i" || &*action.gate == "tau" {
            Label::Tau
        } else {
            Label::Gate(action.gate.clone(), vals)
        };
        out.push((label, target));
    }
    Ok(out)
}

/// Resolves an enum type referenced by name in a `?x:T` offer against the
/// specification's type table (the parser leaves a placeholder for unknown
/// names only if the type was undeclared, which is an error here).
fn resolve_type(ty: &crate::value::Type, _spec: &Spec) -> Result<crate::value::Type, SemError> {
    Ok(ty.clone())
}

fn derive_par(
    kind: &SyncKind,
    l: &Arc<Term>,
    r: &Arc<Term>,
    spec: &Spec,
    unfolds: usize,
) -> Result<Vec<(Label, Arc<Term>)>, SemError> {
    let lt = derive(l, spec, unfolds)?;
    let rt = derive(r, spec, unfolds)?;
    let must_sync = |lab: &Label| -> bool {
        match lab {
            Label::Tau => false,
            Label::Exit(_) => true, // δ always synchronizes in LOTOS
            Label::Gate(g, _) => kind.synchronizes(g),
        }
    };
    let mut out = Vec::new();
    for (lab, t) in &lt {
        if !must_sync(lab) {
            out.push((lab.clone(), Term::Par(kind.clone(), t.clone(), r.clone()).rc()));
        }
    }
    for (lab, t) in &rt {
        if !must_sync(lab) {
            out.push((lab.clone(), Term::Par(kind.clone(), l.clone(), t.clone()).rc()));
        }
    }
    for (ll, tl) in &lt {
        if !must_sync(ll) {
            continue;
        }
        for (rl, tr) in &rt {
            if ll == rl {
                match ll {
                    Label::Exit(vals) => {
                        // Joint termination: the whole composition terminates.
                        out.push((Label::Exit(vals.clone()), Term::Stop.rc()));
                    }
                    _ => {
                        out.push((ll.clone(), Term::Par(kind.clone(), tl.clone(), tr.clone()).rc()))
                    }
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BinOp, Expr};
    use crate::spec::ProcDef;
    use crate::value::{sym, Type};

    fn spec() -> Spec {
        Spec::new()
    }

    fn labels_of(t: &Arc<Term>, s: &Spec) -> Vec<String> {
        let mut v: Vec<String> =
            transitions(t, s).expect("derivable").into_iter().map(|(l, _)| l.to_string()).collect();
        v.sort();
        v
    }

    #[test]
    fn stop_has_no_transitions() {
        assert!(labels_of(&Term::Stop.rc(), &spec()).is_empty());
    }

    #[test]
    fn exit_emits_delta() {
        let t = Term::Exit(vec![Expr::int(3)]).rc();
        assert_eq!(labels_of(&t, &spec()), vec!["exit !3"]);
    }

    #[test]
    fn prefix_with_send_and_recv() {
        // g !1 ?x:bool; stop — two transitions: g !1 !false, g !1 !true.
        let t = Term::Prefix(
            Action {
                gate: sym("g"),
                offers: vec![Offer::Send(Expr::int(1)), Offer::Recv(sym("x"), Type::Bool)],
            },
            Term::Stop.rc(),
        )
        .rc();
        assert_eq!(labels_of(&t, &spec()), vec!["g !1 !false", "g !1 !true"]);
    }

    #[test]
    fn recv_binds_later_send_in_same_action() {
        // g ?x:int 1..2 !x; stop — labels g !1 !1 and g !2 !2.
        let t = Term::Prefix(
            Action {
                gate: sym("g"),
                offers: vec![Offer::Recv(sym("x"), Type::Int(1, 2)), Offer::Send(Expr::var("x"))],
            },
            Term::Stop.rc(),
        )
        .rc();
        assert_eq!(labels_of(&t, &spec()), vec!["g !1 !1", "g !2 !2"]);
    }

    #[test]
    fn guard_filters() {
        let t =
            Term::Guard(Expr::bool(false), Term::Prefix(Action::bare("a"), Term::Stop.rc()).rc())
                .rc();
        assert!(labels_of(&t, &spec()).is_empty());
    }

    #[test]
    fn choice_unions() {
        let t = Term::Choice(
            Term::Prefix(Action::bare("a"), Term::Stop.rc()).rc(),
            Term::Prefix(Action::bare("b"), Term::Stop.rc()).rc(),
        )
        .rc();
        assert_eq!(labels_of(&t, &spec()), vec!["a", "b"]);
    }

    #[test]
    fn par_sync_negotiates_values() {
        // (g !1; stop [] g !2; stop) |[g]| g ?x:int 1..2; stop
        // → two synchronized transitions g !1 and g !2.
        let sender = Term::Choice(
            Term::Prefix(
                Action { gate: sym("g"), offers: vec![Offer::Send(Expr::int(1))] },
                Term::Stop.rc(),
            )
            .rc(),
            Term::Prefix(
                Action { gate: sym("g"), offers: vec![Offer::Send(Expr::int(2))] },
                Term::Stop.rc(),
            )
            .rc(),
        )
        .rc();
        let receiver = Term::Prefix(
            Action { gate: sym("g"), offers: vec![Offer::Recv(sym("x"), Type::Int(1, 2))] },
            Term::Stop.rc(),
        )
        .rc();
        let t = Term::Par(SyncKind::gates(["g"]), sender, receiver).rc();
        assert_eq!(labels_of(&t, &spec()), vec!["g !1", "g !2"]);
    }

    #[test]
    fn hide_makes_tau() {
        let t = Term::Hide(
            vec![sym("g")].into(),
            Term::Prefix(Action::bare("g"), Term::Stop.rc()).rc(),
        )
        .rc();
        assert_eq!(labels_of(&t, &spec()), vec!["i"]);
    }

    #[test]
    fn rename_changes_gate() {
        let t = Term::Rename(
            vec![(sym("g"), sym("h"))].into(),
            Term::Prefix(
                Action { gate: sym("g"), offers: vec![Offer::Send(Expr::int(1))] },
                Term::Stop.rc(),
            )
            .rc(),
        )
        .rc();
        assert_eq!(labels_of(&t, &spec()), vec!["h !1"]);
    }

    #[test]
    fn enable_turns_exit_into_tau_and_binds() {
        // exit(7) >> accept n:int 0..9 in g !n; stop
        let t = Term::Enable(
            Term::Exit(vec![Expr::int(7)]).rc(),
            vec![(sym("n"), Type::Int(0, 9))],
            Term::Prefix(
                Action { gate: sym("g"), offers: vec![Offer::Send(Expr::var("n"))] },
                Term::Stop.rc(),
            )
            .rc(),
        )
        .rc();
        let trans = transitions(&t, &spec()).expect("derivable");
        assert_eq!(trans.len(), 1);
        assert_eq!(trans[0].0, Label::Tau);
        assert_eq!(labels_of(&trans[0].1, &spec()), vec!["g !7"]);
    }

    #[test]
    fn enable_arity_mismatch_is_error() {
        let t =
            Term::Enable(Term::Exit(vec![]).rc(), vec![(sym("n"), Type::Bool)], Term::Stop.rc())
                .rc();
        assert!(matches!(transitions(&t, &spec()), Err(SemError::ExitArity(_))));
    }

    #[test]
    fn disable_interrupts() {
        // (a; stop) [> (b; stop): both a and b possible; after a the
        // disabler b is still possible (left continues under [>).
        let t = Term::Disable(
            Term::Prefix(Action::bare("a"), Term::Stop.rc()).rc(),
            Term::Prefix(Action::bare("b"), Term::Stop.rc()).rc(),
        )
        .rc();
        let trans = transitions(&t, &spec()).expect("derivable");
        let labels: Vec<String> = trans.iter().map(|(l, _)| l.to_string()).collect();
        assert!(labels.contains(&"a".to_owned()) && labels.contains(&"b".to_owned()));
        // After a, the term is still a Disable and b remains possible.
        let after_a = &trans.iter().find(|(l, _)| l.to_string() == "a").expect("a").1;
        assert_eq!(labels_of(after_a, &spec()), vec!["b"]);
    }

    #[test]
    fn disable_exit_kills_disabler() {
        let t = Term::Disable(
            Term::Exit(vec![]).rc(),
            Term::Prefix(Action::bare("b"), Term::Stop.rc()).rc(),
        )
        .rc();
        let trans = transitions(&t, &spec()).expect("derivable");
        let exit = trans.iter().find(|(l, _)| matches!(l, Label::Exit(_))).expect("exit");
        assert_eq!(*exit.1, Term::Stop);
    }

    #[test]
    fn call_unfolds_with_gate_and_value_substitution() {
        let mut s = Spec::new();
        s.add_process(ProcDef {
            name: sym("Count"),
            gates: vec![sym("tick")],
            params: vec![(sym("n"), Type::Int(0, 2))],
            body: Term::Guard(
                Expr::bin(BinOp::Lt, Expr::var("n"), Expr::int(2)),
                Term::Prefix(
                    Action { gate: sym("tick"), offers: vec![Offer::Send(Expr::var("n"))] },
                    Term::Call(
                        sym("Count"),
                        vec![sym("tick")],
                        vec![Expr::bin(BinOp::Add, Expr::var("n"), Expr::int(1))],
                    )
                    .rc(),
                )
                .rc(),
            )
            .rc(),
        });
        let t = Term::Call(sym("Count"), vec![sym("clk")], vec![Expr::int(0)]).rc();
        assert_eq!(labels_of(&t, &s), vec!["clk !0"]);
    }

    #[test]
    fn unguarded_recursion_detected() {
        let mut s = Spec::new();
        s.add_process(ProcDef {
            name: sym("Loop"),
            gates: vec![],
            params: vec![],
            body: Term::Call(sym("Loop"), vec![], vec![]).rc(),
        });
        let t = Term::Call(sym("Loop"), vec![], vec![]).rc();
        assert!(matches!(transitions(&t, &s), Err(SemError::UnguardedRecursion(_))));
    }

    #[test]
    fn argument_out_of_range_is_error() {
        let mut s = Spec::new();
        s.add_process(ProcDef {
            name: sym("P"),
            gates: vec![],
            params: vec![(sym("n"), Type::Int(0, 1))],
            body: Term::Stop.rc(),
        });
        let t = Term::Call(sym("P"), vec![], vec![Expr::int(5)]).rc();
        assert!(matches!(transitions(&t, &s), Err(SemError::TypeRange(_))));
    }

    #[test]
    fn exit_synchronizes_across_par() {
        // exit ||| exit still terminates jointly (δ always syncs).
        let t =
            Term::Par(SyncKind::Interleave, Term::Exit(vec![]).rc(), Term::Exit(vec![]).rc()).rc();
        let trans = transitions(&t, &spec()).expect("derivable");
        assert_eq!(trans.len(), 1);
        assert!(matches!(trans[0].0, Label::Exit(_)));
    }

    #[test]
    fn let_binds_sequentially() {
        let t = Term::Let(
            vec![
                (sym("x"), Type::Int(0, 9), Expr::int(2)),
                (sym("y"), Type::Int(0, 99), Expr::bin(BinOp::Mul, Expr::var("x"), Expr::int(3))),
            ],
            Term::Exit(vec![Expr::var("y")]).rc(),
        )
        .rc();
        assert_eq!(labels_of(&t, &spec()), vec!["exit !6"]);
    }

    #[test]
    fn tau_prefix_via_gate_named_i() {
        let t = Term::Prefix(Action::bare("i"), Term::Stop.rc()).rc();
        let trans = transitions(&t, &spec()).expect("derivable");
        assert_eq!(trans[0].0, Label::Tau);
    }
}
