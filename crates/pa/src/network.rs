//! Network extraction: turning a spec's top behaviour into a
//! [`Network`] of component LTSs for the compositional reduction pipeline.
//!
//! The pipeline's network semantics are *alphabet-scoped*: a single global
//! set of sync gates, each synchronizing among exactly the components
//! whose alphabet contains it. A LOTOS top behaviour, by contrast, is a
//! *tree* of binary `|[G]|` operators with per-node gate sets. The two
//! agree only when the tree is well-formed in the EXP.OPEN sense, so
//! extraction validates (and otherwise rejects — the caller falls back to
//! whole-term exploration):
//!
//! * every gate listed at a `|[G]|` node must actually be offered by both
//!   sides (a gate synchronized against an absent partner would deadlock
//!   in the tree but roam free under the network's scoping);
//! * every gate offered by both sides of a node must be listed at that
//!   node (an unlisted shared gate interleaves in the tree, but would be
//!   forced to synchronize by the network's global sync set whenever some
//!   other node lists it).
//!
//! Together these make the folded network semantics equal to the tree
//! semantics; `exit` needs no rule (both sides force it joint) and `||`
//! (full synchronization) is rejected outright since its gate set depends
//! on the dynamic alphabets.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use crate::explorer::{explore_term, ExploreError, ExploreOptions};
use crate::spec::Spec;
use crate::term::{SyncKind, Term};
use multival_lts::pipeline::Network;

/// Why a top behaviour could not be extracted as a network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkError {
    /// The spec has no top behaviour.
    NoTop,
    /// A `||` (full-sync) operator was found: its effective gate set is
    /// not syntactically scoped, so it cannot be mapped to a global set.
    FullSync,
    /// A gate listed at a `|[G]|` node is never offered by one side.
    MissingPossessor {
        /// The offending gate.
        gate: String,
        /// `"left"` or `"right"` — the side that never offers it.
        side: &'static str,
    },
    /// A gate offered by both sides of a parallel node is not in its sync
    /// set, so the tree interleaves what the network would synchronize.
    UnsyncedSharedGate {
        /// The offending gate.
        gate: String,
    },
    /// Exploring a leaf component failed.
    Explore {
        /// The leaf's display name.
        component: String,
        /// The underlying exploration error.
        error: ExploreError,
    },
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::NoTop => write!(f, "spec has no top behaviour"),
            NetworkError::FullSync => {
                write!(f, "`||` (full synchronization) cannot be scoped to a gate network")
            }
            NetworkError::MissingPossessor { gate, side } => {
                write!(f, "gate `{gate}` is synchronized but never offered by the {side} operand")
            }
            NetworkError::UnsyncedSharedGate { gate } => write!(
                f,
                "gate `{gate}` is offered on both sides of an interleaving; the network \
                 semantics would synchronize it"
            ),
            NetworkError::Explore { component, error } => {
                write!(f, "exploring component `{component}`: {error}")
            }
        }
    }
}

impl std::error::Error for NetworkError {}

/// An explored leaf, before assembly into the network.
struct Leaf {
    name: String,
    lts: multival_lts::Lts,
}

/// Extracts the spec's top behaviour as a pipeline [`Network`].
///
/// The top-level `hide` chain becomes the network's hidden-gate set, each
/// maximal non-parallel subterm becomes one component (explored with
/// `options`), and the union of all `|[G]|` gate sets becomes the global
/// synchronization set, after validating that the tree's per-node scoping
/// agrees with the network's alphabet scoping (see the module docs).
///
/// # Errors
///
/// Returns a [`NetworkError`] when the spec has no top behaviour, the tree
/// cannot be scoped (full sync, a one-sided sync gate, or an unlisted
/// shared gate), or a leaf fails to explore.
pub fn extract_network(spec: &Spec, options: &ExploreOptions) -> Result<Network, NetworkError> {
    let top = spec.try_top().ok_or(NetworkError::NoTop)?.clone();

    // Peel the top-level hide chain.
    let mut hidden: BTreeSet<String> = BTreeSet::new();
    let mut term = top;
    while let Term::Hide(gates, inner) = &*term {
        hidden.extend(gates.iter().map(|g| g.to_string()));
        term = inner.clone();
    }

    let mut sync_gates: BTreeSet<String> = BTreeSet::new();
    let mut leaves: Vec<Leaf> = Vec::new();
    collect(&term, spec, options, &mut sync_gates, &mut leaves)?;
    debug_assert!(!leaves.is_empty());

    let mut net = Network::new();
    let mut used: BTreeSet<String> = BTreeSet::new();
    for leaf in leaves {
        let mut name = leaf.name;
        if used.contains(&name) {
            let mut k = 2usize;
            while used.contains(&format!("{name}_{k}")) {
                k += 1;
            }
            name = format!("{name}_{k}");
        }
        used.insert(name.clone());
        net.add_component(name, leaf.lts);
    }
    net.sync_on(sync_gates);
    net.hide(hidden);
    Ok(net)
}

/// Recurses into pure `Par` nodes, exploring every other subterm as a
/// leaf component; returns the subtree's explored alphabet and pushes its
/// leaves (left before right, preserving the source order).
fn collect(
    term: &Arc<Term>,
    spec: &Spec,
    options: &ExploreOptions,
    sync_gates: &mut BTreeSet<String>,
    leaves: &mut Vec<Leaf>,
) -> Result<BTreeSet<String>, NetworkError> {
    match &**term {
        Term::Par(kind, left, right) => {
            let la = collect(left, spec, options, sync_gates, leaves)?;
            let ra = collect(right, spec, options, sync_gates, leaves)?;
            let listed: BTreeSet<String> = match kind {
                SyncKind::Full => return Err(NetworkError::FullSync),
                SyncKind::Interleave => BTreeSet::new(),
                SyncKind::Gates(gs) => gs.iter().map(|g| g.to_string()).collect(),
            };
            for gate in &listed {
                if special_gate(gate) {
                    continue;
                }
                if !la.contains(gate) {
                    return Err(NetworkError::MissingPossessor {
                        gate: gate.clone(),
                        side: "left",
                    });
                }
                if !ra.contains(gate) {
                    return Err(NetworkError::MissingPossessor {
                        gate: gate.clone(),
                        side: "right",
                    });
                }
            }
            for gate in la.intersection(&ra) {
                if !special_gate(gate) && !listed.contains(gate) {
                    return Err(NetworkError::UnsyncedSharedGate { gate: gate.clone() });
                }
            }
            sync_gates.extend(listed.into_iter().filter(|g| !special_gate(g)));
            Ok(la.union(&ra).cloned().collect())
        }
        _ => {
            let name = leaf_name(term);
            let explored = explore_term(term.clone(), spec, options)
                .map_err(|error| NetworkError::Explore { component: name.clone(), error })?;
            let alphabet: BTreeSet<String> =
                explored.lts.used_gates().into_iter().filter(|g| g != "i").collect();
            leaves.push(Leaf { name, lts: explored.lts });
            Ok(alphabet)
        }
    }
}

/// Gates exempt from the scoping rules: τ never synchronizes and `exit`
/// is forced joint by every composition operator.
fn special_gate(gate: &str) -> bool {
    gate == "i" || gate == "exit"
}

/// A short display name for a leaf: the process name for instantiations,
/// `leaf` otherwise (disambiguated by the caller).
fn leaf_name(term: &Term) -> String {
    match term {
        Term::Call(p, _, _) => p.to_string(),
        _ => "leaf".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_spec;
    use multival_lts::io::write_aut;
    use multival_lts::minimize::Equivalence;
    use multival_lts::pipeline::{monolithic, run_pipeline, PipelineOptions};
    use multival_lts::Workers;

    const CHAIN: &str = "
        process Cell[inp, outp] := inp; outp; Cell[inp, outp] endproc
        behaviour
          hide h1, h2 in
            ( Cell[enq, h1] |[h1]| ( Cell[h1, h2] |[h2]| Cell[h2, deq] ) )
    ";

    #[test]
    fn chain_extracts_and_pipeline_matches_whole_term_exploration() {
        let spec = parse_spec(CHAIN).expect("spec parses");
        let options = ExploreOptions::default();
        let net = extract_network(&spec, &options).expect("extraction succeeds");
        assert_eq!(net.components().len(), 3);
        assert_eq!(
            net.sync_gates().iter().cloned().collect::<Vec<_>>(),
            vec!["h1".to_owned(), "h2".to_owned()]
        );
        assert_eq!(
            net.hidden().iter().cloned().collect::<Vec<_>>(),
            vec!["h1".to_owned(), "h2".to_owned()]
        );
        // The network semantics must agree with exploring the tree whole.
        let whole = crate::explorer::explore(&spec, &options).expect("whole exploration").lts;
        let (whole_min, _) = multival_lts::minimize::minimize(&whole, Equivalence::Branching);
        let mono = monolithic(&net, Equivalence::Branching, Workers::default());
        assert_eq!(
            write_aut(&multival_lts::pipeline::canonicalize(&whole_min)),
            write_aut(&mono.lts),
            "network fold must equal whole-term exploration"
        );
        let run = run_pipeline(&net, &PipelineOptions::default());
        assert_eq!(write_aut(&run.lts), write_aut(&mono.lts));
    }

    #[test]
    fn component_names_come_from_process_calls() {
        let spec = parse_spec(CHAIN).expect("spec parses");
        let net = extract_network(&spec, &ExploreOptions::default()).expect("extracts");
        let names: Vec<&str> = net.components().iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["Cell", "Cell_2", "Cell_3"]);
    }

    #[test]
    fn full_sync_is_rejected() {
        let spec = parse_spec(
            "process P[a] := a; P[a] endproc
             behaviour P[x] || P[x]",
        )
        .expect("spec parses");
        assert_eq!(
            extract_network(&spec, &ExploreOptions::default()).err(),
            Some(NetworkError::FullSync)
        );
    }

    #[test]
    fn one_sided_sync_gate_is_rejected() {
        // `b` is listed but the right operand never offers it: the tree
        // would block `b` forever; the network would let it roam.
        let spec = parse_spec(
            "process P[a, b] := a; b; P[a, b] endproc
             process Q[a] := a; Q[a] endproc
             behaviour P[x, y] |[x, y]| Q[x]",
        )
        .expect("spec parses");
        assert_eq!(
            extract_network(&spec, &ExploreOptions::default()).err(),
            Some(NetworkError::MissingPossessor { gate: "y".to_owned(), side: "right" })
        );
    }

    #[test]
    fn guard_blocked_gate_counts_as_absent() {
        // Q *syntactically* owns `b` but its guard never lets it fire, so
        // the explored alphabet lacks it — extraction must reject rather
        // than silently free P's `b`.
        let spec = parse_spec(
            "process P[a, b] := a; b; P[a, b] endproc
             process Q[a, b](n: int 0..1) := a; Q[a, b](n) [] [n > 0] -> b; Q[a, b](n)
             endproc
             behaviour P[x, y] |[x, y]| Q[x, y](0)",
        )
        .expect("spec parses");
        assert_eq!(
            extract_network(&spec, &ExploreOptions::default()).err(),
            Some(NetworkError::MissingPossessor { gate: "y".to_owned(), side: "right" })
        );
    }

    #[test]
    fn unlisted_shared_gate_is_rejected() {
        let spec = parse_spec(
            "process P[a, b] := a; b; P[a, b] endproc
             behaviour P[x, y] |[x]| P[x, y]",
        )
        .expect("spec parses");
        assert_eq!(
            extract_network(&spec, &ExploreOptions::default()).err(),
            Some(NetworkError::UnsyncedSharedGate { gate: "y".to_owned() })
        );
    }

    #[test]
    fn non_parallel_top_is_a_single_component() {
        let spec = parse_spec(
            "process P[a] := a; P[a] endproc
             behaviour hide a in P[a]",
        )
        .expect("spec parses");
        let net = extract_network(&spec, &ExploreOptions::default()).expect("extracts");
        assert_eq!(net.components().len(), 1);
        assert!(net.sync_gates().is_empty());
        assert_eq!(net.hidden().iter().cloned().collect::<Vec<_>>(), vec!["a".to_owned()]);
    }
}
