//! Parallel primitives for the state-space engine.
//!
//! The usual choice here would be `rayon`, but the toolchain vendors its
//! own thin layer over `std::thread::scope` instead: the engine needs
//! exactly two shapes — an ordered parallel map over a slice, and a
//! sharded concurrent interning index — and owning them keeps the
//! determinism contract (results identical to sequential execution,
//! bit-for-bit) explicit and auditable.
//!
//! Design rules that make determinism cheap:
//!
//! * [`par_map`] returns results **in input order** regardless of which
//!   worker computed them, so callers can treat it as a drop-in for
//!   `iter().map().collect()`.
//! * [`ShardedIndex`] hands out *provisional* ids from an atomic counter;
//!   their numeric values depend on scheduling, so callers that need
//!   canonical numbering renumber during their sequential merge phase
//!   (see `multival-pa`'s explorer).

pub mod fx;

use fx::FxBuildHasher;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, Hasher};
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Worker-count knob shared by every parallel entry point.
///
/// `Workers(1)` (the default) means strictly sequential execution on the
/// calling thread — no pool, no synchronisation, no overhead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Workers(usize);

impl Default for Workers {
    fn default() -> Self {
        Workers(1)
    }
}

impl Workers {
    /// Exactly `n` workers (clamped to at least 1).
    pub fn new(n: usize) -> Self {
        Workers(n.max(1))
    }

    /// Strictly sequential execution.
    pub fn sequential() -> Self {
        Workers(1)
    }

    /// One worker per available hardware thread.
    pub fn auto() -> Self {
        Workers(std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
    }

    /// The worker count.
    pub fn get(self) -> usize {
        self.0
    }

    /// True when no parallelism is requested.
    pub fn is_sequential(self) -> bool {
        self.0 == 1
    }
}

/// Below this many items a parallel map falls back to sequential: thread
/// spawn + join costs more than the work it would distribute.
const PAR_THRESHOLD: usize = 256;

/// Maps `f` over `items`, in parallel when `workers > 1`, returning
/// results in input order.
///
/// Work is distributed by atomic chunk-stealing so uneven per-item costs
/// (e.g. states with very different successor fan-out) balance across
/// workers. `f` must be `Sync` (it is shared, not cloned).
pub fn par_map<T, U, F>(workers: Workers, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_map_min(workers, PAR_THRESHOLD, items, f)
}

/// [`par_map`] with a caller-chosen sequential-fallback threshold.
///
/// The default threshold is tuned for fine-grained per-state work; callers
/// whose items are orders of magnitude coarser (e.g. whole Monte-Carlo
/// trajectories) pass a smaller `min_parallel` so that even modest batches
/// are distributed. The ordered-results determinism contract is unchanged.
pub fn par_map_min<T, U, F>(workers: Workers, min_parallel: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_map_stats(workers, min_parallel, items, f).0
}

/// How a [`par_map_stats`] call actually scheduled its work. Because the
/// ordered-results contract makes chunking invisible in the output, these
/// numbers exist purely for performance reporting (the bench emitter
/// records them next to wall times).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParStats {
    /// Items mapped.
    pub items: usize,
    /// Threads that actually ran (1 means the sequential fast path: no
    /// thread was spawned and no atomics were touched).
    pub workers: usize,
    /// Stride of the first grab from the shared cursor.
    pub initial_chunk: usize,
    /// Largest stride any worker grew to.
    pub max_chunk: usize,
    /// Number of grabs from the shared cursor (1 on the sequential path).
    pub grabs: usize,
}

/// Per-grab wall-time target for the adaptive stride: long enough that the
/// cursor `fetch_add` and the timing call are noise, short enough that a
/// straggler's final grab cannot dominate the tail.
const TARGET_GRAB: Duration = Duration::from_micros(200);

/// [`par_map_min`] that also reports the chosen chunking ([`ParStats`]).
///
/// Scheduling is adaptive to per-item cost: every worker starts with a
/// small probe stride and doubles it after each grab that completes faster
/// than `TARGET_GRAB` (200 µs) (halving after grabs 8× over target), capped so at
/// least two grabs per worker remain for load balancing. Cheap items
/// therefore converge to coarse chunks (amortizing the shared cursor),
/// expensive items stay fine-grained (balancing stragglers) — with zero
/// effect on the output, which is written to per-index slots.
///
/// When the *effective* worker count is 1 — sequential request, tiny
/// input, or a single-core machine — the map runs inline on the calling
/// thread with no spawn and no atomics. Spawning a lone scoped thread
/// costs tens of microseconds per call, which is exactly the overhead that
/// made BFS levels slower at `t4` than `t1` on one-core hosts.
pub fn par_map_stats<T, U, F>(
    workers: Workers,
    min_parallel: usize,
    items: &[T],
    f: F,
) -> (Vec<U>, ParStats)
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let n = items.len();
    // Results are scheduling-independent, so oversubscribing the hardware
    // cannot change them — it only adds context-switch overhead. Cap the
    // actual thread count at the machine's parallelism.
    let hw = std::thread::available_parallelism().map_or(usize::MAX, |p| p.get());
    let nworkers = workers.get().min(n).min(hw);
    if nworkers <= 1 || n < min_parallel.max(2) {
        let out = items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        let stats = ParStats { items: n, workers: 1, initial_chunk: n, max_chunk: n, grabs: 1 };
        return (out, stats);
    }
    // Probe stride: fine-grained items keep the historical floor of 32,
    // coarse items (small `min_parallel`) may be grabbed one at a time.
    let initial_chunk = (min_parallel / 8).clamp(1, 32);
    // Growth cap: leave every worker at least ~2 grabs for balancing.
    let stride_cap = (n / (nworkers * 2)).max(initial_chunk);
    let cursor = AtomicUsize::new(0);
    let grabs = AtomicUsize::new(0);
    let max_chunk = AtomicUsize::new(initial_chunk);
    let mut out: Vec<Option<U>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let slots = SendSlices(out.as_mut_ptr());

    std::thread::scope(|scope| {
        for _ in 0..nworkers {
            let cursor = &cursor;
            let grabs = &grabs;
            let max_chunk = &max_chunk;
            let f = &f;
            let slots = &slots;
            scope.spawn(move || {
                let mut stride = initial_chunk;
                loop {
                    let start = cursor.fetch_add(stride, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + stride).min(n);
                    let t0 = Instant::now();
                    for (i, item) in items.iter().enumerate().take(end).skip(start) {
                        // SAFETY: each index is visited by exactly one worker
                        // (disjoint chunks from the atomic cursor), so no slot
                        // is written twice or concurrently.
                        unsafe { slots.write(i, f(i, item)) };
                    }
                    grabs.fetch_add(1, Ordering::Relaxed);
                    let dt = t0.elapsed();
                    if dt < TARGET_GRAB && stride < stride_cap {
                        stride = stride.saturating_mul(2).min(stride_cap);
                        max_chunk.fetch_max(stride, Ordering::Relaxed);
                    } else if dt > TARGET_GRAB * 8 && stride > 1 {
                        stride /= 2;
                    }
                }
            });
        }
    });

    let stats = ParStats {
        items: n,
        workers: nworkers,
        initial_chunk,
        max_chunk: max_chunk.into_inner(),
        grabs: grabs.into_inner(),
    };
    (out.into_iter().map(|slot| slot.expect("slot filled")).collect(), stats)
}

/// Shared mutable access to the result slots of [`par_map`], restricted
/// to the disjoint-index discipline documented there.
struct SendSlices<U>(*mut Option<U>);

// SAFETY: workers write disjoint indices and the owning Vec outlives the
// scope; the raw pointer itself is plain data.
unsafe impl<U: Send> Sync for SendSlices<U> {}
unsafe impl<U: Send> Send for SendSlices<U> {}

impl<U> SendSlices<U> {
    /// # Safety
    /// `i` must be in bounds and visited by exactly one thread.
    unsafe fn write(&self, i: usize, value: U) {
        unsafe { *self.0.add(i) = Some(value) };
    }
}

/// Number of mutex-striped shards in a [`ShardedIndex`]. A power of two
/// well above typical worker counts keeps contention negligible.
const SHARDS: usize = 64;

/// A concurrent `key -> u32 id` interning map, striped over a fixed number
/// of mutex-guarded shards selected by key hash.
///
/// Ids come from a single atomic counter, so they are dense but their
/// order depends on scheduling. Callers needing canonical numbering must
/// renumber sequentially afterwards; `get_or_insert` reports whether the
/// key was new to make that cheap.
///
/// Keys are hashed **once** per operation: the full hash picks the shard
/// and is stored alongside the key, so the inner map only re-mixes the
/// cached 8 bytes instead of re-walking a potentially deep key (state
/// terms are trees). Hashing uses the deterministic [`fx`] scheme — state
/// keys are never attacker-controlled, and Fx is several times cheaper
/// than SipHash on the deep tree keys this index interns.
pub struct ShardedIndex<K> {
    shards: Vec<Mutex<HashMap<PreHashed<K>, u32>>>,
    hasher: FxBuildHasher,
    next: AtomicU32,
}

/// A key bundled with its precomputed full hash.
struct PreHashed<K> {
    hash: u64,
    key: K,
}

impl<K> Hash for PreHashed<K> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

impl<K: Eq> PartialEq for PreHashed<K> {
    fn eq(&self, other: &Self) -> bool {
        self.hash == other.hash && self.key == other.key
    }
}

impl<K: Eq> Eq for PreHashed<K> {}

impl<K: Hash + Eq> Default for ShardedIndex<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Hash + Eq> ShardedIndex<K> {
    /// An empty index.
    pub fn new() -> Self {
        ShardedIndex {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hasher: FxBuildHasher::default(),
            next: AtomicU32::new(0),
        }
    }

    /// An empty index whose id counter starts at `first_id`, for growing
    /// an already-numbered set (e.g. BFS levels over existing states).
    pub fn starting_at(first_id: u32) -> Self {
        let idx = Self::new();
        idx.next.store(first_id, Ordering::Relaxed);
        idx
    }

    fn full_hash(&self, key: &K) -> u64 {
        self.hasher.hash_one(key)
    }

    /// Returns the id for `key`, allocating a fresh one if absent; the
    /// flag is `true` when this call inserted the key.
    pub fn get_or_insert(&self, key: K) -> (u32, bool) {
        let hash = self.full_hash(&key);
        let entry = PreHashed { hash, key };
        let mut map = self.shards[hash as usize % SHARDS].lock().expect("shard poisoned");
        match map.get(&entry) {
            Some(&id) => (id, false),
            None => {
                let id = self.next.fetch_add(1, Ordering::Relaxed);
                map.insert(entry, id);
                (id, true)
            }
        }
    }

    /// Looks up `key` without inserting.
    pub fn get(&self, key: &K) -> Option<u32>
    where
        K: Clone,
    {
        let hash = self.full_hash(key);
        let entry = PreHashed { hash, key: key.clone() };
        self.shards[hash as usize % SHARDS].lock().expect("shard poisoned").get(&entry).copied()
    }

    /// The next id that would be assigned — i.e. the size of the whole
    /// numbering space, counting any `starting_at` offset.
    pub fn next_id(&self) -> u32 {
        self.next.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..10_000).collect();
        let seq = par_map(Workers::sequential(), &items, |i, &x| x * 3 + i as u64);
        let par = par_map(Workers::new(4), &items, |i, &x| x * 3 + i as u64);
        assert_eq!(seq, par);
        assert_eq!(par[17], 17 * 3 + 17);
    }

    #[test]
    fn par_map_small_input_uses_sequential_path() {
        let items = [1, 2, 3];
        let out = par_map(Workers::new(8), &items, |_, &x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn par_map_min_distributes_small_batches() {
        let items: Vec<u32> = (0..48).collect();
        let seq =
            par_map_min(Workers::sequential(), 2, &items, |i, &x| u64::from(x) * 7 + i as u64);
        let par = par_map_min(Workers::new(4), 2, &items, |i, &x| u64::from(x) * 7 + i as u64);
        assert_eq!(seq, par);
    }

    #[test]
    fn par_map_handles_uneven_work() {
        let items: Vec<u32> = (0..2_000).collect();
        let out = par_map(Workers::new(3), &items, |_, &x| {
            // Skewed cost: later items spin longer.
            let mut acc = 0u64;
            for k in 0..(x as u64 % 97) {
                acc = acc.wrapping_add(k * k);
            }
            (x as u64, acc)
        });
        assert_eq!(out.len(), items.len());
        assert!(out.iter().enumerate().all(|(i, &(x, _))| x == i as u64));
    }

    #[test]
    fn par_map_stats_sequential_path_reports_one_worker() {
        let items: Vec<u32> = (0..10_000).collect();
        let (out, stats) = par_map_stats(Workers::sequential(), 2, &items, |_, &x| x);
        assert_eq!(out.len(), 10_000);
        assert_eq!(stats.workers, 1);
        assert_eq!(stats.grabs, 1);
        assert_eq!(stats.items, 10_000);
    }

    #[test]
    fn par_map_stats_parallel_matches_sequential() {
        let items: Vec<u64> = (0..5_000).collect();
        let (seq, _) = par_map_stats(Workers::sequential(), 2, &items, |i, &x| x + i as u64);
        let (par, stats) = par_map_stats(Workers::new(4), 2, &items, |i, &x| x + i as u64);
        assert_eq!(seq, par);
        assert!(stats.workers >= 1);
        assert!(stats.max_chunk >= stats.initial_chunk);
        assert!(stats.grabs >= 1);
    }

    #[test]
    fn sharded_index_ids_dense_and_stable() {
        let idx: ShardedIndex<u64> = ShardedIndex::new();
        let (a, new_a) = idx.get_or_insert(10);
        let (b, new_b) = idx.get_or_insert(20);
        let (a2, new_a2) = idx.get_or_insert(10);
        assert!(new_a && new_b && !new_a2);
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(idx.next_id(), 2);
        assert_eq!(idx.get(&20), Some(b));
        assert_eq!(idx.get(&30), None);
    }

    #[test]
    fn sharded_index_concurrent_inserts_no_duplicates() {
        let idx: ShardedIndex<u32> = ShardedIndex::starting_at(5);
        std::thread::scope(|scope| {
            for w in 0..8 {
                let idx = &idx;
                scope.spawn(move || {
                    for k in 0..1_000u32 {
                        // Heavy overlap between workers.
                        idx.get_or_insert((k + w) % 1_200);
                    }
                });
            }
        });
        let mut ids = HashSet::new();
        for k in 0..1_200u32 {
            if let Some(id) = idx.get(&k) {
                assert!(id >= 5, "counter starts at 5");
                assert!(ids.insert(id), "id {id} assigned twice");
            }
        }
        assert_eq!(ids.len() + 5, idx.next_id() as usize);
    }
}
