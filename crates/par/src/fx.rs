//! A fast, deterministic, std-only hasher for hot interning paths.
//!
//! The default `RandomState`/SipHash is DoS-resistant but costs ~1ns per
//! byte with a long setup; state dedup and label interning hash millions of
//! short keys that are never attacker-controlled. This module provides the
//! multiply-rotate scheme popularized by Firefox and rustc ("FxHash"):
//! one rotate, one xor, one multiply per 8-byte word.
//!
//! Determinism matters as much as speed here: the hasher has no per-process
//! seed, so shard selection, probe order and any hash-derived statistics
//! are reproducible across runs (the engine's bit-for-bit determinism
//! contract never depends on hash order, but reproducible internals make
//! performance measurements stable too).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The multiplier from the original Fx scheme (a 64-bit odd constant with
/// good bit dispersion; `0x51_7c_c1_b7_27_22_0a_95`).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher; see the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(buf));
        }
        // Mix in the length so zero-padded tails of different lengths
        // cannot collide when raw byte slices are hashed directly.
        self.add(bytes.len() as u64);
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add(i as u64);
        self.add((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`] (zero-sized, deterministic).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<K> = HashSet<K, FxBuildHasher>;

/// Hashes a byte slice in one call (used for fingerprint tables that store
/// the full 64-bit hash alongside each key).
#[inline]
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let a = hash_bytes(b"PUSH !1");
        let b = hash_bytes(b"PUSH !1");
        assert_eq!(a, b);
        assert_ne!(hash_bytes(b"PUSH !1"), hash_bytes(b"PUSH !2"));
    }

    #[test]
    fn zero_padded_tails_do_not_collide() {
        assert_ne!(hash_bytes(&[1]), hash_bytes(&[1, 0]));
        assert_ne!(hash_bytes(&[]), hash_bytes(&[0]));
        assert_ne!(hash_bytes(&[0; 8]), hash_bytes(&[0; 16]));
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        m.insert("a".into(), 1);
        assert_eq!(m.get("a"), Some(&1));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }
}
