//! On-the-fly checking for the safety/possibility/inevitability fragment
//! of the μ-calculus — the observer-style searches of CADP's on-the-fly
//! `evaluator`, generalized over any [`TransitionSystem`].
//!
//! Formulas matching one of the [`patterns`](crate::patterns) shapes
//! (deadlock freedom, `possibly`, `never`, `inevitably`) are decided by a
//! short-circuiting walk of the implicit state space: the first state that
//! settles the verdict stops the exploration, and a witness or
//! counterexample trace is reported. Formulas outside the fragment return
//! `None` from [`classify`] so callers can fall back to the eager bitset
//! fixpoint evaluator over a materialized LTS.

use crate::eval::EvalError;
use crate::formula::{ActionFormula, Formula};
use multival_lts::reach::{
    action_search, avoid_search, deadlock_search, ReachOptions, ReachStats, SearchOutcome,
};
use multival_lts::TransitionSystem;

/// The on-the-fly-checkable fragment: the four single-fixpoint shapes of
/// [`crate::patterns`], recognized modulo bound-variable name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fragment {
    /// `nu X. <true> true and [true] X` — no reachable deadlock.
    DeadlockFree,
    /// `mu X. <af> true or <true> X` — some execution performs `af`.
    Possibly(ActionFormula),
    /// `nu X. [af] false and [true] X` — no execution ever performs `af`.
    Never(ActionFormula),
    /// `mu X. <true> true and [not af] X` — every execution performs `af`.
    Inevitably(ActionFormula),
}

/// Recognizes the on-the-fly fragment. Returns `None` for any other
/// formula (including the nested-fixpoint templates), directing the
/// caller to the eager evaluator.
pub fn classify(f: &Formula) -> Option<Fragment> {
    use ActionFormula as AF;
    use Formula::*;
    match f {
        Nu(x, body) => match &**body {
            // nu X. <true> true and [true] X
            And(l, r) => match (&**l, &**r) {
                (Diamond(AF::Any, t), Box(AF::Any, v)) if matches!(&**t, True) && var_is(v, x) => {
                    Some(Fragment::DeadlockFree)
                }
                // nu X. [af] false and [true] X
                (Box(af, fls), Box(AF::Any, v)) if matches!(&**fls, False) && var_is(v, x) => {
                    Some(Fragment::Never(af.clone()))
                }
                _ => None,
            },
            _ => None,
        },
        Mu(x, body) => match &**body {
            // mu X. <af> true or <true> X
            Or(l, r) => match (&**l, &**r) {
                (Diamond(af, t), Diamond(AF::Any, v)) if matches!(&**t, True) && var_is(v, x) => {
                    Some(Fragment::Possibly(af.clone()))
                }
                _ => None,
            },
            // mu X. <true> true and [not af] X
            And(l, r) => match (&**l, &**r) {
                (Diamond(AF::Any, t), Box(AF::Not(af), v))
                    if matches!(&**t, True) && var_is(v, x) =>
                {
                    Some(Fragment::Inevitably((**af).clone()))
                }
                _ => None,
            },
            _ => None,
        },
        _ => None,
    }
}

fn var_is(f: &Formula, x: &str) -> bool {
    matches!(f, Formula::Var(v) if v == x)
}

/// The result of an on-the-fly check.
#[derive(Debug, Clone)]
pub struct OnTheFlyReport {
    /// Whether the formula holds in the initial state.
    pub holds: bool,
    /// A trace explaining the verdict: the counterexample when the formula
    /// fails, or (for `possibly`) the witnessing execution when it holds.
    pub trace: Option<Vec<String>>,
    /// How much of the state space the search actually visited.
    pub stats: ReachStats,
}

/// Checks `f` on the fly over `ts` if it falls in the recognized
/// fragment.
///
/// Returns `None` when the formula is outside the fragment (fall back to
/// materializing + [`crate::check`]). Returns an [`EvalError`] when the
/// state cap truncated the search before a verdict was reached.
pub fn check_on_the_fly<T: TransitionSystem>(
    ts: &T,
    f: &Formula,
    options: &ReachOptions,
) -> Option<Result<OnTheFlyReport, EvalError>> {
    let fragment = classify(f)?;
    Some(run_fragment(ts, &fragment, options))
}

/// Runs an already-classified fragment query.
pub fn run_fragment<T: TransitionSystem>(
    ts: &T,
    fragment: &Fragment,
    options: &ReachOptions,
) -> Result<OnTheFlyReport, EvalError> {
    let (outcome, holds_when_found) = match fragment {
        Fragment::DeadlockFree => (deadlock_search(ts, options), false),
        Fragment::Possibly(af) => (action_search(ts, |name| af.matches(name), options), true),
        Fragment::Never(af) => (action_search(ts, |name| af.matches(name), options), false),
        Fragment::Inevitably(af) => (avoid_search(ts, |name| af.matches(name), options), false),
    };
    report(outcome, holds_when_found)
}

fn report(outcome: SearchOutcome, holds_when_found: bool) -> Result<OnTheFlyReport, EvalError> {
    match outcome.witness {
        Some(trace) => {
            Ok(OnTheFlyReport { holds: holds_when_found, trace: Some(trace), stats: outcome.stats })
        }
        None if outcome.stats.truncated => Err(EvalError(format!(
            "on-the-fly search truncated after {} states with no verdict; raise the cap",
            outcome.stats.visited
        ))),
        None => Ok(OnTheFlyReport { holds: !holds_when_found, trace: None, stats: outcome.stats }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_formula;
    use crate::patterns;
    use multival_lts::equiv::lts_from_triples;

    #[test]
    fn classify_recognizes_all_templates() {
        let af = ActionFormula::pattern("win");
        assert_eq!(classify(&patterns::deadlock_free()), Some(Fragment::DeadlockFree));
        assert_eq!(classify(&patterns::possibly(af.clone())), Some(Fragment::Possibly(af.clone())));
        assert_eq!(classify(&patterns::never(af.clone())), Some(Fragment::Never(af.clone())));
        assert_eq!(
            classify(&patterns::inevitably(af.clone())),
            Some(Fragment::Inevitably(af.clone()))
        );
        // Nested fixpoints and other shapes stay with the eager evaluator.
        assert_eq!(classify(&patterns::always_possible(af.clone())), None);
        assert_eq!(classify(&patterns::no_before(af.clone(), af)), None);
        assert_eq!(classify(&Formula::True), None);
    }

    #[test]
    fn classify_ignores_bound_variable_name() {
        let f = parse_formula("nu Z. <true> true and [true] Z").expect("parses");
        assert_eq!(classify(&f), Some(Fragment::DeadlockFree));
    }

    #[test]
    fn fragment_verdicts_match_eager_evaluator() {
        let lts = lts_from_triples(&[(0, "a", 1), (1, "win", 2), (2, "spin", 2)]);
        let dead = lts_from_triples(&[(0, "a", 1)]);
        let formulas = [
            patterns::deadlock_free(),
            patterns::possibly(ActionFormula::pattern("win")),
            patterns::never(ActionFormula::pattern("win")),
            patterns::inevitably(ActionFormula::pattern("win")),
        ];
        for lts in [&lts, &dead] {
            for f in &formulas {
                let eager = crate::eval::check(lts, f).expect("eager check").holds;
                let otf = check_on_the_fly(lts, f, &ReachOptions::default())
                    .expect("in fragment")
                    .expect("not truncated");
                assert_eq!(otf.holds, eager, "formula {f:?} on {lts:?}");
            }
        }
    }

    #[test]
    fn counterexamples_are_traces() {
        let lts = lts_from_triples(&[(0, "a", 1), (1, "ERROR", 2), (2, "spin", 2)]);
        let r = check_on_the_fly(
            &lts,
            &patterns::never(ActionFormula::pattern("ERROR")),
            &ReachOptions::default(),
        )
        .expect("in fragment")
        .expect("not truncated");
        assert!(!r.holds);
        assert_eq!(r.trace, Some(vec!["a".to_owned(), "ERROR".to_owned()]));
    }

    #[test]
    fn truncation_is_an_error_not_a_verdict() {
        // A long tail hides the deadlock beyond the cap.
        let triples: Vec<(u32, String, u32)> =
            (0..50u32).map(|i| (i, format!("s{i}"), i + 1)).collect();
        let borrowed: Vec<(u32, &str, u32)> =
            triples.iter().map(|(s, l, t)| (*s, l.as_str(), *t)).collect();
        let lts = lts_from_triples(&borrowed);
        let out =
            check_on_the_fly(&lts, &patterns::deadlock_free(), &ReachOptions::with_max_states(5))
                .expect("in fragment");
        assert!(out.is_err(), "truncated search must not produce a verdict");
    }
}
