//! A compact fixed-capacity bit set used by the fixpoint evaluator.

/// A fixed-capacity set of state indices backed by `u64` words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An empty set over a universe of `len` elements.
    pub fn new(len: usize) -> Self {
        BitSet { words: vec![0; len.div_ceil(64)], len }
    }

    /// The full set over a universe of `len` elements.
    pub fn full(len: usize) -> Self {
        let mut s = BitSet { words: vec![!0u64; len.div_ceil(64)], len };
        s.trim();
        s
    }

    fn trim(&mut self) {
        let extra = self.words.len() * 64 - self.len;
        if extra > 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= !0u64 >> extra;
            }
        }
    }

    /// Universe size.
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Membership test.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn contains(&self, i: usize) -> bool {
        assert!(i < self.len, "index out of range");
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Inserts `i`; returns whether it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.len, "index out of range");
        let w = &mut self.words[i / 64];
        let bit = 1u64 << (i % 64);
        let fresh = *w & bit == 0;
        *w |= bit;
        fresh
    }

    /// Removes `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn remove(&mut self, i: usize) {
        assert!(i < self.len, "index out of range");
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Number of elements.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if the set has no elements.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// In-place union.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place complement (within the universe).
    pub fn complement(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.trim();
    }

    /// Iterates over members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&i| self.contains(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let mut s = BitSet::new(100);
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.insert(99));
        assert!(s.contains(3) && s.contains(99) && !s.contains(4));
        assert_eq!(s.count(), 2);
        s.remove(3);
        assert!(!s.contains(3));
    }

    #[test]
    fn full_and_complement_respect_capacity() {
        let f = BitSet::full(70);
        assert_eq!(f.count(), 70);
        let mut e = BitSet::new(70);
        e.complement();
        assert_eq!(e, f);
        e.complement();
        assert!(e.is_empty());
    }

    #[test]
    fn union_intersection() {
        let mut a = BitSet::new(10);
        a.insert(1);
        a.insert(2);
        let mut b = BitSet::new(10);
        b.insert(2);
        b.insert(3);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 3]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    #[should_panic(expected = "index out of range")]
    fn out_of_range_panics() {
        let s = BitSet::new(5);
        let _ = s.contains(5);
    }
}
