//! Modal μ-calculus formulas with action predicates (the core of CADP's
//! MCL/evaluator logic).

use std::fmt;

/// A predicate over transition labels.
///
/// Patterns are glob-style: `*` matches any (possibly empty) substring,
/// matched against the *full* label text (e.g. `"PUSH !1"`). `i` and `tau`
/// denote the internal action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ActionFormula {
    /// Matches every label (τ included).
    Any,
    /// Matches labels equal to / globbing the pattern.
    Pattern(String),
    /// Negation.
    Not(Box<ActionFormula>),
    /// Conjunction.
    And(Box<ActionFormula>, Box<ActionFormula>),
    /// Disjunction.
    Or(Box<ActionFormula>, Box<ActionFormula>),
}

impl ActionFormula {
    /// Pattern constructor.
    pub fn pattern(p: &str) -> Self {
        ActionFormula::Pattern(p.to_owned())
    }

    /// Does this predicate match label `name` (τ is spelled `i`)?
    pub fn matches(&self, name: &str) -> bool {
        match self {
            ActionFormula::Any => true,
            ActionFormula::Pattern(p) => {
                if (p == "i" || p.eq_ignore_ascii_case("tau")) && (name == "i") {
                    return true;
                }
                glob_match(p, name)
            }
            ActionFormula::Not(a) => !a.matches(name),
            ActionFormula::And(a, b) => a.matches(name) && b.matches(name),
            ActionFormula::Or(a, b) => a.matches(name) || b.matches(name),
        }
    }
}

impl fmt::Display for ActionFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActionFormula::Any => write!(f, "true"),
            ActionFormula::Pattern(p) => write!(f, "\"{p}\""),
            ActionFormula::Not(a) => write!(f, "not {a}"),
            ActionFormula::And(a, b) => write!(f, "({a} and {b})"),
            ActionFormula::Or(a, b) => write!(f, "({a} or {b})"),
        }
    }
}

/// Glob matching with `*` (any substring) and `?` (any one char).
pub fn glob_match(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    // Iterative two-pointer algorithm with backtracking on the last `*`.
    let (mut pi, mut ti) = (0usize, 0usize);
    let (mut star, mut mark) = (usize::MAX, 0usize);
    while ti < t.len() {
        if pi < p.len() && (p[pi] == '?' || p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == '*' {
            star = pi;
            mark = ti;
            pi += 1;
        } else if star != usize::MAX {
            pi = star + 1;
            mark += 1;
            ti = mark;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '*' {
        pi += 1;
    }
    pi == p.len()
}

/// A μ-calculus state formula.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Formula {
    /// Satisfied everywhere.
    True,
    /// Satisfied nowhere.
    False,
    /// Negation (must not capture fixpoint variables — checked at
    /// evaluation time for monotonicity).
    Not(Box<Formula>),
    /// Conjunction.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction.
    Or(Box<Formula>, Box<Formula>),
    /// `<af> φ` — some matching transition leads to a φ-state.
    Diamond(ActionFormula, Box<Formula>),
    /// `[af] φ` — all matching transitions lead to φ-states.
    Box(ActionFormula, Box<Formula>),
    /// Least fixpoint `mu X. φ`.
    Mu(String, Box<Formula>),
    /// Greatest fixpoint `nu X. φ`.
    Nu(String, Box<Formula>),
    /// Fixpoint variable.
    Var(String),
}

impl Formula {
    /// `<af> true` — a matching transition is enabled.
    pub fn enabled(af: ActionFormula) -> Formula {
        Formula::Diamond(af, Box::new(Formula::True))
    }

    /// Checks that every fixpoint variable occurs with the same negation
    /// polarity as its binder (syntactic monotonicity), a prerequisite for
    /// the fixpoints to exist.
    pub fn check_monotone(&self) -> Result<(), String> {
        fn walk(
            f: &Formula,
            polarity: bool,
            bound: &mut Vec<(String, bool)>,
        ) -> Result<(), String> {
            match f {
                Formula::True | Formula::False => Ok(()),
                Formula::Not(g) => walk(g, !polarity, bound),
                Formula::And(a, b) | Formula::Or(a, b) => {
                    walk(a, polarity, bound)?;
                    walk(b, polarity, bound)
                }
                Formula::Diamond(_, g) | Formula::Box(_, g) => walk(g, polarity, bound),
                Formula::Mu(x, g) | Formula::Nu(x, g) => {
                    bound.push((x.clone(), polarity));
                    let r = walk(g, polarity, bound);
                    bound.pop();
                    r
                }
                Formula::Var(x) => {
                    let binder = bound.iter().rev().find(|(y, _)| y == x).map(|&(_, p)| p);
                    match binder {
                        None => Err(format!("free fixpoint variable `{x}`")),
                        Some(p) if p != polarity => Err(format!(
                            "fixpoint variable `{x}` occurs under an odd number of \
                             negations relative to its binder"
                        )),
                        Some(_) => Ok(()),
                    }
                }
            }
        }
        walk(self, true, &mut Vec::new())
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "true"),
            Formula::False => write!(f, "false"),
            Formula::Not(g) => write!(f, "not ({g})"),
            Formula::And(a, b) => write!(f, "({a} and {b})"),
            Formula::Or(a, b) => write!(f, "({a} or {b})"),
            Formula::Diamond(af, g) => write!(f, "<{af}> {g}"),
            Formula::Box(af, g) => write!(f, "[{af}] {g}"),
            Formula::Mu(x, g) => write!(f, "mu {x}. {g}"),
            Formula::Nu(x, g) => write!(f, "nu {x}. {g}"),
            Formula::Var(x) => write!(f, "{x}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glob_basics() {
        assert!(glob_match("PUSH *", "PUSH !1"));
        assert!(glob_match("*", ""));
        assert!(glob_match("*", "anything"));
        assert!(!glob_match("PUSH *", "POP !1"));
        assert!(glob_match("P?P", "POP"));
        assert!(!glob_match("P?P", "PUSH"));
        assert!(glob_match("A*B*C", "AxxByyC"));
        assert!(!glob_match("A*B*C", "AxxByy"));
        assert!(glob_match("exit*", "exit !3"));
    }

    #[test]
    fn action_formula_matching() {
        let af = ActionFormula::Or(
            Box::new(ActionFormula::pattern("PUSH *")),
            Box::new(ActionFormula::pattern("POP *")),
        );
        assert!(af.matches("PUSH !0"));
        assert!(af.matches("POP !1"));
        assert!(!af.matches("i"));
        let not_tau = ActionFormula::Not(Box::new(ActionFormula::pattern("i")));
        assert!(not_tau.matches("PUSH !0"));
        assert!(!not_tau.matches("i"));
    }

    #[test]
    fn tau_aliases_match() {
        assert!(ActionFormula::pattern("tau").matches("i"));
        assert!(ActionFormula::pattern("i").matches("i"));
    }

    #[test]
    fn monotonicity_check() {
        // mu X. not X — rejected.
        let bad =
            Formula::Mu("X".into(), Box::new(Formula::Not(Box::new(Formula::Var("X".into())))));
        assert!(bad.check_monotone().is_err());
        // mu X. <a> X — fine.
        let good = Formula::Mu(
            "X".into(),
            Box::new(Formula::Diamond(
                ActionFormula::pattern("a"),
                Box::new(Formula::Var("X".into())),
            )),
        );
        assert!(good.check_monotone().is_ok());
        // not (mu X. <a> X) — accepted: X's polarity matches its binder's
        // (both are under the same outer negation).
        let negated = Formula::Not(Box::new(good));
        assert!(negated.check_monotone().is_ok());
        // Free variable rejected.
        let free = Formula::Var("Y".into());
        assert!(free.check_monotone().is_err());
    }
}
