//! # multival-mcl — modal μ-calculus model checking
//!
//! The temporal-logic side of the Multival functional-verification flow
//! (DATE'08): the Rust counterpart of CADP's `evaluator` on MCL formulas.
//!
//! * [`formula`] — μ-calculus state formulas over glob-style action
//!   predicates (`"PUSH !*"`);
//! * [`parser`] — a textual syntax (`mu X. <"win"> true or <true> X`);
//! * [`eval`] — bitset fixpoint evaluation (handles alternation by naive
//!   recomputation, which is exact and fast at case-study sizes);
//! * [`patterns`] — ready-made templates: deadlock freedom, safety,
//!   possibility, inevitability, responsiveness, precedence.
//!
//! # Examples
//!
//! ```
//! use multival_lts::equiv::lts_from_triples;
//! use multival_mcl::{check, parse_formula, patterns};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let lts = lts_from_triples(&[(0, "req", 1), (1, "ack", 0)]);
//! assert!(check(&lts, &patterns::deadlock_free())?.holds);
//! let f = parse_formula("nu X. [\"ack\"] false and [not \"req\"] X")?;
//! assert!(check(&lts, &f)?.holds); // no ack before req
//! # Ok(())
//! # }
//! ```

pub mod bitset;
pub mod eval;
pub mod formula;
pub mod onthefly;
pub mod parser;
pub mod patterns;

pub use bitset::BitSet;
pub use eval::{check, satisfying_states, CheckResult, EvalError};
pub use formula::{ActionFormula, Formula};
pub use onthefly::{check_on_the_fly, classify, Fragment, OnTheFlyReport};
pub use parser::{parse_formula, ParseFormulaError};
