//! Ready-made property templates — the handful of μ-calculus shapes that
//! cover most verification questions in the Multival case studies.

use crate::formula::{ActionFormula, Formula};

fn var(x: &str) -> Formula {
    Formula::Var(x.to_owned())
}

/// Deadlock freedom: `nu X. <true> true and [true] X` — every reachable
/// state has at least one outgoing transition.
pub fn deadlock_free() -> Formula {
    Formula::Nu(
        "X".into(),
        Box::new(Formula::And(
            Box::new(Formula::Diamond(ActionFormula::Any, Box::new(Formula::True))),
            Box::new(Formula::Box(ActionFormula::Any, Box::new(var("X")))),
        )),
    )
}

/// Possibility (EF): some execution eventually performs a matching action.
/// `mu X. <af> true or <true> X`.
pub fn possibly(af: ActionFormula) -> Formula {
    Formula::Mu(
        "X".into(),
        Box::new(Formula::Or(
            Box::new(Formula::Diamond(af, Box::new(Formula::True))),
            Box::new(Formula::Diamond(ActionFormula::Any, Box::new(var("X")))),
        )),
    )
}

/// Safety: no execution ever performs a matching action.
/// `nu X. [af] false and [true] X`.
pub fn never(af: ActionFormula) -> Formula {
    Formula::Nu(
        "X".into(),
        Box::new(Formula::And(
            Box::new(Formula::Box(af, Box::new(Formula::False))),
            Box::new(Formula::Box(ActionFormula::Any, Box::new(var("X")))),
        )),
    )
}

/// Inevitability (AF over finite or deadlock-free systems): every execution
/// eventually performs a matching action.
/// `mu X. <true> true and [not af] X` — all paths keep progressing until an
/// `af`-transition is the only way on.
pub fn inevitably(af: ActionFormula) -> Formula {
    Formula::Mu(
        "X".into(),
        Box::new(Formula::And(
            Box::new(Formula::Diamond(ActionFormula::Any, Box::new(Formula::True))),
            Box::new(Formula::Box(ActionFormula::Not(Box::new(af)), Box::new(var("X")))),
        )),
    )
}

/// Responsiveness: from every reachable state, a matching action remains
/// *possible* (no execution paints itself into a corner where `af` can
/// never happen again). `nu X. (mu Y. <af> true or <true> Y) and [true] X`.
pub fn always_possible(af: ActionFormula) -> Formula {
    Formula::Nu(
        "X".into(),
        Box::new(Formula::And(
            Box::new(Formula::Mu(
                "Y".into(),
                Box::new(Formula::Or(
                    Box::new(Formula::Diamond(af, Box::new(Formula::True))),
                    Box::new(Formula::Diamond(ActionFormula::Any, Box::new(var("Y")))),
                )),
            )),
            Box::new(Formula::Box(ActionFormula::Any, Box::new(var("X")))),
        )),
    )
}

/// Precedence: no matching `second` action can ever happen before a
/// matching `first` action has happened.
/// `nu X. [second] false and [not first] X`.
pub fn no_before(second: ActionFormula, first: ActionFormula) -> Formula {
    Formula::Nu(
        "X".into(),
        Box::new(Formula::And(
            Box::new(Formula::Box(second, Box::new(Formula::False))),
            Box::new(Formula::Box(ActionFormula::Not(Box::new(first)), Box::new(var("X")))),
        )),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::check;
    use multival_lts::equiv::lts_from_triples;

    #[test]
    fn deadlock_freedom_template() {
        let live = lts_from_triples(&[(0, "a", 1), (1, "b", 0)]);
        let dead = lts_from_triples(&[(0, "a", 1)]);
        assert!(check(&live, &deadlock_free()).expect("ok").holds);
        assert!(!check(&dead, &deadlock_free()).expect("ok").holds);
    }

    #[test]
    fn possibly_template() {
        let lts = lts_from_triples(&[(0, "a", 1), (1, "win", 2)]);
        assert!(check(&lts, &possibly(ActionFormula::pattern("win"))).expect("ok").holds);
        assert!(!check(&lts, &possibly(ActionFormula::pattern("lose"))).expect("ok").holds);
    }

    #[test]
    fn never_template() {
        let lts = lts_from_triples(&[(0, "a", 1), (1, "ERROR", 2)]);
        assert!(!check(&lts, &never(ActionFormula::pattern("ERROR"))).expect("ok").holds);
        assert!(check(&lts, &never(ActionFormula::pattern("PANIC"))).expect("ok").holds);
    }

    #[test]
    fn inevitably_template() {
        // 0 -a-> 1 -win-> 2 ; 2 loops: win is NOT inevitable from 2, but is
        // from 0 only if all paths hit it — path 0-a-1-win-2 always does.
        let lts = lts_from_triples(&[(0, "a", 1), (1, "win", 2), (2, "spin", 2)]);
        assert!(check(&lts, &inevitably(ActionFormula::pattern("win"))).expect("ok").holds);
        // Branch that avoids win forever.
        let avoid = lts_from_triples(&[(0, "a", 1), (1, "win", 2), (0, "spin", 0)]);
        assert!(!check(&avoid, &inevitably(ActionFormula::pattern("win"))).expect("ok").holds);
    }

    #[test]
    fn always_possible_template() {
        let ok = lts_from_triples(&[(0, "a", 1), (1, "b", 0)]);
        assert!(check(&ok, &always_possible(ActionFormula::pattern("b"))).expect("ok").holds);
        // A one-way door into a b-free region.
        let trap = lts_from_triples(&[(0, "b", 0), (0, "door", 1), (1, "spin", 1)]);
        assert!(!check(&trap, &always_possible(ActionFormula::pattern("b"))).expect("ok").holds);
    }

    #[test]
    fn no_before_template() {
        // ack before req is forbidden.
        let good = lts_from_triples(&[(0, "req", 1), (1, "ack", 0)]);
        assert!(
            check(&good, &no_before(ActionFormula::pattern("ack"), ActionFormula::pattern("req")))
                .expect("ok")
                .holds
        );
        let bad = lts_from_triples(&[(0, "ack", 1), (1, "req", 0)]);
        assert!(
            !check(&bad, &no_before(ActionFormula::pattern("ack"), ActionFormula::pattern("req")))
                .expect("ok")
                .holds
        );
    }
}
