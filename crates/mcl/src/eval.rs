//! Fixpoint evaluation of μ-calculus formulas over an LTS.

use crate::bitset::BitSet;
use crate::formula::{ActionFormula, Formula};
use multival_lts::{LabelId, Lts, StateId};
use std::collections::HashMap;
use std::fmt;

/// Error raised by [`check`] / [`satisfying_states`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalError(pub String);

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "model-checking error: {}", self.0)
    }
}

impl std::error::Error for EvalError {}

/// The outcome of a model-checking run.
#[derive(Debug, Clone)]
pub struct CheckResult {
    /// Does the initial state satisfy the formula?
    pub holds: bool,
    /// Number of satisfying states.
    pub satisfying: usize,
    /// Total states.
    pub total: usize,
}

/// Evaluates `formula` on `lts` and reports whether the *initial state*
/// satisfies it.
///
/// # Errors
///
/// Returns [`EvalError`] for non-monotone formulas or free variables.
///
/// # Examples
///
/// ```
/// use multival_lts::equiv::lts_from_triples;
/// use multival_mcl::{parse_formula, eval::check};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let lts = lts_from_triples(&[(0, "a", 1), (1, "b", 0)]);
/// let f = parse_formula("mu X. <\"b\"> true or <true> X")?; // b reachable
/// assert!(check(&lts, &f)?.holds);
/// # Ok(())
/// # }
/// ```
pub fn check(lts: &Lts, formula: &Formula) -> Result<CheckResult, EvalError> {
    let sat = satisfying_states(lts, formula)?;
    Ok(CheckResult {
        holds: sat.contains(lts.initial() as usize),
        satisfying: sat.count(),
        total: lts.num_states(),
    })
}

/// Evaluates `formula` on `lts`, returning the set of satisfying states.
///
/// # Errors
///
/// Returns [`EvalError`] for non-monotone formulas or free variables.
pub fn satisfying_states(lts: &Lts, formula: &Formula) -> Result<BitSet, EvalError> {
    formula.check_monotone().map_err(EvalError)?;
    let matcher = LabelMatcher::new(lts);
    let mut env: HashMap<String, BitSet> = HashMap::new();
    Ok(eval(lts, &matcher, formula, &mut env))
}

/// Caches which labels match each distinct action formula.
struct LabelMatcher<'a> {
    lts: &'a Lts,
}

impl<'a> LabelMatcher<'a> {
    fn new(lts: &'a Lts) -> Self {
        LabelMatcher { lts }
    }

    fn matching_labels(&self, af: &ActionFormula) -> Vec<bool> {
        self.lts.labels().iter().map(|(_, name)| af.matches(name)).collect()
    }
}

fn eval(
    lts: &Lts,
    matcher: &LabelMatcher<'_>,
    f: &Formula,
    env: &mut HashMap<String, BitSet>,
) -> BitSet {
    let n = lts.num_states();
    match f {
        Formula::True => BitSet::full(n),
        Formula::False => BitSet::new(n),
        Formula::Not(g) => {
            let mut s = eval(lts, matcher, g, env);
            s.complement();
            s
        }
        Formula::And(a, b) => {
            let mut s = eval(lts, matcher, a, env);
            s.intersect_with(&eval(lts, matcher, b, env));
            s
        }
        Formula::Or(a, b) => {
            let mut s = eval(lts, matcher, a, env);
            s.union_with(&eval(lts, matcher, b, env));
            s
        }
        Formula::Diamond(af, g) => {
            let target = eval(lts, matcher, g, env);
            modal(lts, matcher, af, &target, true)
        }
        Formula::Box(af, g) => {
            let target = eval(lts, matcher, g, env);
            modal(lts, matcher, af, &target, false)
        }
        Formula::Mu(x, g) => fixpoint(lts, matcher, x, g, env, false),
        Formula::Nu(x, g) => fixpoint(lts, matcher, x, g, env, true),
        Formula::Var(x) => env.get(x).cloned().unwrap_or_else(|| BitSet::new(n)),
    }
}

fn modal(
    lts: &Lts,
    matcher: &LabelMatcher<'_>,
    af: &ActionFormula,
    target: &BitSet,
    exists: bool,
) -> BitSet {
    let n = lts.num_states();
    let matching = matcher.matching_labels(af);
    let mut out = BitSet::new(n);
    for s in 0..n as StateId {
        let mut ok = !exists; // for-all starts true, exists starts false
        for t in lts.transitions_from(s) {
            if !matching[LabelId::index(t.label)] {
                continue;
            }
            let hit = target.contains(t.target as usize);
            if exists && hit {
                ok = true;
                break;
            }
            if !exists && !hit {
                ok = false;
                break;
            }
        }
        if ok {
            out.insert(s as usize);
        }
    }
    out
}

fn fixpoint(
    lts: &Lts,
    matcher: &LabelMatcher<'_>,
    x: &str,
    body: &Formula,
    env: &mut HashMap<String, BitSet>,
    greatest: bool,
) -> BitSet {
    let n = lts.num_states();
    let mut current = if greatest { BitSet::full(n) } else { BitSet::new(n) };
    loop {
        let shadowed = env.insert(x.to_owned(), current.clone());
        let next = eval(lts, matcher, body, env);
        match shadowed {
            Some(old) => {
                env.insert(x.to_owned(), old);
            }
            None => {
                env.remove(x);
            }
        }
        if next == current {
            return current;
        }
        current = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::ActionFormula as AF;
    use multival_lts::equiv::lts_from_triples;

    fn dia(p: &str, g: Formula) -> Formula {
        Formula::Diamond(AF::pattern(p), Box::new(g))
    }

    fn boxm(p: &str, g: Formula) -> Formula {
        Formula::Box(AF::pattern(p), Box::new(g))
    }

    #[test]
    fn diamond_and_box() {
        let lts = lts_from_triples(&[(0, "a", 1), (0, "b", 2), (1, "c", 2)]);
        // <a> true holds only at 0.
        let sat = satisfying_states(&lts, &dia("a", Formula::True)).expect("ok");
        assert_eq!(sat.iter().collect::<Vec<_>>(), vec![0]);
        // [a] false holds where no a-transition exists: 1, 2.
        let sat = satisfying_states(&lts, &boxm("a", Formula::False)).expect("ok");
        assert_eq!(sat.iter().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn mu_reachability() {
        let lts = lts_from_triples(&[(0, "a", 1), (1, "a", 2), (2, "win", 3)]);
        // mu X. <win> true or <true> X — "win is reachable".
        let f = Formula::Mu(
            "X".into(),
            Box::new(Formula::Or(
                Box::new(dia("win", Formula::True)),
                Box::new(Formula::Diamond(AF::Any, Box::new(Formula::Var("X".into())))),
            )),
        );
        let r = check(&lts, &f).expect("ok");
        assert!(r.holds);
        assert_eq!(r.satisfying, 3); // states 0, 1, 2 (not 3: nothing after)
    }

    #[test]
    fn nu_invariant() {
        // Deadlock freedom: nu X. <true> true and [true] X.
        let live = lts_from_triples(&[(0, "a", 1), (1, "b", 0)]);
        let dead = lts_from_triples(&[(0, "a", 1)]);
        let f = Formula::Nu(
            "X".into(),
            Box::new(Formula::And(
                Box::new(Formula::Diamond(AF::Any, Box::new(Formula::True))),
                Box::new(Formula::Box(AF::Any, Box::new(Formula::Var("X".into())))),
            )),
        );
        assert!(check(&live, &f).expect("ok").holds);
        assert!(!check(&dead, &f).expect("ok").holds);
    }

    #[test]
    fn nested_alternating_fixpoints() {
        // "Along the a-cycle, b remains possible infinitely often":
        // nu X. (mu Y. <b> true or <a> Y) and [a] X — exercised on a cycle
        // where b is only enabled at state 1.
        let lts = lts_from_triples(&[(0, "a", 1), (1, "a", 0), (1, "b", 2)]);
        let inner = Formula::Mu(
            "Y".into(),
            Box::new(Formula::Or(
                Box::new(dia("b", Formula::True)),
                Box::new(dia("a", Formula::Var("Y".into()))),
            )),
        );
        let f = Formula::Nu(
            "X".into(),
            Box::new(Formula::And(Box::new(inner), Box::new(boxm("a", Formula::Var("X".into()))))),
        );
        let r = check(&lts, &f).expect("ok");
        assert!(r.holds);
    }

    #[test]
    fn non_monotone_rejected() {
        let lts = lts_from_triples(&[(0, "a", 1)]);
        let bad =
            Formula::Mu("X".into(), Box::new(Formula::Not(Box::new(Formula::Var("X".into())))));
        assert!(check(&lts, &bad).is_err());
    }

    #[test]
    fn variable_shadowing() {
        // mu X. <a>(nu X. [b] X) or <true> X — inner X shadows outer.
        let lts = lts_from_triples(&[(0, "a", 1), (1, "b", 1)]);
        let inner = Formula::Nu("X".into(), Box::new(boxm("b", Formula::Var("X".into()))));
        let f = Formula::Mu(
            "X".into(),
            Box::new(Formula::Or(
                Box::new(Formula::Diamond(AF::pattern("a"), Box::new(inner))),
                Box::new(Formula::Diamond(AF::Any, Box::new(Formula::Var("X".into())))),
            )),
        );
        assert!(check(&lts, &f).expect("ok").holds);
    }

    #[test]
    fn tau_matching_in_modalities() {
        let lts = lts_from_triples(&[(0, "i", 1), (1, "a", 2)]);
        let f = dia("i", dia("a", Formula::True));
        assert!(check(&lts, &f).expect("ok").holds);
    }
}
