//! Parser for the textual μ-calculus syntax.
//!
//! # Grammar
//!
//! ```text
//! formula  := implies
//! implies  := or ("=>" implies)?                  -- right associative
//! or       := and ("or" and)*
//! and      := unary ("and" unary)*
//! unary    := "not" unary
//!           | "<" action ">" unary | "[" action "]" unary
//!           | "mu" IDENT "." formula | "nu" IDENT "." formula
//!           | "true" | "false" | IDENT | "(" formula ")"
//! action   := aor
//! aor      := aand ("or" aand)*
//! aand     := aunary ("and" aunary)*
//! aunary   := "not" aunary | "true" | STRING | IDENT | "(" action ")"
//! ```
//!
//! `STRING` is a double-quoted glob pattern matched against full label
//! texts (e.g. `"PUSH !*"`); a bare `IDENT` in action position is a pattern
//! without spaces. Variables are capitalized by convention but not by rule.

use crate::formula::{ActionFormula, Formula};
use std::fmt;

/// Formula parsing error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFormulaError {
    /// Byte offset of the error.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseFormulaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "formula parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseFormulaError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Kw(&'static str), // true false not and or mu nu
    Lt,
    Gt,
    LBrack,
    RBrack,
    LParen,
    RParen,
    Dot,
    Implies,
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Str(s) => write!(f, "pattern \"{s}\""),
            Tok::Kw(k) => write!(f, "`{k}`"),
            Tok::Lt => write!(f, "`<`"),
            Tok::Gt => write!(f, "`>`"),
            Tok::LBrack => write!(f, "`[`"),
            Tok::RBrack => write!(f, "`]`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::Dot => write!(f, "`.`"),
            Tok::Implies => write!(f, "`=>`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

fn lex(src: &str) -> Result<Vec<(Tok, usize)>, ParseFormulaError> {
    let b = src.as_bytes();
    let mut i = 0;
    let mut out = Vec::new();
    while i < b.len() {
        let c = b[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '"' => {
                let start = i + 1;
                let mut j = start;
                while j < b.len() && b[j] != b'"' {
                    j += 1;
                }
                if j >= b.len() {
                    return Err(ParseFormulaError {
                        offset: i,
                        message: "unterminated string".into(),
                    });
                }
                out.push((Tok::Str(src[start..j].to_owned()), i));
                i = j + 1;
            }
            '<' => {
                out.push((Tok::Lt, i));
                i += 1;
            }
            '>' => {
                out.push((Tok::Gt, i));
                i += 1;
            }
            '[' => {
                out.push((Tok::LBrack, i));
                i += 1;
            }
            ']' => {
                out.push((Tok::RBrack, i));
                i += 1;
            }
            '(' => {
                out.push((Tok::LParen, i));
                i += 1;
            }
            ')' => {
                out.push((Tok::RParen, i));
                i += 1;
            }
            '.' => {
                out.push((Tok::Dot, i));
                i += 1;
            }
            '=' if i + 1 < b.len() && b[i + 1] == b'>' => {
                out.push((Tok::Implies, i));
                i += 2;
            }
            _ if c.is_ascii_alphanumeric() || c == '_' => {
                let start = i;
                while i < b.len() {
                    let ch = b[i] as char;
                    if ch.is_ascii_alphanumeric()
                        || ch == '_'
                        || ch == '!'
                        || ch == '*'
                        || ch == '?'
                    {
                        i += 1;
                    } else {
                        break;
                    }
                }
                let w = &src[start..i];
                let tok = match w {
                    "true" | "false" | "not" | "and" | "or" | "mu" | "nu" => Tok::Kw(match w {
                        "true" => "true",
                        "false" => "false",
                        "not" => "not",
                        "and" => "and",
                        "or" => "or",
                        "mu" => "mu",
                        _ => "nu",
                    }),
                    _ => Tok::Ident(w.to_owned()),
                };
                out.push((tok, start));
            }
            '*' | '?' | '!' => {
                // Bare glob fragment (e.g. `*` alone).
                let start = i;
                while i < b.len() {
                    let ch = b[i] as char;
                    if ch.is_ascii_alphanumeric()
                        || ch == '_'
                        || ch == '!'
                        || ch == '*'
                        || ch == '?'
                    {
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.push((Tok::Ident(src[start..i].to_owned()), start));
            }
            other => {
                return Err(ParseFormulaError {
                    offset: i,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    out.push((Tok::Eof, src.len()));
    Ok(out)
}

struct P {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

impl P {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].0
    }

    fn offset(&self) -> usize {
        self.toks[self.pos].1
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].0.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok) -> Result<(), ParseFormulaError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(format!("expected {t}, found {}", self.peek())))
        }
    }

    fn err(&self, message: String) -> ParseFormulaError {
        ParseFormulaError { offset: self.offset(), message }
    }

    fn formula(&mut self) -> Result<Formula, ParseFormulaError> {
        let lhs = self.or_formula()?;
        if self.eat(&Tok::Implies) {
            let rhs = self.formula()?;
            // a => b ≡ not a or b
            return Ok(Formula::Or(Box::new(Formula::Not(Box::new(lhs))), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn or_formula(&mut self) -> Result<Formula, ParseFormulaError> {
        let mut acc = self.and_formula()?;
        while self.eat(&Tok::Kw("or")) {
            let rhs = self.and_formula()?;
            acc = Formula::Or(Box::new(acc), Box::new(rhs));
        }
        Ok(acc)
    }

    fn and_formula(&mut self) -> Result<Formula, ParseFormulaError> {
        let mut acc = self.unary()?;
        while self.eat(&Tok::Kw("and")) {
            let rhs = self.unary()?;
            acc = Formula::And(Box::new(acc), Box::new(rhs));
        }
        Ok(acc)
    }

    fn unary(&mut self) -> Result<Formula, ParseFormulaError> {
        match self.bump() {
            Tok::Kw("true") => Ok(Formula::True),
            Tok::Kw("false") => Ok(Formula::False),
            Tok::Kw("not") => Ok(Formula::Not(Box::new(self.unary()?))),
            Tok::Kw("mu") => {
                let x = self.ident()?;
                self.expect(&Tok::Dot)?;
                Ok(Formula::Mu(x, Box::new(self.formula()?)))
            }
            Tok::Kw("nu") => {
                let x = self.ident()?;
                self.expect(&Tok::Dot)?;
                Ok(Formula::Nu(x, Box::new(self.formula()?)))
            }
            Tok::Lt => {
                let af = self.action()?;
                self.expect(&Tok::Gt)?;
                Ok(Formula::Diamond(af, Box::new(self.unary()?)))
            }
            Tok::LBrack => {
                let af = self.action()?;
                self.expect(&Tok::RBrack)?;
                Ok(Formula::Box(af, Box::new(self.unary()?)))
            }
            Tok::LParen => {
                let f = self.formula()?;
                self.expect(&Tok::RParen)?;
                Ok(f)
            }
            Tok::Ident(x) => Ok(Formula::Var(x)),
            other => Err(self.err(format!("expected a formula, found {other}"))),
        }
    }

    fn ident(&mut self) -> Result<String, ParseFormulaError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected an identifier, found {other}"))),
        }
    }

    fn action(&mut self) -> Result<ActionFormula, ParseFormulaError> {
        let mut acc = self.action_and()?;
        while self.eat(&Tok::Kw("or")) {
            let rhs = self.action_and()?;
            acc = ActionFormula::Or(Box::new(acc), Box::new(rhs));
        }
        Ok(acc)
    }

    fn action_and(&mut self) -> Result<ActionFormula, ParseFormulaError> {
        let mut acc = self.action_unary()?;
        while self.eat(&Tok::Kw("and")) {
            let rhs = self.action_unary()?;
            acc = ActionFormula::And(Box::new(acc), Box::new(rhs));
        }
        Ok(acc)
    }

    fn action_unary(&mut self) -> Result<ActionFormula, ParseFormulaError> {
        match self.bump() {
            Tok::Kw("true") => Ok(ActionFormula::Any),
            Tok::Kw("not") => Ok(ActionFormula::Not(Box::new(self.action_unary()?))),
            Tok::Str(p) => Ok(ActionFormula::Pattern(p)),
            Tok::Ident(p) => Ok(ActionFormula::Pattern(p)),
            Tok::LParen => {
                let a = self.action()?;
                self.expect(&Tok::RParen)?;
                Ok(a)
            }
            other => Err(self.err(format!("expected an action formula, found {other}"))),
        }
    }
}

/// Parses a μ-calculus formula.
///
/// # Errors
///
/// Returns [`ParseFormulaError`] on syntax errors.
///
/// # Examples
///
/// ```
/// use multival_mcl::parse_formula;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let deadlock_free = parse_formula("nu X. <true> true and [true] X")?;
/// let safety = parse_formula("[\"ERROR *\"] false")?;
/// # let _ = (deadlock_free, safety);
/// # Ok(())
/// # }
/// ```
pub fn parse_formula(src: &str) -> Result<Formula, ParseFormulaError> {
    let toks = lex(src)?;
    let mut p = P { toks, pos: 0 };
    let f = p.formula()?;
    if p.peek() != &Tok::Eof {
        return Err(p.err(format!("unexpected {} after formula", p.peek())));
    }
    Ok(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::check;
    use multival_lts::equiv::lts_from_triples;

    #[test]
    fn parses_and_checks_reachability() {
        let lts = lts_from_triples(&[(0, "a", 1), (1, "b", 2)]);
        let f = parse_formula("mu X. <b> true or <true> X").expect("parses");
        assert!(check(&lts, &f).expect("evals").holds);
        let g = parse_formula("mu X. <c> true or <true> X").expect("parses");
        assert!(!check(&lts, &g).expect("evals").holds);
    }

    #[test]
    fn quoted_patterns_with_offers() {
        let lts = lts_from_triples(&[(0, "PUSH !1", 1)]);
        let f = parse_formula("<\"PUSH !*\"> true").expect("parses");
        assert!(check(&lts, &f).expect("evals").holds);
        let g = parse_formula("<\"POP !*\"> true").expect("parses");
        assert!(!check(&lts, &g).expect("evals").holds);
    }

    #[test]
    fn implication_desugars() {
        let f = parse_formula("true => false").expect("parses");
        assert_eq!(
            f,
            Formula::Or(Box::new(Formula::Not(Box::new(Formula::True))), Box::new(Formula::False))
        );
    }

    #[test]
    fn action_connectives() {
        let lts = lts_from_triples(&[(0, "a", 1), (0, "i", 2)]);
        let f = parse_formula("<not i> true").expect("parses");
        assert!(check(&lts, &f).expect("evals").holds);
        let g = parse_formula("[not (a or i)] false").expect("parses");
        assert!(check(&lts, &g).expect("evals").holds);
    }

    #[test]
    fn errors_carry_offsets() {
        let err = parse_formula("mu X X").expect_err("missing dot");
        assert!(err.message.contains("expected `.`"));
        assert!(parse_formula("<a true").is_err());
        assert!(parse_formula("\"unterminated").is_err());
        assert!(parse_formula("true extra").is_err());
    }

    #[test]
    fn precedence_and_binds_tighter_than_or() {
        // false and false or true ≡ (false and false) or true = true.
        let lts = lts_from_triples(&[(0, "a", 1)]);
        let f = parse_formula("false and false or true").expect("parses");
        assert!(check(&lts, &f).expect("evals").holds);
    }
}
