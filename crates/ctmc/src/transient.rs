//! Transient analysis by uniformization (the CADP `bcg_transient` role).
//!
//! The state distribution at time `t` is
//! `π(t) = Σ_k PoissonPMF(Λt, k) · π(0) Pᵏ` where `P = I + Q/Λ` is the
//! uniformized jump matrix and `Λ ≥ max exit rate`. The Poisson series is
//! truncated once the accumulated mass exceeds `1 − ε`.
//!
//! The vector-matrix kernel runs on the CSR arrays of
//! [`Csr`]; [`crate::dense`] drives the same Poisson
//! machinery through a dense kernel as a cross-validation reference.

use crate::ctmc::{Ctmc, CtmcError, State};
use crate::sparse::Csr;

/// Options for uniformization.
#[derive(Debug, Clone, Copy)]
pub struct TransientOptions {
    /// Mass of the Poisson tail allowed to be dropped.
    pub epsilon: f64,
    /// Hard cap on the number of Poisson terms.
    pub max_terms: usize,
}

impl Default for TransientOptions {
    fn default() -> Self {
        TransientOptions { epsilon: 1e-12, max_terms: 2_000_000 }
    }
}

/// Shared Poisson-weighted accumulation: `Σ_k w_k(Λt) · π(0) Pᵏ`, where one
/// application of `P` is performed by `step(current, next)`. The truncation
/// is adaptive: in the regular regime the series stops once `1 − ε` of the
/// Poisson mass is covered; when `e^{−Λt}` underflows, weights are carried
/// on a floating scale and the series stops once they have decayed past the
/// peak (Fox–Glynn-lite).
pub(crate) fn uniformize_with(
    initial: Vec<f64>,
    max_exit: f64,
    t: f64,
    options: &TransientOptions,
    mut step: impl FnMut(&[f64], &mut [f64]),
) -> Result<Vec<f64>, CtmcError> {
    if t < 0.0 || !t.is_finite() {
        return Err(CtmcError::Undefined(format!("transient time {t} must be finite and >= 0")));
    }
    let mut current = initial;
    if t == 0.0 || max_exit == 0.0 {
        return Ok(current); // nothing can move
    }
    // A little slack above the max exit rate improves convergence of P^k.
    let q = max_exit * 1.02 * t;

    let n = current.len();
    let mut result = vec![0.0; n];
    let mut next = vec![0.0; n];

    // Stable Poisson pmf recurrence: w_0 = e^-q, w_{k} = w_{k-1} * q / k.
    // For large q, e^-q underflows; work with a scaled weight and renormalize
    // at the end (standard Fox-Glynn-lite trick).
    let mut w = if q < 700.0 { (-q).exp() } else { 0.0 };
    let underflow_mode = w == 0.0;
    if underflow_mode {
        // Start from a tiny representable weight; we renormalize by the true
        // total at the end, so only relative weights matter.
        w = f64::MIN_POSITIVE * 1e16;
    }
    let mut weight_sum = 0.0;
    let mut covered = 0.0;
    let mut k = 0usize;
    loop {
        // result += w * current
        for i in 0..n {
            result[i] += w * current[i];
        }
        weight_sum += w;
        if !underflow_mode {
            covered += w;
            if covered >= 1.0 - options.epsilon {
                break;
            }
        } else {
            // In scaled mode, stop when the weights have decayed far past
            // their peak (k > q and w is negligible vs the running sum).
            if (k as f64) > q && w < weight_sum * options.epsilon {
                break;
            }
        }
        k += 1;
        if k > options.max_terms {
            return Err(CtmcError::NoConvergence {
                what: "uniformization",
                iterations: k,
                residual: 1.0 - covered,
            });
        }
        step(&current, &mut next);
        std::mem::swap(&mut current, &mut next);
        w *= q / k as f64;
        // Rescale if the weight grows too large (q big, pre-peak).
        if w > 1e280 {
            for r in result.iter_mut() {
                *r /= 1e280;
            }
            weight_sum /= 1e280;
            w /= 1e280;
        }
    }
    // Renormalize: in un-scaled mode weight_sum ≈ 1 already; in scaled mode
    // this maps scaled weights back to probabilities.
    if weight_sum > 0.0 {
        for r in &mut result {
            *r /= weight_sum;
        }
    }
    Ok(result)
}

/// Distribution over states at time `t` on a prebuilt CSR view, starting
/// from `initial`. Use this form to amortize the CSR build over repeated
/// time points (see [`absorption_cdf`]).
///
/// # Errors
///
/// As [`transient`].
pub fn transient_csr(
    csr: &Csr,
    initial: Vec<f64>,
    t: f64,
    options: &TransientOptions,
) -> Result<Vec<f64>, CtmcError> {
    let max_exit = csr.max_exit_rate();
    let lambda = max_exit * 1.02;
    uniformize_with(initial, max_exit, t, options, |v, out| csr.uniform_step(lambda, v, out))
}

/// Distribution over states at time `t`, starting from the chain's initial
/// distribution.
///
/// # Errors
///
/// Returns [`CtmcError::NoConvergence`] if `max_terms` Poisson terms do not
/// cover `1 − ε` of the mass, and [`CtmcError::Undefined`] for negative `t`.
///
/// # Examples
///
/// ```
/// use multival_ctmc::{CtmcBuilder, transient::{transient, TransientOptions}};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Single exponential decay at rate 1: P(still in 0 at t) = e^-t.
/// let mut b = CtmcBuilder::new(2);
/// b.rate(0, 1, 1.0)?;
/// let p = transient(&b.build()?, 1.0, &TransientOptions::default())?;
/// assert!((p[0] - (-1.0f64).exp()).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn transient(ctmc: &Ctmc, t: f64, options: &TransientOptions) -> Result<Vec<f64>, CtmcError> {
    transient_csr(&Csr::new(ctmc), ctmc.initial_dense(), t, options)
}

/// Probability that the chain is in any state of `targets` at time `t`.
///
/// # Errors
///
/// Propagates [`transient`] errors.
pub fn transient_probability(
    ctmc: &Ctmc,
    targets: &[State],
    t: f64,
    options: &TransientOptions,
) -> Result<f64, CtmcError> {
    let p = transient(ctmc, t, options)?;
    Ok(targets.iter().map(|&s| p[s]).sum())
}

/// Cumulative distribution function of the time to absorption when the
/// absorbing states are exactly `targets` (made absorbing implicitly by the
/// caller). Evaluates `P(T ≤ t_i)` for each requested time point. The CSR
/// view is built once and reused across time points.
///
/// # Errors
///
/// Propagates [`transient`] errors.
pub fn absorption_cdf(
    ctmc: &Ctmc,
    targets: &[State],
    times: &[f64],
    options: &TransientOptions,
) -> Result<Vec<f64>, CtmcError> {
    let csr = Csr::new(ctmc);
    times
        .iter()
        .map(|&t| {
            let p = transient_csr(&csr, ctmc.initial_dense(), t, options)?;
            Ok(targets.iter().map(|&s| p[s]).sum())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctmc::CtmcBuilder;

    #[test]
    fn exponential_decay() {
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, 2.0).unwrap();
        let c = b.build().unwrap();
        for t in [0.0, 0.1, 0.5, 1.0, 3.0] {
            let p = transient(&c, t, &TransientOptions::default()).expect("converges");
            assert!(
                (p[0] - (-2.0 * t).exp()).abs() < 1e-9,
                "t={t}: {} vs {}",
                p[0],
                (-2.0f64 * t).exp()
            );
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn erlang_2_cdf() {
        // Two-phase Erlang with rate 3: P(absorbed by t) = 1 - e^-3t (1 + 3t).
        let mut b = CtmcBuilder::new(3);
        b.rate(0, 1, 3.0).unwrap();
        b.rate(1, 2, 3.0).unwrap();
        let c = b.build().unwrap();
        for t in [0.2, 0.5, 1.0, 2.0] {
            let p = transient_probability(&c, &[2], t, &TransientOptions::default())
                .expect("converges");
            let want = 1.0 - (-3.0 * t).exp() * (1.0 + 3.0 * t);
            assert!((p - want).abs() < 1e-9, "t={t}: {p} vs {want}");
        }
    }

    #[test]
    fn long_horizon_approaches_steady_state() {
        // 2-state flip-flop: steady state (1/3, 2/3) for rates (2, 1).
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, 2.0).unwrap();
        b.rate(1, 0, 1.0).unwrap();
        let c = b.build().unwrap();
        let p = transient(&c, 50.0, &TransientOptions::default()).expect("converges");
        assert!((p[0] - 1.0 / 3.0).abs() < 1e-6);
        assert!((p[1] - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn large_q_stays_stable() {
        // Fast rates and long horizon → large Λt; scaled mode must not
        // produce NaN and must still sum to 1.
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, 500.0).unwrap();
        b.rate(1, 0, 250.0).unwrap();
        let c = b.build().unwrap();
        let p = transient(&c, 10.0, &TransientOptions::default()).expect("converges");
        assert!(p.iter().all(|x| x.is_finite()));
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-6);
        assert!((p[0] - 1.0 / 3.0).abs() < 1e-4);
    }

    #[test]
    fn negative_time_rejected() {
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, 1.0).unwrap();
        let c = b.build().unwrap();
        assert!(transient(&c, -1.0, &TransientOptions::default()).is_err());
    }

    #[test]
    fn cdf_is_monotone() {
        let mut b = CtmcBuilder::new(3);
        b.rate(0, 1, 1.0).unwrap();
        b.rate(1, 2, 2.0).unwrap();
        let c = b.build().unwrap();
        let times: Vec<f64> = (0..20).map(|i| i as f64 * 0.25).collect();
        let cdf = absorption_cdf(&c, &[2], &times, &TransientOptions::default()).expect("ok");
        for w in cdf.windows(2) {
            assert!(w[1] >= w[0] - 1e-12, "CDF must be monotone: {w:?}");
        }
    }
}
