//! Compressed sparse row (CSR) kernels for the rate matrix.
//!
//! The builder-facing [`Ctmc`] stores one `Vec<RateTransition>`
//! per state, which is convenient to grow but costly to traverse: every hot
//! loop pays a pointer chase per state and recomputes exit rates by
//! summation. [`Csr`] flattens the matrix once into three parallel arrays
//! (`row_ptr`, `col`, `rate`) with precomputed per-state exit rates, so the
//! iterative solvers ([`steady`](crate::steady), [`transient`](crate::transient),
//! [`rewards`](crate::rewards)) and the Monte-Carlo engine ([`mc`](crate::mc))
//! stream through contiguous memory.

use crate::ctmc::Ctmc;

/// Sentinel in the label slice of [`Csr::row_labeled`] for an unlabeled
/// transition.
pub const NO_LABEL: u32 = u32::MAX;

/// Immutable CSR view of a CTMC's rate matrix, with exit rates precomputed.
#[derive(Debug, Clone)]
pub struct Csr {
    n: usize,
    /// `row_ptr[s]..row_ptr[s+1]` indexes the transitions of state `s`.
    row_ptr: Vec<usize>,
    /// Transition targets.
    col: Vec<u32>,
    /// Transition rates (positive).
    rate: Vec<f64>,
    /// Transition label ids ([`NO_LABEL`] when unlabeled).
    label: Vec<u32>,
    /// Per-state exit rates `E(s) = Σ rate(s → ·)`.
    exit: Vec<f64>,
    /// `max_s E(s)`.
    max_exit: f64,
}

impl Csr {
    /// Flattens `ctmc` into CSR form. Transition order within a row is
    /// preserved, so row scans visit transitions exactly as
    /// [`Ctmc::transitions_from`] would.
    #[must_use]
    pub fn new(ctmc: &Ctmc) -> Csr {
        let n = ctmc.num_states();
        let nnz = ctmc.num_transitions();
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col = Vec::with_capacity(nnz);
        let mut rate = Vec::with_capacity(nnz);
        let mut label = Vec::with_capacity(nnz);
        let mut exit = Vec::with_capacity(n);
        let mut max_exit = 0.0f64;
        row_ptr.push(0);
        for s in 0..n {
            let mut e = 0.0;
            for t in ctmc.transitions_from(s) {
                col.push(t.target as u32);
                rate.push(t.rate);
                label.push(t.label.unwrap_or(NO_LABEL));
                e += t.rate;
            }
            row_ptr.push(col.len());
            max_exit = max_exit.max(e);
            exit.push(e);
        }
        Csr { n, row_ptr, col, rate, label, exit, max_exit }
    }

    /// Number of states.
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.n
    }

    /// Number of transitions.
    #[must_use]
    pub fn num_transitions(&self) -> usize {
        self.col.len()
    }

    /// Exit rate of `s` (precomputed; no summation).
    #[must_use]
    pub fn exit(&self, s: usize) -> f64 {
        self.exit[s]
    }

    /// All exit rates.
    #[must_use]
    pub fn exit_rates(&self) -> &[f64] {
        &self.exit
    }

    /// Largest exit rate over all states.
    #[must_use]
    pub fn max_exit_rate(&self) -> f64 {
        self.max_exit
    }

    /// The `(targets, rates)` slices of one row.
    #[must_use]
    pub fn row(&self, s: usize) -> (&[u32], &[f64]) {
        let (lo, hi) = (self.row_ptr[s], self.row_ptr[s + 1]);
        (&self.col[lo..hi], &self.rate[lo..hi])
    }

    /// The `(targets, rates, labels)` slices of one row.
    #[must_use]
    pub fn row_labeled(&self, s: usize) -> (&[u32], &[f64], &[u32]) {
        let (lo, hi) = (self.row_ptr[s], self.row_ptr[s + 1]);
        (&self.col[lo..hi], &self.rate[lo..hi], &self.label[lo..hi])
    }

    /// One step of the uniformized chain: `out = v · P` with `P = I + Q/Λ`.
    ///
    /// This is the inner kernel of uniformization — a vector-matrix product
    /// over the flat arrays with the self-loop mass `1 − E(s)/Λ` folded in.
    pub fn uniform_step(&self, lambda: f64, v: &[f64], out: &mut [f64]) {
        out.fill(0.0);
        for s in 0..self.n {
            let p = v[s];
            if p == 0.0 {
                continue;
            }
            out[s] += p * (1.0 - self.exit[s] / lambda);
            let (cols, rates) = self.row(s);
            let scale = p / lambda;
            for (&c, &r) in cols.iter().zip(rates) {
                out[c as usize] += scale * r;
            }
        }
    }

    /// Samples the successor of `s` given a uniform draw `u ∈ [0, 1)`:
    /// scans the row until the cumulative rate passes `u · E(s)`.
    ///
    /// Must not be called on absorbing states (`exit(s) == 0`).
    #[must_use]
    pub fn sample_successor(&self, s: usize, u: f64) -> usize {
        let (cols, rates) = self.row(s);
        debug_assert!(!cols.is_empty(), "sample_successor on absorbing state {s}");
        let threshold = u * self.exit[s];
        let mut acc = 0.0;
        for (&c, &r) in cols.iter().zip(rates) {
            acc += r;
            if u_below(threshold, acc) {
                return c as usize;
            }
        }
        // Rounding slack: fall through to the last transition.
        cols[cols.len() - 1] as usize
    }
}

/// Strict comparison hoisted out so the sampling loop stays branch-simple.
#[inline]
fn u_below(threshold: f64, acc: f64) -> bool {
    threshold < acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctmc::CtmcBuilder;

    fn chain() -> Ctmc {
        let mut b = CtmcBuilder::new(3);
        b.rate_labeled(0, 1, 2.0, "up").unwrap();
        b.rate(1, 0, 1.0).unwrap();
        b.rate(1, 2, 3.0).unwrap();
        b.rate(2, 0, 0.5).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn csr_matches_ctmc_structure() {
        let c = chain();
        let csr = Csr::new(&c);
        assert_eq!(csr.num_states(), 3);
        assert_eq!(csr.num_transitions(), 4);
        for s in 0..3 {
            assert!((csr.exit(s) - c.exit_rate(s)).abs() < 1e-15);
            let (cols, rates) = csr.row(s);
            let ts = c.transitions_from(s);
            assert_eq!(cols.len(), ts.len());
            for (i, t) in ts.iter().enumerate() {
                assert_eq!(cols[i] as usize, t.target);
                assert!((rates[i] - t.rate).abs() < 1e-15);
            }
        }
        assert!((csr.max_exit_rate() - 4.0).abs() < 1e-15);
        let (_, _, labels) = csr.row_labeled(0);
        assert_eq!(labels, &[c.label_id("up").unwrap()]);
    }

    #[test]
    fn uniform_step_preserves_mass() {
        let c = chain();
        let csr = Csr::new(&c);
        let lambda = csr.max_exit_rate() * 1.02;
        let v = vec![0.2, 0.5, 0.3];
        let mut out = vec![0.0; 3];
        csr.uniform_step(lambda, &v, &mut out);
        assert!((out.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Hand-check state 0's inflow: stay + from 1 + from 2.
        let want = 0.2 * (1.0 - 2.0 / lambda) + 0.5 * (1.0 / lambda) + 0.3 * (0.5 / lambda);
        assert!((out[0] - want).abs() < 1e-12);
    }

    #[test]
    fn sample_successor_covers_row() {
        let c = chain();
        let csr = Csr::new(&c);
        // State 1 has successors 0 (rate 1) and 2 (rate 3): the split point
        // is at u = 0.25.
        assert_eq!(csr.sample_successor(1, 0.0), 0);
        assert_eq!(csr.sample_successor(1, 0.24), 0);
        assert_eq!(csr.sample_successor(1, 0.26), 2);
        assert_eq!(csr.sample_successor(1, 0.9999), 2);
    }
}
