//! Streaming statistics for the Monte-Carlo engine.
//!
//! [`Welford`] maintains count/mean/variance in one pass with the classic
//! numerically-stable update; [`normal_quantile`] supplies the z-score for
//! confidence intervals without a statistics dependency.

/// One-pass mean/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Copy, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Empty accumulator.
    #[must_use]
    pub fn new() -> Welford {
        Welford::default()
    }

    /// Folds one observation in.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 below two observations).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Standard error of the mean.
    #[must_use]
    pub fn std_error(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.variance() / self.n as f64).sqrt()
        }
    }

    /// Half-width of the two-sided confidence interval at level
    /// `confidence` (e.g. `0.99`), using the normal approximation.
    #[must_use]
    pub fn ci_half_width(&self, confidence: f64) -> f64 {
        if self.n < 2 {
            return f64::INFINITY;
        }
        normal_quantile(0.5 + confidence / 2.0) * self.std_error()
    }
}

/// Inverse standard-normal CDF (Acklam's rational approximation, relative
/// error below 1.2e-9 on (0, 1) after one Halley refinement).
///
/// # Panics
///
/// Panics when `p` is outside `(0, 1)`.
#[must_use]
#[allow(clippy::excessive_precision)] // published Acklam coefficients, kept verbatim
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile probability {p} outside (0, 1)");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Halley step against the exact CDF sharpens the tails.
    let e = 0.5 * erfc(-x / std::f64::consts::SQRT_2) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Complementary error function (Numerical Recipes' Chebyshev fit,
/// |error| < 1.2e-7 — ample for the Halley correction above).
fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass() {
        let xs = [3.0, 1.5, -2.0, 8.25, 0.5, 4.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let mean: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
        let var: f64 =
            xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.variance() - var).abs() < 1e-12);
        assert_eq!(w.count(), 6);
    }

    #[test]
    fn quantiles_match_tables() {
        // Standard z-scores to 4+ decimals.
        for (p, z) in [
            (0.975, 1.959_964),
            (0.995, 2.575_829),
            (0.95, 1.644_854),
            (0.5, 0.0),
            (0.025, -1.959_964),
        ] {
            assert!((normal_quantile(p) - z).abs() < 1e-5, "p={p}: {}", normal_quantile(p));
        }
    }

    #[test]
    fn half_width_shrinks_with_n() {
        let mut a = Welford::new();
        let mut b = Welford::new();
        for i in 0..100 {
            a.push(f64::from(i % 7));
        }
        for i in 0..10_000 {
            b.push(f64::from(i % 7));
        }
        assert!(b.ci_half_width(0.99) < a.ci_half_width(0.99));
    }
}
