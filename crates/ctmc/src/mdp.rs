//! Continuous-time Markov decision processes (CTMDPs).
//!
//! The paper's §5 lists "new algorithms to handle nondeterminism (currently
//! not accepted by the Markov solvers of CADP)" as an open issue: an IMC
//! whose τ-nondeterminism cannot be resolved does not induce a single CTMC.
//! This module provides the missing piece — a CTMDP with value-iteration
//! solvers giving *best-case/worst-case bounds* over all schedulers
//! (experiments E8 and E13).
//!
//! Two kinds of states coexist (a Markov-automaton flavor): *tangible*
//! states whose choices are sets of rate transitions racing exponentially,
//! and *instant* states ([`Ctmdp::set_instant`]) whose choices are
//! probability distributions taken in zero time. Instant states are how
//! nondeterministic vanishing states of an IMC survive the lifting without
//! being forced into a single resolution (see `multival_imc::to_ctmdp_lifted`).

use crate::ctmc::{CtmcError, State};

/// Inner fixpoint tolerance for instant-state propagation.
const INSTANT_TOL: f64 = 1e-13;
/// Iteration cap for the instant-state fixpoint: generous, because a slow
/// geometric escape out of an instant cycle is legitimate; a *divergent*
/// series (Zeno cycle accumulating impulse reward) must still be caught.
const INSTANT_MAX_ITERS: usize = 100_000;

/// One nondeterministic choice available in a state: a set of rate
/// transitions taken together (a "Markovian action").
#[derive(Debug, Clone, PartialEq)]
pub struct ActionChoice {
    /// Optional action name (for diagnostics).
    pub name: Option<String>,
    /// Rate transitions fired under this choice.
    pub transitions: Vec<(State, f64)>,
}

impl ActionChoice {
    /// Total exit rate of this choice.
    pub fn exit_rate(&self) -> f64 {
        self.transitions.iter().map(|&(_, r)| r).sum()
    }
}

/// Optimization direction for scheduler quantification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Opt {
    /// Best case over schedulers.
    Min,
    /// Worst case over schedulers.
    Max,
}

impl Opt {
    fn pick(self, a: f64, b: f64) -> f64 {
        match self {
            Opt::Min => a.min(b),
            Opt::Max => a.max(b),
        }
    }

    fn unit(self) -> f64 {
        match self {
            Opt::Min => f64::INFINITY,
            Opt::Max => f64::NEG_INFINITY,
        }
    }
}

/// A sparse CTMDP. States without choices are absorbing.
///
/// # Examples
///
/// ```
/// use multival_ctmc::mdp::{Ctmdp, ActionChoice, Opt};
///
/// let mut m = Ctmdp::new(3);
/// // State 0: scheduler picks the fast or the slow route to state 2.
/// m.add_choice(0, ActionChoice { name: Some("fast".into()),
///                                transitions: vec![(2, 4.0)] });
/// m.add_choice(0, ActionChoice { name: Some("slow".into()),
///                                transitions: vec![(1, 1.0)] });
/// m.add_choice(1, ActionChoice { name: None, transitions: vec![(2, 1.0)] });
/// let best = m.expected_time_to_reach(&[2], Opt::Min, 1e-12, 100_000).unwrap();
/// let worst = m.expected_time_to_reach(&[2], Opt::Max, 1e-12, 100_000).unwrap();
/// assert!((best[0] - 0.25).abs() < 1e-9);
/// assert!((worst[0] - 2.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Ctmdp {
    choices: Vec<Vec<ActionChoice>>,
    instant: Vec<bool>,
}

impl Ctmdp {
    /// A CTMDP with `n` states and no choices yet.
    pub fn new(n: usize) -> Self {
        Ctmdp { choices: vec![Vec::new(); n], instant: vec![false; n] }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.choices.len()
    }

    /// Appends a new state.
    pub fn add_state(&mut self) -> State {
        self.choices.push(Vec::new());
        self.instant.push(false);
        self.choices.len() - 1
    }

    /// Marks `s` as *instant*: its sojourn time is zero and each of its
    /// choices is read as a probability distribution (transition weights
    /// normalized by their sum) instead of a race of exponentials.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn set_instant(&mut self, s: State) {
        assert!(s < self.choices.len(), "state out of range");
        self.instant[s] = true;
    }

    /// Whether `s` is an instant (zero-sojourn) state.
    pub fn is_instant(&self, s: State) -> bool {
        self.instant[s]
    }

    /// Adds a nondeterministic choice to `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range, a transition target is out of range,
    /// or the choice has a non-positive exit rate.
    pub fn add_choice(&mut self, s: State, choice: ActionChoice) {
        assert!(s < self.choices.len(), "state out of range");
        assert!(
            choice.transitions.iter().all(|&(t, r)| t < self.choices.len() && r > 0.0),
            "bad transition in choice"
        );
        assert!(choice.exit_rate() > 0.0, "choice must have positive exit rate");
        self.choices[s].push(choice);
    }

    /// The choices of state `s`.
    pub fn choices(&self, s: State) -> &[ActionChoice] {
        &self.choices[s]
    }

    /// The maximum exit rate over all choices (including instant states,
    /// whose "rates" are probability weights — prefer
    /// [`Ctmdp::uniformization_rate`] when instant states are present).
    pub fn max_exit_rate(&self) -> f64 {
        self.choices
            .iter()
            .flat_map(|cs| cs.iter().map(ActionChoice::exit_rate))
            .fold(0.0, f64::max)
    }

    /// The uniformization base: maximum exit rate over *tangible* states
    /// only. Instant states take zero time, so their weights must not widen
    /// the Poisson rate.
    pub fn uniformization_rate(&self) -> f64 {
        self.choices
            .iter()
            .enumerate()
            .filter(|&(s, _)| !self.instant[s])
            .flat_map(|(_, cs)| cs.iter().map(ActionChoice::exit_rate))
            .fold(0.0, f64::max)
    }

    /// Propagates values through instant states by Gauss-Seidel until the
    /// fixpoint `v(s) = opt_a [impulse(s,a) + Σ p·v(t)]`. States where
    /// `fixed` holds (targets, tangible states) keep their value. When
    /// `reset` is set, non-fixed instant states restart from 0, yielding the
    /// *least* fixpoint — the sound direction for reachability-style values
    /// (a zero-probability instant cycle stays at 0 instead of retaining a
    /// stale warm-start value).
    ///
    /// Returns [`CtmcError::NoConvergence`] when the fixpoint does not
    /// settle — the Zeno guard: an instant cycle a Max scheduler can spin in
    /// while accumulating impulse reward has no finite value.
    fn solve_instant(
        &self,
        v: &mut [f64],
        fixed: &[bool],
        impulse: Option<&[Vec<f64>]>,
        opt: Opt,
        reset: bool,
    ) -> Result<(), CtmcError> {
        let n = self.num_states();
        let mut any = false;
        for s in 0..n {
            if self.instant[s] && !fixed[s] && !self.choices[s].is_empty() {
                any = true;
                if reset {
                    v[s] = 0.0;
                }
            }
        }
        if !any {
            return Ok(());
        }
        let mut residual = 0.0;
        for _ in 0..INSTANT_MAX_ITERS {
            let mut delta: f64 = 0.0;
            for s in 0..n {
                if !self.instant[s] || fixed[s] || self.choices[s].is_empty() {
                    continue;
                }
                let mut best = opt.unit();
                for (i, c) in self.choices[s].iter().enumerate() {
                    let e = c.exit_rate();
                    let mut acc = impulse.map_or(0.0, |imp| imp[s][i]);
                    for &(t, w) in &c.transitions {
                        acc += (w / e) * v[t];
                    }
                    best = opt.pick(best, acc);
                }
                delta = delta.max((best - v[s]).abs());
                v[s] = best;
            }
            if delta < INSTANT_TOL {
                return Ok(());
            }
            residual = delta;
        }
        Err(CtmcError::NoConvergence {
            what: "CTMDP instant-state fixpoint (Zeno cycle?)",
            iterations: INSTANT_MAX_ITERS,
            residual,
        })
    }

    /// Min/max probability of eventually reaching `targets`, by value
    /// iteration on the embedded MDP.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::NoConvergence`] if value iteration does not
    /// converge within `max_iterations`.
    pub fn reach_probability(
        &self,
        targets: &[State],
        opt: Opt,
        tolerance: f64,
        max_iterations: usize,
    ) -> Result<Vec<f64>, CtmcError> {
        let n = self.num_states();
        let mut is_target = vec![false; n];
        for &t in targets {
            is_target[t] = true;
        }
        let mut p = vec![0.0f64; n];
        for &t in targets {
            p[t] = 1.0;
        }
        for iter in 0..max_iterations {
            let mut delta: f64 = 0.0;
            for s in 0..n {
                if is_target[s] || self.choices[s].is_empty() {
                    continue;
                }
                let mut best = opt.unit();
                for c in &self.choices[s] {
                    let e = c.exit_rate();
                    let v: f64 = c.transitions.iter().map(|&(t, r)| (r / e) * p[t]).sum();
                    best = opt.pick(best, v);
                }
                delta = delta.max((best - p[s]).abs());
                p[s] = best;
            }
            if delta < tolerance {
                return Ok(p);
            }
            if iter == max_iterations - 1 {
                return Err(CtmcError::NoConvergence {
                    what: "CTMDP reachability value iteration",
                    iterations: max_iterations,
                    residual: delta,
                });
            }
        }
        unreachable!("loop returns")
    }

    /// Min/max expected time to reach `targets`, by value iteration on
    /// `h(s) = opt_a [1/E_a + Σ P_a(s,s')·h(s')]`. States from which a
    /// scheduler can (Min)/must (Max) avoid the target get `∞`. Instant
    /// states contribute zero sojourn time.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::NoConvergence`] if value iteration does not
    /// converge within `max_iterations`.
    pub fn expected_time_to_reach(
        &self,
        targets: &[State],
        opt: Opt,
        tolerance: f64,
        max_iterations: usize,
    ) -> Result<Vec<f64>, CtmcError> {
        let n = self.num_states();
        let mut is_target = vec![false; n];
        for &t in targets {
            is_target[t] = true;
        }
        // Qualitative pre-pass: under the chosen quantification, which
        // states have reach probability 1? Others get ∞.
        let reach = self.reach_probability(targets, opt, 1e-9, max_iterations)?;
        let mut h: Vec<f64> = (0..n)
            .map(|s| if is_target[s] || reach[s] > 1.0 - 1e-6 { 0.0 } else { f64::INFINITY })
            .collect();
        for iter in 0..max_iterations {
            let mut delta: f64 = 0.0;
            for s in 0..n {
                if is_target[s] || h[s].is_infinite() || self.choices[s].is_empty() {
                    continue;
                }
                let mut best = opt.unit();
                for c in &self.choices[s] {
                    let e = c.exit_rate();
                    let mut v = if self.instant[s] { 0.0 } else { 1.0 / e };
                    for &(t, r) in &c.transitions {
                        if h[t].is_infinite() {
                            v = f64::INFINITY;
                            break;
                        }
                        v += (r / e) * h[t];
                    }
                    best = opt.pick(best, v);
                }
                if best.is_finite() {
                    delta = delta.max((best - h[s]).abs());
                    h[s] = best;
                }
            }
            if delta < tolerance {
                return Ok(h);
            }
            if iter == max_iterations - 1 {
                return Err(CtmcError::NoConvergence {
                    what: "CTMDP expected-time value iteration",
                    iterations: max_iterations,
                    residual: delta,
                });
            }
        }
        unreachable!("loop returns")
    }

    /// Like [`Ctmdp::expected_time_to_reach`], additionally returning the
    /// optimal memoryless policy: for each state, the index of the choice
    /// achieving the bound (`None` for targets, absorbing states, and
    /// states with infinite value).
    ///
    /// # Errors
    ///
    /// Propagates value-iteration convergence failures.
    pub fn optimal_expected_time(
        &self,
        targets: &[State],
        opt: Opt,
        tolerance: f64,
        max_iterations: usize,
    ) -> Result<(Vec<f64>, Vec<Option<usize>>), CtmcError> {
        let h = self.expected_time_to_reach(targets, opt, tolerance, max_iterations)?;
        let mut is_target = vec![false; self.num_states()];
        for &t in targets {
            is_target[t] = true;
        }
        let mut policy = vec![None; self.num_states()];
        for s in 0..self.num_states() {
            if is_target[s] || h[s].is_infinite() || self.choices[s].is_empty() {
                continue;
            }
            let mut best: Option<(usize, f64)> = None;
            for (i, c) in self.choices[s].iter().enumerate() {
                let e = c.exit_rate();
                let mut v = if self.instant[s] { 0.0 } else { 1.0 / e };
                for &(t, r) in &c.transitions {
                    if h[t].is_infinite() {
                        v = f64::INFINITY;
                        break;
                    }
                    v += (r / e) * h[t];
                }
                let better = match best {
                    None => true,
                    Some((_, bv)) => match opt {
                        Opt::Min => v < bv,
                        Opt::Max => v > bv,
                    },
                };
                if better {
                    best = Some((i, v));
                }
            }
            policy[s] = best.map(|(i, _)| i);
        }
        Ok((h, policy))
    }

    /// Min/max probability of reaching `targets` *within time bound `t`*,
    /// via uniformization-based value iteration (ε-approximation in the
    /// style of time-bounded CTMDP analysis). Instant states are folded in
    /// by a zero-time fixpoint between Poisson steps.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::Undefined`] for a negative bound and
    /// [`CtmcError::NoConvergence`] when an instant-state cycle does not
    /// settle.
    pub fn timed_reach_probability(
        &self,
        targets: &[State],
        bound: f64,
        opt: Opt,
        epsilon: f64,
    ) -> Result<Vec<f64>, CtmcError> {
        if bound < 0.0 || !bound.is_finite() {
            return Err(CtmcError::Undefined(format!("time bound {bound} must be >= 0")));
        }
        let n = self.num_states();
        let mut is_target = vec![false; n];
        for &s in targets {
            is_target[s] = true;
        }
        let lambda = self.uniformization_rate().max(1e-12) * 1.02;
        let q = lambda * bound;
        // Uniformization with Poisson weights (exact for a single-choice
        // CTMDP, a greedy ε-approximation otherwise, per the uniform-CTMDP
        // algorithm of Baier et al.):
        //   P(reach ≤ t) = Σ_k PoissonPMF(q, k) · r_k(s)
        // where r_k(s) is the optimal probability of reaching the target
        // within k jumps of the uniformized step chain:
        //   r_0 = 1_target,
        //   r_{k+1}(s) = 1 if target, else opt_a [(1-E_a/Λ)·r_k(s) + Σ r/Λ·r_k(s')].
        // Instant states take no Poisson step: after every tangible update
        // (and once at k = 0) their values are the least fixpoint of
        // zero-time propagation toward the tangible/target frontier.
        let mut r: Vec<f64> = (0..n).map(|s| if is_target[s] { 1.0 } else { 0.0 }).collect();
        self.solve_instant(&mut r, &is_target, None, opt, true)?;
        let mut result = vec![0.0f64; n];
        let mut w = (-q).exp();
        let scaled = w == 0.0;
        if scaled {
            w = f64::MIN_POSITIVE * 1e16;
        }
        let mut weight_sum = 0.0;
        let mut covered = 0.0;
        let mut k = 0usize;
        let max_terms = (q + 10.0 * q.sqrt() + 50.0 + 10.0 / epsilon.max(1e-15)) as usize;
        loop {
            for s in 0..n {
                result[s] += w * r[s];
            }
            weight_sum += w;
            if !scaled {
                covered += w;
                if covered >= 1.0 - epsilon {
                    break;
                }
            } else if (k as f64) > q && w < weight_sum * epsilon {
                break;
            }
            k += 1;
            if k > max_terms {
                break;
            }
            // r ← one optimal step of the uniformized chain (tangible states
            // only), then re-propagate through the instant layer.
            let mut next = r.clone();
            for s in 0..n {
                if is_target[s] || self.instant[s] || self.choices[s].is_empty() {
                    continue;
                }
                let mut best = opt.unit();
                for c in &self.choices[s] {
                    let e = c.exit_rate();
                    let mut acc = (1.0 - e / lambda) * r[s];
                    for &(t, rate) in &c.transitions {
                        acc += (rate / lambda) * r[t];
                    }
                    best = opt.pick(best, acc);
                }
                next[s] = best;
            }
            self.solve_instant(&mut next, &is_target, None, opt, true)?;
            r = next;
            w *= q / k as f64;
            if w > 1e280 {
                for x in result.iter_mut() {
                    *x /= 1e280;
                }
                weight_sum /= 1e280;
                w /= 1e280;
            }
        }
        if scaled && weight_sum > 0.0 {
            for x in result.iter_mut() {
                *x /= weight_sum;
            }
        } else {
            // Account for the truncated tail by leaving result as the
            // partial sum (an under-approximation within ε).
        }
        Ok(result)
    }

    /// Min/max *long-run average reward* over all schedulers, by relative
    /// value iteration on the uniformized chain (span-seminorm stopping).
    ///
    /// `rate_reward[s]` accrues per unit of time spent in `s` (occupancy
    /// measures); `impulse[s][a]` is earned per transition taken from `s`
    /// under choice `a` (throughput measures — for a tangible choice the
    /// reward rate is `E_a · impulse`, for an instant choice it is earned at
    /// each zero-time traversal). The model is assumed unichain under every
    /// scheduler (every memoryless policy yields one recurrent class —
    /// true for the lumped ergodic chains of the case studies); a multichain
    /// model surfaces as [`CtmcError::NoConvergence`] because the span of
    /// the value differences cannot close.
    ///
    /// # Errors
    ///
    /// [`CtmcError::Undefined`] when no tangible Markovian choice exists
    /// (time never advances), [`CtmcError::NoConvergence`] on iteration-cap
    /// overrun or a Zeno instant cycle.
    ///
    /// # Panics
    ///
    /// Panics if `rate_reward` or `impulse` are not shaped like the state
    /// and choice vectors.
    ///
    /// # Examples
    ///
    /// ```
    /// use multival_ctmc::mdp::{ActionChoice, Ctmdp, Opt};
    ///
    /// // Flip-flop where the scheduler picks the 0→1 rate from {1, 2}:
    /// // occupancy of state 0 is (1/E)/(1/E + 1) → bounds [1/3, 1/2].
    /// let mut m = Ctmdp::new(2);
    /// m.add_choice(0, ActionChoice { name: None, transitions: vec![(1, 2.0)] });
    /// m.add_choice(0, ActionChoice { name: None, transitions: vec![(1, 1.0)] });
    /// m.add_choice(1, ActionChoice { name: None, transitions: vec![(0, 1.0)] });
    /// let occ = [1.0, 0.0];
    /// let lo = m.long_run_average(&occ, None, Opt::Min, 1e-12, 100_000).unwrap();
    /// let hi = m.long_run_average(&occ, None, Opt::Max, 1e-12, 100_000).unwrap();
    /// assert!((lo - 1.0 / 3.0).abs() < 1e-9);
    /// assert!((hi - 0.5).abs() < 1e-9);
    /// ```
    pub fn long_run_average(
        &self,
        rate_reward: &[f64],
        impulse: Option<&[Vec<f64>]>,
        opt: Opt,
        tolerance: f64,
        max_iterations: usize,
    ) -> Result<f64, CtmcError> {
        let n = self.num_states();
        assert_eq!(rate_reward.len(), n, "rate_reward must have one entry per state");
        if let Some(imp) = impulse {
            assert_eq!(imp.len(), n, "impulse must have one row per state");
            for (s, row) in imp.iter().enumerate() {
                assert_eq!(row.len(), self.choices[s].len(), "impulse arity mismatch at {s}");
            }
        }
        let lambda = self.uniformization_rate() * 1.02;
        if lambda <= 0.0 {
            return Err(CtmcError::Undefined(
                "long-run average needs at least one tangible Markovian choice".to_owned(),
            ));
        }
        let tangible: Vec<State> = (0..n).filter(|&s| !self.instant[s]).collect();
        let fixed: Vec<bool> = (0..n).map(|s| !self.instant[s]).collect();
        let mut h = vec![0.0f64; n];
        self.solve_instant(&mut h, &fixed, impulse, opt, false)?;
        let mut new_h = h.clone();
        let mut span = f64::INFINITY;
        for iter in 0..max_iterations {
            // One Jacobi sweep over tangible states; instant successors carry
            // the values of the previous instant fixpoint, so a tangible →
            // instant → tangible path contributes consistently.
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &s in &tangible {
                let v = if self.choices[s].is_empty() {
                    // Absorbing tangible state: drifts at its own reward
                    // rate. If that differs from the rest, the span below
                    // never closes and the honest answer is NoConvergence.
                    rate_reward[s] / lambda + h[s]
                } else {
                    let mut best = opt.unit();
                    for (i, c) in self.choices[s].iter().enumerate() {
                        let e = c.exit_rate();
                        let mut acc = rate_reward[s] / lambda
                            + (e / lambda) * impulse.map_or(0.0, |imp| imp[s][i])
                            + (1.0 - e / lambda) * h[s];
                        for &(t, r) in &c.transitions {
                            acc += (r / lambda) * h[t];
                        }
                        best = opt.pick(best, acc);
                    }
                    best
                };
                new_h[s] = v;
                let d = v - h[s];
                lo = lo.min(d);
                hi = hi.max(d);
            }
            span = hi - lo;
            if span < tolerance {
                // Every tangible state gains the same amount per uniformized
                // step: the common drift is g/Λ.
                return Ok(lambda * (hi + lo) / 2.0);
            }
            // Commit, pin the first tangible state to 0 to stop the drift
            // from overflowing h, and refresh the instant layer.
            let reference = new_h[tangible[0]];
            for s in 0..n {
                h[s] = if self.instant[s] { h[s] - reference } else { new_h[s] - reference };
            }
            self.solve_instant(&mut h, &fixed, impulse, opt, false)?;
            if iter == max_iterations - 1 {
                break;
            }
        }
        Err(CtmcError::NoConvergence {
            what: "CTMDP long-run relative value iteration",
            iterations: max_iterations,
            residual: span,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn race() -> Ctmdp {
        // 0 --fast(4)--> 2 or 0 --slow(1)--> 1 --(1)--> 2
        let mut m = Ctmdp::new(3);
        m.add_choice(0, ActionChoice { name: Some("fast".into()), transitions: vec![(2, 4.0)] });
        m.add_choice(0, ActionChoice { name: Some("slow".into()), transitions: vec![(1, 1.0)] });
        m.add_choice(1, ActionChoice { name: None, transitions: vec![(2, 1.0)] });
        m
    }

    #[test]
    fn expected_time_bounds() {
        let m = race();
        let best = m.expected_time_to_reach(&[2], Opt::Min, 1e-12, 100_000).unwrap();
        let worst = m.expected_time_to_reach(&[2], Opt::Max, 1e-12, 100_000).unwrap();
        assert!((best[0] - 0.25).abs() < 1e-9);
        assert!((worst[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn reach_probability_with_trap() {
        // 0 can choose: to target (rate 1) or to a trap (rate 1).
        let mut m = Ctmdp::new(3);
        m.add_choice(0, ActionChoice { name: None, transitions: vec![(1, 1.0)] });
        m.add_choice(0, ActionChoice { name: None, transitions: vec![(2, 1.0)] });
        let pmax = m.reach_probability(&[1], Opt::Max, 1e-12, 10_000).unwrap();
        let pmin = m.reach_probability(&[1], Opt::Min, 1e-12, 10_000).unwrap();
        assert!((pmax[0] - 1.0).abs() < 1e-9);
        assert!(pmin[0].abs() < 1e-9);
    }

    #[test]
    fn min_expected_time_infinite_when_avoidable() {
        let mut m = Ctmdp::new(3);
        m.add_choice(0, ActionChoice { name: None, transitions: vec![(1, 1.0)] });
        m.add_choice(0, ActionChoice { name: None, transitions: vec![(2, 1.0)] });
        // Min scheduler avoids the target entirely → infinite.
        let h = m.expected_time_to_reach(&[1], Opt::Min, 1e-12, 10_000).unwrap();
        assert!(h[0].is_infinite());
    }

    #[test]
    fn single_choice_reduces_to_ctmc() {
        // Deterministic chain: CTMDP bounds coincide with CTMC values.
        let mut m = Ctmdp::new(3);
        m.add_choice(0, ActionChoice { name: None, transitions: vec![(1, 2.0)] });
        m.add_choice(1, ActionChoice { name: None, transitions: vec![(2, 2.0)] });
        let lo = m.expected_time_to_reach(&[2], Opt::Min, 1e-12, 10_000).unwrap();
        let hi = m.expected_time_to_reach(&[2], Opt::Max, 1e-12, 10_000).unwrap();
        assert!((lo[0] - 1.0).abs() < 1e-9);
        assert!((hi[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn optimal_policy_picks_the_fast_branch() {
        let m = race();
        let (h, policy) = m.optimal_expected_time(&[2], Opt::Min, 1e-12, 100_000).expect("vi");
        assert!((h[0] - 0.25).abs() < 1e-9);
        // Choice 0 is "fast": the min policy must select it at state 0.
        assert_eq!(policy[0], Some(0));
        assert_eq!(policy[2], None, "target has no policy entry");
        let (_, worst) = m.optimal_expected_time(&[2], Opt::Max, 1e-12, 100_000).expect("vi");
        assert_eq!(worst[0], Some(1), "the max policy takes the slow route");
    }

    #[test]
    fn timed_reachability_brackets_exponential() {
        // Single exponential rate 1: P(T ≤ 1) = 1 - 1/e ≈ 0.632.
        let mut m = Ctmdp::new(2);
        m.add_choice(0, ActionChoice { name: None, transitions: vec![(1, 1.0)] });
        let v = m.timed_reach_probability(&[1], 1.0, Opt::Max, 1e-9).unwrap();
        assert!((v[0] - 0.6321).abs() < 0.01, "got {}", v[0]);
    }

    #[test]
    fn timed_bounds_ordered() {
        let m = race();
        let lo = m.timed_reach_probability(&[2], 0.5, Opt::Min, 1e-9).unwrap();
        let hi = m.timed_reach_probability(&[2], 0.5, Opt::Max, 1e-9).unwrap();
        assert!(lo[0] <= hi[0] + 1e-12);
        assert!(hi[0] > lo[0] + 0.1, "choices should matter: {lo:?} {hi:?}");
    }

    /// 0 --(rate 2)--> [instant 1] --(prob 1)--> 2: the instant hop is
    /// invisible in every time-dependent measure.
    fn instant_relay() -> Ctmdp {
        let mut m = Ctmdp::new(3);
        m.add_choice(0, ActionChoice { name: None, transitions: vec![(1, 2.0)] });
        m.set_instant(1);
        m.add_choice(1, ActionChoice { name: None, transitions: vec![(2, 1.0)] });
        m
    }

    #[test]
    fn instant_state_adds_no_time() {
        let m = instant_relay();
        for opt in [Opt::Min, Opt::Max] {
            let h = m.expected_time_to_reach(&[2], opt, 1e-12, 10_000).unwrap();
            assert!((h[0] - 0.5).abs() < 1e-9, "{opt:?}: {}", h[0]);
            assert!(h[1].abs() < 1e-9, "instant state itself takes no time");
            let p = m.timed_reach_probability(&[2], 1.0, opt, 1e-9).unwrap();
            let want = 1.0 - (-2.0f64).exp();
            assert!((p[0] - want).abs() < 1e-4, "{opt:?}: {} vs {want}", p[0]);
        }
    }

    #[test]
    fn instant_choice_splits_expected_time() {
        // [instant 0] picks the rate-4 or the rate-1 branch to 2.
        let mut m = Ctmdp::new(4);
        m.set_instant(0);
        m.add_choice(0, ActionChoice { name: None, transitions: vec![(1, 1.0)] });
        m.add_choice(0, ActionChoice { name: None, transitions: vec![(3, 1.0)] });
        m.add_choice(1, ActionChoice { name: None, transitions: vec![(2, 4.0)] });
        m.add_choice(3, ActionChoice { name: None, transitions: vec![(2, 1.0)] });
        let lo = m.expected_time_to_reach(&[2], Opt::Min, 1e-12, 10_000).unwrap();
        let hi = m.expected_time_to_reach(&[2], Opt::Max, 1e-12, 10_000).unwrap();
        assert!((lo[0] - 0.25).abs() < 1e-9);
        assert!((hi[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn long_run_occupancy_bounds() {
        // Doc example, plus: a single-choice model must collapse to the
        // CTMC steady-state answer on both sides.
        let mut m = Ctmdp::new(2);
        m.add_choice(0, ActionChoice { name: None, transitions: vec![(1, 2.0)] });
        m.add_choice(1, ActionChoice { name: None, transitions: vec![(0, 1.0)] });
        let occ = [1.0, 0.0];
        let lo = m.long_run_average(&occ, None, Opt::Min, 1e-12, 100_000).unwrap();
        let hi = m.long_run_average(&occ, None, Opt::Max, 1e-12, 100_000).unwrap();
        assert!((lo - 1.0 / 3.0).abs() < 1e-9, "{lo}");
        assert!((hi - 1.0 / 3.0).abs() < 1e-9, "{hi}");
    }

    #[test]
    fn long_run_impulse_is_throughput() {
        // Flip-flop rates (2, 1); impulse 1 on the 1→0 jump: the long-run
        // rate of that jump is π₁·1 = 2/3.
        let mut m = Ctmdp::new(2);
        m.add_choice(0, ActionChoice { name: None, transitions: vec![(1, 2.0)] });
        m.add_choice(1, ActionChoice { name: None, transitions: vec![(0, 1.0)] });
        let imp = vec![vec![0.0], vec![1.0]];
        let rr = [0.0, 0.0];
        for opt in [Opt::Min, Opt::Max] {
            let g = m.long_run_average(&rr, Some(&imp), opt, 1e-12, 100_000).unwrap();
            assert!((g - 2.0 / 3.0).abs() < 1e-9, "{opt:?}: {g}");
        }
    }

    #[test]
    fn long_run_bounds_with_instant_arbitration() {
        // Tangible 0 --(rate 1)--> [instant 1] which routes to a fast
        // (rate 4) or slow (rate 1) server back to 0. Cycle time is
        // 1 + 1/rate, and the impulse on the server completion counts
        // round trips: bounds are [1/(1+1), 1/(1+1/4)] = [0.5, 0.8].
        let mut m = Ctmdp::new(4);
        m.add_choice(0, ActionChoice { name: None, transitions: vec![(1, 1.0)] });
        m.set_instant(1);
        m.add_choice(1, ActionChoice { name: Some("fast".into()), transitions: vec![(2, 1.0)] });
        m.add_choice(1, ActionChoice { name: Some("slow".into()), transitions: vec![(3, 1.0)] });
        m.add_choice(2, ActionChoice { name: None, transitions: vec![(0, 4.0)] });
        m.add_choice(3, ActionChoice { name: None, transitions: vec![(0, 1.0)] });
        let imp = vec![vec![0.0], vec![0.0, 0.0], vec![1.0], vec![1.0]];
        let rr = [0.0; 4];
        let lo = m.long_run_average(&rr, Some(&imp), Opt::Min, 1e-12, 100_000).unwrap();
        let hi = m.long_run_average(&rr, Some(&imp), Opt::Max, 1e-12, 100_000).unwrap();
        assert!((lo - 0.5).abs() < 1e-9, "{lo}");
        assert!((hi - 0.8).abs() < 1e-9, "{hi}");
    }

    #[test]
    fn zeno_cycle_is_caught() {
        // Two instant states spinning on each other with impulse reward:
        // a Max scheduler accumulates unbounded reward in zero time. The
        // solver must refuse rather than loop or return garbage.
        let mut m = Ctmdp::new(3);
        m.add_choice(0, ActionChoice { name: None, transitions: vec![(1, 1.0)] });
        m.set_instant(1);
        m.set_instant(2);
        m.add_choice(1, ActionChoice { name: None, transitions: vec![(2, 1.0)] });
        m.add_choice(2, ActionChoice { name: None, transitions: vec![(1, 1.0)] });
        let imp = vec![vec![0.0], vec![1.0], vec![1.0]];
        let rr = [0.0; 3];
        let err = m.long_run_average(&rr, Some(&imp), Opt::Max, 1e-9, 10_000);
        assert!(
            matches!(err, Err(CtmcError::NoConvergence { .. })),
            "Zeno cycle must not converge: {err:?}"
        );
    }

    #[test]
    fn instant_cycle_with_escape_converges() {
        // Instant 1 can re-enter itself via 2 or escape to tangible 3;
        // uniform-style resolutions escape with probability 1, and the
        // bounds stay finite because impulses are only on the escape.
        let mut m = Ctmdp::new(4);
        m.add_choice(0, ActionChoice { name: None, transitions: vec![(1, 1.0)] });
        m.set_instant(1);
        m.set_instant(2);
        m.add_choice(1, ActionChoice { name: None, transitions: vec![(2, 1.0), (3, 1.0)] });
        m.add_choice(2, ActionChoice { name: None, transitions: vec![(1, 1.0)] });
        m.add_choice(3, ActionChoice { name: None, transitions: vec![(0, 2.0)] });
        for opt in [Opt::Min, Opt::Max] {
            let h = m.expected_time_to_reach(&[3], opt, 1e-12, 100_000).unwrap();
            assert!((h[0] - 1.0).abs() < 1e-9, "{opt:?}: {}", h[0]);
        }
    }
}
