//! Continuous-time Markov decision processes (CTMDPs).
//!
//! The paper's §5 lists "new algorithms to handle nondeterminism (currently
//! not accepted by the Markov solvers of CADP)" as an open issue: an IMC
//! whose τ-nondeterminism cannot be resolved does not induce a single CTMC.
//! This module provides the missing piece — a CTMDP with value-iteration
//! solvers giving *best-case/worst-case bounds* over all schedulers
//! (experiment E8).

use crate::ctmc::{CtmcError, State};

/// One nondeterministic choice available in a state: a set of rate
/// transitions taken together (a "Markovian action").
#[derive(Debug, Clone, PartialEq)]
pub struct ActionChoice {
    /// Optional action name (for diagnostics).
    pub name: Option<String>,
    /// Rate transitions fired under this choice.
    pub transitions: Vec<(State, f64)>,
}

impl ActionChoice {
    /// Total exit rate of this choice.
    pub fn exit_rate(&self) -> f64 {
        self.transitions.iter().map(|&(_, r)| r).sum()
    }
}

/// Optimization direction for scheduler quantification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Opt {
    /// Best case over schedulers.
    Min,
    /// Worst case over schedulers.
    Max,
}

impl Opt {
    fn pick(self, a: f64, b: f64) -> f64 {
        match self {
            Opt::Min => a.min(b),
            Opt::Max => a.max(b),
        }
    }

    fn unit(self) -> f64 {
        match self {
            Opt::Min => f64::INFINITY,
            Opt::Max => f64::NEG_INFINITY,
        }
    }
}

/// A sparse CTMDP. States without choices are absorbing.
///
/// # Examples
///
/// ```
/// use multival_ctmc::mdp::{Ctmdp, ActionChoice, Opt};
///
/// let mut m = Ctmdp::new(3);
/// // State 0: scheduler picks the fast or the slow route to state 2.
/// m.add_choice(0, ActionChoice { name: Some("fast".into()),
///                                transitions: vec![(2, 4.0)] });
/// m.add_choice(0, ActionChoice { name: Some("slow".into()),
///                                transitions: vec![(1, 1.0)] });
/// m.add_choice(1, ActionChoice { name: None, transitions: vec![(2, 1.0)] });
/// let best = m.expected_time_to_reach(&[2], Opt::Min, 1e-12, 100_000).unwrap();
/// let worst = m.expected_time_to_reach(&[2], Opt::Max, 1e-12, 100_000).unwrap();
/// assert!((best[0] - 0.25).abs() < 1e-9);
/// assert!((worst[0] - 2.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Ctmdp {
    choices: Vec<Vec<ActionChoice>>,
}

impl Ctmdp {
    /// A CTMDP with `n` states and no choices yet.
    pub fn new(n: usize) -> Self {
        Ctmdp { choices: vec![Vec::new(); n] }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.choices.len()
    }

    /// Appends a new state.
    pub fn add_state(&mut self) -> State {
        self.choices.push(Vec::new());
        self.choices.len() - 1
    }

    /// Adds a nondeterministic choice to `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range, a transition target is out of range,
    /// or the choice has a non-positive exit rate.
    pub fn add_choice(&mut self, s: State, choice: ActionChoice) {
        assert!(s < self.choices.len(), "state out of range");
        assert!(
            choice.transitions.iter().all(|&(t, r)| t < self.choices.len() && r > 0.0),
            "bad transition in choice"
        );
        assert!(choice.exit_rate() > 0.0, "choice must have positive exit rate");
        self.choices[s].push(choice);
    }

    /// The choices of state `s`.
    pub fn choices(&self, s: State) -> &[ActionChoice] {
        &self.choices[s]
    }

    /// The maximum exit rate over all choices (uniformization base).
    pub fn max_exit_rate(&self) -> f64 {
        self.choices
            .iter()
            .flat_map(|cs| cs.iter().map(ActionChoice::exit_rate))
            .fold(0.0, f64::max)
    }

    /// Min/max probability of eventually reaching `targets`, by value
    /// iteration on the embedded MDP.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::NoConvergence`] if value iteration does not
    /// converge within `max_iterations`.
    pub fn reach_probability(
        &self,
        targets: &[State],
        opt: Opt,
        tolerance: f64,
        max_iterations: usize,
    ) -> Result<Vec<f64>, CtmcError> {
        let n = self.num_states();
        let mut is_target = vec![false; n];
        for &t in targets {
            is_target[t] = true;
        }
        let mut p = vec![0.0f64; n];
        for &t in targets {
            p[t] = 1.0;
        }
        for iter in 0..max_iterations {
            let mut delta: f64 = 0.0;
            for s in 0..n {
                if is_target[s] || self.choices[s].is_empty() {
                    continue;
                }
                let mut best = opt.unit();
                for c in &self.choices[s] {
                    let e = c.exit_rate();
                    let v: f64 = c.transitions.iter().map(|&(t, r)| (r / e) * p[t]).sum();
                    best = opt.pick(best, v);
                }
                delta = delta.max((best - p[s]).abs());
                p[s] = best;
            }
            if delta < tolerance {
                return Ok(p);
            }
            if iter == max_iterations - 1 {
                return Err(CtmcError::NoConvergence {
                    what: "CTMDP reachability value iteration",
                    iterations: max_iterations,
                    residual: delta,
                });
            }
        }
        unreachable!("loop returns")
    }

    /// Min/max expected time to reach `targets`, by value iteration on
    /// `h(s) = opt_a [1/E_a + Σ P_a(s,s')·h(s')]`. States from which a
    /// scheduler can (Min)/must (Max) avoid the target get `∞`.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::NoConvergence`] if value iteration does not
    /// converge within `max_iterations`.
    pub fn expected_time_to_reach(
        &self,
        targets: &[State],
        opt: Opt,
        tolerance: f64,
        max_iterations: usize,
    ) -> Result<Vec<f64>, CtmcError> {
        let n = self.num_states();
        let mut is_target = vec![false; n];
        for &t in targets {
            is_target[t] = true;
        }
        // Qualitative pre-pass: under the chosen quantification, which
        // states have reach probability 1? Others get ∞.
        let reach = self.reach_probability(targets, opt, 1e-9, max_iterations)?;
        let mut h: Vec<f64> = (0..n)
            .map(|s| if is_target[s] || reach[s] > 1.0 - 1e-6 { 0.0 } else { f64::INFINITY })
            .collect();
        for iter in 0..max_iterations {
            let mut delta: f64 = 0.0;
            for s in 0..n {
                if is_target[s] || h[s].is_infinite() || self.choices[s].is_empty() {
                    continue;
                }
                let mut best = opt.unit();
                for c in &self.choices[s] {
                    let e = c.exit_rate();
                    let mut v = 1.0 / e;
                    for &(t, r) in &c.transitions {
                        if h[t].is_infinite() {
                            v = f64::INFINITY;
                            break;
                        }
                        v += (r / e) * h[t];
                    }
                    best = opt.pick(best, v);
                }
                if best.is_finite() {
                    delta = delta.max((best - h[s]).abs());
                    h[s] = best;
                }
            }
            if delta < tolerance {
                return Ok(h);
            }
            if iter == max_iterations - 1 {
                return Err(CtmcError::NoConvergence {
                    what: "CTMDP expected-time value iteration",
                    iterations: max_iterations,
                    residual: delta,
                });
            }
        }
        unreachable!("loop returns")
    }

    /// Like [`Ctmdp::expected_time_to_reach`], additionally returning the
    /// optimal memoryless policy: for each state, the index of the choice
    /// achieving the bound (`None` for targets, absorbing states, and
    /// states with infinite value).
    ///
    /// # Errors
    ///
    /// Propagates value-iteration convergence failures.
    pub fn optimal_expected_time(
        &self,
        targets: &[State],
        opt: Opt,
        tolerance: f64,
        max_iterations: usize,
    ) -> Result<(Vec<f64>, Vec<Option<usize>>), CtmcError> {
        let h = self.expected_time_to_reach(targets, opt, tolerance, max_iterations)?;
        let mut is_target = vec![false; self.num_states()];
        for &t in targets {
            is_target[t] = true;
        }
        let mut policy = vec![None; self.num_states()];
        for s in 0..self.num_states() {
            if is_target[s] || h[s].is_infinite() || self.choices[s].is_empty() {
                continue;
            }
            let mut best: Option<(usize, f64)> = None;
            for (i, c) in self.choices[s].iter().enumerate() {
                let e = c.exit_rate();
                let mut v = 1.0 / e;
                for &(t, r) in &c.transitions {
                    if h[t].is_infinite() {
                        v = f64::INFINITY;
                        break;
                    }
                    v += (r / e) * h[t];
                }
                let better = match best {
                    None => true,
                    Some((_, bv)) => match opt {
                        Opt::Min => v < bv,
                        Opt::Max => v > bv,
                    },
                };
                if better {
                    best = Some((i, v));
                }
            }
            policy[s] = best.map(|(i, _)| i);
        }
        Ok((h, policy))
    }

    /// Min/max probability of reaching `targets` *within time bound `t`*,
    /// via uniformization-based value iteration (ε-approximation in the
    /// style of time-bounded CTMDP analysis).
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::Undefined`] for a negative bound.
    pub fn timed_reach_probability(
        &self,
        targets: &[State],
        bound: f64,
        opt: Opt,
        epsilon: f64,
    ) -> Result<Vec<f64>, CtmcError> {
        if bound < 0.0 || !bound.is_finite() {
            return Err(CtmcError::Undefined(format!("time bound {bound} must be >= 0")));
        }
        let n = self.num_states();
        let mut is_target = vec![false; n];
        for &s in targets {
            is_target[s] = true;
        }
        let lambda = self.max_exit_rate().max(1e-12) * 1.02;
        let q = lambda * bound;
        // Uniformization with Poisson weights (exact for a single-choice
        // CTMDP, a greedy ε-approximation otherwise, per the uniform-CTMDP
        // algorithm of Baier et al.):
        //   P(reach ≤ t) = Σ_k PoissonPMF(q, k) · r_k(s)
        // where r_k(s) is the optimal probability of reaching the target
        // within k jumps of the uniformized step chain:
        //   r_0 = 1_target,
        //   r_{k+1}(s) = 1 if target, else opt_a [(1-E_a/Λ)·r_k(s) + Σ r/Λ·r_k(s')].
        let mut r: Vec<f64> = (0..n).map(|s| if is_target[s] { 1.0 } else { 0.0 }).collect();
        let mut result = vec![0.0f64; n];
        let mut w = (-q).exp();
        let scaled = w == 0.0;
        if scaled {
            w = f64::MIN_POSITIVE * 1e16;
        }
        let mut weight_sum = 0.0;
        let mut covered = 0.0;
        let mut k = 0usize;
        let max_terms = (q + 10.0 * q.sqrt() + 50.0 + 10.0 / epsilon.max(1e-15)) as usize;
        loop {
            for s in 0..n {
                result[s] += w * r[s];
            }
            weight_sum += w;
            if !scaled {
                covered += w;
                if covered >= 1.0 - epsilon {
                    break;
                }
            } else if (k as f64) > q && w < weight_sum * epsilon {
                break;
            }
            k += 1;
            if k > max_terms {
                break;
            }
            // r ← one optimal step of the uniformized chain.
            let mut next = r.clone();
            for s in 0..n {
                if is_target[s] || self.choices[s].is_empty() {
                    continue;
                }
                let mut best = opt.unit();
                for c in &self.choices[s] {
                    let e = c.exit_rate();
                    let mut acc = (1.0 - e / lambda) * r[s];
                    for &(t, rate) in &c.transitions {
                        acc += (rate / lambda) * r[t];
                    }
                    best = opt.pick(best, acc);
                }
                next[s] = best;
            }
            r = next;
            w *= q / k as f64;
            if w > 1e280 {
                for x in result.iter_mut() {
                    *x /= 1e280;
                }
                weight_sum /= 1e280;
                w /= 1e280;
            }
        }
        if scaled && weight_sum > 0.0 {
            for x in result.iter_mut() {
                *x /= weight_sum;
            }
        } else {
            // Account for the truncated tail by leaving result as the
            // partial sum (an under-approximation within ε).
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn race() -> Ctmdp {
        // 0 --fast(4)--> 2 or 0 --slow(1)--> 1 --(1)--> 2
        let mut m = Ctmdp::new(3);
        m.add_choice(0, ActionChoice { name: Some("fast".into()), transitions: vec![(2, 4.0)] });
        m.add_choice(0, ActionChoice { name: Some("slow".into()), transitions: vec![(1, 1.0)] });
        m.add_choice(1, ActionChoice { name: None, transitions: vec![(2, 1.0)] });
        m
    }

    #[test]
    fn expected_time_bounds() {
        let m = race();
        let best = m.expected_time_to_reach(&[2], Opt::Min, 1e-12, 100_000).unwrap();
        let worst = m.expected_time_to_reach(&[2], Opt::Max, 1e-12, 100_000).unwrap();
        assert!((best[0] - 0.25).abs() < 1e-9);
        assert!((worst[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn reach_probability_with_trap() {
        // 0 can choose: to target (rate 1) or to a trap (rate 1).
        let mut m = Ctmdp::new(3);
        m.add_choice(0, ActionChoice { name: None, transitions: vec![(1, 1.0)] });
        m.add_choice(0, ActionChoice { name: None, transitions: vec![(2, 1.0)] });
        let pmax = m.reach_probability(&[1], Opt::Max, 1e-12, 10_000).unwrap();
        let pmin = m.reach_probability(&[1], Opt::Min, 1e-12, 10_000).unwrap();
        assert!((pmax[0] - 1.0).abs() < 1e-9);
        assert!(pmin[0].abs() < 1e-9);
    }

    #[test]
    fn min_expected_time_infinite_when_avoidable() {
        let mut m = Ctmdp::new(3);
        m.add_choice(0, ActionChoice { name: None, transitions: vec![(1, 1.0)] });
        m.add_choice(0, ActionChoice { name: None, transitions: vec![(2, 1.0)] });
        // Min scheduler avoids the target entirely → infinite.
        let h = m.expected_time_to_reach(&[1], Opt::Min, 1e-12, 10_000).unwrap();
        assert!(h[0].is_infinite());
    }

    #[test]
    fn single_choice_reduces_to_ctmc() {
        // Deterministic chain: CTMDP bounds coincide with CTMC values.
        let mut m = Ctmdp::new(3);
        m.add_choice(0, ActionChoice { name: None, transitions: vec![(1, 2.0)] });
        m.add_choice(1, ActionChoice { name: None, transitions: vec![(2, 2.0)] });
        let lo = m.expected_time_to_reach(&[2], Opt::Min, 1e-12, 10_000).unwrap();
        let hi = m.expected_time_to_reach(&[2], Opt::Max, 1e-12, 10_000).unwrap();
        assert!((lo[0] - 1.0).abs() < 1e-9);
        assert!((hi[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn optimal_policy_picks_the_fast_branch() {
        let m = race();
        let (h, policy) = m.optimal_expected_time(&[2], Opt::Min, 1e-12, 100_000).expect("vi");
        assert!((h[0] - 0.25).abs() < 1e-9);
        // Choice 0 is "fast": the min policy must select it at state 0.
        assert_eq!(policy[0], Some(0));
        assert_eq!(policy[2], None, "target has no policy entry");
        let (_, worst) = m.optimal_expected_time(&[2], Opt::Max, 1e-12, 100_000).expect("vi");
        assert_eq!(worst[0], Some(1), "the max policy takes the slow route");
    }

    #[test]
    fn timed_reachability_brackets_exponential() {
        // Single exponential rate 1: P(T ≤ 1) = 1 - 1/e ≈ 0.632.
        let mut m = Ctmdp::new(2);
        m.add_choice(0, ActionChoice { name: None, transitions: vec![(1, 1.0)] });
        let v = m.timed_reach_probability(&[1], 1.0, Opt::Max, 1e-9).unwrap();
        assert!((v[0] - 0.6321).abs() < 0.01, "got {}", v[0]);
    }

    #[test]
    fn timed_bounds_ordered() {
        let m = race();
        let lo = m.timed_reach_probability(&[2], 0.5, Opt::Min, 1e-9).unwrap();
        let hi = m.timed_reach_probability(&[2], 0.5, Opt::Max, 1e-9).unwrap();
        assert!(lo[0] <= hi[0] + 1e-12);
        assert!(hi[0] > lo[0] + 0.1, "choices should matter: {lo:?} {hi:?}");
    }
}
