//! # multival-ctmc — continuous-time Markov chain solvers
//!
//! The Markov back-end of the Multival reproduction (DATE'08): the Rust
//! counterpart of CADP's `bcg_steady` / `bcg_transient` solvers, plus the
//! CTMDP machinery the paper lists as future work for nondeterminism.
//!
//! * [`Ctmc`] / [`CtmcBuilder`] — sparse chains with labeled rate
//!   transitions (labels enable throughput queries);
//! * [`steady`] — BSCC-aware steady-state distributions, throughputs, and
//!   state rewards;
//! * [`transient`] — time-dependent distributions by uniformization;
//! * [`absorb`] — expected first-passage/hitting times and reachability
//!   probabilities (used for latency predictions);
//! * [`csl`] — CSL-style time-bounded until and reachability quantiles;
//! * [`dtmc`] — embedded jump chains and discrete-time analyses;
//! * [`rewards`] — accumulated and long-run reward measures;
//! * [`simulate`] — single-trajectory Monte-Carlo walks;
//! * [`mc`] — the parallel batched Monte-Carlo engine (deterministic seed
//!   streams, Welford statistics, confidence-interval stopping);
//! * [`phfit`] — moment-matching phase-type fitting of deterministic
//!   delays (adaptive Erlang order to a stated CDF tolerance);
//! * [`sparse`] — the CSR kernels behind the iterative solvers;
//! * [`dense`] — naive dense reference solvers for cross-validation;
//! * [`stats`] — streaming statistics shared by the statistical engine;
//! * [`mdp`] — CTMDPs with min/max value iteration (scheduler bounds).
//!
//! # Examples
//!
//! Steady-state of a tiny queue and its arrival throughput:
//!
//! ```
//! use multival_ctmc::{CtmcBuilder, steady::{steady_state, throughputs, SolveOptions}};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = CtmcBuilder::new(2);
//! b.rate_labeled(0, 1, 1.0, "arrive")?;
//! b.rate_labeled(1, 0, 2.0, "serve")?;
//! let ctmc = b.build()?;
//! let pi = steady_state(&ctmc, &SolveOptions::default())?;
//! assert!((pi[0] - 2.0 / 3.0).abs() < 1e-9);
//! let tp = throughputs(&ctmc, &SolveOptions::default())?;
//! assert!((tp[0].1 - 2.0 / 3.0).abs() < 1e-9); // λ·π₀
//! # Ok(())
//! # }
//! ```

pub mod absorb;
pub mod csl;
pub mod ctmc;
pub mod dense;
pub mod dtmc;
pub mod mc;
pub mod mdp;
pub mod phfit;
pub mod rewards;
pub mod simulate;
pub mod sparse;
pub mod stats;
pub mod steady;
pub mod transient;

pub use ctmc::{Ctmc, CtmcBuilder, CtmcError, RateTransition, State};
pub use dtmc::Dtmc;
pub use mc::{Estimate, McOptions, McRun, McSim};
pub use mdp::{ActionChoice, Ctmdp, Opt};
pub use multival_par::Workers;
pub use sparse::Csr;
pub use stats::Welford;
pub use steady::SolveOptions;
pub use transient::TransientOptions;
