//! Moment-matching phase-type fitting: approximate a *deterministic* delay
//! by an acyclic phase-type distribution (Erlang or two-rate
//! hypoexponential) whose order is chosen automatically.
//!
//! The paper's second open issue is the space/accuracy trade-off when fixed
//! delays are approximated by Erlang-k chains: each extra phase shrinks the
//! squared coefficient of variation (`cv² = 1/k`) toward the deterministic
//! limit but multiplies the decorated state space. This module turns the
//! hand-picked `k` of experiment E7 into a *fit*: the user states the delay
//! mean and a CDF tolerance, and [`fit_deterministic`] finds the smallest
//! Erlang order whose CDF stays within the tolerance of the deterministic
//! step — or reports, honestly, that the cap was hit with the tolerance
//! unmet.
//!
//! Accuracy metric: the supremum CDF distance against the unit step at the
//! mean, excluding a small band around the jump. The raw sup distance
//! saturates near `1/2` at the jump itself for *every* finite `k` (a
//! continuous CDF cannot track a discontinuity), so the excluded band is
//! what makes the metric informative — the same convention as the
//! `sup_error_vs_fixed_excluding` measure of the E7 experiment. Outside the
//! band the distance is monotonically non-increasing in `k`, which is what
//! makes the adaptive search (geometric growth + binary refinement) exact.
//!
//! [`fit_moments`] is the classical two-moment companion: given a mean and
//! a coefficient of variation `cv ≤ 1` it matches both moments *exactly*
//! with `k = ⌈1/cv²⌉` phases — a pure Erlang when `cv² = 1/k`, otherwise a
//! hypoexponential with `k-1` fast phases and one distinct final phase.

use std::fmt;

/// Hard default cap on the Erlang order the adaptive fit may choose.
pub const DEFAULT_MAX_K: usize = 1024;

/// Fraction of the mean excluded around the CDF jump when measuring the
/// sup error (mirrors the E7 experiment's convention).
pub const DEFAULT_JUMP_WINDOW: f64 = 0.1;

/// Sample count of the sup-error grid over `[0, 3·mean]`.
pub const DEFAULT_SAMPLES: usize = 300;

/// Options of the adaptive deterministic fit.
#[derive(Debug, Clone, Copy)]
pub struct FitOptions {
    /// Hard cap on the Erlang order; the fit never exceeds it.
    pub max_k: usize,
    /// Excluded band around the jump, as a fraction of the mean.
    pub window: f64,
    /// Grid points of the sup-error scan over `[0, 3·mean]`.
    pub samples: usize,
}

impl Default for FitOptions {
    fn default() -> FitOptions {
        FitOptions { max_k: DEFAULT_MAX_K, window: DEFAULT_JUMP_WINDOW, samples: DEFAULT_SAMPLES }
    }
}

/// Result of an adaptive deterministic fit: the chosen Erlang order, the
/// achieved error, and whether the stated tolerance was actually met.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseFit {
    /// Chosen Erlang order (number of phases).
    pub k: usize,
    /// Per-phase rate `k / mean` (all phases identical).
    pub rate: f64,
    /// Target mean (matched exactly by construction).
    pub mean: f64,
    /// Coefficient of variation of the fitted distribution (`1/√k`).
    pub cv: f64,
    /// Achieved sup CDF error outside the jump window.
    pub achieved_error: f64,
    /// The tolerance that was asked for.
    pub tolerance: f64,
    /// `true` when `achieved_error ≤ tolerance`; `false` means the cap was
    /// hit first and the report is honest about the shortfall.
    pub tolerance_met: bool,
}

impl fmt::Display for PhaseFit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Erlang-{} (rate {:.6}, cv {:.4}): sup CDF error {:.6} vs tolerance {:.6} ({})",
            self.k,
            self.rate,
            self.cv,
            self.achieved_error,
            self.tolerance,
            if self.tolerance_met { "met" } else { "UNMET: order cap reached" }
        )
    }
}

/// A two-moment phase-type fit: `k` phases with per-phase rates, matching
/// the requested mean and coefficient of variation exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct MomentFit {
    /// Per-phase rates in series order. All equal for a pure Erlang; the
    /// hypoexponential case carries `k-1` equal rates plus one distinct
    /// final rate.
    pub rates: Vec<f64>,
    /// The matched mean.
    pub mean: f64,
    /// The matched coefficient of variation.
    pub cv: f64,
}

impl MomentFit {
    /// Number of phases.
    #[must_use]
    pub fn k(&self) -> usize {
        self.rates.len()
    }

    /// `true` when all phases share one rate (a pure Erlang distribution).
    #[must_use]
    pub fn is_erlang(&self) -> bool {
        self.rates.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-12 * w[0].abs().max(1.0))
    }
}

/// Errors of the fitting entry points.
#[derive(Debug, Clone, PartialEq)]
pub enum FitError {
    /// The mean must be positive and finite.
    BadMean(f64),
    /// The tolerance must lie in `(0, 1)`.
    BadTolerance(f64),
    /// The coefficient of variation must lie in `(0, 1]` for an acyclic
    /// series fit (`cv > 1` needs a hyperexponential mixture instead).
    BadCv(f64),
    /// The order cap must be at least 1.
    BadCap(usize),
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::BadMean(m) => write!(f, "delay mean must be positive and finite, got {m}"),
            FitError::BadTolerance(t) => write!(f, "tolerance must lie in (0, 1), got {t}"),
            FitError::BadCv(c) => {
                write!(f, "cv must lie in (0, 1] for a series fit, got {c} (cv > 1 is a mixture)")
            }
            FitError::BadCap(k) => write!(f, "order cap must be at least 1, got {k}"),
        }
    }
}

impl std::error::Error for FitError {}

/// CDF of the Erlang distribution with `k` phases of rate `rate` at time
/// `t`: `P(T ≤ t) = 1 − Σ_{n<k} e^{−λt} (λt)^n / n!`.
///
/// Evaluated as a streaming log-sum-exp over the Poisson terms, so the
/// result stays accurate for orders in the hundreds where `e^{−λt}`
/// underflows long before the sum does.
#[must_use]
pub fn erlang_cdf(k: usize, rate: f64, t: f64) -> f64 {
    if t <= 0.0 || k == 0 || rate <= 0.0 {
        return 0.0;
    }
    let lam = rate * t;
    let log_lam = lam.ln();
    // Streaming log-sum-exp of log p_n = −λt + n·ln(λt) − ln(n!).
    let mut log_fact = 0.0f64; // ln(n!)
    let mut max_log = f64::NEG_INFINITY;
    let mut scaled_sum = 0.0f64; // Σ exp(log p_n − max_log)
    for n in 0..k {
        if n > 0 {
            log_fact += (n as f64).ln();
        }
        let log_p = -lam + (n as f64) * log_lam - log_fact;
        if log_p > max_log {
            scaled_sum = scaled_sum * (max_log - log_p).exp() + 1.0;
            max_log = log_p;
        } else {
            scaled_sum += (log_p - max_log).exp();
        }
    }
    let tail = if max_log == f64::NEG_INFINITY { 0.0 } else { max_log.exp() * scaled_sum };
    (1.0 - tail).clamp(0.0, 1.0)
}

/// Sup distance between the Erlang-`k` CDF (mean-matched: rate `k/mean`)
/// and the deterministic unit step at `mean`, over a `samples`-point grid
/// on `[0, 3·mean]`, excluding the band `|t − mean| ≤ window·mean` around
/// the jump.
#[must_use]
pub fn sup_error_vs_step(k: usize, mean: f64, window: f64, samples: usize) -> f64 {
    if mean <= 0.0 || k == 0 || samples == 0 {
        return f64::NAN;
    }
    let rate = k as f64 / mean;
    let mut worst = 0.0f64;
    for i in 0..=samples {
        let t = 3.0 * mean * i as f64 / samples as f64;
        if (t - mean).abs() <= window * mean {
            continue;
        }
        let step = if t >= mean { 1.0 } else { 0.0 };
        let err = (erlang_cdf(k, rate, t) - step).abs();
        worst = worst.max(err);
    }
    worst
}

/// Fits an Erlang distribution to a deterministic delay of the given mean:
/// the smallest order `k ≤ opts.max_k` whose sup CDF error outside the jump
/// window is at most `tol`. When even `opts.max_k` misses the tolerance,
/// the fit returns the cap order with [`PhaseFit::tolerance_met`] `false`
/// instead of pretending.
///
/// The search is geometric growth (`k = 1, 2, 4, …`) to bracket the answer
/// followed by binary refinement; both rely on the error being monotonically
/// non-increasing in `k` outside the jump window.
///
/// # Errors
///
/// Rejects non-positive/non-finite means, tolerances outside `(0, 1)`, and
/// a zero order cap.
pub fn fit_deterministic(mean: f64, tol: f64, opts: &FitOptions) -> Result<PhaseFit, FitError> {
    if !(mean > 0.0 && mean.is_finite()) {
        return Err(FitError::BadMean(mean));
    }
    if !(tol > 0.0 && tol < 1.0) {
        return Err(FitError::BadTolerance(tol));
    }
    if opts.max_k == 0 {
        return Err(FitError::BadCap(0));
    }
    let err_of = |k: usize| sup_error_vs_step(k, mean, opts.window, opts.samples);

    // Geometric growth until the tolerance is met or the cap is reached.
    let mut hi = 1usize;
    let mut hi_err = err_of(hi);
    let mut lo = 0usize; // exclusive lower bound: every k ≤ lo misses tol
    while hi_err > tol && hi < opts.max_k {
        lo = hi;
        hi = (hi * 2).min(opts.max_k);
        hi_err = err_of(hi);
    }
    if hi_err > tol {
        // Cap reached, tolerance unmet: report the best (largest) order.
        return Ok(fit_at(opts.max_k, mean, hi_err, tol));
    }
    // Binary refinement: smallest k in (lo, hi] meeting tol.
    let mut best = hi;
    let mut best_err = hi_err;
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        let mid_err = err_of(mid);
        if mid_err <= tol {
            hi = mid;
            best = mid;
            best_err = mid_err;
        } else {
            lo = mid;
        }
    }
    Ok(fit_at(best, mean, best_err, tol))
}

fn fit_at(k: usize, mean: f64, achieved_error: f64, tolerance: f64) -> PhaseFit {
    PhaseFit {
        k,
        rate: k as f64 / mean,
        mean,
        cv: 1.0 / (k as f64).sqrt(),
        achieved_error,
        tolerance,
        tolerance_met: achieved_error <= tolerance,
    }
}

/// Matches a mean and coefficient of variation `cv ∈ (0, 1]` exactly with
/// `k = ⌈1/cv²⌉` series phases: a pure Erlang when `cv² = 1/k`, otherwise a
/// hypoexponential with `k−1` phases at one rate and a distinct final
/// phase. Both moments are matched to machine precision by construction.
///
/// # Errors
///
/// Rejects bad means and `cv` outside `(0, 1]` — a `cv > 1` target needs a
/// hyperexponential *mixture*, which is not an acyclic series chain.
pub fn fit_moments(mean: f64, cv: f64) -> Result<MomentFit, FitError> {
    if !(mean > 0.0 && mean.is_finite()) {
        return Err(FitError::BadMean(mean));
    }
    if !(cv > 0.0 && cv <= 1.0) {
        return Err(FitError::BadCv(cv));
    }
    let cv2 = cv * cv;
    // ⌈1/cv²⌉, robust to float dust: 1/(1/√2)² evaluates to 2 + 4ε and must
    // still select k = 2, not 3.
    let kf = 1.0 / cv2;
    let k = if (kf - kf.round()).abs() < 1e-9 { kf.round() } else { kf.ceil() } as usize;
    // cv² = 1/k (within float dust): pure Erlang-k.
    if (cv2 * k as f64 - 1.0).abs() < 1e-9 {
        return Ok(MomentFit { rates: vec![k as f64 / mean; k], mean, cv });
    }
    // Hypoexponential: a = k−1 phases at rate 1/x, one phase at rate 1/y,
    // with a·x + y = mean and a·x² + y² = (cv·mean)². The discriminant is
    // non-negative exactly when cv² ≥ 1/k, which ⌈·⌉ guarantees.
    let a = (k - 1) as f64;
    let v = cv2 * mean * mean;
    let disc = (a * ((1.0 + a) * v - mean * mean)).max(0.0).sqrt();
    let x = (a * mean - disc) / (a * (1.0 + a));
    let y = mean - a * x;
    debug_assert!(x > 0.0 && y > 0.0, "series fit must have positive stage means");
    let mut rates = vec![1.0 / x; k - 1];
    rates.push(1.0 / y);
    Ok(MomentFit { rates, mean, cv })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erlang_cdf_matches_exponential_closed_form() {
        for &(rate, t) in &[(1.0f64, 0.5f64), (2.0, 1.5), (0.3, 4.0)] {
            let want = 1.0 - (-rate * t).exp();
            let got = erlang_cdf(1, rate, t);
            assert!((got - want).abs() < 1e-12, "exp cdf at {t}: {got} vs {want}");
        }
    }

    #[test]
    fn erlang_cdf_stays_finite_and_monotone_at_high_order() {
        // Orders where naive Poisson sums underflow/overflow.
        for &k in &[128usize, 512, 1024] {
            let rate = k as f64; // mean 1
            let mut prev = 0.0;
            for i in 0..=60 {
                let t = i as f64 * 0.05;
                let c = erlang_cdf(k, rate, t);
                assert!((0.0..=1.0).contains(&c), "cdf out of range at k={k} t={t}: {c}");
                assert!(c >= prev - 1e-12, "cdf must be monotone at k={k} t={t}");
                prev = c;
            }
            // Median of a mean-1 Erlang-k is ~1: below it the CDF is < 1/2,
            // above it > 1/2, and far out it saturates.
            assert!(erlang_cdf(k, rate, 0.5) < 0.5);
            assert!(erlang_cdf(k, rate, 1.5) > 0.5);
            assert!(erlang_cdf(k, rate, 3.0) > 1.0 - 1e-9);
        }
    }

    #[test]
    fn sup_error_decreases_toward_zero() {
        let e1 = sup_error_vs_step(1, 2.0, 0.1, 300);
        let e8 = sup_error_vs_step(8, 2.0, 0.1, 300);
        let e256 = sup_error_vs_step(256, 2.0, 0.1, 300);
        assert!(e1 > e8 && e8 > e256, "{e1} > {e8} > {e256} expected");
        // Outside a 0.1·mean band the error decays like Φ(−0.1√k): ≈ 0.055
        // at k = 256. The slow √k decay *is* the paper's space/accuracy
        // trade-off — tight tolerances are genuinely expensive.
        assert!(e256 < 0.06, "high order approximates the step: {e256}");
        let e1024 = sup_error_vs_step(1024, 2.0, 0.1, 300);
        assert!(e1024 < 1e-3, "k = 1024 reaches sub-0.1% error: {e1024}");
    }

    #[test]
    fn fit_selects_minimal_k() {
        let fit = fit_deterministic(1.0, 0.05, &FitOptions::default()).expect("fits");
        assert!(fit.tolerance_met);
        assert!(fit.achieved_error <= 0.05);
        assert!(fit.k > 1, "an exponential cannot be within 5% of a step");
        // Minimality: one order less must miss the tolerance.
        let under = sup_error_vs_step(fit.k - 1, 1.0, DEFAULT_JUMP_WINDOW, DEFAULT_SAMPLES);
        assert!(under > 0.05, "k−1 = {} must miss: {under}", fit.k - 1);
    }

    #[test]
    fn fit_reports_unmet_tolerance_at_the_cap() {
        let opts = FitOptions { max_k: 4, ..FitOptions::default() };
        let fit = fit_deterministic(1.0, 1e-6, &opts).expect("fits");
        assert_eq!(fit.k, 4);
        assert!(!fit.tolerance_met);
        assert!(fit.achieved_error > 1e-6);
        assert!(fit.to_string().contains("UNMET"), "{fit}");
    }

    #[test]
    fn fit_mean_is_exact() {
        for &(mean, tol) in &[(0.25, 0.2), (1.0, 0.05), (7.5, 0.01)] {
            let fit = fit_deterministic(mean, tol, &FitOptions::default()).expect("fits");
            // Erlang mean = k / rate, and rate = k / mean by construction.
            assert!((fit.k as f64 / fit.rate - mean).abs() < 1e-9 * mean);
        }
    }

    #[test]
    fn fit_rejects_bad_inputs() {
        assert!(fit_deterministic(0.0, 0.1, &FitOptions::default()).is_err());
        assert!(fit_deterministic(f64::NAN, 0.1, &FitOptions::default()).is_err());
        assert!(fit_deterministic(1.0, 0.0, &FitOptions::default()).is_err());
        assert!(fit_deterministic(1.0, 1.0, &FitOptions::default()).is_err());
        let zero_cap = FitOptions { max_k: 0, ..FitOptions::default() };
        assert!(fit_deterministic(1.0, 0.1, &zero_cap).is_err());
    }

    #[test]
    fn moment_fit_matches_both_moments() {
        for &(mean, cv) in &[(1.0, 1.0), (2.0, 0.5), (3.0, 0.4), (0.7, 0.23), (5.0, 0.9)] {
            let fit = fit_moments(mean, cv).expect("fits");
            let m: f64 = fit.rates.iter().map(|r| 1.0 / r).sum();
            let var: f64 = fit.rates.iter().map(|r| 1.0 / (r * r)).sum();
            assert!((m - mean).abs() < 1e-9 * mean, "mean {m} vs {mean} (cv {cv})");
            let got_cv = var.sqrt() / m;
            assert!((got_cv - cv).abs() < 1e-9, "cv {got_cv} vs {cv}");
            assert_eq!(fit.k(), (1.0 / (cv * cv)).ceil() as usize);
        }
    }

    #[test]
    fn moment_fit_is_pure_erlang_on_exact_orders() {
        for k in [1usize, 2, 4, 9] {
            let fit = fit_moments(1.0, 1.0 / (k as f64).sqrt()).expect("fits");
            assert!(fit.is_erlang(), "cv = 1/√{k} is a pure Erlang");
            assert_eq!(fit.k(), k);
        }
        let hypo = fit_moments(1.0, 0.6).expect("fits");
        assert!(!hypo.is_erlang(), "cv = 0.6 needs a distinct final phase");
    }

    #[test]
    fn moment_fit_rejects_mixture_targets() {
        assert!(fit_moments(1.0, 1.5).is_err());
        assert!(fit_moments(1.0, 0.0).is_err());
        assert!(fit_moments(-1.0, 0.5).is_err());
    }
}
