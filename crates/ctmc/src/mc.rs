//! Parallel batched Monte-Carlo evaluation of CTMCs.
//!
//! The statistical counterpart of the numerical solvers: trajectories are
//! sampled in batches distributed over `multival-par` workers, folded into
//! [`Welford`] accumulators, and the run stops once every estimate's
//! confidence interval is narrower than the requested width (or the
//! trajectory cap is reached).
//!
//! # Determinism
//!
//! Results are **bit-identical across thread counts**: every trajectory
//! draws from its own RNG seeded by `mix(seed, trajectory index)`, batches
//! are mapped with the order-preserving
//! [`par_map_min`], and the accumulator fold is
//! sequential in trajectory order. Scheduling can change wall time only.

use crate::ctmc::{Ctmc, State};
use crate::sparse::Csr;
use crate::stats::Welford;
use multival_par::{par_map_min, Workers};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Knobs of the Monte-Carlo engine.
#[derive(Debug, Clone, Copy)]
pub struct McOptions {
    /// Base seed of the per-trajectory seed stream.
    pub seed: u64,
    /// Worker threads for trajectory batches.
    pub workers: Workers,
    /// Trajectories per batch (the stopping rule is checked between
    /// batches).
    pub batch: usize,
    /// Hard cap on the total number of trajectories.
    pub max_trajectories: usize,
    /// Confidence level of the reported intervals (e.g. `0.99`).
    pub confidence: f64,
    /// Stop when every half-width is below `rel_width · |mean|` …
    pub rel_width: f64,
    /// … or below this absolute width (whichever is larger per estimate;
    /// keeps near-zero means from demanding unbounded precision).
    pub abs_width: f64,
    /// Wall-clock budget, checked between batches: when the instant passes
    /// the run stops and reports the estimates accumulated so far with
    /// [`McRun::budget_hit`] set. `None` (the default) runs to the
    /// trajectory cap. A tripped deadline makes the trajectory count
    /// machine-dependent, so deterministic callers leave this unset and cap
    /// trajectories instead.
    pub deadline: Option<Instant>,
}

impl Default for McOptions {
    fn default() -> Self {
        McOptions {
            seed: 0x5EED_CAFE,
            workers: Workers::sequential(),
            batch: 512,
            max_trajectories: 65_536,
            confidence: 0.99,
            rel_width: 0.02,
            abs_width: 5e-3,
            deadline: None,
        }
    }
}

/// One estimated quantity.
#[derive(Debug, Clone, Copy)]
pub struct Estimate {
    /// Sample mean.
    pub mean: f64,
    /// Unbiased sample variance.
    pub variance: f64,
    /// Confidence-interval half-width at the run's confidence level.
    pub half_width: f64,
}

/// Result of one engine run: a vector of estimates plus run accounting.
#[derive(Debug, Clone)]
pub struct McRun {
    /// The estimates, one per requested dimension (e.g. per state).
    pub estimates: Vec<Estimate>,
    /// Trajectories actually sampled.
    pub trajectories: usize,
    /// Batches executed.
    pub batches: usize,
    /// Whether the width-based stopping rule was met before the cap.
    pub converged: bool,
    /// Wall-clock time of the run.
    pub wall: Duration,
    /// Worker threads used.
    pub threads: usize,
    /// Confidence level of the reported half-widths.
    pub confidence: f64,
    /// Whether the wall-clock deadline tripped before the stopping rule or
    /// trajectory cap was reached (estimates are still valid, just wider).
    pub budget_hit: bool,
}

impl McRun {
    /// Largest half-width over all estimates.
    #[must_use]
    pub fn max_half_width(&self) -> f64 {
        self.estimates.iter().map(|e| e.half_width).fold(0.0, f64::max)
    }
}

/// Deterministic per-trajectory seed: a splitmix64-style scramble of the
/// base seed and the trajectory index, so seed streams are decorrelated
/// and depend only on `(seed, index)` — never on scheduling.
#[must_use]
pub fn trajectory_seed(base: u64, index: u64) -> u64 {
    let mut z = base ^ index.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Batched driver shared by all estimators: runs `traj` per trajectory
/// (returning one sample per dimension), folds batches sequentially in
/// trajectory order, and applies the width stopping rule between batches.
fn run_batched(
    dim: usize,
    opts: &McOptions,
    traj: impl Fn(&mut StdRng) -> Vec<f64> + Sync,
) -> McRun {
    let start = Instant::now();
    let batch = opts.batch.max(2);
    let mut acc = vec![Welford::new(); dim];
    let mut done = 0usize;
    let mut batches = 0usize;
    let mut converged = false;
    let mut budget_hit = false;
    while done < opts.max_trajectories {
        if opts.deadline.is_some_and(|d| Instant::now() >= d) {
            budget_hit = true;
            break;
        }
        let size = batch.min(opts.max_trajectories - done);
        let indices: Vec<u64> = (done as u64..(done + size) as u64).collect();
        let samples = par_map_min(opts.workers, 2, &indices, |_, &i| {
            let mut rng = StdRng::seed_from_u64(trajectory_seed(opts.seed, i));
            traj(&mut rng)
        });
        for sample in &samples {
            for (w, &x) in acc.iter_mut().zip(sample) {
                w.push(x);
            }
        }
        done += size;
        batches += 1;
        converged = acc.iter().all(|w| {
            let hw = w.ci_half_width(opts.confidence);
            hw <= (opts.rel_width * w.mean().abs()).max(opts.abs_width)
        });
        if converged {
            break;
        }
    }
    McRun {
        estimates: acc
            .iter()
            .map(|w| Estimate {
                mean: w.mean(),
                variance: w.variance(),
                half_width: w.ci_half_width(opts.confidence),
            })
            .collect(),
        trajectories: done,
        batches,
        converged,
        wall: start.elapsed(),
        threads: opts.workers.get(),
        confidence: opts.confidence,
        budget_hit,
    }
}

/// Monte-Carlo evaluator of one chain: a CSR view plus the initial
/// distribution, with one method per measure.
///
/// # Examples
///
/// Occupancy of a flip-flop converges to its steady state:
///
/// ```
/// use multival_ctmc::{CtmcBuilder, McOptions, McSim};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = CtmcBuilder::new(2);
/// b.rate(0, 1, 2.0)?;
/// b.rate(1, 0, 1.0)?;
/// let ctmc = b.build()?;
/// let run = McSim::new(&ctmc).occupancy(200.0, &McOptions::default());
/// assert!((run.estimates[0].mean - 1.0 / 3.0).abs() < 0.05);
/// # Ok(())
/// # }
/// ```
pub struct McSim {
    csr: Csr,
    initial: Vec<(State, f64)>,
}

impl McSim {
    /// Builds the CSR view once; trajectories then run allocation-free
    /// through the flat arrays.
    #[must_use]
    pub fn new(ctmc: &Ctmc) -> McSim {
        McSim { csr: Csr::new(ctmc), initial: ctmc.initial().to_vec() }
    }

    /// Number of states of the underlying chain.
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.csr.num_states()
    }

    /// Samples the initial state.
    fn sample_initial(&self, rng: &mut StdRng) -> State {
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        for &(s, p) in &self.initial {
            acc += p;
            if u < acc {
                return s;
            }
        }
        self.initial.last().map_or(0, |&(s, _)| s)
    }

    /// One jump: exponential dwell at the exit rate, then a successor drawn
    /// proportionally to the outgoing rates. `None` when absorbing.
    fn step(&self, s: State, rng: &mut StdRng) -> Option<(f64, State)> {
        let e = self.csr.exit(s);
        if e == 0.0 {
            return None;
        }
        let u: f64 = rng.gen();
        let dwell = -(1.0 - u).ln() / e;
        let next = self.csr.sample_successor(s, rng.gen());
        Some((dwell, next))
    }

    /// Fraction of `[0, horizon]` spent in each state (dimension = number
    /// of states). For ergodic chains and a long horizon this estimates
    /// the steady-state distribution.
    #[must_use]
    pub fn occupancy(&self, horizon: f64, opts: &McOptions) -> McRun {
        let n = self.num_states();
        run_batched(n, opts, |rng| {
            let mut out = vec![0.0; n];
            let mut s = self.sample_initial(rng);
            let mut t = 0.0;
            while t < horizon {
                match self.step(s, rng) {
                    None => {
                        out[s] += horizon - t;
                        break;
                    }
                    Some((dwell, next)) => {
                        out[s] += dwell.min(horizon - t);
                        t += dwell;
                        s = next;
                    }
                }
            }
            for x in &mut out {
                *x /= horizon;
            }
            out
        })
    }

    /// Probability of being in each state at time `t` (dimension = number
    /// of states; each trajectory contributes a one-hot sample).
    #[must_use]
    pub fn transient(&self, t: f64, opts: &McOptions) -> McRun {
        let n = self.num_states();
        run_batched(n, opts, |rng| {
            let mut out = vec![0.0; n];
            let mut s = self.sample_initial(rng);
            let mut clock = 0.0;
            while clock < t {
                match self.step(s, rng) {
                    None => break,
                    Some((dwell, next)) => {
                        clock += dwell;
                        if clock < t {
                            s = next;
                        }
                    }
                }
            }
            out[s] = 1.0;
            out
        })
    }

    /// Time until the target set is first hit, truncated at `time_cap`
    /// (scalar estimate). The truncation biases the mean low when the cap
    /// is reached; choose `time_cap` generously against the expected
    /// hitting time.
    #[must_use]
    pub fn hitting_time(&self, targets: &[State], time_cap: f64, opts: &McOptions) -> McRun {
        let mut is_target = vec![false; self.num_states()];
        for &t in targets {
            is_target[t] = true;
        }
        run_batched(1, opts, |rng| {
            let mut s = self.sample_initial(rng);
            let mut t = 0.0;
            while !is_target[s] && t < time_cap {
                match self.step(s, rng) {
                    None => return vec![time_cap],
                    Some((dwell, next)) => {
                        t += dwell;
                        s = next;
                    }
                }
            }
            vec![t.min(time_cap)]
        })
    }

    /// Reward accumulated until the target set is hit (state reward per
    /// unit dwell time, impulse per transition), truncated at `time_cap`
    /// like [`Self::hitting_time`]. Scalar estimate.
    #[must_use]
    pub fn accumulated_reward(
        &self,
        targets: &[State],
        state_reward: impl Fn(State) -> f64 + Sync,
        impulse: impl Fn(State, State) -> f64 + Sync,
        time_cap: f64,
        opts: &McOptions,
    ) -> McRun {
        let mut is_target = vec![false; self.num_states()];
        for &t in targets {
            is_target[t] = true;
        }
        run_batched(1, opts, |rng| {
            let mut s = self.sample_initial(rng);
            let mut t = 0.0;
            let mut total = 0.0;
            while !is_target[s] && t < time_cap {
                match self.step(s, rng) {
                    None => break,
                    Some((dwell, next)) => {
                        let credited = dwell.min(time_cap - t);
                        total += state_reward(s) * credited;
                        t += dwell;
                        if t < time_cap {
                            total += impulse(s, next);
                        }
                        s = next;
                    }
                }
            }
            vec![total]
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::absorb::mean_time_to_target;
    use crate::ctmc::CtmcBuilder;
    use crate::rewards::accumulated_until;
    use crate::steady::{steady_state, SolveOptions};
    use crate::transient::{transient, TransientOptions};

    fn flip_flop() -> Ctmc {
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, 2.0).unwrap();
        b.rate(1, 0, 1.0).unwrap();
        b.build().unwrap()
    }

    fn erlang3() -> Ctmc {
        let mut b = CtmcBuilder::new(4);
        b.rate(0, 1, 2.0).unwrap();
        b.rate(1, 2, 2.0).unwrap();
        b.rate(2, 3, 2.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn thread_counts_do_not_change_estimates() {
        let c = flip_flop();
        let sim = McSim::new(&c);
        let base = McOptions { batch: 128, max_trajectories: 1024, ..McOptions::default() };
        let one = sim.occupancy(50.0, &McOptions { workers: Workers::new(1), ..base });
        let four = sim.occupancy(50.0, &McOptions { workers: Workers::new(4), ..base });
        assert_eq!(one.trajectories, four.trajectories);
        for (a, b) in one.estimates.iter().zip(&four.estimates) {
            assert_eq!(a.mean.to_bits(), b.mean.to_bits(), "bit-identical means");
            assert_eq!(a.half_width.to_bits(), b.half_width.to_bits());
        }
    }

    #[test]
    fn occupancy_approaches_steady_state() {
        let c = flip_flop();
        let pi = steady_state(&c, &SolveOptions::default()).expect("solves");
        let run = McSim::new(&c).occupancy(500.0, &McOptions::default());
        for (e, &want) in run.estimates.iter().zip(&pi) {
            assert!(
                (e.mean - want).abs() < e.half_width + 5e-3,
                "{} vs {want} (hw {})",
                e.mean,
                e.half_width
            );
        }
    }

    #[test]
    fn transient_matches_uniformization() {
        let c = flip_flop();
        let t = 0.7;
        let exact = transient(&c, t, &TransientOptions::default()).expect("solves");
        let run = McSim::new(&c).transient(t, &McOptions::default());
        for (e, &want) in run.estimates.iter().zip(&exact) {
            assert!((e.mean - want).abs() < e.half_width.max(1e-3), "{} vs {want}", e.mean);
        }
    }

    #[test]
    fn hitting_time_matches_absorb() {
        let c = erlang3();
        let exact = mean_time_to_target(&c, &[3], &SolveOptions::default()).expect("solves");
        let run = McSim::new(&c).hitting_time(&[3], 1e4, &McOptions::default());
        let e = &run.estimates[0];
        assert!((e.mean - exact).abs() < e.half_width.max(1e-2), "{} vs {exact}", e.mean);
    }

    #[test]
    fn accumulated_reward_matches_gauss_seidel() {
        let c = erlang3();
        let exact = accumulated_until(&c, &[3], |_| 2.0, |_, _| 0.5, &SolveOptions::default())
            .expect("solves")[0];
        let run = McSim::new(&c).accumulated_reward(
            &[3],
            |_| 2.0,
            |_, _| 0.5,
            1e4,
            &McOptions::default(),
        );
        let e = &run.estimates[0];
        assert!((e.mean - exact).abs() < e.half_width.max(2e-2), "{} vs {exact}", e.mean);
    }

    #[test]
    fn stopping_rule_halts_before_cap() {
        let c = flip_flop();
        let opts = McOptions {
            rel_width: 0.2,
            abs_width: 0.05,
            batch: 256,
            max_trajectories: 1 << 20,
            ..McOptions::default()
        };
        let run = McSim::new(&c).transient(0.5, &opts);
        assert!(run.converged, "loose widths must converge quickly");
        assert!(run.trajectories < 1 << 20);
        for e in &run.estimates {
            assert!(e.half_width <= (0.2 * e.mean.abs()).max(0.05) + 1e-12);
        }
    }

    #[test]
    fn seed_changes_estimates_but_structure_holds() {
        let c = flip_flop();
        let sim = McSim::new(&c);
        let a = sim
            .transient(0.5, &McOptions { seed: 1, max_trajectories: 2048, ..McOptions::default() });
        let b = sim
            .transient(0.5, &McOptions { seed: 2, max_trajectories: 2048, ..McOptions::default() });
        assert_ne!(a.estimates[0].mean.to_bits(), b.estimates[0].mean.to_bits());
        // Both still sum to 1 across states (each sample is one-hot).
        let sa: f64 = a.estimates.iter().map(|e| e.mean).sum();
        assert!((sa - 1.0).abs() < 1e-12);
    }
}
