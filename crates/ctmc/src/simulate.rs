//! Monte-Carlo simulation of CTMCs.
//!
//! Used to cross-validate the numerical solvers: the test suites compare
//! steady-state occupancies, transient probabilities, and hitting times
//! against simulated estimates.

use crate::ctmc::{Ctmc, State};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A reproducible CTMC simulator.
#[derive(Debug)]
pub struct Simulator<'a> {
    ctmc: &'a Ctmc,
    rng: StdRng,
}

/// Result of a long-run occupancy simulation.
#[derive(Debug, Clone)]
pub struct OccupancyEstimate {
    /// Fraction of simulated time spent in each state.
    pub occupancy: Vec<f64>,
    /// Total simulated time.
    pub total_time: f64,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator with a fixed RNG seed (reproducible).
    pub fn new(ctmc: &'a Ctmc, seed: u64) -> Self {
        Simulator { ctmc, rng: StdRng::seed_from_u64(seed) }
    }

    fn sample_initial(&mut self) -> State {
        let u: f64 = self.rng.gen();
        let mut acc = 0.0;
        for &(s, p) in self.ctmc.initial() {
            acc += p;
            if u < acc {
                return s;
            }
        }
        self.ctmc.initial().last().map(|&(s, _)| s).unwrap_or(0)
    }

    fn step(&mut self, s: State) -> Option<(f64, State)> {
        let e = self.ctmc.exit_rate(s);
        if e == 0.0 {
            return None;
        }
        let dwell = -self.rng.gen::<f64>().ln() / e;
        let mut u = self.rng.gen::<f64>() * e;
        for t in self.ctmc.transitions_from(s) {
            if u < t.rate {
                return Some((dwell, t.target));
            }
            u -= t.rate;
        }
        // Floating-point slack: take the last transition.
        let last = self.ctmc.transitions_from(s).last().expect("nonzero exit rate");
        Some((dwell, last.target))
    }

    /// Simulates until `horizon` time units elapse and reports per-state
    /// occupancy fractions (a steady-state estimate for long horizons).
    pub fn occupancy(&mut self, horizon: f64) -> OccupancyEstimate {
        let n = self.ctmc.num_states();
        let mut time_in = vec![0.0; n];
        let mut clock = 0.0;
        let mut s = self.sample_initial();
        while clock < horizon {
            match self.step(s) {
                Some((dwell, next)) => {
                    let dt = dwell.min(horizon - clock);
                    time_in[s] += dt;
                    clock += dwell;
                    s = next;
                }
                None => {
                    time_in[s] += horizon - clock;
                    clock = horizon;
                }
            }
        }
        let total: f64 = time_in.iter().sum();
        OccupancyEstimate {
            occupancy: time_in.iter().map(|&t| t / total).collect(),
            total_time: total,
        }
    }

    /// Estimates the mean hitting time of `targets` over `runs` independent
    /// trajectories. Trajectories longer than `time_cap` are truncated at
    /// the cap (biasing the estimate down; pick a generous cap).
    pub fn mean_hitting_time(&mut self, targets: &[State], runs: usize, time_cap: f64) -> f64 {
        let is_target: Vec<bool> = {
            let mut v = vec![false; self.ctmc.num_states()];
            for &t in targets {
                v[t] = true;
            }
            v
        };
        let mut total = 0.0;
        for _ in 0..runs {
            let mut s = self.sample_initial();
            let mut clock = 0.0;
            while !is_target[s] && clock < time_cap {
                match self.step(s) {
                    Some((dwell, next)) => {
                        clock += dwell;
                        s = next;
                    }
                    None => {
                        clock = time_cap;
                    }
                }
            }
            total += clock.min(time_cap);
        }
        total / runs as f64
    }

    /// Estimates `P(state ∈ targets at time t)` over `runs` trajectories.
    pub fn transient_probability(&mut self, targets: &[State], t: f64, runs: usize) -> f64 {
        let is_target: Vec<bool> = {
            let mut v = vec![false; self.ctmc.num_states()];
            for &x in targets {
                v[x] = true;
            }
            v
        };
        let mut hits = 0usize;
        for _ in 0..runs {
            let mut s = self.sample_initial();
            let mut clock = 0.0;
            while let Some((dwell, next)) = self.step(s) {
                if clock + dwell > t {
                    break;
                }
                clock += dwell;
                s = next;
            }
            if is_target[s] {
                hits += 1;
            }
        }
        hits as f64 / runs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctmc::CtmcBuilder;
    use crate::steady::{steady_state, SolveOptions};
    use crate::transient::{transient, TransientOptions};

    fn flip_flop() -> Ctmc {
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, 2.0).unwrap();
        b.rate(1, 0, 1.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn occupancy_matches_steady_state() {
        let c = flip_flop();
        let pi = steady_state(&c, &SolveOptions::default()).unwrap();
        let est = Simulator::new(&c, 42).occupancy(20_000.0);
        for (s, (&exact, &sim)) in pi.iter().zip(&est.occupancy).enumerate() {
            assert!((exact - sim).abs() < 0.02, "state {s}: exact {exact} vs simulated {sim}");
        }
    }

    #[test]
    fn simulated_hitting_time_matches_exact() {
        let mut b = CtmcBuilder::new(3);
        b.rate(0, 1, 1.0).unwrap();
        b.rate(1, 0, 1.0).unwrap();
        b.rate(1, 2, 1.0).unwrap();
        let c = b.build().unwrap();
        // Exact h(0) = 3 (see absorb tests).
        let est = Simulator::new(&c, 7).mean_hitting_time(&[2], 20_000, 1e6);
        assert!((est - 3.0).abs() < 0.1, "estimate {est}");
    }

    #[test]
    fn simulated_transient_matches_uniformization() {
        let c = flip_flop();
        let t = 0.7;
        let exact = transient(&c, t, &TransientOptions::default()).unwrap();
        let est = Simulator::new(&c, 13).transient_probability(&[1], t, 40_000);
        assert!((exact[1] - est).abs() < 0.02, "exact {} vs simulated {est}", exact[1]);
    }

    #[test]
    fn simulation_is_reproducible() {
        let c = flip_flop();
        let a = Simulator::new(&c, 99).occupancy(100.0);
        let b = Simulator::new(&c, 99).occupancy(100.0);
        assert_eq!(a.occupancy, b.occupancy);
    }
}
