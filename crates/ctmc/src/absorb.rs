//! First-passage and absorption-time analysis.
//!
//! Used by the MPI-latency experiments (E5): the mean round-trip latency of
//! a ping-pong benchmark is the expected first-passage time from the initial
//! state to the "round complete" states.

use crate::ctmc::{Ctmc, CtmcError, State};
use crate::steady::SolveOptions;

/// Expected time to reach the target set from every state (`h`), where
/// `h(s) = 0` for targets and `h(s) = 1/E(s) + Σ P(s,s')·h(s')` otherwise.
///
/// States that cannot reach the target set get `f64::INFINITY`.
///
/// # Errors
///
/// Returns [`CtmcError::NoConvergence`] if Gauss–Seidel exceeds its
/// iteration cap, and [`CtmcError::BadState`] for out-of-range targets.
///
/// # Examples
///
/// ```
/// use multival_ctmc::{CtmcBuilder, absorb::expected_hitting_times,
///                     steady::SolveOptions};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Two sequential exponential phases of rate 2: mean 0.5 + 0.5 = 1.
/// let mut b = CtmcBuilder::new(3);
/// b.rate(0, 1, 2.0)?;
/// b.rate(1, 2, 2.0)?;
/// let h = expected_hitting_times(&b.build()?, &[2], &SolveOptions::default())?;
/// assert!((h[0] - 1.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn expected_hitting_times(
    ctmc: &Ctmc,
    targets: &[State],
    options: &SolveOptions,
) -> Result<Vec<f64>, CtmcError> {
    let n = ctmc.num_states();
    let mut is_target = vec![false; n];
    for &t in targets {
        if t >= n {
            return Err(CtmcError::BadState(t));
        }
        is_target[t] = true;
    }
    // States that can reach a target (backwards BFS).
    let mut reaches = is_target.clone();
    {
        let mut rev: Vec<Vec<State>> = vec![Vec::new(); n];
        for s in 0..n {
            for t in ctmc.transitions_from(s) {
                rev[t.target].push(s);
            }
        }
        let mut stack: Vec<State> = targets.to_vec();
        while let Some(s) = stack.pop() {
            for &p in &rev[s] {
                if !reaches[p] {
                    reaches[p] = true;
                    stack.push(p);
                }
            }
        }
    }
    // Probability of ever reaching a target must be 1 for the expectation to
    // be finite; states that can drift to a non-target BSCC forever get ∞.
    // We detect that via reachability of "escape" states from which the
    // target is unreachable.
    let escapable = {
        let mut esc = vec![false; n];
        // A state is escapable if it can reach a state with reaches = false.
        // Backwards propagation from non-reaching states.
        let mut rev: Vec<Vec<State>> = vec![Vec::new(); n];
        for s in 0..n {
            for t in ctmc.transitions_from(s) {
                rev[t.target].push(s);
            }
        }
        let mut stack: Vec<State> = (0..n).filter(|&s| !reaches[s]).collect();
        for &s in &stack {
            esc[s] = true;
        }
        while let Some(s) = stack.pop() {
            for &p in &rev[s] {
                if !esc[p] && !is_target[p] {
                    esc[p] = true;
                    stack.push(p);
                }
            }
        }
        esc
    };

    let mut h = vec![0.0f64; n];
    for s in 0..n {
        if !is_target[s] && (!reaches[s] || escapable[s]) {
            h[s] = f64::INFINITY;
        }
    }
    // Gauss–Seidel on finite states.
    for iter in 0..options.max_iterations {
        let mut delta: f64 = 0.0;
        for s in 0..n {
            if is_target[s] || h[s].is_infinite() {
                continue;
            }
            let e = ctmc.exit_rate(s);
            if e == 0.0 {
                // Absorbing non-target: unreachable case already handled.
                h[s] = f64::INFINITY;
                continue;
            }
            let mut acc = 1.0 / e;
            for t in ctmc.transitions_from(s) {
                let ht = h[t.target];
                if ht.is_infinite() {
                    acc = f64::INFINITY;
                    break;
                }
                acc += (t.rate / e) * ht;
            }
            let old = h[s];
            h[s] = acc;
            if acc.is_finite() {
                delta = delta.max((acc - old).abs());
            }
        }
        if delta < options.tolerance {
            return Ok(h);
        }
        if iter == options.max_iterations - 1 {
            return Err(CtmcError::NoConvergence {
                what: "expected hitting time Gauss-Seidel",
                iterations: options.max_iterations,
                residual: delta,
            });
        }
    }
    unreachable!("loop returns")
}

/// Expected time to hit the target set from the chain's initial
/// distribution.
///
/// # Errors
///
/// Propagates [`expected_hitting_times`] errors.
pub fn mean_time_to_target(
    ctmc: &Ctmc,
    targets: &[State],
    options: &SolveOptions,
) -> Result<f64, CtmcError> {
    let h = expected_hitting_times(ctmc, targets, options)?;
    Ok(ctmc.initial().iter().map(|&(s, p)| p * h[s]).sum())
}

/// Probability of ever reaching the target set from each state (`1` inside
/// the target), computed by Gauss–Seidel on `p(s) = Σ P(s,s')·p(s')`.
///
/// # Errors
///
/// Returns [`CtmcError::NoConvergence`] on iteration-cap overrun and
/// [`CtmcError::BadState`] for out-of-range targets.
pub fn reach_probabilities(
    ctmc: &Ctmc,
    targets: &[State],
    options: &SolveOptions,
) -> Result<Vec<f64>, CtmcError> {
    let n = ctmc.num_states();
    let mut p = vec![0.0f64; n];
    for &t in targets {
        if t >= n {
            return Err(CtmcError::BadState(t));
        }
        p[t] = 1.0;
    }
    let is_target: Vec<bool> = {
        let mut v = vec![false; n];
        for &t in targets {
            v[t] = true;
        }
        v
    };
    for iter in 0..options.max_iterations {
        let mut delta: f64 = 0.0;
        for s in 0..n {
            if is_target[s] {
                continue;
            }
            let e = ctmc.exit_rate(s);
            if e == 0.0 {
                continue; // absorbing non-target stays 0
            }
            let acc: f64 =
                ctmc.transitions_from(s).iter().map(|t| (t.rate / e) * p[t.target]).sum();
            delta = delta.max((acc - p[s]).abs());
            p[s] = acc;
        }
        if delta < options.tolerance {
            return Ok(p);
        }
        if iter == options.max_iterations - 1 {
            return Err(CtmcError::NoConvergence {
                what: "reachability Gauss-Seidel",
                iterations: options.max_iterations,
                residual: delta,
            });
        }
    }
    unreachable!("loop returns")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctmc::CtmcBuilder;

    #[test]
    fn erlang_mean_is_sum_of_phase_means() {
        let mut b = CtmcBuilder::new(5);
        for i in 0..4 {
            b.rate(i, i + 1, 4.0).unwrap();
        }
        let c = b.build().unwrap();
        let m = mean_time_to_target(&c, &[4], &SolveOptions::default()).expect("ok");
        assert!((m - 1.0).abs() < 1e-9, "4 phases of mean 1/4: {m}");
    }

    #[test]
    fn branching_hitting_time() {
        // 0 →(1) 1 →(2) 2 ; 0 →(3) 2. h(0) = 1/4 + (1/4)(1/2) + 0·(3/4)…
        // h(0) = 1/E0 + P(0→1) h(1); E0 = 4, h(1) = 1/2.
        let mut b = CtmcBuilder::new(3);
        b.rate(0, 1, 1.0).unwrap();
        b.rate(0, 2, 3.0).unwrap();
        b.rate(1, 2, 2.0).unwrap();
        let h = expected_hitting_times(&b.build().unwrap(), &[2], &SolveOptions::default())
            .expect("ok");
        assert!((h[1] - 0.5).abs() < 1e-9);
        assert!((h[0] - (0.25 + 0.25 * 0.5)).abs() < 1e-9);
    }

    #[test]
    fn unreachable_target_is_infinite() {
        let mut b = CtmcBuilder::new(3);
        b.rate(0, 1, 1.0).unwrap();
        // State 2 unreachable from 0.
        let h = expected_hitting_times(&b.build().unwrap(), &[2], &SolveOptions::default())
            .expect("ok");
        assert!(h[0].is_infinite());
        assert!(h[1].is_infinite());
        assert_eq!(h[2], 0.0);
    }

    #[test]
    fn escapable_state_is_infinite() {
        // 0 can go to target 2 or to absorbing trap 1 → E[T] = ∞.
        let mut b = CtmcBuilder::new(3);
        b.rate(0, 1, 1.0).unwrap();
        b.rate(0, 2, 1.0).unwrap();
        let h = expected_hitting_times(&b.build().unwrap(), &[2], &SolveOptions::default())
            .expect("ok");
        assert!(h[0].is_infinite());
    }

    #[test]
    fn reach_probability_of_branch() {
        let mut b = CtmcBuilder::new(3);
        b.rate(0, 1, 1.0).unwrap();
        b.rate(0, 2, 3.0).unwrap();
        let p =
            reach_probabilities(&b.build().unwrap(), &[2], &SolveOptions::default()).expect("ok");
        assert!((p[0] - 0.75).abs() < 1e-9);
        assert_eq!(p[1], 0.0);
        assert_eq!(p[2], 1.0);
    }

    #[test]
    fn hitting_time_with_cycles() {
        // Random walk 0 ↔ 1 → 2: h(1) = 1/E1 + (1/2) h(0), h(0) = 1 + h(1)
        // with unit rates: E0=1 (0→1), E1=2 (1→0, 1→2).
        // h(1) = 1/2 + 1/2 h(0); h(0) = 1 + h(1) → h(0) = 3, h(1) = 2.
        let mut b = CtmcBuilder::new(3);
        b.rate(0, 1, 1.0).unwrap();
        b.rate(1, 0, 1.0).unwrap();
        b.rate(1, 2, 1.0).unwrap();
        let h = expected_hitting_times(&b.build().unwrap(), &[2], &SolveOptions::default())
            .expect("ok");
        assert!((h[0] - 3.0).abs() < 1e-8, "h0 = {}", h[0]);
        assert!((h[1] - 2.0).abs() < 1e-8, "h1 = {}", h[1]);
    }
}
