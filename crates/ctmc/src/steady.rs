//! Steady-state analysis (the CADP `bcg_steady` role).
//!
//! The long-run distribution of a CTMC is computed per *bottom strongly
//! connected component* (BSCC): within each BSCC the stationary equations
//! πQ = 0 are solved by Gauss–Seidel sweeps; across BSCCs the long-run mass
//! is the probability of absorption into each BSCC from the initial
//! distribution, computed by iterating the embedded jump chain.

use crate::ctmc::{Ctmc, CtmcError, State};
use crate::sparse::Csr;

/// Options for the iterative solvers.
#[derive(Debug, Clone, Copy)]
pub struct SolveOptions {
    /// Convergence threshold on the max-norm of successive iterates.
    pub tolerance: f64,
    /// Iteration cap.
    pub max_iterations: usize,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions { tolerance: 1e-12, max_iterations: 200_000 }
    }
}

/// Tarjan SCC over the rate graph (CSR form). Returns (scc id per state,
/// #sccs); ids are in reverse topological order.
pub(crate) fn sccs(csr: &Csr) -> (Vec<u32>, u32) {
    let n = csr.num_states();
    let mut index = vec![u32::MAX; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut scc = vec![u32::MAX; n];
    let mut stack: Vec<State> = Vec::new();
    let mut next_index = 0u32;
    let mut next_scc = 0u32;

    enum Frame {
        Enter(State),
        Post(State, State),
    }
    for root in 0..n {
        if index[root] != u32::MAX {
            continue;
        }
        let mut call = vec![Frame::Enter(root)];
        while let Some(frame) = call.pop() {
            match frame {
                Frame::Enter(v) => {
                    if index[v] != u32::MAX {
                        continue;
                    }
                    index[v] = next_index;
                    low[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                    call.push(Frame::Post(v, v));
                    let (cols, _) = csr.row(v);
                    for &c in cols {
                        let w = c as State;
                        if index[w] == u32::MAX {
                            call.push(Frame::Post(v, w));
                            call.push(Frame::Enter(w));
                        } else if on_stack[w] {
                            low[v] = low[v].min(index[w]);
                        }
                    }
                }
                Frame::Post(v, w) => {
                    if w != v {
                        if scc[w] == u32::MAX {
                            low[v] = low[v].min(low[w]);
                        }
                        continue;
                    }
                    if low[v] == index[v] {
                        loop {
                            let x = stack.pop().expect("tarjan stack underflow");
                            on_stack[x] = false;
                            scc[x] = next_scc;
                            if x == v {
                                break;
                            }
                        }
                        next_scc += 1;
                    }
                }
            }
        }
    }
    (scc, next_scc)
}

/// Identifies the bottom SCCs: SCC ids with no transition leaving the SCC.
/// Returns for each SCC id whether it is bottom.
pub(crate) fn bottom_sccs(csr: &Csr, scc_of: &[u32], num_sccs: u32) -> Vec<bool> {
    let mut bottom = vec![true; num_sccs as usize];
    for s in 0..csr.num_states() {
        let (cols, _) = csr.row(s);
        for &c in cols {
            if scc_of[c as usize] != scc_of[s] {
                bottom[scc_of[s] as usize] = false;
            }
        }
    }
    bottom
}

/// Steady-state distribution of an *irreducible* sub-chain given by
/// `members` (states of one BSCC). Solves πQ = 0, Σπ = 1 by Gauss–Seidel on
/// the balance equations π(s)·E(s) = Σ_{s'→s} π(s')·rate(s'→s).
fn solve_bscc(csr: &Csr, members: &[State], options: &SolveOptions) -> Result<Vec<f64>, CtmcError> {
    let m = members.len();
    if m == 1 {
        return Ok(vec![1.0]);
    }
    let local: std::collections::HashMap<State, usize> =
        members.iter().enumerate().map(|(i, &s)| (s, i)).collect();
    // Local uniformized transition structure P = I + Q/Λ in CSR form: the
    // stationary distribution of the CTMC equals the stationary distribution
    // of P, and the slack above the maximum exit rate gives every state a
    // self-loop, so the chain is aperiodic and power iteration converges
    // geometrically (the balance-equation Gauss–Seidel can oscillate on
    // long phase cycles, e.g. Erlang-decorated models).
    let mut row_ptr = Vec::with_capacity(m + 1);
    let mut col: Vec<u32> = Vec::new();
    let mut rate: Vec<f64> = Vec::new();
    let mut exit = vec![0.0; m];
    row_ptr.push(0usize);
    for (i, &s) in members.iter().enumerate() {
        let (cols, rates) = csr.row(s);
        for (&c, &r) in cols.iter().zip(rates) {
            let j = local[&(c as State)]; // BSCC: targets stay inside
            col.push(j as u32);
            rate.push(r);
            exit[i] += r;
        }
        row_ptr.push(col.len());
    }
    let lambda = exit.iter().copied().fold(0.0f64, f64::max) * 1.02;
    let mut pi = vec![1.0 / m as f64; m];
    let mut next = vec![0.0f64; m];
    for iter in 0..options.max_iterations {
        next.fill(0.0);
        for i in 0..m {
            next[i] += pi[i] * (1.0 - exit[i] / lambda);
            let scale = pi[i] / lambda;
            for k in row_ptr[i]..row_ptr[i + 1] {
                next[col[k] as usize] += scale * rate[k];
            }
        }
        // Normalize each sweep to stop drift.
        let total: f64 = next.iter().sum();
        if total > 0.0 {
            for p in &mut next {
                *p /= total;
            }
        }
        let delta = pi.iter().zip(&next).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
        std::mem::swap(&mut pi, &mut next);
        if delta < options.tolerance {
            return Ok(pi);
        }
        if iter == options.max_iterations - 1 {
            return Err(CtmcError::NoConvergence {
                what: "steady-state uniformized power iteration",
                iterations: options.max_iterations,
                residual: delta,
            });
        }
    }
    unreachable!("loop returns")
}

/// Probability of absorption into each BSCC from the initial distribution,
/// computed by iterating the embedded jump chain until the transient mass
/// vanishes.
fn absorption_probabilities(
    csr: &Csr,
    initial: Vec<f64>,
    scc_of: &[u32],
    bottom: &[bool],
    options: &SolveOptions,
) -> Result<Vec<f64>, CtmcError> {
    let n = csr.num_states();
    let mut mass = initial;
    let mut absorbed = vec![0.0; bottom.len()];
    // Move mass already in BSCCs.
    for s in 0..n {
        let c = scc_of[s] as usize;
        if bottom[c] && mass[s] > 0.0 {
            absorbed[c] += mass[s];
            mass[s] = 0.0;
        }
    }
    let mut transient: f64 = mass.iter().sum();
    let mut iterations = 0;
    while transient > options.tolerance {
        iterations += 1;
        if iterations > options.max_iterations {
            return Err(CtmcError::NoConvergence {
                what: "absorption probabilities",
                iterations,
                residual: transient,
            });
        }
        let mut next = vec![0.0; n];
        for s in 0..n {
            if mass[s] == 0.0 {
                continue;
            }
            let e = csr.exit(s);
            if e == 0.0 {
                // Absorbing singleton state: its SCC is bottom by definition.
                absorbed[scc_of[s] as usize] += mass[s];
                continue;
            }
            let (cols, rates) = csr.row(s);
            for (&tgt, &r) in cols.iter().zip(rates) {
                let p = mass[s] * r / e;
                let c = scc_of[tgt as usize] as usize;
                if bottom[c] {
                    absorbed[c] += p;
                } else {
                    next[tgt as usize] += p;
                }
            }
        }
        mass = next;
        transient = mass.iter().sum();
    }
    Ok(absorbed)
}

/// Long-run (steady-state) distribution of the chain from its initial
/// distribution. Handles reducible chains: the result is the mixture of
/// per-BSCC stationary distributions weighted by absorption probabilities.
///
/// # Errors
///
/// Returns [`CtmcError::NoConvergence`] if an iterative stage exceeds its
/// iteration cap.
///
/// # Examples
///
/// ```
/// use multival_ctmc::{CtmcBuilder, steady::{steady_state, SolveOptions}};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Birth-death chain: rates 1.0 up, 2.0 down — π ∝ (1, 1/2, 1/4).
/// let mut b = CtmcBuilder::new(3);
/// b.rate(0, 1, 1.0)?;
/// b.rate(1, 2, 1.0)?;
/// b.rate(1, 0, 2.0)?;
/// b.rate(2, 1, 2.0)?;
/// let pi = steady_state(&b.build()?, &SolveOptions::default())?;
/// assert!((pi[0] - 4.0 / 7.0).abs() < 1e-9);
/// assert!((pi[1] - 2.0 / 7.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn steady_state(ctmc: &Ctmc, options: &SolveOptions) -> Result<Vec<f64>, CtmcError> {
    let csr = Csr::new(ctmc);
    let (scc_of, num_sccs) = sccs(&csr);
    let bottom = bottom_sccs(&csr, &scc_of, num_sccs);
    let absorbed = absorption_probabilities(&csr, ctmc.initial_dense(), &scc_of, &bottom, options)?;

    let mut members: Vec<Vec<State>> = vec![Vec::new(); num_sccs as usize];
    for s in 0..ctmc.num_states() {
        members[scc_of[s] as usize].push(s);
    }
    let mut pi = vec![0.0; ctmc.num_states()];
    for c in 0..num_sccs as usize {
        if !bottom[c] || absorbed[c] <= 0.0 {
            continue;
        }
        let local = solve_bscc(&csr, &members[c], options)?;
        for (i, &s) in members[c].iter().enumerate() {
            pi[s] = absorbed[c] * local[i];
        }
    }
    Ok(pi)
}

/// Steady-state *throughput* of each label: Σ_s π(s) · rate of transitions
/// from `s` carrying that label. Returns `(label name, throughput)` pairs in
/// label-id order.
///
/// # Errors
///
/// Propagates [`steady_state`] errors.
pub fn throughputs(ctmc: &Ctmc, options: &SolveOptions) -> Result<Vec<(String, f64)>, CtmcError> {
    let pi = steady_state(ctmc, options)?;
    let mut tp = vec![0.0; ctmc.labels().len()];
    for (s, &p) in pi.iter().enumerate() {
        for t in ctmc.transitions_from(s) {
            if let Some(l) = t.label {
                tp[l as usize] += p * t.rate;
            }
        }
    }
    Ok(ctmc.labels().iter().cloned().zip(tp).collect())
}

/// Expected value of a state reward function under the steady-state
/// distribution.
///
/// # Errors
///
/// Propagates [`steady_state`] errors.
pub fn steady_reward(
    ctmc: &Ctmc,
    reward: impl Fn(State) -> f64,
    options: &SolveOptions,
) -> Result<f64, CtmcError> {
    let pi = steady_state(ctmc, options)?;
    Ok(pi.iter().enumerate().map(|(s, &p)| p * reward(s)).sum())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctmc::CtmcBuilder;

    /// M/M/1/K queue: arrivals λ, service μ, capacity K.
    fn mm1k(lambda: f64, mu: f64, k: usize) -> Ctmc {
        let mut b = CtmcBuilder::new(k + 1);
        for n in 0..k {
            b.rate_labeled(n, n + 1, lambda, "arrive").unwrap();
            b.rate_labeled(n + 1, n, mu, "serve").unwrap();
        }
        b.build().unwrap()
    }

    fn mm1k_analytic(rho: f64, k: usize) -> Vec<f64> {
        let weights: Vec<f64> = (0..=k).map(|n| rho.powi(n as i32)).collect();
        let z: f64 = weights.iter().sum();
        weights.into_iter().map(|w| w / z).collect()
    }

    #[test]
    fn mm1k_matches_analytic() {
        for (lambda, mu, k) in [(1.0, 2.0, 4), (3.0, 2.0, 6), (1.0, 1.0, 3)] {
            let c = mm1k(lambda, mu, k);
            let pi = steady_state(&c, &SolveOptions::default()).expect("converges");
            let expect = mm1k_analytic(lambda / mu, k);
            for (i, (&got, want)) in pi.iter().zip(expect).enumerate() {
                assert!(
                    (got - want).abs() < 1e-9,
                    "λ={lambda} μ={mu} K={k}: π[{i}] = {got}, want {want}"
                );
            }
        }
    }

    #[test]
    fn steady_state_sums_to_one() {
        let c = mm1k(2.0, 3.0, 5);
        let pi = steady_state(&c, &SolveOptions::default()).expect("converges");
        let total: f64 = pi.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_balances_at_steady_state() {
        // In steady state, arrival throughput == service throughput.
        let c = mm1k(1.0, 2.0, 4);
        let tp = throughputs(&c, &SolveOptions::default()).expect("converges");
        let arrive = tp.iter().find(|(l, _)| l == "arrive").expect("label").1;
        let serve = tp.iter().find(|(l, _)| l == "serve").expect("label").1;
        assert!((arrive - serve).abs() < 1e-9, "flow balance: {arrive} vs {serve}");
        // Effective throughput < λ because of blocking.
        assert!(arrive < 1.0);
    }

    #[test]
    fn reducible_chain_mixes_bsccs() {
        // 0 → 1 (rate 1) and 0 → 2 (rate 3); 1 and 2 are absorbing self-BSCCs
        // but CTMC absorbing states have no self-loop; give each a cycle.
        let mut b = CtmcBuilder::new(5);
        b.rate(0, 1, 1.0).unwrap();
        b.rate(0, 3, 3.0).unwrap();
        b.rate(1, 2, 1.0).unwrap();
        b.rate(2, 1, 1.0).unwrap();
        b.rate(3, 4, 2.0).unwrap();
        b.rate(4, 3, 2.0).unwrap();
        let pi = steady_state(&b.build().unwrap(), &SolveOptions::default()).expect("ok");
        // BSCC {1,2} reached w.p. 1/4, split evenly (symmetric rates).
        assert!((pi[1] - 0.125).abs() < 1e-9);
        assert!((pi[2] - 0.125).abs() < 1e-9);
        // BSCC {3,4} reached w.p. 3/4.
        assert!((pi[3] - 0.375).abs() < 1e-9);
        assert!((pi[4] - 0.375).abs() < 1e-9);
        assert!(pi[0].abs() < 1e-12, "transient state has no long-run mass");
    }

    #[test]
    fn absorbing_state_gets_all_mass() {
        let mut b = CtmcBuilder::new(3);
        b.rate(0, 1, 1.0).unwrap();
        b.rate(1, 2, 1.0).unwrap();
        let pi = steady_state(&b.build().unwrap(), &SolveOptions::default()).expect("ok");
        assert!((pi[2] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn steady_reward_is_expected_occupancy() {
        // Mean queue length of M/M/1/K.
        let c = mm1k(1.0, 2.0, 4);
        let pi = steady_state(&c, &SolveOptions::default()).expect("ok");
        let direct: f64 = pi.iter().enumerate().map(|(n, p)| n as f64 * p).sum();
        let via_reward = steady_reward(&c, |s| s as f64, &SolveOptions::default()).expect("ok");
        assert!((direct - via_reward).abs() < 1e-12);
    }

    #[test]
    fn initial_distribution_affects_reducible_result() {
        let mut b = CtmcBuilder::new(2);
        // Two disconnected absorbing states.
        b.set_initial(vec![(0, 0.3), (1, 0.7)]).unwrap();
        let pi = steady_state(&b.build().unwrap(), &SolveOptions::default()).expect("ok");
        assert!((pi[0] - 0.3).abs() < 1e-12);
        assert!((pi[1] - 0.7).abs() < 1e-12);
    }
}
