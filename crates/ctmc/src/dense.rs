//! Dense reference solvers.
//!
//! These run the same uniformization/power-iteration algorithms as the CSR
//! production paths ([`crate::steady`], [`crate::transient`]) but through a
//! naive dense `n × n` matrix kernel. They exist as oracles: the metamorphic
//! property suite checks that the CSR and dense answers agree to 1e-9, and
//! the bench harness reports the dense-vs-CSR wall-time ratio. O(n²) per
//! step — keep `n` small.

use crate::ctmc::{Ctmc, CtmcError};
use crate::steady::SolveOptions;
use crate::transient::{uniformize_with, TransientOptions};

/// The dense uniformized jump matrix `P = I + Q/Λ` (row-major, `n × n`)
/// and the uniformization rate `Λ = 1.02 · max exit rate`.
#[must_use]
pub fn uniformized_matrix(ctmc: &Ctmc) -> (Vec<f64>, f64) {
    let n = ctmc.num_states();
    let lambda = ctmc.max_exit_rate() * 1.02;
    let mut p = vec![0.0; n * n];
    for s in 0..n {
        let mut exit = 0.0;
        for t in ctmc.transitions_from(s) {
            p[s * n + t.target] += t.rate / lambda;
            exit += t.rate;
        }
        p[s * n + s] += 1.0 - exit / lambda;
    }
    (p, lambda)
}

/// Dense vector-matrix product `out = v · P`.
fn dense_step(n: usize, p: &[f64], v: &[f64], out: &mut [f64]) {
    out.fill(0.0);
    for s in 0..n {
        let mass = v[s];
        if mass == 0.0 {
            continue;
        }
        let row = &p[s * n..(s + 1) * n];
        for (o, &q) in out.iter_mut().zip(row) {
            *o += mass * q;
        }
    }
}

/// Transient distribution at time `t` via uniformization with the dense
/// kernel — the reference against which [`crate::transient::transient`]
/// (CSR) is cross-validated.
///
/// # Errors
///
/// As [`crate::transient::transient`].
pub fn transient_dense(
    ctmc: &Ctmc,
    t: f64,
    options: &TransientOptions,
) -> Result<Vec<f64>, CtmcError> {
    let n = ctmc.num_states();
    let (p, _) = uniformized_matrix(ctmc);
    uniformize_with(ctmc.initial_dense(), ctmc.max_exit_rate(), t, options, |v, out| {
        dense_step(n, &p, v, out);
    })
}

/// Long-run distribution via dense power iteration of `P = I + Q/Λ` from
/// the initial distribution. The slack in Λ makes the chain aperiodic, so
/// `π₀ Pᵏ` converges to the limiting distribution — for reducible chains
/// this is the same BSCC mixture [`crate::steady::steady_state`] computes,
/// though convergence degrades with slow absorption; its role here is as a
/// small-chain oracle.
///
/// # Errors
///
/// Returns [`CtmcError::NoConvergence`] when the iteration cap is exceeded.
pub fn steady_state_dense(ctmc: &Ctmc, options: &SolveOptions) -> Result<Vec<f64>, CtmcError> {
    let n = ctmc.num_states();
    if ctmc.max_exit_rate() == 0.0 {
        return Ok(ctmc.initial_dense());
    }
    let (p, _) = uniformized_matrix(ctmc);
    let mut pi = ctmc.initial_dense();
    let mut next = vec![0.0; n];
    for iter in 0..options.max_iterations {
        dense_step(n, &p, &pi, &mut next);
        let total: f64 = next.iter().sum();
        if total > 0.0 {
            for x in &mut next {
                *x /= total;
            }
        }
        let delta = pi.iter().zip(&next).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
        std::mem::swap(&mut pi, &mut next);
        if delta < options.tolerance {
            return Ok(pi);
        }
        if iter == options.max_iterations - 1 {
            return Err(CtmcError::NoConvergence {
                what: "dense steady-state power iteration",
                iterations: options.max_iterations,
                residual: delta,
            });
        }
    }
    unreachable!("loop returns")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctmc::CtmcBuilder;
    use crate::steady::steady_state;
    use crate::transient::transient;

    fn flip_flop() -> Ctmc {
        let mut b = CtmcBuilder::new(3);
        b.rate(0, 1, 2.0).unwrap();
        b.rate(1, 2, 1.5).unwrap();
        b.rate(2, 0, 0.7).unwrap();
        b.rate(1, 0, 0.3).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn dense_transient_matches_csr() {
        let c = flip_flop();
        for t in [0.1, 1.0, 5.0, 25.0] {
            let sparse = transient(&c, t, &TransientOptions::default()).expect("csr");
            let dense = transient_dense(&c, t, &TransientOptions::default()).expect("dense");
            for (a, b) in sparse.iter().zip(&dense) {
                assert!((a - b).abs() < 1e-12, "t={t}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn dense_steady_matches_bscc_solver() {
        let c = flip_flop();
        let fast = steady_state(&c, &SolveOptions::default()).expect("bscc");
        let slow = steady_state_dense(&c, &SolveOptions::default()).expect("dense");
        for (a, b) in fast.iter().zip(&slow) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }
}
