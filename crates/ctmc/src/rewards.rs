//! Reward-based measures: expected accumulated rewards until absorption and
//! long-run reward rates.
//!
//! These extend the throughput/occupancy measures of the basic flow with
//! cost-style metrics (energy, bus cycles, message counts): a state reward
//! accrues per unit of time spent, an impulse reward per transition taken.

use crate::ctmc::{Ctmc, CtmcError, State};
use crate::sparse::Csr;
use crate::steady::{steady_state, SolveOptions};

/// Expected total reward accumulated until the target set is hit, from each
/// state: `g(s) = stateReward(s)/E(s) + Σ P(s,s')·(impulse(s,s') + g(s'))`,
/// `g = 0` on targets. States that cannot surely reach the target get `∞`.
///
/// # Errors
///
/// Returns [`CtmcError::NoConvergence`] on iteration-cap overrun and
/// [`CtmcError::BadState`] for out-of-range targets.
///
/// # Examples
///
/// ```
/// use multival_ctmc::{CtmcBuilder, rewards::accumulated_until,
///                     steady::SolveOptions};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Two phases of rate 2; reward 3 per time unit → E[total] = 3·(0.5+0.5).
/// let mut b = CtmcBuilder::new(3);
/// b.rate(0, 1, 2.0)?;
/// b.rate(1, 2, 2.0)?;
/// let g = accumulated_until(&b.build()?, &[2], |_| 3.0, |_, _| 0.0,
///                           &SolveOptions::default())?;
/// assert!((g[0] - 3.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn accumulated_until(
    ctmc: &Ctmc,
    targets: &[State],
    state_reward: impl Fn(State) -> f64,
    impulse: impl Fn(State, State) -> f64,
    options: &SolveOptions,
) -> Result<Vec<f64>, CtmcError> {
    let n = ctmc.num_states();
    let mut is_target = vec![false; n];
    for &t in targets {
        if t >= n {
            return Err(CtmcError::BadState(t));
        }
        is_target[t] = true;
    }
    // Reuse the hitting-time reachability classification: infinite where the
    // expected time itself is infinite.
    let hitting = crate::absorb::expected_hitting_times(ctmc, targets, options)?;
    let mut g: Vec<f64> =
        hitting.iter().map(|h| if h.is_infinite() { f64::INFINITY } else { 0.0 }).collect();
    let csr = Csr::new(ctmc);
    for iter in 0..options.max_iterations {
        let mut delta: f64 = 0.0;
        for s in 0..n {
            if is_target[s] || g[s].is_infinite() {
                continue;
            }
            let e = csr.exit(s);
            if e == 0.0 {
                g[s] = f64::INFINITY;
                continue;
            }
            let mut acc = state_reward(s) / e;
            let (cols, rates) = csr.row(s);
            for (&c, &r) in cols.iter().zip(rates) {
                let gt = g[c as usize];
                if gt.is_infinite() {
                    acc = f64::INFINITY;
                    break;
                }
                acc += (r / e) * (impulse(s, c as usize) + gt);
            }
            if acc.is_finite() {
                delta = delta.max((acc - g[s]).abs());
                g[s] = acc;
            } else {
                g[s] = f64::INFINITY;
            }
        }
        if delta < options.tolerance {
            return Ok(g);
        }
        if iter == options.max_iterations - 1 {
            return Err(CtmcError::NoConvergence {
                what: "accumulated-reward Gauss-Seidel",
                iterations: options.max_iterations,
                residual: delta,
            });
        }
    }
    unreachable!("loop returns")
}

/// Long-run reward rate: `Σ_s π(s)·stateReward(s) + Σ_{s→t} π(s)·rate·impulse`.
///
/// # Errors
///
/// Propagates steady-state solver errors.
pub fn long_run_rate(
    ctmc: &Ctmc,
    state_reward: impl Fn(State) -> f64,
    impulse: impl Fn(State, State) -> f64,
    options: &SolveOptions,
) -> Result<f64, CtmcError> {
    let pi = steady_state(ctmc, options)?;
    let mut total = 0.0;
    for (s, &p) in pi.iter().enumerate() {
        total += p * state_reward(s);
        for t in ctmc.transitions_from(s) {
            total += p * t.rate * impulse(s, t.target);
        }
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctmc::CtmcBuilder;

    #[test]
    fn impulse_counts_transitions() {
        // Random walk 0↔1→2 with unit rates; expected #jumps until hitting 2
        // equals the expected hitting time here only by coincidence of unit
        // rates — count jumps via impulse 1 per transition.
        let mut b = CtmcBuilder::new(3);
        b.rate(0, 1, 1.0).unwrap();
        b.rate(1, 0, 1.0).unwrap();
        b.rate(1, 2, 1.0).unwrap();
        let g = accumulated_until(
            &b.build().unwrap(),
            &[2],
            |_| 0.0,
            |_, _| 1.0,
            &SolveOptions::default(),
        )
        .expect("converges");
        // E[#jumps from 1] = 1 + (1/2)E[#jumps from 0]; from 0 = 1 + from 1.
        // → from 1 = 4? solve: j1 = 1 + 0.5·j0, j0 = 1 + j1 → j1 = 1 + 0.5 +
        // 0.5 j1 → j1 = 3, j0 = 4.
        assert!((g[1] - 3.0).abs() < 1e-8, "{}", g[1]);
        assert!((g[0] - 4.0).abs() < 1e-8, "{}", g[0]);
    }

    #[test]
    fn state_reward_equals_weighted_time() {
        // Reward 5 while in phase 0, 1 while in phase 1, rates 2 and 4.
        let mut b = CtmcBuilder::new(3);
        b.rate(0, 1, 2.0).unwrap();
        b.rate(1, 2, 4.0).unwrap();
        let g = accumulated_until(
            &b.build().unwrap(),
            &[2],
            |s| if s == 0 { 5.0 } else { 1.0 },
            |_, _| 0.0,
            &SolveOptions::default(),
        )
        .expect("converges");
        assert!((g[0] - (5.0 / 2.0 + 1.0 / 4.0)).abs() < 1e-9);
    }

    #[test]
    fn unreachable_target_infinite_reward() {
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 0, 1.0).unwrap(); // self-loop, never reaches 1
        let g = accumulated_until(
            &b.build().unwrap(),
            &[1],
            |_| 1.0,
            |_, _| 0.0,
            &SolveOptions::default(),
        )
        .expect("solves");
        assert!(g[0].is_infinite());
    }

    #[test]
    fn long_run_rate_matches_occupancy() {
        // Flip-flop with π = (1/3, 2/3); reward 3 in state 0 → rate 1.
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, 2.0).unwrap();
        b.rate(1, 0, 1.0).unwrap();
        let r = long_run_rate(
            &b.build().unwrap(),
            |s| if s == 0 { 3.0 } else { 0.0 },
            |_, _| 0.0,
            &SolveOptions::default(),
        )
        .expect("solves");
        assert!((r - 1.0).abs() < 1e-9);
    }

    #[test]
    fn long_run_impulse_is_throughput() {
        // Impulse 1 on every transition = total jump rate at steady state.
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, 2.0).unwrap();
        b.rate(1, 0, 2.0).unwrap();
        let r = long_run_rate(&b.build().unwrap(), |_| 0.0, |_, _| 1.0, &SolveOptions::default())
            .expect("solves");
        assert!((r - 2.0).abs() < 1e-9);
    }
}
