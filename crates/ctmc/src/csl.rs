//! CSL-style probabilistic queries: time-bounded until and time-bounded
//! reachability over state predicates.
//!
//! `P(Φ U[0,t] Ψ)` — the probability of reaching a Ψ-state within `t` time
//! units while passing only through Φ-states — is computed by the standard
//! transformation: Ψ-states and (¬Φ ∧ ¬Ψ)-states are made absorbing, then
//! the transient distribution at `t` is summed over Ψ.

use crate::ctmc::{Ctmc, CtmcBuilder, CtmcError, State};
use crate::transient::{transient, TransientOptions};

/// Probability, from the chain's initial distribution, of `phi U[0,t] psi`.
///
/// # Errors
///
/// Propagates transient-solver errors.
///
/// # Examples
///
/// ```
/// use multival_ctmc::{CtmcBuilder, csl::bounded_until, TransientOptions};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // 0 -1.0-> 1: P(true U[0,t] at-1) = 1 - e^-t.
/// let mut b = CtmcBuilder::new(2);
/// b.rate(0, 1, 1.0)?;
/// let p = bounded_until(&b.build()?, |_| true, |s| s == 1, 1.0,
///                       &TransientOptions::default())?;
/// assert!((p - (1.0 - (-1.0f64).exp())).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn bounded_until(
    ctmc: &Ctmc,
    phi: impl Fn(State) -> bool,
    psi: impl Fn(State) -> bool,
    t: f64,
    options: &TransientOptions,
) -> Result<f64, CtmcError> {
    let n = ctmc.num_states();
    // Build the transformed chain: absorb in Ψ (success) and ¬Φ∧¬Ψ (fail).
    let mut b = CtmcBuilder::new(n);
    let mut success: Vec<State> = Vec::new();
    for s in 0..n {
        if psi(s) {
            success.push(s);
            continue; // absorbing success
        }
        if !phi(s) {
            continue; // absorbing failure
        }
        for tr in ctmc.transitions_from(s) {
            b.rate(s, tr.target, tr.rate)?;
        }
    }
    b.set_initial(ctmc.initial().to_vec())?;
    let chain = b.build()?;
    let dist = transient(&chain, t, options)?;
    Ok(success.iter().map(|&s| dist[s]).sum())
}

/// Probability of reaching a Ψ-state within `t` (unconstrained path):
/// `P(true U[0,t] Ψ)`.
///
/// # Errors
///
/// Propagates transient-solver errors.
pub fn bounded_reach(
    ctmc: &Ctmc,
    psi: impl Fn(State) -> bool,
    t: f64,
    options: &TransientOptions,
) -> Result<f64, CtmcError> {
    bounded_until(ctmc, |_| true, psi, t, options)
}

/// The time `t` at which `P(true U[0,t] Ψ)` first reaches `quantile`
/// (within `precision`), found by bisection over `[0, horizon]`. Returns
/// `None` if even `horizon` does not reach the quantile.
///
/// # Errors
///
/// Propagates transient-solver errors.
pub fn reach_quantile(
    ctmc: &Ctmc,
    psi: impl Fn(State) -> bool + Copy,
    quantile: f64,
    horizon: f64,
    precision: f64,
    options: &TransientOptions,
) -> Result<Option<f64>, CtmcError> {
    if bounded_reach(ctmc, psi, horizon, options)? < quantile {
        return Ok(None);
    }
    let (mut lo, mut hi) = (0.0f64, horizon);
    while hi - lo > precision {
        let mid = 0.5 * (lo + hi);
        if bounded_reach(ctmc, psi, mid, options)? >= quantile {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(Some(0.5 * (lo + hi)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> Ctmc {
        // 0 -2-> 1 -2-> 2, and an escape 0 -1-> 3 (violates Φ in tests).
        let mut b = CtmcBuilder::new(4);
        b.rate(0, 1, 2.0).unwrap();
        b.rate(1, 2, 2.0).unwrap();
        b.rate(0, 3, 1.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn until_respects_phi_constraint() {
        let c = chain();
        let opts = TransientOptions::default();
        // Reaching 2 while avoiding 3 vs unconstrained: identical here,
        // because paths through 3 never reach 2 anyway.
        let constrained = bounded_until(&c, |s| s != 3, |s| s == 2, 5.0, &opts).expect("solves");
        let unconstrained = bounded_reach(&c, |s| s == 2, 5.0, &opts).expect("solves");
        assert!((constrained - unconstrained).abs() < 1e-9);
        // Forbidding state 1 makes 2 unreachable.
        let blocked = bounded_until(&c, |s| s != 1, |s| s == 2, 5.0, &opts).expect("solves");
        assert!(blocked.abs() < 1e-12);
    }

    #[test]
    fn until_probability_is_monotone_in_time() {
        let c = chain();
        let opts = TransientOptions::default();
        let mut last = 0.0;
        for i in 1..10 {
            let t = i as f64 * 0.3;
            let p = bounded_reach(&c, |s| s == 2, t, &opts).expect("solves");
            assert!(p >= last - 1e-12);
            last = p;
        }
        // Long-run: branch probability to reach 1 from 0 is 2/3.
        let p = bounded_reach(&c, |s| s == 2, 200.0, &opts).expect("solves");
        assert!((p - 2.0 / 3.0).abs() < 1e-6, "{p}");
    }

    #[test]
    fn quantile_bisection() {
        // Single exponential rate 1: median at ln 2.
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, 1.0).unwrap();
        let c = b.build().unwrap();
        let opts = TransientOptions::default();
        let median = reach_quantile(&c, |s| s == 1, 0.5, 10.0, 1e-6, &opts)
            .expect("solves")
            .expect("reachable");
        assert!((median - std::f64::consts::LN_2).abs() < 1e-4, "{median}");
        // Unreachable quantile.
        let none = reach_quantile(&c, |s| s == 1, 0.999, 0.01, 1e-6, &opts).expect("solves");
        assert!(none.is_none());
    }

    #[test]
    fn psi_state_at_time_zero_counts() {
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, 1.0).unwrap();
        let c = b.build().unwrap();
        let p = bounded_reach(&c, |s| s == 0, 0.0, &TransientOptions::default()).expect("solves");
        assert!((p - 1.0).abs() < 1e-12, "initial state already satisfies Ψ");
    }
}
