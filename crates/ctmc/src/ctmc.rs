//! Continuous-time Markov chains in sparse form.

use std::fmt;

/// Index of a CTMC state.
pub type State = usize;

/// A rate transition: target state, rate λ > 0, and an optional action label
/// (used for throughput queries, e.g. "rate of `PUSH` events at steady
/// state").
#[derive(Debug, Clone, PartialEq)]
pub struct RateTransition {
    /// Target state.
    pub target: State,
    /// Exponential rate (must be positive and finite).
    pub rate: f64,
    /// Interned label, or `None` for anonymous transitions.
    pub label: Option<u32>,
}

/// Error constructing or analyzing a CTMC.
#[derive(Debug, Clone, PartialEq)]
pub enum CtmcError {
    /// A rate was non-positive or non-finite.
    BadRate {
        /// Source state of the offending transition.
        state: State,
        /// The offending rate.
        rate: f64,
    },
    /// A state index was out of range.
    BadState(State),
    /// An iterative solver failed to converge.
    NoConvergence {
        /// Which solver.
        what: &'static str,
        /// Iterations performed.
        iterations: usize,
        /// Residual when giving up.
        residual: f64,
    },
    /// The query is undefined for this chain (e.g. steady state of an empty
    /// chain).
    Undefined(String),
}

impl fmt::Display for CtmcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtmcError::BadRate { state, rate } => {
                write!(f, "invalid rate {rate} on a transition from state {state}")
            }
            CtmcError::BadState(s) => write!(f, "state index {s} out of range"),
            CtmcError::NoConvergence { what, iterations, residual } => write!(
                f,
                "{what} did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
            CtmcError::Undefined(m) => write!(f, "undefined query: {m}"),
        }
    }
}

impl std::error::Error for CtmcError {}

/// A sparse continuous-time Markov chain.
///
/// Build one with [`CtmcBuilder`]. States are dense indices; the initial
/// distribution defaults to a point mass on state 0.
///
/// # Examples
///
/// A two-state on/off process:
///
/// ```
/// use multival_ctmc::CtmcBuilder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = CtmcBuilder::new(2);
/// b.rate(0, 1, 2.0)?;        // on -> off at rate 2
/// b.rate(1, 0, 1.0)?;        // off -> on at rate 1
/// let ctmc = b.build()?;
/// assert_eq!(ctmc.num_states(), 2);
/// assert!((ctmc.exit_rate(0) - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Ctmc {
    rows: Vec<Vec<RateTransition>>,
    labels: Vec<String>,
    initial: Vec<(State, f64)>,
}

impl Ctmc {
    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.rows.len()
    }

    /// Number of rate transitions.
    pub fn num_transitions(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// Outgoing rate transitions of `s`.
    pub fn transitions_from(&self, s: State) -> &[RateTransition] {
        &self.rows[s]
    }

    /// Total exit rate E(s) = Σ rates out of `s` (0 for absorbing states).
    pub fn exit_rate(&self, s: State) -> f64 {
        self.rows[s].iter().map(|t| t.rate).sum()
    }

    /// The maximum exit rate over all states (the uniformization rate base).
    pub fn max_exit_rate(&self) -> f64 {
        (0..self.num_states()).map(|s| self.exit_rate(s)).fold(0.0, f64::max)
    }

    /// Is `s` absorbing (no outgoing rates)?
    pub fn is_absorbing(&self, s: State) -> bool {
        self.rows[s].is_empty()
    }

    /// The initial distribution as `(state, probability)` pairs.
    pub fn initial(&self) -> &[(State, f64)] {
        &self.initial
    }

    /// The initial distribution as a dense vector.
    pub fn initial_dense(&self) -> Vec<f64> {
        let mut v = vec![0.0; self.num_states()];
        for &(s, p) in &self.initial {
            v[s] += p;
        }
        v
    }

    /// Name of an interned transition label.
    pub fn label_name(&self, id: u32) -> &str {
        &self.labels[id as usize]
    }

    /// Id of a label by name, if interned.
    pub fn label_id(&self, name: &str) -> Option<u32> {
        self.labels.iter().position(|l| l == name).map(|i| i as u32)
    }

    /// All interned label names.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }
}

/// Incremental builder for [`Ctmc`].
#[derive(Debug, Clone)]
pub struct CtmcBuilder {
    rows: Vec<Vec<RateTransition>>,
    labels: Vec<String>,
    initial: Vec<(State, f64)>,
}

impl CtmcBuilder {
    /// A builder for a chain with `n` states (initially no transitions;
    /// initial distribution is a point mass on state 0).
    pub fn new(n: usize) -> Self {
        CtmcBuilder { rows: vec![Vec::new(); n], labels: Vec::new(), initial: vec![(0, 1.0)] }
    }

    /// Number of states so far.
    pub fn num_states(&self) -> usize {
        self.rows.len()
    }

    /// Appends a new state, returning its index.
    pub fn add_state(&mut self) -> State {
        self.rows.push(Vec::new());
        self.rows.len() - 1
    }

    /// Adds an anonymous rate transition.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::BadRate`] for non-positive/non-finite rates and
    /// [`CtmcError::BadState`] for out-of-range endpoints.
    pub fn rate(&mut self, from: State, to: State, rate: f64) -> Result<(), CtmcError> {
        self.rate_labeled_opt(from, to, rate, None)
    }

    /// Adds a labeled rate transition (label interned by name).
    ///
    /// # Errors
    ///
    /// Same as [`CtmcBuilder::rate`].
    pub fn rate_labeled(
        &mut self,
        from: State,
        to: State,
        rate: f64,
        label: &str,
    ) -> Result<(), CtmcError> {
        let id = match self.labels.iter().position(|l| l == label) {
            Some(i) => i as u32,
            None => {
                self.labels.push(label.to_owned());
                (self.labels.len() - 1) as u32
            }
        };
        self.rate_labeled_opt(from, to, rate, Some(id))
    }

    fn rate_labeled_opt(
        &mut self,
        from: State,
        to: State,
        rate: f64,
        label: Option<u32>,
    ) -> Result<(), CtmcError> {
        if !(rate.is_finite() && rate > 0.0) {
            return Err(CtmcError::BadRate { state: from, rate });
        }
        if from >= self.rows.len() {
            return Err(CtmcError::BadState(from));
        }
        if to >= self.rows.len() {
            return Err(CtmcError::BadState(to));
        }
        self.rows[from].push(RateTransition { target: to, rate, label });
        Ok(())
    }

    /// Sets the initial distribution.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::BadState`] for out-of-range states and
    /// [`CtmcError::Undefined`] if the probabilities do not sum to 1 (within
    /// 1e-9).
    pub fn set_initial(&mut self, dist: Vec<(State, f64)>) -> Result<(), CtmcError> {
        let mut total = 0.0;
        for &(s, p) in &dist {
            if s >= self.rows.len() {
                return Err(CtmcError::BadState(s));
            }
            total += p;
        }
        if (total - 1.0).abs() > 1e-9 {
            return Err(CtmcError::Undefined(format!(
                "initial distribution sums to {total}, expected 1"
            )));
        }
        self.initial = dist;
        Ok(())
    }

    /// Finalizes the chain. Parallel transitions to the same target are kept
    /// (their rates effectively add).
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::Undefined`] for an empty chain.
    pub fn build(self) -> Result<Ctmc, CtmcError> {
        if self.rows.is_empty() {
            return Err(CtmcError::Undefined("chain has no states".into()));
        }
        Ok(Ctmc { rows: self.rows, labels: self.labels, initial: self.initial })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_validates_rates() {
        let mut b = CtmcBuilder::new(2);
        assert!(matches!(b.rate(0, 1, 0.0), Err(CtmcError::BadRate { .. })));
        assert!(matches!(b.rate(0, 1, -1.0), Err(CtmcError::BadRate { .. })));
        assert!(matches!(b.rate(0, 1, f64::NAN), Err(CtmcError::BadRate { .. })));
        assert!(matches!(b.rate(0, 5, 1.0), Err(CtmcError::BadState(5))));
        assert!(b.rate(0, 1, 1.0).is_ok());
    }

    #[test]
    fn exit_rates_sum() {
        let mut b = CtmcBuilder::new(3);
        b.rate(0, 1, 1.5).unwrap();
        b.rate(0, 2, 2.5).unwrap();
        let c = b.build().unwrap();
        assert!((c.exit_rate(0) - 4.0).abs() < 1e-12);
        assert!(c.is_absorbing(1));
        assert!((c.max_exit_rate() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn labels_interned_once() {
        let mut b = CtmcBuilder::new(2);
        b.rate_labeled(0, 1, 1.0, "PUSH").unwrap();
        b.rate_labeled(1, 0, 1.0, "PUSH").unwrap();
        b.rate_labeled(1, 0, 1.0, "POP").unwrap();
        let c = b.build().unwrap();
        assert_eq!(c.labels().len(), 2);
        assert_eq!(c.label_id("PUSH"), Some(0));
        assert_eq!(c.label_name(1), "POP");
    }

    #[test]
    fn initial_distribution_checked() {
        let mut b = CtmcBuilder::new(2);
        assert!(b.set_initial(vec![(0, 0.5), (1, 0.4)]).is_err());
        assert!(b.set_initial(vec![(0, 0.5), (1, 0.5)]).is_ok());
        let c = b.build().unwrap();
        assert_eq!(c.initial_dense(), vec![0.5, 0.5]);
    }

    #[test]
    fn empty_chain_rejected() {
        assert!(CtmcBuilder::new(0).build().is_err());
    }
}
