//! Discrete-time Markov chains: the embedded jump chain of a CTMC and
//! standalone DTMC analyses (stationary distribution, n-step transient,
//! absorption probabilities).

use crate::ctmc::{Ctmc, CtmcError, State};

/// A sparse discrete-time Markov chain. Row probabilities sum to 1
/// (absorbing states self-loop implicitly).
#[derive(Debug, Clone)]
pub struct Dtmc {
    rows: Vec<Vec<(State, f64)>>,
    initial: Vec<(State, f64)>,
}

impl Dtmc {
    /// Builds a DTMC from explicit rows.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::Undefined`] if a non-empty row's probabilities
    /// do not sum to 1 (within 1e-9) or contain invalid entries.
    pub fn new(
        rows: Vec<Vec<(State, f64)>>,
        initial: Vec<(State, f64)>,
    ) -> Result<Dtmc, CtmcError> {
        let n = rows.len();
        for (s, row) in rows.iter().enumerate() {
            if row.is_empty() {
                continue; // absorbing
            }
            let mut total = 0.0;
            for &(t, p) in row {
                if t >= n {
                    return Err(CtmcError::BadState(t));
                }
                if !(p.is_finite() && p >= 0.0) {
                    return Err(CtmcError::Undefined(format!(
                        "invalid probability {p} from state {s}"
                    )));
                }
                total += p;
            }
            if (total - 1.0).abs() > 1e-9 {
                return Err(CtmcError::Undefined(format!("row {s} sums to {total}, expected 1")));
            }
        }
        Ok(Dtmc { rows, initial })
    }

    /// The embedded jump chain of a CTMC: `P(s,t) = rate(s→t) / E(s)`.
    pub fn embedded(ctmc: &Ctmc) -> Dtmc {
        let n = ctmc.num_states();
        let mut rows = Vec::with_capacity(n);
        for s in 0..n {
            let e = ctmc.exit_rate(s);
            if e == 0.0 {
                rows.push(Vec::new());
            } else {
                rows.push(
                    ctmc.transitions_from(s).iter().map(|t| (t.target, t.rate / e)).collect(),
                );
            }
        }
        Dtmc { rows, initial: ctmc.initial().to_vec() }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.rows.len()
    }

    /// Is `s` absorbing?
    pub fn is_absorbing(&self, s: State) -> bool {
        self.rows[s].is_empty()
    }

    /// One step of the chain: `out = in · P` (absorbing states keep their
    /// mass).
    pub fn step(&self, v: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.num_states()];
        for (s, row) in self.rows.iter().enumerate() {
            if v[s] == 0.0 {
                continue;
            }
            if row.is_empty() {
                out[s] += v[s];
            } else {
                for &(t, p) in row {
                    out[t] += v[s] * p;
                }
            }
        }
        out
    }

    /// The distribution after `n` steps from the initial distribution.
    pub fn distribution_after(&self, n: usize) -> Vec<f64> {
        let mut v = vec![0.0; self.num_states()];
        for &(s, p) in &self.initial {
            v[s] += p;
        }
        for _ in 0..n {
            v = self.step(&v);
        }
        v
    }

    /// Stationary distribution by power iteration on the *lazy* chain
    /// `P' = (P + I)/2`, which is aperiodic and shares the stationary
    /// distribution of `P` — so periodic chains (e.g. two-cycles) converge
    /// geometrically too.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::NoConvergence`] if the iterate does not settle
    /// within `max_iterations`.
    pub fn stationary(&self, tolerance: f64, max_iterations: usize) -> Result<Vec<f64>, CtmcError> {
        let n = self.num_states();
        let mut v = vec![0.0; n];
        for &(s, p) in &self.initial {
            v[s] += p;
        }
        for _ in 0..max_iterations {
            let stepped = self.step(&v);
            let mut delta: f64 = 0.0;
            let mut next = vec![0.0; n];
            for i in 0..n {
                next[i] = 0.5 * v[i] + 0.5 * stepped[i];
                delta = delta.max((next[i] - v[i]).abs());
            }
            v = next;
            if delta < tolerance {
                let total: f64 = v.iter().sum();
                if total > 0.0 {
                    for x in &mut v {
                        *x /= total;
                    }
                }
                return Ok(v);
            }
        }
        Err(CtmcError::NoConvergence {
            what: "DTMC stationary power iteration",
            iterations: max_iterations,
            residual: f64::NAN,
        })
    }

    /// Probability of eventually being absorbed in each absorbing state,
    /// per starting state: `B[s][j]` for the `j`-th absorbing state.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::NoConvergence`] on iteration-cap overrun.
    pub fn absorption_matrix(
        &self,
        tolerance: f64,
        max_iterations: usize,
    ) -> Result<(Vec<State>, Vec<Vec<f64>>), CtmcError> {
        let n = self.num_states();
        let absorbing: Vec<State> = (0..n).filter(|&s| self.is_absorbing(s)).collect();
        let mut b = vec![vec![0.0; absorbing.len()]; n];
        for (j, &a) in absorbing.iter().enumerate() {
            b[a][j] = 1.0;
        }
        for iter in 0..max_iterations {
            let mut delta: f64 = 0.0;
            for s in 0..n {
                if self.is_absorbing(s) {
                    continue;
                }
                for j in 0..b[s].len() {
                    let acc: f64 = self.rows[s].iter().map(|&(t, p)| p * b[t][j]).sum();
                    delta = delta.max((acc - b[s][j]).abs());
                    b[s][j] = acc;
                }
            }
            if delta < tolerance {
                return Ok((absorbing, b));
            }
            if iter == max_iterations - 1 {
                return Err(CtmcError::NoConvergence {
                    what: "DTMC absorption Gauss-Seidel",
                    iterations: max_iterations,
                    residual: delta,
                });
            }
        }
        unreachable!("loop returns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctmc::CtmcBuilder;

    fn two_state(p01: f64, p10: f64) -> Dtmc {
        Dtmc::new(
            vec![vec![(0, 1.0 - p01), (1, p01)], vec![(0, p10), (1, 1.0 - p10)]],
            vec![(0, 1.0)],
        )
        .expect("valid")
    }

    #[test]
    fn validation_rejects_bad_rows() {
        assert!(Dtmc::new(vec![vec![(0, 0.5)]], vec![(0, 1.0)]).is_err());
        assert!(Dtmc::new(vec![vec![(3, 1.0)]], vec![(0, 1.0)]).is_err());
        assert!(Dtmc::new(vec![vec![(0, -0.2), (0, 1.2)]], vec![(0, 1.0)]).is_err());
    }

    #[test]
    fn stationary_of_two_state_chain() {
        // π ∝ (p10, p01).
        let d = two_state(0.3, 0.1);
        let pi = d.stationary(1e-12, 100_000).expect("converges");
        assert!((pi[0] - 0.25).abs() < 1e-6, "{pi:?}");
        assert!((pi[1] - 0.75).abs() < 1e-6);
    }

    #[test]
    fn stationary_of_periodic_cycle() {
        // Deterministic 2-cycle: Cesàro average gives (1/2, 1/2).
        let d = two_state(1.0, 1.0);
        let pi = d.stationary(1e-10, 100_000).expect("converges");
        assert!((pi[0] - 0.5).abs() < 1e-4, "{pi:?}");
    }

    #[test]
    fn embedded_chain_of_ctmc() {
        let mut b = CtmcBuilder::new(3);
        b.rate(0, 1, 1.0).unwrap();
        b.rate(0, 2, 3.0).unwrap();
        let d = Dtmc::embedded(&b.build().unwrap());
        assert_eq!(d.rows[0], vec![(1, 0.25), (2, 0.75)]);
        assert!(d.is_absorbing(1) && d.is_absorbing(2));
    }

    #[test]
    fn absorption_matrix_matches_branching() {
        let mut b = CtmcBuilder::new(4);
        b.rate(0, 1, 1.0).unwrap();
        b.rate(1, 2, 2.0).unwrap();
        b.rate(1, 3, 6.0).unwrap();
        let d = Dtmc::embedded(&b.build().unwrap());
        let (abs, m) = d.absorption_matrix(1e-12, 100_000).expect("converges");
        assert_eq!(abs, vec![2, 3]);
        assert!((m[0][0] - 0.25).abs() < 1e-9);
        assert!((m[0][1] - 0.75).abs() < 1e-9);
    }

    #[test]
    fn n_step_distribution() {
        let d = two_state(1.0, 0.0); // 0 -> 1 absorbingly (1 self-loops).
        let v = d.distribution_after(3);
        assert!((v[1] - 1.0).abs() < 1e-12);
        let v0 = d.distribution_after(0);
        assert!((v0[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn step_preserves_mass() {
        let d = two_state(0.4, 0.7);
        let mut v = vec![0.5, 0.5];
        for _ in 0..10 {
            v = d.step(&v);
            let total: f64 = v.iter().sum();
            assert!((total - 1.0).abs() < 1e-12);
        }
    }
}
