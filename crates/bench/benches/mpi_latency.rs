//! E5 timing: the MPI ping-pong latency pipeline (explore → decorate →
//! convert → solve) per configuration axis.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use multival::models::fame2::benchmark::{ping_pong_latency, RateConfig};
use multival::models::fame2::coherence::Protocol;
use multival::models::fame2::mpi::{MpiConfig, MpiImpl};
use multival::models::fame2::topology::Topology;

fn bench_latency_per_impl(c: &mut Criterion) {
    let rates = RateConfig::default();
    let mut group = c.benchmark_group("ping_pong");
    for implementation in [MpiImpl::Eager, MpiImpl::Rendezvous] {
        let config = MpiConfig {
            topology: Topology::Crossbar(4),
            protocol: Protocol::Mesi,
            implementation,
            payload: 1,
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(implementation),
            &config,
            |b, config| b.iter(|| ping_pong_latency(config, &rates).expect("analyzes").latency),
        );
    }
    group.finish();
}

fn bench_latency_per_payload(c: &mut Criterion) {
    let rates = RateConfig::default();
    let mut group = c.benchmark_group("ping_pong_payload");
    for payload in [1usize, 2, 4] {
        let config = MpiConfig {
            topology: Topology::Crossbar(4),
            protocol: Protocol::Msi,
            implementation: MpiImpl::Eager,
            payload,
        };
        group.bench_with_input(BenchmarkId::from_parameter(payload), &config, |b, config| {
            b.iter(|| ping_pong_latency(config, &rates).expect("analyzes").latency)
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_latency_per_impl, bench_latency_per_payload
}
criterion_main!(benches);
