//! E6 timing: the xSTream pipeline performance flow per queue capacity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use multival::ctmc::steady::{steady_state, SolveOptions};
use multival::models::xstream::perf::{analyze, explore_pipeline, PerfConfig};

fn bench_analyze_per_capacity(c: &mut Criterion) {
    let mut group = c.benchmark_group("xstream_analyze");
    for cap in [2u8, 4, 8] {
        let cfg = PerfConfig { push_capacity: cap, pop_capacity: cap, ..PerfConfig::default() };
        group.bench_with_input(BenchmarkId::from_parameter(cap), &cfg, |b, cfg| {
            b.iter(|| analyze(cfg).expect("analyzes").throughput)
        });
    }
    group.finish();
}

fn bench_stages(c: &mut Criterion) {
    let cfg = PerfConfig { push_capacity: 6, pop_capacity: 6, ..PerfConfig::default() };
    c.bench_function("xstream_explore_only", |b| {
        b.iter(|| explore_pipeline(&cfg).expect("explores").lts.num_states())
    });
    // Isolate the solver stage on the largest chain.
    let explored = explore_pipeline(&cfg).expect("explores");
    let imc = multival::imc::decorate::decorate_by_label(&explored.lts, |label| {
        let rate = match label {
            "push" => cfg.producer_rate,
            "xfer" => cfg.transfer_rate,
            "pop" => cfg.consumer_rate,
            "credit" => cfg.credit_rate,
            _ => return None,
        };
        Some(multival::imc::Delay::Exponential { rate })
    });
    let conv = multival::imc::to_ctmc::to_ctmc(
        &imc,
        multival::imc::NondetPolicy::Reject,
        &["push", "xfer", "pop", "credit"],
    )
    .expect("converts");
    c.bench_function("xstream_steady_state_only", |b| {
        b.iter(|| steady_state(&conv.ctmc, &SolveOptions::default()).expect("solves")[0])
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_analyze_per_capacity, bench_stages
}
criterion_main!(benches);
