//! E3 timing: FAUST router generation + verification per port count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use multival::models::faust::router::{router_spec, verify_router};
use multival::pa::{explore, ExploreOptions};

fn bench_router_exploration(c: &mut Criterion) {
    let mut group = c.benchmark_group("router_explore");
    for ports in [2usize, 3, 4] {
        let spec = router_spec(ports).expect("parses");
        group.bench_with_input(BenchmarkId::from_parameter(ports), &spec, |b, spec| {
            b.iter(|| explore(spec, &ExploreOptions::default()).expect("explores").lts.num_states())
        });
    }
    group.finish();
}

fn bench_router_full_verification(c: &mut Criterion) {
    let mut group = c.benchmark_group("router_verify");
    for ports in [2usize, 3] {
        group.bench_with_input(BenchmarkId::from_parameter(ports), &ports, |b, &ports| {
            b.iter(|| {
                let v = verify_router(ports, &ExploreOptions::default()).expect("verifies");
                assert!(v.deadlock.is_none());
                v.states
            })
        });
    }
    group.finish();
}

fn bench_mesh_verification(c: &mut Criterion) {
    use multival::models::faust::noc::verify_mesh;
    let mut group = c.benchmark_group("mesh_verify");
    for k in [1usize, 2, 3] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| verify_mesh(Some(k), &ExploreOptions::default()).expect("verifies").states)
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_router_exploration, bench_router_full_verification, bench_mesh_verification
}
criterion_main!(benches);
