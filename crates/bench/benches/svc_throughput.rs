//! Service-layer timing: job-engine submit→done round-trips (cold vs
//! cached) and the full HTTP path over a loopback socket.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use multival_svc::cache::ResultCache;
use multival_svc::job::{JobEngine, JobState};
use multival_svc::metrics::Metrics;
use multival_svc::request::JobRequest;
use multival_svc::server::{serve, ServerConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn request(seed: u64) -> JobRequest {
    JobRequest::from_json_text(&format!(
        r#"{{"kind":"explore","model":{{"source":"process Queue[enq, deq](n: int 0..4) := [n < 4] -> enq; Queue[enq, deq](n + 1) [] [n > 0] -> deq; Queue[enq, deq](n - 1) endproc behaviour Queue[a, b](0) ||| Queue[c, d](0)"}},"seed":{seed}}}"#
    ))
    .expect("request parses")
}

fn wait_done(engine: &JobEngine, id: u64) {
    loop {
        match engine.status(id).expect("job exists").state {
            JobState::Queued | JobState::Running => std::thread::yield_now(),
            _ => return,
        }
    }
}

fn bench_engine_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("svc_engine");
    // Cold: every iteration is a distinct request, so the cache never hits
    // and the full evaluate path runs.
    let seed = AtomicU64::new(0);
    let cache = Arc::new(ResultCache::new(8, None).expect("cache"));
    let engine = JobEngine::new(2, 64, 1, cache, Arc::new(Metrics::default()));
    group.bench_function("submit_cold", |b| {
        b.iter(|| {
            let id =
                engine.submit(request(seed.fetch_add(1, Ordering::Relaxed))).expect("accepted");
            wait_done(&engine, id);
            id
        })
    });
    // Warm: one request resubmitted forever — after the first iteration
    // every submission is a memory-tier cache hit born `done`.
    group.bench_function("submit_cached", |b| {
        b.iter(|| {
            let id = engine.submit(request(u64::MAX)).expect("accepted");
            wait_done(&engine, id);
            id
        })
    });
    group.finish();
}

fn bench_http_path(c: &mut Criterion) {
    let handle = serve(&ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        queue_cap: 256,
        cache_capacity: 64,
        mc_workers: 1,
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = handle.addr();
    let exchange = |method: &str, path: &str, body: &str| -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nHost: b\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .expect("write");
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read");
        raw
    };
    let mut group = c.benchmark_group("svc_http");
    group.bench_function(BenchmarkId::from_parameter("healthz"), |b| {
        b.iter(|| exchange("GET", "/v1/healthz", "").len())
    });
    // Submit-and-poll of one cacheable job: after the first iteration the
    // POST answers `done` immediately from the cache.
    let body = r#"{"kind":"explore","model":{"builtin":"xstream_pipeline"}}"#;
    group.bench_function(BenchmarkId::from_parameter("cached_job"), |b| {
        b.iter(|| exchange("POST", "/v1/jobs", body).len())
    });
    group.finish();
    let _ = handle.shutdown_and_drain();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_engine_roundtrip, bench_http_path
}
criterion_main!(benches);
