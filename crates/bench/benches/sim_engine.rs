//! Statistical-engine timing: CSR vs dense transient kernels, and
//! Monte-Carlo occupancy per thread count on a birth–death chain.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use multival::ctmc::dense::transient_dense;
use multival::ctmc::transient::transient;
use multival::ctmc::{Ctmc, CtmcBuilder, McOptions, McSim, TransientOptions, Workers};

fn birth_death(n: usize) -> Ctmc {
    let mut b = CtmcBuilder::new(n);
    for i in 0..n {
        if i + 1 < n {
            b.rate(i, i + 1, 3.0).expect("rate");
        }
        if i > 0 {
            b.rate(i, i - 1, 2.0).expect("rate");
        }
    }
    b.build().expect("chain")
}

fn bench_transient_kernels(c: &mut Criterion) {
    let opts = TransientOptions::default();
    let mut group = c.benchmark_group("transient_kernel");
    for n in [128usize, 512] {
        let chain = birth_death(n);
        group.bench_with_input(BenchmarkId::new("csr", n), &chain, |b, chain| {
            b.iter(|| transient(chain, 1.0, &opts).expect("csr")[0])
        });
        group.bench_with_input(BenchmarkId::new("dense", n), &chain, |b, chain| {
            b.iter(|| transient_dense(chain, 1.0, &opts).expect("dense")[0])
        });
    }
    group.finish();
}

fn bench_mc_threads(c: &mut Criterion) {
    let sim = McSim::new(&birth_death(64));
    let mut group = c.benchmark_group("mc_occupancy");
    for threads in [1usize, 4] {
        // Width rule off: every run burns the full trajectory budget, so
        // thread counts are compared on identical work.
        let opts = McOptions {
            seed: 7,
            workers: Workers::new(threads),
            max_trajectories: 2048,
            rel_width: 0.0,
            abs_width: 0.0,
            ..McOptions::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(threads), &opts, |b, opts| {
            b.iter(|| sim.occupancy(50.0, opts).trajectories)
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_transient_kernels, bench_mc_threads
}
criterion_main!(benches);
