//! E7 timing: the cost side of the Erlang space/accuracy trade-off — CDF
//! evaluation and chain solving as the phase count grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use multival::ctmc::absorb::mean_time_to_target;
use multival::ctmc::steady::SolveOptions;
use multival::imc::phase_type::Delay;

fn bench_cdf_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("erlang_cdf");
    for k in [1u32, 10, 100] {
        let delay = Delay::fixed(1.0, k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &delay, |b, delay| {
            b.iter(|| delay.cdf(1.0))
        });
    }
    group.finish();
}

fn bench_hitting_time_per_phases(c: &mut Criterion) {
    let mut group = c.benchmark_group("erlang_hitting_time");
    for k in [10u32, 100, 1000] {
        let delay = Delay::fixed(1.0, k);
        let ctmc = delay.to_ctmc();
        let target = ctmc.num_states() - 1;
        group.bench_with_input(BenchmarkId::from_parameter(k), &ctmc, |b, ctmc| {
            b.iter(|| {
                mean_time_to_target(ctmc, &[target], &SolveOptions::default()).expect("solves")
            })
        });
    }
    group.finish();
}

fn bench_sup_error(c: &mut Criterion) {
    c.bench_function("erlang_sup_error_k20", |b| {
        let delay = Delay::fixed(1.0, 20);
        b.iter(|| delay.sup_error_vs_fixed_excluding(1.0, 0.1, 50))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_cdf_evaluation, bench_hitting_time_per_phases, bench_sup_error
}
criterion_main!(benches);
