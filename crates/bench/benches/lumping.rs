//! E9 timing: stochastic lumping and bisimulation minimization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use multival::imc::compositional::{compose_minimize, Component, PipelineOptions};
use multival::imc::{lump, lump_with, Imc, ImcBuilder, LumpOptions};
use multival::lts::minimize::{minimize, minimize_with, Equivalence};
use multival::lts::Workers;
use multival::models::xstream::pipeline::{build_monolithic, PipelineConfig};

fn symmetric_farm(n: usize) -> Vec<Component> {
    let source = {
        let mut b = ImcBuilder::new();
        let s0 = b.add_state();
        let s1 = b.add_state();
        b.markovian(s0, s1, 1.0).expect("rate");
        b.interactive(s1, "go", s0);
        b.build(s0)
    };
    let server = || -> Imc {
        let mut b = ImcBuilder::new();
        let s0 = b.add_state();
        let s1 = b.add_state();
        b.interactive(s0, "go", s1);
        b.markovian(s1, s0, 2.0).expect("rate");
        b.build(s0)
    };
    let mut comps = vec![Component::new("src", source, [] as [&str; 0])];
    for i in 0..n {
        comps.push(Component::new(&format!("srv{i}"), server(), ["go"]));
    }
    comps
}

fn bench_compose_minimize(c: &mut Criterion) {
    let mut group = c.benchmark_group("compose_minimize");
    for n in [4usize, 6, 8] {
        let comps = symmetric_farm(n);
        group.bench_with_input(BenchmarkId::new("lumping_on", n), &comps, |b, comps| {
            b.iter(|| compose_minimize(comps, &PipelineOptions::default()).0.num_states())
        });
        group.bench_with_input(BenchmarkId::new("lumping_off", n), &comps, |b, comps| {
            b.iter(|| {
                compose_minimize(comps, &PipelineOptions { minimize: false, ..Default::default() })
                    .0
                    .num_states()
            })
        });
    }
    group.finish();
}

fn bench_single_lump(c: &mut Criterion) {
    // Lump the biggest unminimized farm product once.
    let comps = symmetric_farm(8);
    let (product, _) =
        compose_minimize(&comps, &PipelineOptions { minimize: false, ..Default::default() });
    c.bench_function("lump_farm8", |b| {
        b.iter(|| lump(&product, &LumpOptions::default()).0.num_states())
    });
    // Thread scaling of the rate-signature loop on the same product.
    let mut group = c.benchmark_group("lump_farm8_threads");
    for threads in [2usize, 4] {
        group.bench_with_input(BenchmarkId::new("lump", threads), &threads, |b, &t| {
            b.iter(|| lump_with(&product, &LumpOptions::default(), Workers::new(t)).0.num_states())
        });
    }
    group.finish();
}

fn bench_lts_minimization(c: &mut Criterion) {
    let cfg = PipelineConfig { push_capacity: 6, pop_capacity: 6, credits: 6 };
    let lts = build_monolithic(&cfg).lts;
    let mut group = c.benchmark_group("lts_minimize");
    group.bench_function("strong", |b| {
        b.iter(|| minimize(&lts, Equivalence::Strong).0.num_states())
    });
    group.bench_function("branching", |b| {
        b.iter(|| minimize(&lts, Equivalence::Branching).0.num_states())
    });
    // Parallel signature computation (same partitions, bit for bit).
    for threads in [2usize, 4] {
        group.bench_function(format!("strong_t{threads}"), |b| {
            b.iter(|| {
                minimize_with(&lts, Equivalence::Strong, Workers::new(threads)).0.num_states()
            })
        });
        group.bench_function(format!("branching_t{threads}"), |b| {
            b.iter(|| {
                minimize_with(&lts, Equivalence::Branching, Workers::new(threads)).0.num_states()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_compose_minimize, bench_single_lump, bench_lts_minimization
}
criterion_main!(benches);
