//! E1 timing: state-space generation and compositional construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use multival::models::xstream::pipeline::{
    build_buffer_chain, build_compositional, build_monolithic, PipelineConfig,
};
use multival::pa::{explore, parse_spec, ExploreOptions};
use multival_bench::baseline::{five_queues_src, three_queues_src};

fn bench_exploration(c: &mut Criterion) {
    let mut group = c.benchmark_group("explore");
    for cap in [2i64, 4, 8] {
        let spec = parse_spec(&three_queues_src(cap)).expect("parses");
        group.bench_with_input(BenchmarkId::new("three_queues", cap), &spec, |b, spec| {
            b.iter(|| explore(spec, &ExploreOptions::default()).expect("explores").lts.num_states())
        });
    }
    group.finish();
}

fn bench_exploration_threads(c: &mut Criterion) {
    // Thread scaling on the largest E1 instance (five queues, cap 8; 59049
    // states). threads=1 takes the dedicated sequential path, so it doubles
    // as the speedup baseline.
    let spec = parse_spec(&five_queues_src(8)).expect("parses");
    let mut group = c.benchmark_group("explore_threads");
    for threads in [1usize, 2, 4] {
        let options = ExploreOptions::default().with_threads(threads);
        group.bench_with_input(
            BenchmarkId::new("five_queues_cap8", threads),
            &options,
            |b, options| b.iter(|| explore(&spec, options).expect("explores").lts.num_states()),
        );
    }
    group.finish();
}

fn bench_pipeline_builds(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_build");
    let cfg = PipelineConfig { push_capacity: 4, pop_capacity: 4, credits: 4 };
    group.bench_function("monolithic_cap4", |b| b.iter(|| build_monolithic(&cfg).lts.num_states()));
    group.bench_function("compositional_cap4", |b| {
        b.iter(|| build_compositional(&cfg).lts.num_states())
    });
    group.finish();
}

fn bench_buffer_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("buffer_chain_k10");
    group.bench_function("monolithic", |b| b.iter(|| build_buffer_chain(10, false).peak_states));
    group.bench_function("compositional", |b| b.iter(|| build_buffer_chain(10, true).peak_states));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_exploration, bench_exploration_threads, bench_pipeline_builds,
              bench_buffer_chain
}
criterion_main!(benches);
