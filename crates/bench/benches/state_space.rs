//! E1 timing: state-space generation and compositional construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use multival::models::xstream::pipeline::{
    build_buffer_chain, build_compositional, build_monolithic, PipelineConfig,
};
use multival::pa::{explore, parse_spec, ExploreOptions};

fn bench_exploration(c: &mut Criterion) {
    let mut group = c.benchmark_group("explore");
    for cap in [2i64, 4, 8] {
        let src = format!(
            "process Queue[enq, deq](n: int 0..8, c: int 1..8) :=
                 [n < c] -> enq; Queue[enq, deq](n + 1, c)
              [] [n > 0] -> deq; Queue[enq, deq](n - 1, c)
             endproc
             behaviour Queue[a, b](0, {cap}) ||| Queue[c, d](0, {cap}) ||| Queue[e, f](0, {cap})"
        );
        let spec = parse_spec(&src).expect("parses");
        group.bench_with_input(BenchmarkId::new("three_queues", cap), &spec, |b, spec| {
            b.iter(|| explore(spec, &ExploreOptions::default()).expect("explores").lts.num_states())
        });
    }
    group.finish();
}

fn bench_pipeline_builds(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_build");
    let cfg = PipelineConfig { push_capacity: 4, pop_capacity: 4, credits: 4 };
    group.bench_function("monolithic_cap4", |b| b.iter(|| build_monolithic(&cfg).lts.num_states()));
    group.bench_function("compositional_cap4", |b| {
        b.iter(|| build_compositional(&cfg).lts.num_states())
    });
    group.finish();
}

fn bench_buffer_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("buffer_chain_k10");
    group.bench_function("monolithic", |b| b.iter(|| build_buffer_chain(10, false).peak_states));
    group.bench_function("compositional", |b| b.iter(|| build_buffer_chain(10, true).peak_states));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_exploration, bench_pipeline_builds, bench_buffer_chain
}
criterion_main!(benches);
