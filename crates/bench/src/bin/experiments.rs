//! Prints the tables of every experiment (DESIGN.md §5).
//!
//! ```text
//! cargo run -p multival-bench --bin experiments --release          # all
//! cargo run -p multival-bench --bin experiments --release e5 e7   # some
//! ```

use multival_bench::{run, EXPERIMENTS};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ids: Vec<&str> = if args.is_empty() {
        EXPERIMENTS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    let mut failed = false;
    for (i, id) in ids.iter().enumerate() {
        if i > 0 {
            println!("\n{}\n", "=".repeat(72));
        }
        match run(id) {
            Ok(report) => print!("{report}"),
            Err(e) => {
                eprintln!("experiment {id} failed: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
