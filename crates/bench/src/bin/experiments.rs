//! Prints the tables of every experiment (DESIGN.md §5).
//!
//! ```text
//! cargo run -p multival-bench --bin experiments --release          # all
//! cargo run -p multival-bench --bin experiments --release e5 e7   # some
//! cargo run -p multival-bench --bin experiments --release -- --bench-json
//! ```
//!
//! `--bench-json` writes `BENCH_baseline.json` (E1/E9 state counts,
//! wall-clock times, and the 1-vs-4-thread exploration speedup) instead of
//! running the experiment tables.

use multival_bench::{bench_baseline, run, EXPERIMENTS};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--bench-json") {
        let path = args
            .iter()
            .position(|a| a == "--bench-json")
            .and_then(|i| args.get(i + 1))
            .cloned()
            .unwrap_or_else(|| "BENCH_baseline.json".to_owned());
        return match bench_baseline().and_then(|json| Ok(std::fs::write(&path, json)?)) {
            Ok(()) => {
                println!("wrote {path}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("--bench-json failed: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let ids: Vec<&str> = if args.is_empty() {
        EXPERIMENTS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    let mut failed = false;
    for (i, id) in ids.iter().enumerate() {
        if i > 0 {
            println!("\n{}\n", "=".repeat(72));
        }
        match run(id) {
            Ok(report) => print!("{report}"),
            Err(e) => {
                eprintln!("experiment {id} failed: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
