//! The `BENCH_baseline.json` emitter (`experiments --bench-json`):
//! machine-readable state counts and wall-clock times for the E1 and E9
//! workloads, plus the 1-vs-4-thread exploration speedup on the largest
//! E1 instance — the acceptance gate for the parallel engine.
//!
//! The JSON is handwritten (no serde in the dependency closure); every
//! number is either an integer or a `{:.3}`-formatted millisecond float,
//! so the output is stable enough to diff across commits.

use multival::ctmc::dense::transient_dense;
use multival::ctmc::transient::transient;
use multival::ctmc::{Ctmc, CtmcBuilder, McOptions, McSim, TransientOptions, Workers};
use multival::fuzz::{run_fuzz, FuzzOptions};
use multival::imc::compositional::{compose_minimize, peak_states, Component, PipelineOptions};
use multival::imc::ImcBuilder;
use multival::lts::ops::compose_all;
use multival::lts::pipeline::{
    monolithic, run_pipeline, Network, PipelineOptions as ReduceOptions,
};
use multival::lts::reach::{deadlock_search, ReachOptions};
use multival::lts::store::{StoreConfig, StoreKind};
use multival::lts::ts::LazyProduct;
use multival::lts::Lts;
use multival::models::fame2::network::ping_pong_network;
use multival::models::faust::mesh::{complement_network_n, complement_spec_n};
use multival::models::faust::noc::complement_network;
use multival::models::rings::{ring_parts, ring_sync};
use multival::models::xmas::GenConfig;
use multival::models::xstream::pipeline::{network as xstream_network, PipelineConfig};
use multival::pa::{explore, explore_term_store_partial, parse_spec, ExploreOptions};
use multival::par::fx::FxHashMap;
use multival::par::par_map_stats;
use multival_svc::json::{parse, Json};
use multival_svc::server::{serve, ServerConfig};
use multival_svc::sweep::{run_explore_space, SweepOptions, SweepSpec};
use std::error::Error;
use std::fmt::Write as _;
use std::io::{Read, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// The three-interleaved-queues E1 workload (same source as the
/// `state_space` Criterion bench).
pub fn three_queues_src(cap: i64) -> String {
    format!(
        "process Queue[enq, deq](n: int 0..8, c: int 1..8) :=
             [n < c] -> enq; Queue[enq, deq](n + 1, c)
          [] [n > 0] -> deq; Queue[enq, deq](n - 1, c)
         endproc
         behaviour Queue[a, b](0, {cap}) ||| Queue[c, d](0, {cap}) ||| Queue[e, f](0, {cap})"
    )
}

/// The largest E1 instance: five interleaved queues (9^5 = 59049 states at
/// cap 8) — big enough for the level-synchronous engine to show thread
/// scaling, and the workload behind the `speedup_t4` acceptance number.
pub fn five_queues_src(cap: i64) -> String {
    format!(
        "process Queue[enq, deq](n: int 0..8, c: int 1..8) :=
             [n < c] -> enq; Queue[enq, deq](n + 1, c)
          [] [n > 0] -> deq; Queue[enq, deq](n - 1, c)
         endproc
         behaviour Queue[a, b](0, {cap}) ||| Queue[c, d](0, {cap}) ||| Queue[e, f](0, {cap})
               ||| Queue[g, h](0, {cap}) ||| Queue[i, j](0, {cap})"
    )
}

/// Runs `f` three times and returns the last value with the best (minimum)
/// wall-clock — a cheap noise filter for a one-shot baseline file.
fn timed<T>(mut f: impl FnMut() -> T) -> (T, Duration) {
    let mut best = Duration::MAX;
    let mut value = None;
    for _ in 0..3 {
        let start = Instant::now();
        let v = f();
        best = best.min(start.elapsed());
        value = Some(v);
    }
    (value.expect("three runs"), best)
}

fn ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

/// A birth–death chain with `n` states: two transitions per row, so the
/// uniformization step is the sparse regime where CSR beats a dense matrix.
fn birth_death(n: usize) -> Ctmc {
    let mut b = CtmcBuilder::new(n);
    for i in 0..n {
        if i + 1 < n {
            b.rate(i, i + 1, 3.0).expect("rate");
        }
        if i > 0 {
            b.rate(i, i - 1, 2.0).expect("rate");
        }
    }
    b.build().expect("chain")
}

/// The E9 server-farm workload (same shape as the `lumping` bench).
fn farm(n: usize) -> Vec<Component> {
    let source = {
        let mut b = ImcBuilder::new();
        let s0 = b.add_state();
        let s1 = b.add_state();
        b.markovian(s0, s1, 1.0).expect("rate");
        b.interactive(s1, "go", s0);
        b.build(s0)
    };
    let mut comps = vec![Component::new("src", source, [] as [&str; 0])];
    for i in 0..n {
        let mut b = ImcBuilder::new();
        let s0 = b.add_state();
        let s1 = b.add_state();
        b.interactive(s0, "go", s1);
        b.markovian(s1, s0, 2.0).expect("rate");
        comps.push(Component::new(&format!("srv{i}"), b.build(s0), ["go"]));
    }
    comps
}

/// Renders the baseline JSON document.
///
/// # Errors
///
/// Propagates parse/exploration errors from the E1 workloads.
pub fn bench_baseline() -> Result<String, Box<dyn Error>> {
    let mut out = String::from("{\n  \"e1_three_queues\": [\n");

    // E1: sequential exploration at each cap.
    let caps = [2i64, 4, 8];
    for (i, &cap) in caps.iter().enumerate() {
        let spec = parse_spec(&three_queues_src(cap))?;
        let (explored, wall) =
            timed(|| explore(&spec, &ExploreOptions::default()).expect("explores"));
        let _ = write!(
            out,
            "    {{\"cap\": {cap}, \"states\": {}, \"transitions\": {}, \"wall_ms\": {}}}",
            explored.lts.num_states(),
            explored.lts.num_transitions(),
            ms(wall)
        );
        out.push_str(if i + 1 < caps.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");

    // Thread scaling on the largest E1 instance (five queues, cap 8).
    let largest = *caps.last().expect("non-empty");
    let spec = parse_spec(&five_queues_src(largest))?;
    let (_, wall_t1) =
        timed(|| explore(&spec, &ExploreOptions::default().with_threads(1)).expect("explores"));
    let (explored, wall_t4) =
        timed(|| explore(&spec, &ExploreOptions::default().with_threads(4)).expect("explores"));
    // `hardware_threads` qualifies the speedup: on a single-core host the
    // physical ceiling is 1.0x regardless of the worker count.
    let hw = std::thread::available_parallelism().map_or(1, |p| p.get());
    let _ = writeln!(
        out,
        "  \"e1_largest_threads\": {{\"model\": \"five_queues\", \"cap\": {largest}, \
         \"states\": {}, \"hardware_threads\": {hw}, \
         \"wall_ms_t1\": {}, \"wall_ms_t4\": {}, \"speedup_t4\": {:.2}}},",
        explored.lts.num_states(),
        ms(wall_t1),
        ms(wall_t4),
        wall_t1.as_secs_f64() / wall_t4.as_secs_f64().max(1e-9)
    );

    // E1 on-the-fly: deadlock search over the lazy counter-ring product
    // visits a fraction of what eager composition materializes.
    out.push_str("  \"e1_on_the_fly\": [\n");
    let rings = [(2usize, 8usize), (3, 8), (3, 16)];
    for (i, &(n, len)) in rings.iter().enumerate() {
        let parts = ring_parts(n, len);
        let refs: Vec<&Lts> = parts.iter().collect();
        let sync = ring_sync();
        let (materialized, wall_eager) = timed(|| compose_all(&refs, &sync).num_states());
        let (outcome, wall_fly) =
            timed(|| deadlock_search(&LazyProduct::new(&refs, &sync), &ReachOptions::default()));
        let _ = write!(
            out,
            "    {{\"rings\": {n}, \"len\": {len}, \"materialized_states\": {materialized}, \
             \"visited_states\": {}, \"wall_ms_eager\": {}, \"wall_ms_fly\": {}}}",
            outcome.stats.visited,
            ms(wall_eager),
            ms(wall_fly)
        );
        out.push_str(if i + 1 < rings.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");

    // Sparse kernels: the dense n×n uniformization reference vs the CSR
    // path on birth–death chains (2 transitions per row).
    out.push_str("  \"kernels_transient\": [\n");
    let chain_sizes = [128usize, 512, 2048];
    let t_opts = TransientOptions::default();
    for (i, &n) in chain_sizes.iter().enumerate() {
        let chain = birth_death(n);
        let (dense, wall_dense) =
            timed(|| transient_dense(&chain, 1.0, &t_opts).expect("dense transient"));
        let (csr, wall_csr) = timed(|| transient(&chain, 1.0, &t_opts).expect("csr transient"));
        let max_diff = dense.iter().zip(&csr).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
        let _ = write!(
            out,
            "    {{\"states\": {n}, \"wall_ms_dense\": {}, \"wall_ms_csr\": {}, \
             \"max_abs_diff\": {max_diff:.3e}}}",
            ms(wall_dense),
            ms(wall_csr)
        );
        out.push_str(if i + 1 < chain_sizes.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");

    // Monte-Carlo thread scaling: occupancy estimation with the width
    // stopping rule disabled, so both runs sample the full trajectory
    // budget and the walls are comparable. The estimates must come out
    // bit-identical — that equality is the determinism acceptance gate.
    let sim = McSim::new(&birth_death(64));
    let sim_opts = |threads: usize| McOptions {
        seed: 7,
        workers: Workers::new(threads),
        max_trajectories: 4096,
        rel_width: 0.0,
        abs_width: 0.0,
        ..McOptions::default()
    };
    let (run_t1, sim_wall_t1) = timed(|| sim.occupancy(50.0, &sim_opts(1)));
    let (run_t4, sim_wall_t4) = timed(|| sim.occupancy(50.0, &sim_opts(4)));
    let estimates_equal = run_t1
        .estimates
        .iter()
        .zip(&run_t4.estimates)
        .all(|(a, b)| a.mean.to_bits() == b.mean.to_bits());
    let _ = writeln!(
        out,
        "  \"mc_simulation_threads\": {{\"model\": \"birth_death_64\", \
         \"trajectories\": {}, \"hardware_threads\": {hw}, \
         \"wall_ms_t1\": {}, \"wall_ms_t4\": {}, \"speedup_t4\": {:.2}, \
         \"estimates_equal\": {estimates_equal}}},",
        run_t1.trajectories,
        ms(sim_wall_t1),
        ms(sim_wall_t4),
        sim_wall_t1.as_secs_f64() / sim_wall_t4.as_secs_f64().max(1e-9)
    );

    // Service layer: end-to-end HTTP throughput on a loopback socket —
    // eight concurrent clients, a cold round (results computed) and a warm
    // round (identical jobs, answered from the content-addressed cache).
    out.push_str(&serve_throughput_section()?);

    // State storage: the pluggable dedup backends (E12). Fast mode sizes
    // the 3×3 pool-throttled mesh; `BENCH_FULL=1` runs the 4×4 frontier
    // instance (~470k states, ~1.5M transitions, minutes per backend).
    out.push_str(&state_store_section(full_mode())?);

    // Hot-path hashing: SipHash (std default) vs the FxHash used by the
    // explorer's state index and the label interner.
    out.push_str(&hash_interning_section());

    // Adaptive chunking: how `par_map_stats` actually scheduled a cheap
    // and a costly workload on this machine (workers == 1 reports the
    // sequential fast path that fixed the historical negative speedups).
    out.push_str(&par_chunking_section());

    // Reduction pipeline: the smart compositional order vs the monolithic
    // product on the three case-study networks. The paper's flow rests on
    // `peak_states` staying strictly below `product_states`.
    out.push_str(&pipeline_reduction_section(full_mode()));

    // E9: compositional IMC generation with lumping.
    out.push_str("  \"e9_farm\": [\n");
    let sizes = [4usize, 6, 8];
    for (i, &n) in sizes.iter().enumerate() {
        let comps = farm(n);
        let ((product, stages), wall) =
            timed(|| compose_minimize(&comps, &PipelineOptions::default()));
        let _ = write!(
            out,
            "    {{\"servers\": {n}, \"peak_states\": {}, \"final_states\": {}, \
             \"wall_ms\": {}}}",
            peak_states(&stages),
            product.num_states(),
            ms(wall)
        );
        out.push_str(if i + 1 < sizes.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");

    // Sweep driver: points/sec on the golden-spec shape, cold vs a rerun
    // through a shared disk cache.
    out.push_str(&explore_space_section()?);

    // xMAS workbench: differential fuzzing throughput at two size tiers.
    out.push_str(&fuzz_fabrics_section(full_mode()));
    out.push_str("}\n");
    Ok(out)
}

/// The `fuzz_fabrics` section: end-to-end throughput of the xMAS
/// differential fuzz harness (generate → compile → reduce → four oracles)
/// at two topology size tiers. `fabrics_per_sec` is the sweep rate over
/// seeds; `states_per_sec` counts the states visited by the per-component
/// pipeline reductions inside those sweeps. The sweep doubles as a cheap
/// correctness gate — a baseline run with any oracle mismatch panics.
fn fuzz_fabrics_section(full: bool) -> String {
    let mut out = String::from("  \"fuzz_fabrics\": [\n");
    let tiers: [(&str, usize, u64); 2] =
        [("small", 7, if full { 32 } else { 8 }), ("large", 10, if full { 12 } else { 4 })];
    for (i, &(tier, max_steps, seeds)) in tiers.iter().enumerate() {
        let options = FuzzOptions {
            seed_end: seeds,
            gen: GenConfig { max_steps, ..GenConfig::default() },
            ..FuzzOptions::default()
        };
        let (report, wall) = timed(|| run_fuzz(&options));
        assert!(report.mismatches.is_empty(), "baseline fuzz sweep must be clean");
        let secs = wall.as_secs_f64().max(1e-9);
        let _ = write!(
            out,
            "    {{\"tier\": \"{tier}\", \"max_steps\": {max_steps}, \"seeds\": {seeds}, \
             \"states\": {}, \"fabrics_per_sec\": {:.2}, \"states_per_sec\": {:.0}, \
             \"wall_ms\": {}}}",
            report.states_explored,
            seeds as f64 / secs,
            report.states_explored as f64 / secs,
            ms(wall)
        );
        out.push_str(if i + 1 < tiers.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n");
    out
}

/// The `explore_space` section: sweep-driver throughput on the same spec
/// shape as the committed `tests/data/sweep_xstream.toml` golden (Erlang
/// order × push depth over the xSTream pipeline). The cold run evaluates
/// every point into a fresh disk cache; the warm rerun must be answered
/// entirely from that cache — a cold-equals-warm report mismatch or a
/// warm evaluation is a correctness failure, not a slow baseline.
fn explore_space_section() -> Result<String, Box<dyn Error>> {
    const SPEC: &str = "\
        name = \"xstream_erlang_depth\"\n\
        model = \"xstream_pipeline\"\n\
        [base]\n\
        transfer_rate = 4.0\n\
        [axes]\n\
        delay = [\"erlang:1\", \"erlang:2\", \"erlang:4\", \"erlang:8\"]\n\
        push_capacity = [1, 2]\n";
    let spec = SweepSpec::parse(SPEC)?;
    let cache_dir =
        std::env::temp_dir().join(format!("multival-bench-sweep-{}", std::process::id()));
    std::fs::create_dir_all(&cache_dir)?;
    let options = SweepOptions {
        workers: 4,
        endpoint: None,
        cache_dir: Some(cache_dir.clone()),
        max_states: None,
    };
    // The cold run is single-shot: `timed`'s best-of-3 would let runs 2-3
    // answer from the disk cache run 1 just filled, reporting cache-served
    // throughput as evaluation throughput.
    let started = Instant::now();
    let cold = run_explore_space(&spec, &options).expect("cold sweep");
    let cold_wall = started.elapsed();
    let (warm, warm_wall) = timed(|| run_explore_space(&spec, &options).expect("warm sweep"));
    assert_eq!(
        cold.report().render(),
        warm.report().render(),
        "cache-served rerun must render identically"
    );
    assert_eq!(cold.evaluated, spec.num_points() as u64, "a fresh dir must evaluate every point");
    assert_eq!(warm.evaluated, 0, "warm sweep must be answered from the disk cache");
    let _ = std::fs::remove_dir_all(&cache_dir);
    let points = spec.num_points();
    let ratio = |hits: u64| hits as f64 / points as f64;
    Ok(format!(
        "  \"explore_space\": {{\"points\": {points}, \"pareto_points\": {}, \
         \"cold\": {{\"evaluated\": {}, \"cache_hit_ratio\": {:.2}, \
         \"points_per_sec\": {:.1}, \"wall_ms\": {}}}, \
         \"warm\": {{\"evaluated\": {}, \"cache_hit_ratio\": {:.2}, \
         \"points_per_sec\": {:.1}, \"wall_ms\": {}}}}},\n",
        cold.front.len(),
        cold.evaluated,
        ratio(cold.cache_hits),
        points as f64 / cold_wall.as_secs_f64().max(1e-9),
        ms(cold_wall),
        warm.evaluated,
        ratio(warm.cache_hits),
        points as f64 / warm_wall.as_secs_f64().max(1e-9),
        ms(warm_wall),
    ))
}

/// `BENCH_FULL=1` adds the slow E12 frontier rows (the 4×4 mesh
/// exploration and the 3×3 mesh reduction — minutes to hours of wall
/// clock); the default keeps `--bench-json` and the well-formedness test
/// cheap.
fn full_mode() -> bool {
    std::env::var("BENCH_FULL").as_deref() == Ok("1")
}

/// The `state_store` section: one flat exploration of the pool-throttled
/// bit-complement mesh per dedup backend. All three must agree on the
/// state/transition counts (the differential suite separately pins byte
/// equality); the spill row runs under a stated memory budget tight
/// enough to page key segments to disk.
fn state_store_section(full: bool) -> Result<String, Box<dyn Error>> {
    let (model, n, k, budget) =
        if full { ("mesh_4x4", 4, 3, 256usize << 20) } else { ("mesh_3x3", 3, 2, 1 << 20) };
    let spec = complement_spec_n(n, Some(k))?;
    let opts = ExploreOptions {
        max_states: 2_000_000,
        max_transitions: 16_000_000,
        ..ExploreOptions::default()
    };
    let mut out = String::from("  \"state_store\": [\n");
    let kinds = StoreKind::ALL;
    for (i, &kind) in kinds.iter().enumerate() {
        let config = StoreConfig { kind, mem_budget: (kind == StoreKind::Spill).then_some(budget) };
        let start = Instant::now();
        let run = explore_term_store_partial(spec.top().clone(), &spec, &opts, &config);
        let wall = start.elapsed();
        assert!(run.aborted.is_none(), "{model} exploration aborted: {:?}", run.aborted);
        let _ = write!(
            out,
            "    {{\"model\": \"{model}\", \"backend\": \"{kind}\", \"mem_budget\": {}, \
             \"states\": {}, \"transitions\": {}, \"wall_ms\": {}, \
             \"resident_bytes\": {}, \"spilled_bytes\": {}, \"spilled_segments\": {}}}",
            config.mem_budget.map_or("null".to_owned(), |b| b.to_string()),
            run.lts.num_states(),
            run.lts.num_transitions(),
            ms(wall),
            run.store.mem_bytes,
            run.store.spilled_bytes,
            run.store.spilled_segments
        );
        out.push_str(if i + 1 < kinds.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    Ok(out)
}

/// The `hash_interning` section: interning + probing a seen-set of short
/// binary keys (the explorer's hot dedup shape) through std's SipHash
/// map vs the FxHash map the hot paths now use.
fn hash_interning_section() -> String {
    const KEYS: usize = 200_000;
    let keys: Vec<[u8; 24]> = (0..KEYS as u64)
        .map(|i| {
            let mut k = [0u8; 24];
            k[..8].copy_from_slice(&i.to_le_bytes());
            k[8..16].copy_from_slice(&i.wrapping_mul(0x9e37_79b9_7f4a_7c15).to_le_bytes());
            k[16..].copy_from_slice(&(i << 7 ^ 0xfeed).to_le_bytes());
            k
        })
        .collect();
    let (sip_len, wall_sip) = timed(|| {
        let mut m: std::collections::HashMap<&[u8], u32> = std::collections::HashMap::new();
        for (i, k) in keys.iter().enumerate() {
            m.insert(k, i as u32);
        }
        let mut hits = 0usize;
        for k in &keys {
            hits += usize::from(m.contains_key(k.as_slice()));
        }
        hits
    });
    let (fx_len, wall_fx) = timed(|| {
        let mut m: FxHashMap<&[u8], u32> = FxHashMap::default();
        for (i, k) in keys.iter().enumerate() {
            m.insert(k, i as u32);
        }
        let mut hits = 0usize;
        for k in &keys {
            hits += usize::from(m.contains_key(k.as_slice()));
        }
        hits
    });
    assert_eq!(sip_len, fx_len, "both maps must intern every key");
    format!(
        "  \"hash_interning\": {{\"keys\": {KEYS}, \"wall_ms_siphash\": {}, \
         \"wall_ms_fxhash\": {}, \"speedup\": {:.2}}},\n",
        ms(wall_sip),
        ms(wall_fx),
        wall_sip.as_secs_f64() / wall_fx.as_secs_f64().max(1e-9)
    )
}

/// The `par_chunking` section: the adaptive stride's actual schedule on a
/// cheap and a costly workload. The numbers of record are the chunk
/// statistics — on a single-core host both rows degenerate to the
/// sequential fast path (`workers: 1`), which is itself the fix the
/// negative historical `speedup_t4` rows called for.
fn par_chunking_section() -> String {
    let cheap: Vec<u64> = (0..59_049u64).collect();
    let (_, cheap_stats) = par_map_stats(Workers::new(4), 4096, &cheap, |i, &x| x * 2 + i as u64);
    let costly: Vec<u64> = (0..512u64).collect();
    let (_, costly_stats) = par_map_stats(Workers::new(4), 16, &costly, |_, &x| {
        let mut acc = x;
        for i in 0..2_000u64 {
            acc = std::hint::black_box(
                acc.wrapping_mul(6_364_136_223_846_793_005).rotate_left((i % 63) as u32),
            );
        }
        acc
    });
    let row = |name: &str, s: &multival::par::ParStats| {
        format!(
            "    {{\"workload\": \"{name}\", \"items\": {}, \"workers\": {}, \
             \"initial_chunk\": {}, \"max_chunk\": {}, \"grabs\": {}}}",
            s.items, s.workers, s.initial_chunk, s.max_chunk, s.grabs
        )
    };
    format!(
        "  \"par_chunking\": [\n{},\n{}\n  ],\n",
        row("cheap_items", &cheap_stats),
        row("costly_items", &costly_stats)
    )
}

/// The `pipeline_reduction` section: monolithic product size vs the smart
/// pipeline's peak intermediate on the three case-study networks. Timed
/// once per side — the numbers of record here are state counts, not walls.
///
/// In full mode a fourth row probes the pool-throttled 4×4 mesh under an
/// explicit intermediate-state budget and a spill-store memory budget.
/// That row has no monolithic reference and may legitimately report
/// `complete: false`: the mesh's global flow-control constraint binds
/// only once every component has folded (E11's honest limit), so its
/// intermediate products — past a million states — are exactly the
/// frontier the budgets and the spill backend exist to probe safely.
fn pipeline_reduction_section(full: bool) -> String {
    use multival::lts::minimize::Equivalence;
    let cases: [(&str, Network); 3] = [
        ("xstream_pipeline", xstream_network(&PipelineConfig::default())),
        ("fame2_ping_pong", ping_pong_network(2)),
        ("faust_complement", complement_network()),
    ];
    let mut out = String::from("  \"pipeline_reduction\": [\n");
    let last = cases.len() - 1;
    for (i, (name, net)) in cases.into_iter().enumerate() {
        let start = Instant::now();
        let mono = monolithic(&net, Equivalence::Branching, Workers::sequential());
        let wall_mono = start.elapsed();
        let start = Instant::now();
        let run = run_pipeline(&net, &ReduceOptions::default());
        let wall_smart = start.elapsed();
        assert!(run.complete(), "case-study networks reduce without a budget");
        let _ = write!(
            out,
            "    {{\"network\": \"{name}\", \"components\": {}, \
             \"product_states\": {}, \"peak_states\": {}, \"final_states\": {}, \
             \"wall_ms_monolithic\": {}, \"wall_ms_smart\": {}}}",
            net.components().len(),
            mono.product_states,
            run.peak_states(),
            run.lts.num_states(),
            ms(wall_mono),
            ms(wall_smart)
        );
        out.push_str(if i < last { ",\n" } else { "\n" });
    }
    if full {
        let net = complement_network_n(4, Some(3)).expect("mesh network extracts");
        let mem_budget = 8usize << 20;
        let state_budget = 4_000_000;
        let options = ReduceOptions {
            max_states: Some(state_budget),
            store: StoreConfig { kind: StoreKind::Spill, mem_budget: Some(mem_budget) },
            ..ReduceOptions::default()
        };
        let start = Instant::now();
        let run = run_pipeline(&net, &options);
        let wall = start.elapsed();
        out.pop(); // rejoin the previous row: it was written as the last
        let _ = write!(
            out,
            ",\n    {{\"network\": \"faust_mesh_4x4\", \"components\": {}, \
             \"store\": \"spill\", \"mem_budget\": {mem_budget}, \
             \"max_states\": {state_budget}, \"complete\": {}, \"stages_done\": {}, \
             \"peak_states\": {}, \"wall_ms_smart\": {}}}\n",
            net.components().len(),
            run.complete(),
            run.stages.len(),
            run.peak_states(),
            ms(wall)
        );
    }
    out.push_str("  ],\n");
    out
}

/// One blocking HTTP exchange against the benchmark server.
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to bench server");
    stream.set_read_timeout(Some(Duration::from_secs(60))).expect("timeout");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("write request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    raw.split_once("\r\n\r\n").map(|(_, b)| b.to_owned()).unwrap_or_default()
}

/// Submits one job and polls it to completion.
fn run_job(addr: SocketAddr, request: &str) {
    let body = http(addr, "POST", "/v1/jobs", request);
    let id = parse(&body)
        .ok()
        .and_then(|v| v.get("id").and_then(Json::as_num))
        .unwrap_or_else(|| panic!("submit failed: {body}")) as u64;
    loop {
        let body = http(addr, "GET", &format!("/v1/jobs/{id}"), "");
        match body.contains("\"status\":\"done\"") || body.contains("\"status\":\"failed\"") {
            true => return,
            false => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

fn cache_hits(addr: SocketAddr) -> u64 {
    let metrics = parse(&http(addr, "GET", "/v1/metrics", "")).expect("metrics JSON");
    let cache = metrics.get("cache").expect("cache section");
    let grab = |k: &str| cache.get(k).and_then(Json::as_num).expect("counter") as u64;
    grab("mem_hits") + grab("disk_hits")
}

/// Client-observed percentile over submit→done round-trip latencies.
fn pct_us(samples: &mut [u64], p: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    let rank = ((p / 100.0) * samples.len() as f64).ceil().max(1.0) as usize;
    samples[rank.min(samples.len()) - 1]
}

fn jobs_counter(addr: SocketAddr, name: &str) -> u64 {
    let metrics = parse(&http(addr, "GET", "/v1/metrics", "")).expect("metrics JSON");
    metrics
        .get("jobs")
        .and_then(|j| j.get(name))
        .and_then(Json::as_num)
        .unwrap_or_else(|| panic!("metrics counter jobs.{name}")) as u64
}

/// The `serve_throughput` section: one submit→done round trip per client
/// per row, against the event-loop server. `cold` is all-distinct
/// evaluations, `warm` re-submits them (pure cache hits), `coalesced`
/// piles every client onto one fresh request so exactly one evaluation
/// runs. Fast mode keeps a small client count for CI; `BENCH_FULL=1`
/// scales to 128 concurrent clients.
fn serve_throughput_section() -> Result<String, Box<dyn Error>> {
    let clients: usize = if full_mode() { 128 } else { 16 };
    let handle = serve(&ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        queue_cap: clients.max(256),
        // The cache shards its capacity 8 ways; size it so even a shard
        // that drew every key keeps the whole working set resident, or
        // the warm round sees spurious evictions.
        cache_capacity: 8 * (clients + 1),
        mc_workers: 1,
        ..ServerConfig::default()
    })
    .map_err(|e| format!("bench server failed to start: {e}"))?;
    let addr = handle.addr();
    let source = three_queues_src(2).replace('\n', " ").replace('"', "\\\"");
    let request = |seed: usize| {
        format!(r#"{{"kind":"explore","model":{{"source":"{source}"}},"seed":{seed}}}"#)
    };
    // Runs one round: client `i` submits `seeds[i]` and polls it to done,
    // all clients concurrent. Returns (wall, per-client latencies in µs).
    let round = |seeds: Vec<usize>| {
        let start = Instant::now();
        let latencies: Vec<u64> = std::thread::scope(|scope| {
            let handles: Vec<_> = seeds
                .iter()
                .map(|&seed| {
                    let req = request(seed);
                    scope.spawn(move || {
                        let t = Instant::now();
                        run_job(addr, &req);
                        u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("bench client")).collect()
        });
        (start.elapsed(), latencies)
    };
    let row = |name: &str, wall: Duration, mut lat: Vec<u64>, extra: String| {
        format!(
            "\"{name}\": {{\"jobs\": {}, \"wall_ms\": {}, \"p50_us\": {}, \"p99_us\": {}{extra}}}",
            lat.len(),
            ms(wall),
            pct_us(&mut lat, 50.0),
            pct_us(&mut lat, 99.0),
        )
    };

    // Cold: every client evaluates its own distinct request.
    let (cold_wall, cold_lat) = round((0..clients).collect());
    let cold_evaluated = jobs_counter(addr, "evaluated");
    // Warm: the same requests again — all answered from the cache.
    let hits_before = cache_hits(addr);
    let (warm_wall, warm_lat) = round((0..clients).collect());
    let warm_hits = cache_hits(addr) - hits_before;
    let warm_evaluated = jobs_counter(addr, "evaluated");
    // Coalesced: everyone submits one identical fresh request at once;
    // in-flight coalescing must collapse the pile to a single evaluation.
    let (co_wall, co_lat) = round(vec![clients + 1; clients]);
    let co_evaluated = jobs_counter(addr, "evaluated") - warm_evaluated;
    let co_count = jobs_counter(addr, "coalesced");

    let stats = handle.shutdown_and_drain();
    Ok(format!(
        "  \"serve_throughput\": {{\"clients\": {clients}, {}, {}, {}, \
         \"dropped\": {}, \"drained_done\": {}}},\n",
        row("cold", cold_wall, cold_lat, format!(", \"evaluated\": {cold_evaluated}")),
        row("warm", warm_wall, warm_lat, format!(", \"cache_hits\": {warm_hits}")),
        row(
            "coalesced",
            co_wall,
            co_lat,
            format!(", \"evaluated\": {co_evaluated}, \"coalesced\": {co_count}")
        ),
        stats.rejected,
        stats.done
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_json_is_well_formed() {
        let json = bench_baseline().expect("runs");
        // Cheap structural checks: balanced braces/brackets and the keys
        // the acceptance gate and CI consumers look for.
        assert_eq!(json.matches('{').count(), json.matches('}').count(), "{json}");
        assert_eq!(json.matches('[').count(), json.matches(']').count(), "{json}");
        for key in [
            "e1_three_queues",
            "e1_largest_threads",
            "speedup_t4",
            "e1_on_the_fly",
            "kernels_transient",
            "mc_simulation_threads",
            "serve_throughput",
            "state_store",
            "hash_interning",
            "par_chunking",
            "pipeline_reduction",
            "e9_farm",
            "fuzz_fabrics",
            "explore_space",
        ] {
            assert!(json.contains(key), "missing {key}:\n{json}");
        }
        // The service rows: nothing may be dropped, the warm round must be
        // answered entirely from the cache, and the coalesced round must
        // collapse every concurrent identical submission onto exactly one
        // evaluation.
        assert!(json.contains("\"dropped\": 0"), "{json}");
        for row in ["\"cold\": {", "\"warm\": {", "\"coalesced\": {"] {
            assert!(json.contains(row), "missing serve row {row}:\n{json}");
        }
        assert!(json.contains("\"cache_hits\": 16"), "{json}");
        assert!(json.contains("\"evaluated\": 1,"), "{json}");
        assert!(json.contains("\"p99_us\":"), "{json}");
        assert!(json.contains("\"drained_done\": 48"), "{json}");
        // CSR and dense kernels run the same truncation, so they agree far
        // below solver tolerance, and the threaded simulation must be
        // bit-deterministic.
        assert!(json.contains("\"estimates_equal\": true"), "{json}");
        // Three queues of capacity 8 interleaved: 9^3 = 729 states; the
        // five-queue thread-scaling instance has 9^5 = 59049.
        assert!(json.contains("\"cap\": 8, \"states\": 729"), "{json}");
        assert!(json.contains("\"states\": 59049"), "{json}");
        // Three rings of 8: the eager product is 8^3 + 1 = 513 states; the
        // on-the-fly search must get away with strictly fewer.
        assert!(json.contains("\"materialized_states\": 513"), "{json}");
        let fly = json.split("\"e1_on_the_fly\"").nth(1).expect("section");
        for entry in fly.split('{').skip(1).take(3) {
            let grab = |key: &str| -> usize {
                entry
                    .split(key)
                    .nth(1)
                    .and_then(|s| s[2..].split(|c: char| !c.is_ascii_digit()).next())
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| panic!("missing {key} in {entry}"))
            };
            assert!(
                grab("\"visited_states\"") < grab("\"materialized_states\""),
                "on-the-fly visited no fewer states: {entry}"
            );
        }
        // All three dedup backends must agree on the explored space, and
        // the tight fast-mode budget must actually force the spill
        // backend to page key segments out.
        let store = json.split("\"state_store\"").nth(1).expect("section");
        let states: Vec<&str> = store
            .split("\"states\": ")
            .skip(1)
            .take(3)
            .map(|s| s.split(',').next().expect("number"))
            .collect();
        assert_eq!(states.len(), 3, "{json}");
        assert!(states.windows(2).all(|w| w[0] == w[1]), "backends disagree: {states:?}");
        let spill = store.split("\"backend\": \"spill\"").nth(1).expect("spill row");
        let spilled: usize = spill
            .split("\"spilled_segments\": ")
            .nth(1)
            .and_then(|s| s.split('}').next())
            .and_then(|s| s.trim().parse().ok())
            .expect("spilled_segments");
        assert!(spilled > 0, "the tight budget must force paging: {json}");
        // The compositional win: on every case-study network the smart
        // pipeline's peak intermediate stays strictly below the monolithic
        // product.
        let reduction = json.split("\"pipeline_reduction\"").nth(1).expect("section");
        for entry in reduction.split('{').skip(1).take(3) {
            let grab = |key: &str| -> usize {
                entry
                    .split(key)
                    .nth(1)
                    .and_then(|s| s[2..].split(|c: char| !c.is_ascii_digit()).next())
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| panic!("missing {key} in {entry}"))
            };
            assert!(
                grab("\"peak_states\"") < grab("\"product_states\""),
                "pipeline peak must undercut the monolithic product: {entry}"
            );
        }
    }
}
