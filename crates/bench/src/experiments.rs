//! The nine experiments of the reproduction (DESIGN.md §5), each
//! reproducing one quantitative claim of the DATE'08 paper.

use multival::ctmc::mdp::Opt;
use multival::ctmc::phfit::{fit_deterministic, FitOptions};
use multival::ctmc::steady::SolveOptions;
use multival::imc::compositional::{compose_minimize, peak_states, Component, PipelineOptions};
use multival::imc::phase_type::Delay;
use multival::imc::to_ctmc::{to_ctmc, to_ctmdp, NondetPolicy};
use multival::imc::{Imc, ImcBuilder};
use multival::lts::analysis::deadlock_witness;
use multival::lts::equiv::{weak_trace_equivalent, Verdict};
use multival::lts::ops::compose_all;
use multival::lts::reach::{deadlock_search, ReachOptions};
use multival::lts::ts::LazyProduct;
use multival::lts::Lts;
use multival::models::fame2::benchmark::{
    contended_fabric_bounds, latency_table, ping_pong_bandwidth, ping_pong_bandwidth_bounds,
    ping_pong_latency, RateConfig,
};
use multival::models::fame2::coherence::{verify_coherence, Protocol};
use multival::models::fame2::mpi::{MpiConfig, MpiImpl};
use multival::models::fame2::topology::Topology;
use multival::models::faust::fork::run_fork_study;
use multival::models::faust::noc::{single_packet_latency, verify_mesh};
use multival::models::faust::router::verify_router;
use multival::models::rings::{ring_parts, ring_sync};
use multival::models::xstream::perf::{
    analyze, first_delivery_cdf, throughput_bounds, NocBoundsConfig, PerfConfig,
};
use multival::models::xstream::pipeline::{
    build_buffer_chain, build_compositional, build_monolithic, PipelineConfig,
};
use multival::models::xstream::queue;
use multival::models::xstream::tandem::{analyze_tandem, Stage, TandemConfig};
use multival::pa::{explore, parse_behaviour, parse_spec, ExploreOptions};
use multival::report::{fmt_f, Table};
use std::error::Error;

/// The experiment ids accepted by [`run`].
pub const EXPERIMENTS: &[&str] = &["e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e13"];

/// Runs one experiment by id and returns its rendered report.
///
/// # Errors
///
/// Propagates any model/solver error of the underlying flow.
pub fn run(id: &str) -> Result<String, Box<dyn Error>> {
    match id {
        "e1" => e1_state_spaces(),
        "e2" => e2_xstream_issues(),
        "e3" => e3_router_verification(),
        "e4" => e4_isochronous_fork(),
        "e5" => e5_mpi_latency(),
        "e6" => e6_xstream_performance(),
        "e7" => e7_erlang_tradeoff(),
        "e8" => e8_nondeterminism(),
        "e9" => e9_compositional_imc(),
        "e13" => e13_scheduler_bounds(),
        other => Err(format!("unknown experiment `{other}` (try one of {EXPERIMENTS:?})").into()),
    }
}

/// E1 — state-space enumeration & compositional verification
/// ("LTSs enumerate the state space"; compositional verification fights
/// explosion, §3/§5).
pub fn e1_state_spaces() -> Result<String, Box<dyn Error>> {
    let mut out =
        String::from("E1 — state-space sizes: monolithic vs compositional construction\n\n");
    let mut t = Table::new(&[
        "model",
        "monolithic peak",
        "compositional peak",
        "final states",
        "reduction",
    ]);
    for k in [4usize, 6, 8, 10, 12] {
        let mono = build_buffer_chain(k, false);
        let comp = build_buffer_chain(k, true);
        t.row_owned(vec![
            format!("buffer chain k={k}"),
            mono.peak_states.to_string(),
            comp.peak_states.to_string(),
            comp.lts.num_states().to_string(),
            format!("{:.1}x", mono.peak_states as f64 / comp.peak_states.max(1) as f64),
        ]);
    }
    for cap in [2i64, 4, 6] {
        let cfg = PipelineConfig { push_capacity: cap, pop_capacity: cap, credits: cap };
        let mono = build_monolithic(&cfg);
        let comp = build_compositional(&cfg);
        t.row_owned(vec![
            format!("xstream pipeline cap={cap}"),
            mono.peak_states.to_string(),
            comp.peak_states.to_string(),
            comp.lts.num_states().to_string(),
            format!("{:.1}x", mono.peak_states as f64 / comp.peak_states.max(1) as f64),
        ]);
    }
    out.push_str(&t.render());

    let mut c = Table::new(&["coherence model", "states", "transitions"]);
    for nodes in [2, 3, 4, 5] {
        for protocol in [Protocol::Msi, Protocol::Mesi] {
            let v = verify_coherence(nodes, protocol, 5_000_000)?;
            c.row_owned(vec![
                format!("{protocol} N={nodes}"),
                v.states.to_string(),
                v.transitions.to_string(),
            ]);
        }
    }
    out.push('\n');
    out.push_str(&c.render());

    // Materialized vs. visited states: the counter-ring product explodes
    // geometrically while its single deadlock is one step deep, so the
    // on-the-fly search over the lazy product settles the verdict after
    // a fraction of what eager composition must build.
    let mut f =
        Table::new(&["ring system", "materialized (eager)", "visited (on-the-fly)", "saving"]);
    for (n, len) in [(2usize, 8usize), (3, 8), (3, 16)] {
        let parts = ring_parts(n, len);
        let refs: Vec<&Lts> = parts.iter().collect();
        let sync = ring_sync();
        let eager = compose_all(&refs, &sync).num_states();
        let lazy = LazyProduct::new(&refs, &sync);
        let outcome = deadlock_search(&lazy, &ReachOptions::default());
        f.row_owned(vec![
            format!("{n} rings of {len}"),
            eager.to_string(),
            outcome.stats.visited.to_string(),
            format!("{:.1}x", eager as f64 / outcome.stats.visited.max(1) as f64),
        ]);
    }
    out.push('\n');
    out.push_str("deadlock search, eager product vs on-the-fly lazy product:\n");
    out.push_str(&f.render());
    Ok(out)
}

/// E2 — the two xSTream functional issues (§3).
pub fn e2_xstream_issues() -> Result<String, Box<dyn Error>> {
    let mut out = String::from("E2 — xSTream functional issues highlighted\n\n");
    let options = ExploreOptions::default();

    let good = explore(&queue::credit_spec()?, &options)?.lts;
    out.push_str(&format!(
        "correct credit protocol: {} — deadlock-free: {}\n",
        good.summary(),
        deadlock_witness(&good).is_none()
    ));

    let buggy = explore(&queue::buggy_credit_spec()?, &options)?.lts;
    match deadlock_witness(&buggy) {
        Some(w) => out.push_str(&format!(
            "issue 1 (lossy credit return): DEADLOCK after `{}`\n",
            w.join(" ")
        )),
        None => out.push_str("issue 1: NOT detected (unexpected)\n"),
    }

    let fifo = queue::fifo_spec()?;
    let spec_lts = multival::pa::explore_term(
        parse_behaviour("FifoSpec[put, get](0, 0, 0)", &fifo)?,
        &fifo,
        &options,
    )?
    .lts;
    let lifo = explore(&parse_spec(queue::buggy_lifo_spec())?, &options)?.lts;
    match weak_trace_equivalent(&spec_lts, &lifo, 1 << 16) {
        Verdict::Inequivalent { witness: Some(w) } => out.push_str(&format!(
            "issue 2 (LIFO ordering): INEQUIVALENT to FIFO spec, trace `{}`\n",
            w.join(" ")
        )),
        v => out.push_str(&format!("issue 2: NOT detected ({v:?})\n")),
    }
    Ok(out)
}

/// E3 — formal verification of the FAUST NoC router (§3).
pub fn e3_router_verification() -> Result<String, Box<dyn Error>> {
    let mut out = String::from("E3 — FAUST router verification\n\n");
    let mut t = Table::new(&[
        "ports",
        "states",
        "transitions",
        "deadlock-free",
        "no misroute",
        "delivery live",
        "minimized",
    ]);
    let max_ports = if cfg!(debug_assertions) { 4 } else { 5 };
    for ports in 2..=max_ports {
        let v = verify_router(ports, &ExploreOptions::default())?;
        t.row_owned(vec![
            ports.to_string(),
            v.states.to_string(),
            v.transitions.to_string(),
            v.deadlock.is_none().to_string(),
            v.misroute.is_none().to_string(),
            v.delivery_live.to_string(),
            v.reduction.states_after.to_string(),
        ]);
    }
    out.push_str(&t.render());

    // One level up: the 2×2 mesh of routers with link buffers.
    out.push_str(
        "
2x2 mesh of routers (link buffers, end-to-end flow control):
",
    );
    let mut m = Table::new(&["in-flight limit", "states", "deadlock", "misdelivery"]);
    for k in [1usize, 2, 3, 4] {
        let v = verify_mesh(Some(k), &ExploreOptions::with_max_states(4_000_000))?;
        m.row_owned(vec![
            k.to_string(),
            v.states.to_string(),
            match &v.deadlock {
                None => "none".to_owned(),
                Some(w) => format!("after {} steps", w.len()),
            },
            if v.misdelivery.is_none() { "none".to_owned() } else { "FOUND".to_owned() },
        ]);
    }
    out.push_str(&m.render());
    out.push_str("(>= 4 packets in flight reach the head-of-line blocking cycle;\n");
    out.push_str("FAUST's higher-level protocols provide exactly this end-to-end control)\n");

    // Per-destination delivery latency through the IMC -> CTMC flow.
    let mut lat = Table::new(&["destination", "xy hops", "latency"]);
    for dest in 0..4usize {
        let hops = match dest {
            0 => 0,
            3 => 2,
            _ => 1,
        };
        let l = single_packet_latency(dest, 4.0, 20.0)?;
        lat.row_owned(vec![format!("router {dest}"), hops.to_string(), fmt_f(l)]);
    }
    out.push('\n');
    out.push_str("single-packet delivery latency from router 0 (link rate 4):\n");
    out.push_str(&lat.render());
    Ok(out)
}

/// E4 — isochronous forks demonstrated automatically (§3).
pub fn e4_isochronous_fork() -> Result<String, Box<dyn Error>> {
    let study = run_fork_study()?;
    let mut out = String::from("E4 — isochronous fork study\n\n");
    out.push_str(&format!(
        "fully acknowledged fork  ≡ atomic spec (branching): {}\n",
        study.acknowledged_equivalent.holds()
    ));
    out.push_str(&format!(
        "isochronous branch fork  ≡ atomic spec (branching): {}\n",
        study.isochronous_equivalent.holds()
    ));
    match &study.buffered_equivalent {
        Verdict::Inequivalent { witness: Some(w) } => out.push_str(&format!(
            "buffered branch fork     ≢ spec — counterexample: `{}`\n",
            w.join(" ")
        )),
        v => out.push_str(&format!("buffered branch fork: unexpected verdict {v:?}\n")),
    }
    Ok(out)
}

/// E5 — MPI ping-pong latency across topologies × protocols ×
/// implementations (§4, Bull's prediction).
pub fn e5_mpi_latency() -> Result<String, Box<dyn Error>> {
    let rates = RateConfig::default();
    let mut out =
        String::from("E5 — MPI ping-pong latency (topology × protocol × implementation)\n\n");
    let topologies =
        [Topology::Crossbar(8), Topology::Mesh(2, 4), Topology::Torus(2, 4), Topology::Ring(8)];
    let rows = latency_table(&topologies, 1, &rates)?;
    let mut t = Table::new(&["topology", "hops", "protocol", "mpi impl", "latency", "ctmc states"]);
    for r in &rows {
        t.row_owned(vec![
            r.topology.to_string(),
            r.topology.hops(0, r.topology.farthest_from(0)).to_string(),
            r.protocol.to_string(),
            r.implementation.to_string(),
            fmt_f(r.latency),
            r.ctmc_states.to_string(),
        ]);
    }
    out.push_str(&t.render());

    // Payload sweep: where does rendezvous catch up with eager?
    let mut sweep = Table::new(&["payload", "eager", "rendezvous", "ratio rdv/eager"]);
    let max_payload = if cfg!(debug_assertions) { 2 } else { 5 };
    for payload in 1..=max_payload {
        let eager = ping_pong_latency(
            &MpiConfig {
                topology: Topology::Crossbar(8),
                protocol: Protocol::Mesi,
                implementation: MpiImpl::Eager,
                payload,
            },
            &rates,
        )?;
        let rdv = ping_pong_latency(
            &MpiConfig {
                topology: Topology::Crossbar(8),
                protocol: Protocol::Mesi,
                implementation: MpiImpl::Rendezvous,
                payload,
            },
            &rates,
        )?;
        sweep.row_owned(vec![
            payload.to_string(),
            fmt_f(eager.latency),
            fmt_f(rdv.latency),
            fmt_f(rdv.latency / eager.latency),
        ]);
    }
    out.push('\n');
    out.push_str(&sweep.render());

    // Steady-state bandwidth (cyclic benchmark with a round-trip probe).
    let mut bw = Table::new(&["topology", "protocol", "mpi impl", "rounds/t", "lines/t"]);
    for topology in [Topology::Crossbar(8), Topology::Ring(8)] {
        for protocol in [Protocol::Msi, Protocol::Mesi] {
            for implementation in [MpiImpl::Eager, MpiImpl::Rendezvous] {
                let row = ping_pong_bandwidth(
                    &MpiConfig { topology, protocol, implementation, payload: 1 },
                    &rates,
                )?;
                bw.row_owned(vec![
                    row.topology.to_string(),
                    row.protocol.to_string(),
                    row.implementation.to_string(),
                    fmt_f(row.rounds_per_time),
                    fmt_f(row.lines_per_time),
                ]);
            }
        }
    }
    out.push('\n');
    out.push_str("steady-state bandwidth (cyclic benchmark):\n");
    out.push_str(&bw.render());
    Ok(out)
}

/// E6 — xSTream latency, throughput, and queue occupancy (§4, ST's
/// exploration).
pub fn e6_xstream_performance() -> Result<String, Box<dyn Error>> {
    let mut out = String::from("E6 — xSTream pipeline performance\n\n");

    // Capacity sweep.
    let mut caps = Table::new(&["capacity", "throughput", "latency", "ctmc states"]);
    for cap in 1..=8u8 {
        let r = analyze(&PerfConfig {
            push_capacity: cap,
            pop_capacity: cap,
            ..PerfConfig::default()
        })?;
        caps.row_owned(vec![
            cap.to_string(),
            fmt_f(r.throughput),
            fmt_f(r.latency),
            r.ctmc_states.to_string(),
        ]);
    }
    out.push_str(&caps.render());

    // Load sweep with occupancy distribution.
    let mut occ =
        Table::new(&["producer rate", "throughput", "latency", "P(q1=0)", "P(q1=1)", "P(q1=2)"]);
    for lambda in [0.25, 0.5, 1.0, 2.0, 4.0, 8.0] {
        let r = analyze(&PerfConfig { producer_rate: lambda, ..PerfConfig::default() })?;
        occ.row_owned(vec![
            fmt_f(lambda),
            fmt_f(r.throughput),
            fmt_f(r.latency),
            fmt_f(r.occupancy_push[0]),
            fmt_f(r.occupancy_push[1]),
            fmt_f(r.occupancy_push[2]),
        ]);
    }
    out.push('\n');
    out.push_str(&occ.render());

    // Multi-hop route: a tandem of stages with one slow link.
    let mut tandem = Table::new(&["stages", "throughput", "latency", "bottleneck", "fills"]);
    for n in [2usize, 3, 4, 5] {
        let mut stages = vec![Stage { capacity: 2, rate: 4.0 }; n];
        stages[n / 2] = Stage { capacity: 2, rate: 1.5 }; // slow middle hop
        let r = analyze_tandem(&TandemConfig { arrival_rate: 1.0, stages })?;
        tandem.row_owned(vec![
            n.to_string(),
            fmt_f(r.throughput),
            fmt_f(r.latency),
            format!("stage {}", r.bottleneck),
            r.mean_fill.iter().map(|f| format!("{f:.2}")).collect::<Vec<_>>().join("/"),
        ]);
    }
    out.push('\n');
    out.push_str("multi-hop tandem with a slow middle link (caps 2, rates 4 / 1.5):\n");
    out.push_str(&tandem.render());

    // Figure-style series: CDF of the time to first delivery (ramp-up).
    let times: Vec<f64> = (0..=10).map(|i| i as f64 * 0.4).collect();
    let cdf = first_delivery_cdf(&PerfConfig::default(), &times)?;
    out.push_str("\nP(first delivery <= t), default rates (ASCII series):\n");
    for (t, p) in times.iter().zip(&cdf) {
        let bar = "#".repeat((p * 40.0).round() as usize);
        out.push_str(&format!("  t={t:>4.1}  {p:>6.4}  {bar}\n"));
    }
    Ok(out)
}

/// E7 — the space/accuracy trade-off of Erlang-approximated fixed delays
/// (§5 open issue).
pub fn e7_erlang_tradeoff() -> Result<String, Box<dyn Error>> {
    let mut out = String::from(
        "E7 — Erlang-k approximation of a deterministic delay d = 1\n\
         (space = phases/CTMC states; accuracy = CV and CDF error away from the jump)\n\n",
    );
    let mut t = Table::new(&[
        "k",
        "ctmc states",
        "cv",
        "sup err (±10% excl)",
        "P(T <= 0.8)",
        "P(T <= 1.2)",
    ]);
    let ks: &[u32] = if cfg!(debug_assertions) {
        &[1, 2, 5, 10, 20, 50]
    } else {
        &[1, 2, 5, 10, 20, 50, 100, 200]
    };
    for &k in ks {
        let delay = Delay::fixed(1.0, k);
        t.row_owned(vec![
            k.to_string(),
            (k + 1).to_string(),
            fmt_f(delay.cv()),
            fmt_f(delay.sup_error_vs_fixed_excluding(1.0, 0.1, 300)),
            fmt_f(delay.cdf(0.8)),
            fmt_f(delay.cdf(1.2)),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\n(deterministic reference: P(T<=0.8) = 0, P(T<=1.2) = 1; larger k\n\
         approaches both at a linear cost in states)\n",
    );

    // Adaptive fit: instead of hand-enumerating k, state a CDF tolerance
    // and let `ctmc::phfit` pick the minimal order. The enumerated table
    // above doubles as a cross-check: the fitter's achieved error at its
    // chosen k must equal the directly computed sup error at that k.
    out.push_str("\nadaptive fit (ctmc::phfit): minimal k for a stated CDF tolerance\n");
    let mut fit_table = Table::new(&["tolerance", "chosen k", "achieved err", "met"]);
    let tols: &[f64] =
        if cfg!(debug_assertions) { &[0.5, 0.4, 0.3] } else { &[0.5, 0.4, 0.3, 0.2, 0.1] };
    for &tol in tols {
        let fit = fit_deterministic(1.0, tol, &FitOptions::default())?;
        let direct =
            Delay::fixed(1.0, u32::try_from(fit.k)?).sup_error_vs_fixed_excluding(1.0, 0.1, 300);
        if (fit.achieved_error - direct).abs() > 1e-9 {
            return Err(format!(
                "fitter disagrees with the enumerated cross-check at k={}: \
                 fit {} vs direct {direct}",
                fit.k, fit.achieved_error
            )
            .into());
        }
        fit_table.row_owned(vec![
            fmt_f(tol),
            fit.k.to_string(),
            fmt_f(fit.achieved_error),
            if fit.tolerance_met { "yes" } else { "NO (cap)" }.to_owned(),
        ]);
    }
    out.push_str(&fit_table.render());
    out.push_str(
        "\n(the same fitter backs `Delay::Deterministic` and the sweep\n\
         driver's det:TOL axis; error tracks Phi(-0.1*sqrt(k)), so halving\n\
         the tolerance roughly quadruples the state cost)\n",
    );
    Ok(out)
}

/// The under-specified arbiter used by E8: after a request (rate 1), an
/// internal choice picks the fast (rate 10) or slow (rate 1) server.
fn nondeterministic_arbiter() -> Imc {
    let mut b = ImcBuilder::new();
    let idle = b.add_state();
    let choosing = b.add_state();
    let fast = b.add_state();
    let slow = b.add_state();
    let done = b.add_state();
    b.markovian(idle, choosing, 1.0).expect("rate");
    b.interactive(choosing, "i", fast);
    b.interactive(choosing, "i", slow);
    b.markovian(fast, done, 10.0).expect("rate");
    b.markovian(slow, done, 1.0).expect("rate");
    b.build(idle)
}

/// E8 — handling nondeterminism, the paper's §5 open issue: the CADP-style
/// solver rejects; the uniform scheduler and the CTMDP bounds are the "new
/// algorithms".
pub fn e8_nondeterminism() -> Result<String, Box<dyn Error>> {
    let imc = nondeterministic_arbiter();
    let mut out = String::from("E8 — nondeterminism policies on an under-specified arbiter\n\n");

    match to_ctmc(&imc, NondetPolicy::Reject, &[]) {
        Err(e) => out.push_str(&format!("Reject policy (CADP today):   ERROR — {e}\n")),
        Ok(_) => out.push_str("Reject policy: unexpectedly succeeded\n"),
    }

    let conv = to_ctmc(&imc, NondetPolicy::Uniform, &[])?;
    let h = multival::ctmc::absorb::mean_time_to_target(
        &conv.ctmc,
        &[conv.state_map[4].expect("done is tangible")],
        &SolveOptions::default(),
    )?;
    out.push_str(&format!("Uniform scheduler:            E[time to done] = {}\n", fmt_f(h)));

    let mdp = to_ctmdp(&imc)?;
    let (lo, best_policy) = mdp.optimal_expected_time(&[4], Opt::Min, 1e-12, 200_000)?;
    let (hi, worst_policy) = mdp.optimal_expected_time(&[4], Opt::Max, 1e-12, 200_000)?;
    out.push_str(&format!(
        "CTMDP bounds over schedulers: E[time to done] in [{}, {}]\n",
        fmt_f(lo[0]),
        fmt_f(hi[0])
    ));
    out.push_str(&format!(
        "optimal schedulers at the choice state: best takes branch {:?}, worst branch {:?}\n",
        best_policy[1], worst_policy[1]
    ));
    out.push_str("(best = always fast: 1 + 0.1; worst = always slow: 1 + 1)\n");
    Ok(out)
}

/// E9 — compositional IMC generation: per-stage sizes with and without
/// intermediate lumping (§4).
pub fn e9_compositional_imc() -> Result<String, Box<dyn Error>> {
    let server = |rate: f64| {
        let mut b = ImcBuilder::new();
        let s0 = b.add_state();
        let s1 = b.add_state();
        b.interactive(s0, "go", s1);
        b.markovian(s1, s0, rate).expect("rate");
        b.build(s0)
    };
    let source = {
        let mut b = ImcBuilder::new();
        let s0 = b.add_state();
        let s1 = b.add_state();
        b.markovian(s0, s1, 1.0).expect("rate");
        b.interactive(s1, "go", s0);
        b.build(s0)
    };
    let n = 7;
    let mut comps = vec![Component::new("src", source, [] as [&str; 0])];
    for i in 0..n {
        comps.push(Component::new(&format!("srv{i}"), server(2.0), ["go"]));
    }

    let (with, stages_on) = compose_minimize(&comps, &PipelineOptions::default());
    let (without, stages_off) =
        compose_minimize(&comps, &PipelineOptions { minimize: false, ..Default::default() });

    let mut out =
        String::from("E9 — compositional IMC generation: alternate composition and lumping\n\n");
    let mut t = Table::new(&["stage", "product states", "after lumping"]);
    for s in &stages_on {
        t.row_owned(vec![s.stage.clone(), s.states_before.to_string(), s.states_after.to_string()]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\npeak with lumping: {}   peak without: {}   final: {} vs {}\n",
        peak_states(&stages_on),
        peak_states(&stages_off),
        with.num_states(),
        without.num_states()
    ));
    Ok(out)
}

/// E13 — scheduler-quantified evaluation (EXPERIMENTS.md §E13)
/// (E10–E12 are driven by the `baseline` harness and the service, so the
/// registry jumps from e9 to e13.)
///
/// Instead of fixing one scheduler for the nondeterminism left in a model,
/// lift the lumped IMC into a CTMDP and report `[min, max]` over *every*
/// scheduler: the xSTream routed pipeline (fast/slow NoC route per
/// transfer) and the FAME2 contended fabric (cache-to-cache flush vs
/// home-memory fetch), plus the confluence collapse of the cyclic
/// ping-pong benchmark that validates the seed's uniform policy.
pub fn e13_scheduler_bounds() -> Result<String, Box<dyn Error>> {
    let mut out = String::from(
        "E13 — scheduler-quantified evaluation: [min, max] over all schedulers\n\n\
         xSTream routed pipeline (slow route rate 1.0, fast route swept):\n",
    );
    let mut t = Table::new(&["fast rate", "min tput", "max tput", "spread %", "ctmdp", "instant"]);
    for fast in [1.0, 2.0, 4.0, 8.0] {
        let cfg = NocBoundsConfig { fast_rate: fast, slow_rate: 1.0, ..NocBoundsConfig::default() };
        let b = throughput_bounds(&cfg)?;
        let spread = if b.min > 0.0 { 100.0 * (b.max - b.min) / b.min } else { 0.0 };
        t.row_owned(vec![
            fmt_f(fast),
            fmt_f(b.min),
            fmt_f(b.max),
            format!("{spread:.1}"),
            b.ctmdp_states.to_string(),
            b.instant_states.to_string(),
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\nFAME2 contended fabric (flush vs home-memory fetch, hops swept):\n");
    let rates = RateConfig::default();
    let mut f =
        Table::new(&["hops", "min rounds/t", "max rounds/t", "spread %", "ctmdp", "instant"]);
    for hops in [1, 2, 4] {
        let b = contended_fabric_bounds(&rates, hops)?;
        let spread =
            100.0 * (b.max_rounds_per_time - b.min_rounds_per_time) / b.min_rounds_per_time;
        f.row_owned(vec![
            hops.to_string(),
            fmt_f(b.min_rounds_per_time),
            fmt_f(b.max_rounds_per_time),
            format!("{spread:.1}"),
            b.ctmdp_states.to_string(),
            b.instant_states.to_string(),
        ]);
    }
    out.push_str(&f.render());

    let config = MpiConfig {
        topology: Topology::Crossbar(2),
        protocol: Protocol::Msi,
        implementation: MpiImpl::Eager,
        payload: 1,
    };
    let cyclic = ping_pong_bandwidth_bounds(&config, &rates)?;
    let uniform = ping_pong_bandwidth(&config, &rates)?;
    out.push_str(&format!(
        "\ncyclic ping-pong (Crossbar(2)/Msi/Eager): bounds [{}, {}], uniform policy {}\n\
         (the cyclic benchmark's internal nondeterminism is confluent — the interval\n\
          collapses to a point, validating the seed's uniform resolution)\n",
        fmt_f(cyclic.min_rounds_per_time),
        fmt_f(cyclic.max_rounds_per_time),
        fmt_f(uniform.rounds_per_time),
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_experiment_runs() {
        for id in EXPERIMENTS {
            let report = run(id).unwrap_or_else(|e| panic!("{id} failed: {e}"));
            assert!(!report.is_empty(), "{id} produced no output");
        }
    }

    #[test]
    fn unknown_experiment_rejected() {
        assert!(run("e99").is_err());
    }

    #[test]
    fn e8_bounds_bracket_uniform() {
        let imc = nondeterministic_arbiter();
        let conv = to_ctmc(&imc, NondetPolicy::Uniform, &[]).expect("uniform");
        let uniform = multival::ctmc::absorb::mean_time_to_target(
            &conv.ctmc,
            &[conv.state_map[4].expect("tangible")],
            &SolveOptions::default(),
        )
        .expect("solves");
        let mdp = to_ctmdp(&imc).expect("ctmdp");
        let lo = mdp.expected_time_to_reach(&[4], Opt::Min, 1e-12, 200_000).expect("vi")[0];
        let hi = mdp.expected_time_to_reach(&[4], Opt::Max, 1e-12, 200_000).expect("vi")[0];
        assert!(lo <= uniform + 1e-6 && uniform <= hi + 1e-6, "{lo} <= {uniform} <= {hi}");
        assert!((lo - 1.1).abs() < 1e-3, "fast bound {lo}");
        assert!((hi - 2.0).abs() < 1e-3, "slow bound {hi}");
    }

    #[test]
    fn e13_spreads_and_collapse_are_genuine() {
        // Equal route rates: the xSTream interval must collapse.
        let flat = NocBoundsConfig { fast_rate: 1.0, slow_rate: 1.0, ..NocBoundsConfig::default() };
        let b = throughput_bounds(&flat).expect("bounds");
        assert!(b.max - b.min < 1e-9, "equal routes must collapse: [{}, {}]", b.min, b.max);
        // Unequal routes: a genuine spread.
        let skew = NocBoundsConfig { fast_rate: 8.0, slow_rate: 1.0, ..NocBoundsConfig::default() };
        let s = throughput_bounds(&skew).expect("bounds");
        assert!(s.max > s.min + 1e-3, "skewed routes must spread: [{}, {}]", s.min, s.max);
        // The fabric keeps a genuine spread at every hop count, and both
        // endpoints degrade monotonically as the fabric stretches.
        let rates = RateConfig::default();
        let near = contended_fabric_bounds(&rates, 1).expect("bounds");
        let far = contended_fabric_bounds(&rates, 4).expect("bounds");
        for b in [&near, &far] {
            assert!(
                b.max_rounds_per_time > b.min_rounds_per_time + 1e-3,
                "fabric spread must be genuine: [{}, {}]",
                b.min_rounds_per_time,
                b.max_rounds_per_time
            );
        }
        assert!(far.max_rounds_per_time < near.max_rounds_per_time, "fast path degrades with hops");
        assert!(far.min_rounds_per_time < near.min_rounds_per_time, "slow path degrades with hops");
    }

    #[test]
    fn e7_adaptive_fit_agrees_with_enumeration() {
        // Regression for the phfit-backed rework: the report carries the
        // adaptive-fit table (its internal cross-check against the
        // enumerated sup errors would have errored the run otherwise),
        // and the known minimal orders for d = 1 appear in it.
        let out = e7_erlang_tradeoff().expect("e7 runs");
        assert!(out.contains("adaptive fit (ctmc::phfit)"), "{out}");
        let fit = fit_deterministic(1.0, 0.5, &FitOptions::default()).expect("fit");
        assert_eq!(fit.k, 3, "minimal order for tol 0.5 at d=1");
        assert!(fit.tolerance_met);
        let fit = fit_deterministic(1.0, 0.3, &FitOptions::default()).expect("fit");
        assert_eq!(fit.k, 27, "minimal order for tol 0.3 at d=1");
    }
}
