//! # multival-bench — the experiment harness
//!
//! One module per experiment of the reproduction (E1–E9 and E13, see
//! DESIGN.md §5);
//! each returns rendered tables so the `experiments` binary can print them
//! and the Criterion benches can reuse the underlying workloads.

pub mod baseline;
pub mod experiments;

pub use baseline::bench_baseline;
pub use experiments::{run, EXPERIMENTS};
