//! The metamorphic *sandwich* harness for scheduler-quantified bounds: on
//! seeded random nondeterministic models, every concrete resolution of the
//! nondeterminism — first-choice, last-choice, per-state seeded-random, and
//! the uniform policy — must land inside the `[min, max]` interval the
//! lifted CTMDP computes, for all four measures. Degenerate models (no
//! nondeterminism) must collapse the interval onto the CTMC answer, and
//! bounds must be invariant under lumping.

use multival::ctmc::Workers;
use multival::flow::{BoundsSolved, Flow, Interval, Solved};
use multival::imc::NondetPolicy;
use multival::lts::equiv::lts_from_triples;
use multival::models::common::explore_model;
use multival::models::fame2::benchmark::{
    contended_fabric_bounds, contended_fabric_source, label_delay, RateConfig,
};
use multival::models::fame2::coherence::Protocol;
use multival::models::fame2::mpi::{MpiConfig, MpiImpl, MpiModel};
use multival::models::fame2::topology::Topology;
use multival::models::xstream::perf::{explore_pipeline, PerfConfig};
use std::collections::HashMap;

const TOL: f64 = 1e-9;

type Triple = (u32, &'static str, u32);

/// SplitMix64: deterministic, platform-independent stream for the seeded
/// random models (the repo convention for reproducible test randomness).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const MARKOV_GATES: [&str; 3] = ["ga", "gb", "gc"];

fn markov_rates() -> HashMap<String, f64> {
    [("ga".to_owned(), 0.7), ("gb".to_owned(), 1.3), ("gc".to_owned(), 2.9)].into_iter().collect()
}

/// A random `n`-state model: a Markovian spanning cycle (`ga`/`gb`/`gc`,
/// decorated) plus extra Markovian edges, and strictly *forward* internal
/// edges — `choice` (hidden, the scheduler's nondeterminism) and `tick`
/// (the throughput probe). Forward-only internal edges rule out Zeno
/// τ-cycles, and the spanning cycle keeps state `n-1` reachable under every
/// scheduler, so all four measures are well-defined for every resolution.
fn random_nondet_triples(seed: u64, n: u32) -> Vec<Triple> {
    let mut s = seed;
    let mut t = Vec::new();
    for i in 0..n - 1 {
        t.push((i, MARKOV_GATES[(splitmix(&mut s) % 3) as usize], i + 1));
    }
    t.push((n - 1, MARKOV_GATES[(splitmix(&mut s) % 3) as usize], 0));
    for _ in 0..n {
        let a = (splitmix(&mut s) % u64::from(n)) as u32;
        let b = (splitmix(&mut s) % u64::from(n)) as u32;
        if a != b {
            t.push((a, MARKOV_GATES[(splitmix(&mut s) % 3) as usize], b));
        }
    }
    for _ in 0..n {
        let a = (splitmix(&mut s) % u64::from(n - 1)) as u32;
        let b = a + 1 + (splitmix(&mut s) % u64::from(n - 1 - a)) as u32;
        let label = if splitmix(&mut s).is_multiple_of(2) { "choice" } else { "tick" };
        t.push((a, label, b));
    }
    t
}

/// Keeps one internal (`choice`/`tick`) edge per state — a stationary
/// deterministic scheduler. `pick` selects among a state's internal edges
/// by count.
fn resolve(triples: &[Triple], mut pick: impl FnMut(u32, usize) -> usize) -> Vec<Triple> {
    let mut internal: HashMap<u32, Vec<usize>> = HashMap::new();
    for (i, &(a, l, _)) in triples.iter().enumerate() {
        if l == "choice" || l == "tick" {
            internal.entry(a).or_default().push(i);
        }
    }
    let mut keep: Vec<bool> = vec![true; triples.len()];
    for (&state, edges) in &internal {
        let chosen = edges[pick(state, edges.len())];
        for &e in edges {
            keep[e] = e == chosen;
        }
    }
    triples.iter().enumerate().filter(|&(i, _)| keep[i]).map(|(_, &t)| t).collect()
}

/// The four measures of one concrete (fully or partially resolved) model.
fn measures(solved: &Solved, occ: &[u32], target: &[u32], t: f64) -> [f64; 4] {
    let tick = solved
        .throughputs()
        .expect("throughputs")
        .into_iter()
        .find(|(l, _)| l == "tick")
        .map_or(0.0, |(_, v)| v);
    [
        tick,
        solved.occupancy(occ).expect("occupancy"),
        solved.mean_time_to_states(target).expect("latency"),
        solved.timed_reach(target, t).expect("transient"),
    ]
}

/// The four measure intervals of the lifted CTMDP.
fn measure_bounds(bounds: &BoundsSolved, occ: &[u32], target: &[u32], t: f64) -> [Interval; 4] {
    let tick = bounds
        .throughput_bounds()
        .expect("throughput bounds")
        .into_iter()
        .find(|(l, _)| l == "tick")
        .map(|(_, i)| i)
        .expect("tick probe present");
    [
        tick,
        bounds.occupancy_bounds(occ).expect("occupancy bounds"),
        bounds.latency_bounds(target).expect("latency bounds"),
        bounds.transient_bounds(target, t).expect("transient bounds"),
    ]
}

const MEASURE_NAMES: [&str; 4] = ["throughput", "occupancy", "latency", "transient"];

#[test]
fn random_models_sandwich_every_scheduler_resolution() {
    let rates = markov_rates();
    let mut spreads = 0usize;
    for seed in 0..12u64 {
        let n = 5 + (seed % 4) as u32;
        let triples = random_nondet_triples(seed * 7919 + 1, n);
        let occ: Vec<u32> = (0..n).filter(|s| s % 3 == 0).collect();
        let target = [n - 1];
        let t = 0.7;

        let full = Flow::from_lts(lts_from_triples(&triples));
        let perf = full.with_rates(&rates);
        let bounds = perf.solve_bounds(&["tick"]).expect("bounds solve");
        let iv = measure_bounds(&bounds, &occ, &target, t);
        spreads += usize::from(iv.iter().any(|i| i.width() > 1e-6));

        // The uniform policy resolves choices on the *unresolved* model;
        // the three prunings are stationary deterministic schedulers.
        let mut resolutions: Vec<(String, Vec<Triple>)> = vec![
            ("first-choice".into(), resolve(&triples, |_, _| 0)),
            ("last-choice".into(), resolve(&triples, |_, k| k - 1)),
        ];
        for salt in [3u64, 17] {
            resolutions.push((
                format!("seeded-random({salt})"),
                resolve(&triples, |state, k| {
                    let mut s = seed ^ (u64::from(state) << 32) ^ salt;
                    (splitmix(&mut s) % k as u64) as usize
                }),
            ));
        }
        let uniform = perf.solve(NondetPolicy::Uniform, &["tick"]).expect("uniform solve");
        let mut resolved: Vec<(String, [f64; 4])> =
            vec![("uniform".into(), measures(&uniform, &occ, &target, t))];
        for (name, pruned) in resolutions {
            let solved = Flow::from_lts(lts_from_triples(&pruned))
                .with_rates(&rates)
                .solve(NondetPolicy::Uniform, &["tick"])
                .expect("resolved solve");
            resolved.push((name, measures(&solved, &occ, &target, t)));
        }

        for (name, vals) in &resolved {
            for (m, (&v, i)) in vals.iter().zip(&iv).enumerate() {
                assert!(
                    i.min - TOL <= v && v <= i.max + TOL,
                    "seed {seed} ({n} states), {} under {name}: {v} outside [{}, {}]",
                    MEASURE_NAMES[m],
                    i.min,
                    i.max
                );
            }
        }
    }
    assert!(spreads >= 6, "only {spreads}/12 seeds had a genuine spread — generator too tame");
}

#[test]
fn deterministic_case_studies_collapse_onto_the_ctmc_answer() {
    // xSTream pipeline: all four measures.
    let explored = explore_pipeline(&PerfConfig::default()).expect("explores");
    let rates: HashMap<String, f64> = [
        ("push".to_owned(), 1.0),
        ("xfer".to_owned(), 4.0),
        ("pop".to_owned(), 2.0),
        ("credit".to_owned(), 8.0),
    ]
    .into_iter()
    .collect();
    let occ: Vec<u32> = (0..explored.lts.num_states() as u32).filter(|s| s % 2 == 0).collect();
    let target = [explored.lts.num_states() as u32 - 1];
    let perf = Flow::from_lts(explored.lts).with_rates(&rates);
    let solved = perf.solve(NondetPolicy::Uniform, &["pop"]).expect("solves");
    let bounds = perf.solve_bounds(&["pop"]).expect("bounds");
    let vals = [
        solved.throughputs().expect("tp").into_iter().find(|(l, _)| l == "pop").expect("pop").1,
        solved.occupancy(&occ).expect("occ"),
        solved.mean_time_to_states(&target).expect("lat"),
        solved.timed_reach(&target, 0.5).expect("tr"),
    ];
    let ivs = [
        bounds
            .throughput_bounds()
            .expect("tp")
            .into_iter()
            .find(|(l, _)| l == "pop")
            .expect("pop")
            .1,
        bounds.occupancy_bounds(&occ).expect("occ"),
        bounds.latency_bounds(&target).expect("lat"),
        bounds.transient_bounds(&target, 0.5).expect("tr"),
    ];
    for (m, (&v, i)) in vals.iter().zip(&ivs).enumerate() {
        assert!(i.width() < TOL, "xstream {}: width {}", MEASURE_NAMES[m], i.width());
        assert!(
            (i.min - v).abs() < TOL,
            "xstream {}: {v} vs [{}, {}]",
            MEASURE_NAMES[m],
            i.min,
            i.max
        );
    }

    // FAME2 ping-pong (absorbing round trip): latency and transient against
    // the CTMC first-passage solvers; the chain is deterministic, so the
    // interval is a point.
    let config = MpiConfig {
        topology: Topology::Crossbar(2),
        protocol: Protocol::Msi,
        implementation: MpiImpl::Eager,
        payload: 1,
    };
    let model = MpiModel::ping_pong(config);
    let explored = explore_model(&model, 4_000_000).expect("explores");
    let done: Vec<u32> = explored.states_where(|s| model.finished(s));
    let rc = RateConfig::default();
    let homes: Vec<usize> = model.lines.iter().map(|l| l.home).collect();
    let perf = Flow::from_lts(explored.lts)
        .with_delays_by_label(|label| label_delay(label, &rc, &config.topology, &|l| homes[l]));
    let solved = perf.solve(NondetPolicy::Uniform, &[]).expect("solves");
    let bounds = perf.solve_bounds(&[]).expect("bounds");
    let latency = solved.mean_time_to_states(&done).expect("latency");
    let reach = solved.timed_reach(&done, latency).expect("transient");
    let lat_iv = bounds.latency_bounds(&done).expect("latency bounds");
    let reach_iv = bounds.transient_bounds(&done, latency).expect("transient bounds");
    assert!(
        lat_iv.width() < TOL && (lat_iv.min - latency).abs() < TOL,
        "fame2 latency {latency} vs [{}, {}]",
        lat_iv.min,
        lat_iv.max
    );
    assert!(
        reach_iv.width() < TOL && (reach_iv.min - reach).abs() < TOL,
        "fame2 transient {reach} vs [{}, {}]",
        reach_iv.min,
        reach_iv.max
    );
}

#[test]
fn bounds_are_invariant_under_lumping() {
    // The contended-fabric model is genuinely nondeterministic; lumping the
    // decorated IMC must not move either endpoint.
    let rc = RateConfig::default();
    let rates: HashMap<String, f64> = [
        ("issue".to_owned(), rc.issue_rate),
        ("flush".to_owned(), rc.transfer_rate),
        ("mem".to_owned(), rc.memory_rate / 2.0),
        ("consume".to_owned(), rc.cache_rate),
    ]
    .into_iter()
    .collect();
    let flow = Flow::from_source(&contended_fabric_source()).expect("parses");
    let perf = flow.with_rates(&rates);
    let original = perf.solve_bounds(&["mark"]).expect("bounds");
    let (lumped, stats) = perf.lumped();
    let quotient = lumped.solve_bounds(&["mark"]).expect("lumped bounds");
    let a = original.throughput_bounds().expect("tp")[0].1;
    let b = quotient.throughput_bounds().expect("tp")[0].1;
    assert!(a.max > a.min + 1e-6, "the fabric spread must be genuine: [{}, {}]", a.min, a.max);
    assert!(
        (a.min - b.min).abs() < TOL && (a.max - b.max).abs() < TOL,
        "lumping moved the bounds: [{}, {}] vs [{}, {}]",
        a.min,
        a.max,
        b.min,
        b.max
    );
    assert!(stats.states_after <= stats.states_before, "lump must not grow the chain");

    // Cross-validation: the Flow path (closed + lifted) and the models-crate
    // path (relabel + lifted) must compute the same interval.
    let m = contended_fabric_bounds(&rc, 1).expect("model bounds");
    assert!(
        (a.min - m.min_rounds_per_time).abs() < TOL && (a.max - m.max_rounds_per_time).abs() < TOL,
        "flow [{}, {}] vs models [{}, {}]",
        a.min,
        a.max,
        m.min_rounds_per_time,
        m.max_rounds_per_time
    );
}

#[test]
fn bounds_jobs_match_the_flow_engine_across_workers() {
    // The svc `bounds` kind must agree with the Flow engine bit-for-bit and
    // be worker-invariant (value iteration has no parallel section — the
    // determinism the cache key relies on).
    use multival_svc::request::JobRequest;
    let src = contended_fabric_source();
    let rc = RateConfig::default();
    let text = format!(
        r#"{{"kind":"bounds","model":{{"source":{}}},"rates":{{"issue":{},"flush":{},"mem":{},"consume":{}}},"probes":["mark"]}}"#,
        multival_svc::json::Json::str(src.clone()),
        rc.issue_rate,
        rc.transfer_rate,
        rc.memory_rate / 2.0,
        rc.cache_rate,
    );
    let req = JobRequest::from_json_text(&text).expect("parses");
    let seq = req.evaluate(Workers::sequential()).expect("evaluates").to_string();
    let par = req.evaluate(Workers::new(4)).expect("evaluates").to_string();
    assert_eq!(seq, par, "bounds evaluation must be byte-identical across worker counts");
    let m = contended_fabric_bounds(&rc, 1).expect("model bounds");
    let parsed = multival_svc::json::parse(&seq).expect("json");
    let tp = parsed
        .get("throughput_bounds")
        .and_then(|t| t.get("mark"))
        .expect("mark bounds in response");
    let min = tp.get("min").and_then(multival_svc::json::Json::as_num).expect("min");
    let max = tp.get("max").and_then(multival_svc::json::Json::as_num).expect("max");
    assert!((min - m.min_rounds_per_time).abs() < TOL, "{min} vs {}", m.min_rounds_per_time);
    assert!((max - m.max_rounds_per_time).abs() < TOL, "{max} vs {}", m.max_rounds_per_time);
}
