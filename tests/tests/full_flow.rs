//! Integration: the complete §2–§4 flow on one model, cross-checked
//! numerically against Monte-Carlo simulation.

use multival::ctmc::simulate::Simulator;
use multival::flow::Flow;
use multival::imc::NondetPolicy;
use multival::lts::minimize::Equivalence;
use std::collections::HashMap;

const MODEL: &str = "
process Station[req, grant, release](busy: bool) :=
    [not busy] -> req; Station[req, grant, release](true)
 [] [busy]     -> grant; release; Station[req, grant, release](false)
endproc
behaviour Station[req, grant, release](false)
";

#[test]
fn verify_then_evaluate() {
    let flow = Flow::from_source(MODEL).expect("parses and explores");
    // Functional: deadlock-free, grant never precedes req.
    assert!(flow.deadlock().is_none());
    assert!(flow.check("nu X. [\"grant\"] false and [not \"req\"] X").expect("mc").holds);

    // Performance: decorate all three actions.
    let mut rates = HashMap::new();
    rates.insert("req".to_owned(), 4.0);
    rates.insert("grant".to_owned(), 2.0);
    rates.insert("release".to_owned(), 1.0);
    let solved = flow
        .with_rates(&rates)
        .solve(NondetPolicy::Reject, &["req", "grant", "release"])
        .expect("solves");
    let tp = solved.throughputs().expect("throughputs");
    // Cycle time = 1/4 + 1/2 + 1 = 7/4 → each label fires at 4/7.
    for (label, x) in &tp {
        assert!((x - 4.0 / 7.0).abs() < 1e-9, "{label}: {x}");
    }
}

#[test]
fn numeric_flow_matches_simulation() {
    let flow = Flow::from_source(MODEL).expect("parses");
    let mut rates = HashMap::new();
    rates.insert("req".to_owned(), 3.0);
    rates.insert("grant".to_owned(), 1.0);
    rates.insert("release".to_owned(), 2.0);
    let solved = flow.with_rates(&rates).solve(NondetPolicy::Reject, &[]).expect("solves");
    let pi = solved.steady_state().expect("steady");
    let est = Simulator::new(solved.ctmc(), 2024).occupancy(50_000.0);
    for (s, (&exact, &sim)) in pi.iter().zip(&est.occupancy).enumerate() {
        assert!((exact - sim).abs() < 0.02, "state {s}: exact {exact} vs simulated {sim}");
    }
}

#[test]
fn minimization_preserves_properties() {
    let flow = Flow::from_source(MODEL).expect("parses");
    let (min, stats) = flow.minimized(Equivalence::Branching);
    assert!(stats.states_after <= stats.states_before);
    // The quotient satisfies the same stutter-insensitive properties.
    for f in [
        "nu X. <true> true and [true] X",
        "nu X. [\"grant\"] false and [not \"req\"] X",
        "mu X. <\"release\"> true or <true> X",
    ] {
        assert_eq!(
            flow.check(f).expect("mc").holds,
            min.check(f).expect("mc").holds,
            "property `{f}` differs on the quotient"
        );
    }
}

#[test]
fn hiding_then_divergence_analysis() {
    let flow = Flow::from_source(MODEL).expect("parses");
    let hidden = flow.hidden(["grant", "release"]);
    // Hidden internal activity forms no τ-cycle here (req still visible).
    assert!(hidden.divergences().is_empty());
    // Hiding everything yields a τ-cycle: divergence appears.
    let all_hidden = flow.hidden(["req", "grant", "release"]);
    assert!(!all_hidden.divergences().is_empty());
}
