//! Cross-validation of the statistical engine: Monte-Carlo estimates must
//! land inside their own 99% confidence intervals of the numerical
//! answers on random ergodic CTMCs. Seeds are fixed, so every run of this
//! suite sees the same trajectories — a CI miss here is a bug, not noise.

use multival::ctmc::absorb::mean_time_to_target;
use multival::ctmc::steady::{steady_state, SolveOptions};
use multival::ctmc::transient::{transient, TransientOptions};
use multival::ctmc::{Ctmc, McOptions, McSim, Workers};
use proptest::prelude::*;

/// Strategy: an ergodic CTMC — a spanning cycle `0 → 1 → … → n-1 → 0`
/// makes the chain irreducible, extra transitions add structure. Rates are
/// bounded away from zero so mixing is fast relative to the horizons below.
fn arb_ergodic_ctmc(max_states: usize) -> impl Strategy<Value = Ctmc> {
    (3..=max_states).prop_flat_map(move |n| {
        let cycle = prop::collection::vec(0.3f64..4.0, n);
        let extra = prop::collection::vec((0..n, 0..n, 0.3f64..4.0), 0..n);
        (cycle, extra).prop_map(move |(cycle, extra)| {
            let mut b = multival::ctmc::CtmcBuilder::new(n);
            for (i, &r) in cycle.iter().enumerate() {
                b.rate(i, (i + 1) % n, r).expect("rate");
            }
            for (s, t, r) in extra {
                if s != t {
                    b.rate(s, t, r).expect("rate");
                }
            }
            b.build().expect("ctmc")
        })
    })
}

/// One shared option set: 99% intervals, a fixed seed, and the absolute
/// width floor doing the stopping (the per-state means can be tiny).
fn mc_opts(seed: u64) -> McOptions {
    McOptions {
        seed,
        workers: Workers::new(2),
        max_trajectories: 16_384,
        abs_width: 8e-3,
        rel_width: 0.0,
        ..McOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Long-run occupancy estimates bracket the steady-state solution.
    /// The finite horizon biases occupancy by O(mixing time / horizon),
    /// covered by the small slack added to the half-width.
    #[test]
    fn occupancy_brackets_steady_state(ctmc in arb_ergodic_ctmc(6), seed in 1u64..500) {
        let pi = steady_state(&ctmc, &SolveOptions::default()).expect("solves");
        let run = McSim::new(&ctmc).occupancy(400.0, &mc_opts(seed));
        for (s, (e, want)) in run.estimates.iter().zip(&pi).enumerate() {
            prop_assert!((e.mean - want).abs() <= e.half_width + 6e-3,
                "state {s}: mc {} ± {} vs steady {want}", e.mean, e.half_width);
        }
    }

    /// Transient one-hot sampling is unbiased: the estimate at time `t`
    /// sits inside its CI of the uniformization answer.
    #[test]
    fn transient_estimates_inside_ci(
        ctmc in arb_ergodic_ctmc(6),
        t in 0.5f64..3.0,
        seed in 1u64..500,
    ) {
        let exact = transient(&ctmc, t, &TransientOptions::default()).expect("solves");
        let run = McSim::new(&ctmc).transient(t, &mc_opts(seed));
        for (s, (e, want)) in run.estimates.iter().zip(&exact).enumerate() {
            prop_assert!((e.mean - want).abs() <= e.half_width + 1e-3,
                "state {s} at t={t}: mc {} ± {} vs exact {want}", e.mean, e.half_width);
        }
    }

    /// Hitting-time estimates agree with the Gauss–Seidel expected hitting
    /// time. The cycle keeps every target reachable, and the generous cap
    /// keeps truncation bias below the CI width.
    #[test]
    fn hitting_time_inside_ci(ctmc in arb_ergodic_ctmc(6), seed in 1u64..500) {
        let target = ctmc.num_states() - 1;
        let exact = mean_time_to_target(&ctmc, &[target], &SolveOptions::default())
            .expect("solves");
        let opts = McOptions { abs_width: 5e-2, ..mc_opts(seed) };
        let run = McSim::new(&ctmc).hitting_time(&[target], 1e4, &opts);
        let e = &run.estimates[0];
        prop_assert!((e.mean - exact).abs() <= e.half_width + 2e-2,
            "mc {} ± {} vs exact {exact}", e.mean, e.half_width);
    }
}
