//! Differential harness for the compositional reduction pipeline: on
//! random component networks, `run_pipeline` must produce the *byte-same*
//! canonical LTS as the monolithic reference — for every composition-order
//! policy, worker count, and with or without checkpoint/resume — and that
//! LTS must be bisimilar to the monolithic product under the chosen
//! equivalence (an independent check through the equivalence engine, not
//! the canonicalizer).
//!
//! A failing case shrinks to a minimal network: fewer/smaller components,
//! shorter transition lists, smaller sync/hide sets.

use multival::lts::equiv::{equivalent, Verdict};
use multival::lts::io::write_aut;
use multival::lts::minimize::Equivalence;
use multival::lts::pipeline::{monolithic, run_pipeline, Network, Order, PipelineOptions};
use multival::lts::{Lts, LtsBuilder, Workers};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Strategy: a random component LTS with up to `max_states` states over a
/// tiny gate pool (τ spelled `i`), fully reachable by a spanning chain.
fn arb_component(max_states: usize) -> impl Strategy<Value = Lts> {
    let labels = prop::sample::select(vec!["a", "b", "c", "d", "i"]);
    (1..=max_states).prop_flat_map(move |n| {
        let chain = prop::collection::vec(labels.clone(), n - 1);
        let extra = prop::collection::vec((0..n as u32, labels.clone(), 0..n as u32), 0..(2 * n));
        (chain, extra).prop_map(move |(chain, extra)| {
            let mut b = LtsBuilder::new();
            for _ in 0..n {
                b.add_state();
            }
            for (i, l) in chain.iter().enumerate() {
                b.add_transition(i as u32, l, i as u32 + 1);
            }
            for (s, l, t) in extra {
                b.add_transition(s, l, t);
            }
            b.build(0)
        })
    })
}

/// Strategy: a random network of 2–4 components with random sync and
/// hidden gate sets over the same pool.
fn arb_network() -> impl Strategy<Value = Network> {
    let gates = || prop::collection::vec(prop::sample::select(vec!["a", "b", "c", "d"]), 0..=3);
    (prop::collection::vec(arb_component(4), 2..=4), gates(), gates()).prop_map(
        |(components, sync, hide)| {
            let mut net = Network::new();
            for (k, lts) in components.into_iter().enumerate() {
                net.add_component(format!("c{k}"), lts);
            }
            net.sync_on(sync);
            net.hide(hide);
            net
        },
    )
}

/// The differential core: every pipeline configuration must reproduce the
/// monolithic reference byte for byte, and the result must pass an
/// independent bisimilarity check against the (unreduced-path) product.
fn check_differential(net: &Network, eq: Equivalence, seed: u64) -> Result<(), TestCaseError> {
    let mono = monolithic(net, eq, Workers::sequential());
    let reference = write_aut(&mono.lts);
    let mut smart_run = None;
    for order in [Order::Given, Order::Smart, Order::Seeded(seed)] {
        for workers in [Workers::sequential(), Workers::new(4)] {
            let options =
                PipelineOptions { equivalence: eq, order, workers, ..PipelineOptions::default() };
            let run = run_pipeline(net, &options);
            prop_assert!(run.complete(), "unbudgeted run must complete ({order})");
            prop_assert_eq!(
                write_aut(&run.lts),
                reference.clone(),
                "order {} with {} worker(s) diverged from the monolithic reference",
                order,
                workers.get()
            );
            smart_run = Some(run);
        }
    }
    // Independent semantic check, through the equivalence engine rather
    // than the canonicalizer both sides share.
    let run = smart_run.expect("at least one configuration ran");
    prop_assert!(
        matches!(equivalent(&run.lts, &mono.lts, eq), Verdict::Equivalent),
        "pipeline result must be {eq:?}-equivalent to the monolithic product"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pipeline_matches_the_monolithic_reference_branching(
        net in arb_network(),
        seed in 0u64..1_000_000,
    ) {
        check_differential(&net, Equivalence::Branching, seed)?;
    }

    #[test]
    fn pipeline_matches_the_monolithic_reference_strong(
        net in arb_network(),
        seed in 0u64..1_000_000,
    ) {
        check_differential(&net, Equivalence::Strong, seed)?;
    }

    #[test]
    fn checkpointed_runs_resume_to_the_same_bytes(net in arb_network()) {
        static UNIQUE: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir()
            .join(format!("multival-pipeline-diff-{}", UNIQUE.fetch_add(1, Ordering::Relaxed)));
        let _ = std::fs::remove_dir_all(&dir);
        let options = PipelineOptions {
            checkpoint_dir: Some(dir.clone()),
            ..PipelineOptions::default()
        };
        let fresh = run_pipeline(&net, &options);
        prop_assert_eq!(fresh.resumed_stages, 0, "first run starts clean");
        let resumed = run_pipeline(&net, &options);
        prop_assert!(
            resumed.resumed_stages > 0,
            "second run must pick the checkpoint up"
        );
        prop_assert_eq!(write_aut(&fresh.lts), write_aut(&resumed.lts));
        prop_assert_eq!(&fresh.stages, &resumed.stages, "stage accounting must survive resume");
        let plain = run_pipeline(&net, &PipelineOptions::default());
        prop_assert_eq!(write_aut(&plain.lts), write_aut(&resumed.lts));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
