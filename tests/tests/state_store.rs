//! Differential and property coverage for the pluggable state-store
//! exploration backends and the compact binary BLTS format.
//!
//! The store-backed explorer promises *byte-identical* canonical LTSs —
//! same state numbering, same transition order — whatever backend holds
//! the dedup table and however many worker threads derive successors.
//! These tests pin that promise on models from the paper's three case
//! studies, and pin the BLTS codec against the Aldebaran text format on
//! random LTSs.

use multival::lts::io::{read_aut, read_blts, write_aut, write_blts};
use multival::lts::store::{StoreConfig, StoreKind};
use multival::lts::{Lts, LtsBuilder};
use multival::models::fame2::network::ping_pong_source;
use multival::models::faust::mesh::complement_source_n;
use multival::models::faust::noc::single_packet_source;
use multival::models::xstream::pipeline::library;
use multival::pa::{explore, explore_term_store, parse_behaviour, parse_spec, ExploreOptions};
use proptest::prelude::*;

/// An xSTream-style flat pipeline assembled from the component library:
/// producer → queue → queue → consumer with the interior gate hidden.
const XSTREAM_FLAT: &str = "hide m in ( Producer[push] |[push]| ( Queue[push, m](0, 2) \
     |[m]| ( Queue[m, pop](0, 2) |[pop]| Consumer[pop] ) ) )";

/// One flat model per case study: xSTream pipeline, FAME2 ping-pong,
/// FAUST NoC (single packet plus the flow-controlled 2×2 complement mesh).
fn case_studies() -> Vec<(&'static str, multival::pa::Spec)> {
    let xstream = {
        let mut spec = library();
        let top = parse_behaviour(XSTREAM_FLAT, &spec).expect("xstream top parses");
        spec.set_top(top);
        spec
    };
    vec![
        ("xstream_pipeline", xstream),
        ("fame2_ping_pong", parse_spec(&ping_pong_source(2)).expect("parses")),
        ("faust_single_packet", parse_spec(&single_packet_source(3)).expect("parses")),
        ("faust_complement_2x2", parse_spec(&complement_source_n(2, Some(2))).expect("parses")),
    ]
}

/// Every backend × worker count × (tight or absent) memory budget yields
/// the byte-identical canonical LTS the classic explorer produces.
#[test]
fn backends_and_workers_agree_on_case_study_models() {
    for (name, spec) in case_studies() {
        let baseline =
            write_aut(&explore(&spec, &ExploreOptions::default()).expect("explores").lts);
        for kind in StoreKind::ALL {
            for threads in [1usize, 4] {
                // A 1-byte budget forces the spill backend to page on
                // every segment; the others ignore it.
                for mem_budget in [None, Some(1)] {
                    let options = ExploreOptions::default().with_threads(threads);
                    let config = StoreConfig { kind, mem_budget };
                    let lts = explore_term_store(spec.top().clone(), &spec, &options, &config)
                        .expect("explores");
                    assert_eq!(
                        baseline,
                        write_aut(&lts),
                        "{name}: {kind:?} × {threads} threads × budget {mem_budget:?} \
                         must match the classic explorer byte for byte"
                    );
                }
            }
        }
    }
}

/// Strategy: a random LTS over a small alphabet with states kept
/// reachable by a spanning chain (mirrors `properties.rs`).
fn arb_lts(max_states: usize) -> impl Strategy<Value = Lts> {
    let labels = prop::sample::select(vec!["a", "b!1", "i", "long label with spaces"]);
    (2..=max_states).prop_flat_map(move |n| {
        let chain = prop::collection::vec(labels.clone(), n - 1);
        let extra = prop::collection::vec((0..n as u32, labels.clone(), 0..n as u32), 0..(3 * n));
        (chain, extra).prop_map(move |(chain, extra)| {
            let mut b = LtsBuilder::new();
            for _ in 0..n {
                b.add_state();
            }
            for (i, l) in chain.iter().enumerate() {
                b.add_transition(i as u32, l, i as u32 + 1);
            }
            for (s, l, t) in extra {
                b.add_transition(s, l, t);
            }
            b.build(0)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `.aut` and BLTS are interchangeable carriers. BLTS preserves label
    /// ids exactly, so it round-trips any render byte-identically; `.aut`
    /// re-interns labels in first-occurrence order, so its render reaches
    /// a fixpoint after one pass — and BLTS agrees on that canonical form.
    #[test]
    fn aut_and_blts_roundtrips_are_byte_identical(lts in arb_lts(24)) {
        let direct = write_aut(&lts);
        let via_blts = read_blts(&write_blts(&lts)).expect("BLTS decodes");
        prop_assert_eq!(&direct, &write_aut(&via_blts));

        let canonical_lts = read_aut(&direct).expect(".aut parses");
        let canonical = write_aut(&canonical_lts);
        let again = read_aut(&canonical).expect("canonical .aut parses");
        prop_assert_eq!(&canonical, &write_aut(&again));
        let via_both = read_blts(&write_blts(&canonical_lts)).expect("BLTS decodes");
        prop_assert_eq!(&canonical, &write_aut(&via_both));
    }
}

/// The committed CI smoke model must track the mesh generator: CI reduces
/// `examples/mesh_3x3.lot` under a memory budget, so drift between the
/// file and `complement_source_n` would silently change what CI exercises.
#[test]
fn committed_3x3_mesh_model_matches_the_generator() {
    let path =
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../examples/mesh_3x3.lot");
    let want = complement_source_n(3, Some(2));
    if std::env::var("UPDATE_GOLDEN").as_deref() == Ok("1") {
        std::fs::write(&path, &want).expect("write model");
        return;
    }
    let got = std::fs::read_to_string(&path).expect("committed examples/mesh_3x3.lot");
    assert_eq!(
        got, want,
        "examples/mesh_3x3.lot drifted from complement_source_n(3, Some(2)); \
         regenerate with UPDATE_GOLDEN=1"
    );
}

/// Decoding must fail loudly — never panic, never return a mangled LTS —
/// on every truncation and on single-byte corruption of a real file.
#[test]
fn blts_decode_rejects_truncation_and_corruption() {
    let spec = parse_spec(&single_packet_source(3)).expect("parses");
    let lts = explore(&spec, &ExploreOptions::default()).expect("explores").lts;
    let bytes = write_blts(&lts);
    let canonical = write_aut(&lts);
    for len in 0..bytes.len() {
        assert!(read_blts(&bytes[..len]).is_err(), "truncation at {len} must error");
    }
    // Flip one byte at a stride through the file: the checksum trailer
    // (or an earlier structural check) must catch every flip.
    for pos in (0..bytes.len()).step_by(7) {
        let mut bad = bytes.clone();
        bad[pos] ^= 0x41;
        match read_blts(&bad) {
            Err(_) => {}
            Ok(decoded) => assert_eq!(
                write_aut(&decoded),
                canonical,
                "an accepted flip at {pos} must still decode to the same LTS"
            ),
        }
    }
}
