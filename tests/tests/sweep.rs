//! End-to-end tests of the `explore-space` design-space driver over the
//! committed `tests/data/sweep_xstream.toml` spec:
//!
//! - the rendered report is byte-identical across worker counts and
//!   across the in-process engine vs a live `serve` endpoint;
//! - re-running against the service is answered from the cache (asserted
//!   through `/v1/metrics`, not timing);
//! - the report matches a committed golden fixture;
//! - along the Erlang-order axis, accuracy error strictly shrinks while
//!   peak CTMC states strictly grow — the paper's central trade-off;
//! - a `--max-states` budget marks individual points partial and turns
//!   the whole run into exit code 3 without losing the other points.

use multival::cli::CmdStatus;
use multival_svc::json::{parse, Json};
use multival_svc::server::{serve, ServerConfig};
use multival_svc::sweep::{run_explore_space, SweepOptions, SweepSpec};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("data").join(name)
}

/// Compares `contents` against the committed fixture, or rewrites the
/// fixture when `UPDATE_GOLDEN=1`.
fn check_golden(name: &str, contents: &str) {
    let path = fixture_path(name);
    if std::env::var("UPDATE_GOLDEN").as_deref() == Ok("1") {
        std::fs::write(&path, contents).expect("write fixture");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {name} ({e}); create it with UPDATE_GOLDEN=1"));
    assert_eq!(
        want, contents,
        "golden mismatch for {name}; if the change is intentional and verified, \
         regenerate with UPDATE_GOLDEN=1"
    );
}

fn committed_spec() -> SweepSpec {
    let text = std::fs::read_to_string(fixture_path("sweep_xstream.toml")).expect("spec fixture");
    SweepSpec::parse(&text).expect("committed spec parses")
}

fn options(workers: usize) -> SweepOptions {
    SweepOptions { workers, endpoint: None, cache_dir: None, max_states: None }
}

fn server_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        queue_cap: 256,
        cache_capacity: 64,
        cache_dir: None,
        mc_workers: 1,
        event_threads: 2,
        journal_dir: None,
        read_deadline: Duration::from_secs(10),
    }
}

/// One blocking HTTP exchange over a fresh connection.
fn http(addr: SocketAddr, method: &str, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
    write!(stream, "{method} {path} HTTP/1.1\r\nHost: svc\r\nContent-Length: 0\r\n\r\n")
        .expect("write request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line: {raw}"));
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_owned()).unwrap_or_default();
    (status, body)
}

/// Reads one numeric counter out of a parsed `/v1/metrics` body.
fn metric(metrics: &Json, section: &str, name: &str) -> f64 {
    metrics
        .get(section)
        .and_then(|s| s.get(name))
        .and_then(Json::as_num)
        .unwrap_or_else(|| panic!("metrics field {section}.{name} missing"))
}

/// Pulls a numeric field out of a point's result object.
fn field(outcome: &Json, name: &str) -> f64 {
    outcome.get(name).and_then(Json::as_num).unwrap_or_else(|| panic!("result field {name}"))
}

#[test]
fn report_is_byte_identical_across_worker_counts() {
    let spec = committed_spec();
    let one = run_explore_space(&spec, &options(1)).expect("workers=1 run");
    let four = run_explore_space(&spec, &options(4)).expect("workers=4 run");
    assert_eq!(one.status, CmdStatus::Ok);
    assert_eq!(four.status, CmdStatus::Ok);
    assert_eq!(one.front, four.front, "Pareto front depends on worker count");
    assert_eq!(
        one.report().render(),
        four.report().render(),
        "report must not depend on worker count"
    );
}

#[test]
fn live_service_agrees_with_in_process_and_rerun_is_cache_served() {
    let spec = committed_spec();
    let local = run_explore_space(&spec, &options(2)).expect("in-process run");
    let local_report = local.report().render();

    let handle = serve(&server_config()).expect("serve");
    let addr = handle.addr();
    let remote_options = |workers| SweepOptions {
        workers,
        endpoint: Some(addr.to_string()),
        cache_dir: None,
        max_states: None,
    };

    let remote = run_explore_space(&spec, &remote_options(4)).expect("remote run");
    assert_eq!(
        local_report,
        remote.report().render(),
        "in-process and live-service transports must render identically"
    );

    let (status, body) = http(addr, "GET", "/v1/metrics");
    assert_eq!(status, 200, "{body}");
    let metrics = parse(&body).expect("metrics JSON");
    let evaluated_first = metric(&metrics, "jobs", "evaluated");
    assert_eq!(evaluated_first, spec.num_points() as f64, "{body}");

    // Second run over the same spec: every point must come out of the
    // cache — no new evaluations, only cache-served answers.
    let rerun = run_explore_space(&spec, &remote_options(1)).expect("rerun");
    assert_eq!(local_report, rerun.report().render(), "cached rerun must render identically");

    let (status, body) = http(addr, "GET", "/v1/metrics");
    assert_eq!(status, 200, "{body}");
    let metrics = parse(&body).expect("metrics JSON");
    assert_eq!(
        metric(&metrics, "jobs", "evaluated"),
        evaluated_first,
        "rerun must not evaluate anything new: {body}"
    );
    assert!(
        metric(&metrics, "jobs", "cache_served") >= spec.num_points() as f64,
        "rerun must be answered from the cache: {body}"
    );
    let _ = handle.shutdown_and_drain();
}

#[test]
fn committed_spec_matches_golden_report() {
    let run = run_explore_space(&committed_spec(), &options(2)).expect("run");
    assert_eq!(run.status, CmdStatus::Ok);
    check_golden("sweep_xstream_report.txt", &run.report().render());
}

#[test]
fn accuracy_error_shrinks_as_states_grow_along_k() {
    let run = run_explore_space(&committed_spec(), &options(2)).expect("run");
    for depth in ["push_capacity=1", "push_capacity=2"] {
        let series: Vec<(f64, f64, f64)> = run
            .points
            .iter()
            .filter(|p| p.label.ends_with(depth))
            .map(|p| {
                let r = p.outcome.as_ref().expect("point succeeds");
                (field(r, "fit_k"), field(r, "accuracy_error"), field(r, "ctmc_states"))
            })
            .collect();
        assert_eq!(series.len(), 4, "four Erlang orders per depth");
        for w in series.windows(2) {
            let ((k0, e0, s0), (k1, e1, s1)) = (w[0], w[1]);
            assert!(k0 < k1, "points must come out in Erlang order: {k0} vs {k1}");
            assert!(e1 < e0, "{depth}: error must shrink with k ({e0} -> {e1})");
            assert!(s1 > s0, "{depth}: state space must grow with k ({s0} -> {s1})");
        }
    }
}

#[test]
fn budget_cap_marks_points_partial_without_losing_the_rest() {
    let spec = committed_spec();
    let capped = SweepOptions { max_states: Some(20), ..options(2) };
    let run = run_explore_space(&spec, &capped).expect("capped run");
    assert_eq!(run.status, CmdStatus::BudgetExceeded);
    assert_eq!(run.status.exit_code(), 3);

    let ok = run.points.iter().filter(|p| p.outcome.is_ok()).count();
    let partial = run.points.iter().filter(|p| p.outcome.is_err()).count();
    assert!(ok >= 1, "the smallest points fit under 20 states");
    assert!(partial >= 1, "the deep Erlang ladders must trip the cap");
    assert_eq!(ok + partial, spec.num_points());
    for p in run.points.iter().filter(|p| p.outcome.is_err()) {
        let reason = p.outcome.as_ref().unwrap_err();
        assert!(reason.starts_with("Budget exceeded:"), "partial reason: {reason}");
    }
    let report = run.report().render();
    assert!(report.contains("partial"), "report must surface partial points:\n{report}");
}
