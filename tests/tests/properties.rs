//! Property-based tests over randomly generated LTSs and CTMCs: the
//! algebraic laws the toolchain's correctness rests on.

use multival::ctmc::steady::{steady_state, SolveOptions};
use multival::ctmc::CtmcBuilder;
use multival::imc::phase_type::Delay;
use multival::lts::equiv::{disjoint_union, equivalent, lts_from_triples};
use multival::lts::io::{read_aut, write_aut};
use multival::lts::minimize::{minimize, partition_refinement, Equivalence};
use multival::lts::ops::{compose, Sync};
use multival::lts::{Lts, LtsBuilder};
use proptest::prelude::*;

/// Strategy: a random LTS with up to `n` states over a tiny alphabet
/// (including τ), every state reachable by construction (transitions from
/// earlier states, plus a spanning chain).
fn arb_lts(max_states: usize) -> impl Strategy<Value = Lts> {
    let labels = prop::sample::select(vec!["a", "b", "c", "i"]);
    (2..=max_states).prop_flat_map(move |n| {
        let chain = prop::collection::vec(labels.clone(), n - 1);
        let extra = prop::collection::vec((0..n as u32, labels.clone(), 0..n as u32), 0..(2 * n));
        (chain, extra).prop_map(move |(chain, extra)| {
            let mut b = LtsBuilder::new();
            for _ in 0..n {
                b.add_state();
            }
            // Spanning chain keeps everything reachable.
            for (i, l) in chain.iter().enumerate() {
                b.add_transition(i as u32, l, i as u32 + 1);
            }
            for (s, l, t) in extra {
                b.add_transition(s, l, t);
            }
            b.build(0)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn minimization_yields_equivalent_quotient(lts in arb_lts(12)) {
        for eq in [
            Equivalence::Strong,
            Equivalence::Branching,
            Equivalence::BranchingDivergence,
        ] {
            let (min, stats) = minimize(&lts, eq);
            prop_assert!(min.num_states() <= lts.num_states());
            prop_assert!(equivalent(&lts, &min, eq).holds(),
                "{eq:?} quotient must be equivalent ({} -> {})\nORIG:\n{}\nMIN:\n{}",
                stats.states_before, stats.states_after,
                write_aut(&lts), write_aut(&min));
        }
    }

    #[test]
    fn minimization_is_idempotent(lts in arb_lts(12)) {
        for eq in [
            Equivalence::Strong,
            Equivalence::Branching,
            Equivalence::BranchingDivergence,
        ] {
            let (m1, _) = minimize(&lts, eq);
            let (m2, _) = minimize(&m1, eq);
            prop_assert_eq!(m1.num_states(), m2.num_states());
            prop_assert_eq!(m1.num_transitions(), m2.num_transitions());
        }
    }

    #[test]
    fn branching_is_coarser_than_strong(lts in arb_lts(12)) {
        let strong = minimize(&lts, Equivalence::Strong).0;
        let branching = minimize(&lts, Equivalence::Branching).0;
        let div = minimize(&lts, Equivalence::BranchingDivergence).0;
        prop_assert!(branching.num_states() <= strong.num_states());
        prop_assert!(branching.num_states() <= div.num_states(),
            "divergence-sensitive refines divergence-blind");
        prop_assert!(div.num_states() <= strong.num_states());
    }

    #[test]
    fn divergence_preserved_by_sensitive_quotient(lts in arb_lts(12)) {
        use multival::lts::minimize::divergent_states;
        let (min, _) = minimize(&lts, Equivalence::BranchingDivergence);
        prop_assert_eq!(
            divergent_states(&lts).is_empty(),
            divergent_states(&min).is_empty(),
            "the quotient diverges iff the original does"
        );
    }

    #[test]
    fn strong_equivalence_implies_branching(a in arb_lts(8), b in arb_lts(8)) {
        if equivalent(&a, &b, Equivalence::Strong).holds() {
            prop_assert!(equivalent(&a, &b, Equivalence::Branching).holds());
        }
    }

    #[test]
    fn composition_is_commutative_modulo_bisim(a in arb_lts(6), b in arb_lts(6)) {
        for sync in [Sync::Interleave, Sync::Full, Sync::on(["a", "b"])] {
            let ab = compose(&a, &b, &sync);
            let ba = compose(&b, &a, &sync);
            prop_assert!(equivalent(&ab, &ba, Equivalence::Strong).holds());
        }
    }

    #[test]
    fn self_equivalence_and_union_blocks(lts in arb_lts(10)) {
        prop_assert!(equivalent(&lts, &lts, Equivalence::Strong).holds());
        // Disjoint union: both copies land in matching partitions.
        let (u, ia, ib) = disjoint_union(&lts, &lts);
        let p = partition_refinement(&u, Equivalence::Strong);
        prop_assert_eq!(p.block(ia), p.block(ib));
    }

    #[test]
    fn aut_roundtrip_preserves_behaviour(lts in arb_lts(10)) {
        let back = read_aut(&write_aut(&lts)).expect("roundtrip");
        prop_assert!(equivalent(&lts, &back, Equivalence::Strong).holds());
    }

    #[test]
    fn random_irreducible_ctmc_steady_state_sums_to_one(
        rates in prop::collection::vec(0.1f64..10.0, 3..12)
    ) {
        // Cycle chain: always irreducible.
        let n = rates.len();
        let mut b = CtmcBuilder::new(n);
        for (i, &r) in rates.iter().enumerate() {
            b.rate(i, (i + 1) % n, r).expect("rate");
        }
        let pi = steady_state(&b.build().expect("builds"), &SolveOptions::default())
            .expect("solves");
        let total: f64 = pi.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(pi.iter().all(|&p| p >= 0.0));
        // Cycle: π_i ∝ 1/rate_i.
        let z: f64 = rates.iter().map(|r| 1.0 / r).sum();
        for (i, &p) in pi.iter().enumerate() {
            prop_assert!((p - (1.0 / rates[i]) / z).abs() < 1e-8, "state {i}");
        }
    }

    #[test]
    fn erlang_fit_mean_invariant(d in 0.1f64..10.0, k in 1u32..50) {
        let delay = Delay::fixed(d, k);
        prop_assert!((delay.mean() - d).abs() < 1e-9);
        prop_assert!((delay.cv() - 1.0 / (k as f64).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn delay_cdf_is_monotone(rate in 0.2f64..5.0, k in 1u32..8) {
        let delay = Delay::Erlang { phases: k, rate };
        let mut last = -1e-12;
        for i in 0..8 {
            let t = i as f64 * 0.5;
            let c = delay.cdf(t);
            prop_assert!(c >= last - 1e-9, "CDF not monotone at t={t}");
            prop_assert!((0.0..=1.0 + 1e-9).contains(&c));
            last = c;
        }
    }
}

#[test]
fn composition_associativity_spot_check() {
    // Associativity modulo strong bisimulation on a fixed trio.
    let a = lts_from_triples(&[(0, "a", 1), (1, "s", 0)]);
    let b = lts_from_triples(&[(0, "b", 1), (1, "s", 0)]);
    let c = lts_from_triples(&[(0, "c", 1), (1, "s", 0)]);
    let sync = Sync::on(["s"]);
    let left = compose(&compose(&a, &b, &sync), &c, &sync);
    let right = compose(&a, &compose(&b, &c, &sync), &sync);
    assert!(equivalent(&left, &right, Equivalence::Strong).holds());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The mini-LOTOS parser must never panic, whatever bytes it gets.
    #[test]
    fn parser_never_panics(src in "[ -~\\n]{0,200}") {
        let _ = multival::pa::parse_spec(&src);
    }

    /// The formula parser must never panic either.
    #[test]
    fn formula_parser_never_panics(src in "[ -~]{0,120}") {
        let _ = multival::mcl::parse_formula(&src);
    }

    /// The .aut reader must never panic on arbitrary text.
    #[test]
    fn aut_reader_never_panics(src in "[ -~\\n]{0,200}") {
        let _ = read_aut(&src);
    }

    /// Labels with quotes, backslashes, commas, and spaces survive a
    /// write/read cycle byte-for-byte (the escaping satellite of the
    /// service PR: bare backslashes used to be written unescaped).
    #[test]
    fn aut_label_roundtrip(labels in prop::collection::vec("[a-z \\\\\"(),!.]{0,12}", 1..6)) {
        let mut b = LtsBuilder::new();
        for _ in 0..=labels.len() {
            b.add_state();
        }
        for (i, l) in labels.iter().enumerate() {
            b.add_transition(i as u32, l, i as u32 + 1);
        }
        let lts = b.build(0);
        let back = read_aut(&write_aut(&lts)).expect("written files parse");
        let names = |l: &Lts| -> Vec<(u32, String, u32)> {
            l.iter_transitions()
                .map(|(s, lab, t)| (s, l.labels().name(lab).to_owned(), t))
                .collect()
        };
        prop_assert_eq!(names(&lts), names(&back));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Simulation is reflexive, and bisimilar systems simulate both ways.
    #[test]
    fn simulation_preorder_laws(lts in arb_lts(8)) {
        use multival::lts::simulation::{simulates, SimulationKind};
        for kind in [SimulationKind::Strong, SimulationKind::Weak] {
            prop_assert!(simulates(&lts, &lts, kind), "{kind:?} must be reflexive");
        }
        // The strong-bisimulation quotient simulates the original and back.
        let (min, _) = minimize(&lts, Equivalence::Strong);
        prop_assert!(simulates(&lts, &min, SimulationKind::Strong));
        prop_assert!(simulates(&min, &lts, SimulationKind::Strong));
    }

    /// Strong simulation implies weak simulation.
    #[test]
    fn strong_simulation_implies_weak(a in arb_lts(6), b in arb_lts(6)) {
        use multival::lts::simulation::{simulates, SimulationKind};
        if simulates(&a, &b, SimulationKind::Strong) {
            prop_assert!(simulates(&a, &b, SimulationKind::Weak));
        }
    }
}
