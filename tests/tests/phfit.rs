//! Convergence properties of the adaptive phase-type fitter
//! (`ctmc::phfit`), which backs `Delay::Deterministic` and the
//! `det:TOL` sweep axis:
//!
//! - the Erlang-k sup CDF error against the deterministic step is
//!   monotonically non-increasing in k (the fit converges);
//! - `fit_deterministic` picks the *minimal* order meeting the stated
//!   tolerance, or honestly reports `tolerance_met = false` at the cap;
//! - fitted means match the target to 1e-9 (both the deterministic and
//!   the two-moment entry points);
//! - metamorphic: lump-then-solve equals solve-then-project on a chain
//!   whose delays went through the fitter.

use multival::ctmc::phfit::{
    fit_deterministic, fit_moments, sup_error_vs_step, FitOptions, DEFAULT_JUMP_WINDOW,
    DEFAULT_SAMPLES,
};
use multival::ctmc::steady::{steady_state, SolveOptions};
use multival::ctmc::{Ctmc, CtmcBuilder};
use multival::imc::lump::{lump_partition, LumpOptions};
use multival::imc::phase_type::Delay;
use multival::imc::to_ctmc::{to_ctmc, NondetPolicy};
use multival::imc::{Imc, ImcBuilder};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Builds the lumped quotient CTMC from a partition (block-level rates
/// read off one representative per block; lumpability guarantees every
/// member gives the same numbers).
fn quotient_ctmc(imc: &Imc, block: &[u32], num_blocks: u32) -> Ctmc {
    let mut b = CtmcBuilder::new(num_blocks as usize);
    let mut seen = vec![false; num_blocks as usize];
    for s in 0..imc.num_states() {
        let bs = block[s] as usize;
        if seen[bs] {
            continue;
        }
        seen[bs] = true;
        let mut rates: BTreeMap<u32, f64> = BTreeMap::new();
        for m in imc.markovian_from(s as u32) {
            *rates.entry(block[m.target as usize]).or_insert(0.0) += m.rate;
        }
        for (tb, r) in rates {
            if tb as usize != bs {
                b.rate(bs, tb as usize, r).expect("rate");
            }
        }
    }
    let init_block = block[imc.initial() as usize] as usize;
    b.set_initial(vec![(init_block, 1.0)]).expect("initial");
    b.build().expect("quotient")
}

/// Sums a per-state distribution into per-block mass, routing through
/// the IMC→CTMC state map.
fn project(dist: &[f64], state_map: &[Option<usize>], block: &[u32], num_blocks: u32) -> Vec<f64> {
    let mut out = vec![0.0; num_blocks as usize];
    for (s, m) in state_map.iter().enumerate() {
        if let Some(cs) = m {
            out[block[s] as usize] += dist[*cs];
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Doubling the Erlang order never makes the sup CDF error against
    /// the deterministic step worse: the fit converges monotonically
    /// along the exact ladder `fit_deterministic` climbs.
    #[test]
    fn erlang_error_monotone_in_order(mean in 0.1f64..10.0) {
        let mut prev = f64::INFINITY;
        let mut k = 1usize;
        while k <= 256 {
            let e = sup_error_vs_step(k, mean, DEFAULT_JUMP_WINDOW, DEFAULT_SAMPLES);
            prop_assert!(e.is_finite() && e >= 0.0, "k={k}: error {e} not a probability gap");
            prop_assert!(
                e <= prev + 1e-12,
                "error increased at k={k}: {e} after {prev}"
            );
            prev = e;
            k *= 2;
        }
    }

    /// The adaptive fit meets the stated tolerance whenever the cap
    /// allows, and the chosen order is minimal: one order less already
    /// violates the tolerance.
    #[test]
    fn fit_meets_tolerance_with_minimal_order(mean in 0.1f64..10.0, tol in 0.02f64..0.5) {
        let opts = FitOptions::default();
        let fit = fit_deterministic(mean, tol, &opts).expect("fit");
        prop_assert!(fit.tolerance_met, "default cap fits tol {tol}: {fit}");
        prop_assert!(
            fit.achieved_error <= tol,
            "reported met but error {} > tol {tol}", fit.achieved_error
        );
        if fit.k > 1 {
            let below = sup_error_vs_step(fit.k - 1, mean, opts.window, opts.samples);
            prop_assert!(
                below > tol,
                "k={} is not minimal: k-1 already achieves {below} <= {tol}", fit.k
            );
        }
    }

    /// With a cap too low for the tolerance, the fit returns the capped
    /// order and honestly reports the shortfall instead of lying.
    #[test]
    fn capped_fit_reports_unmet(mean in 0.5f64..5.0) {
        let opts = FitOptions { max_k: 4, ..FitOptions::default() };
        let fit = fit_deterministic(mean, 0.01, &opts).expect("fit");
        prop_assert_eq!(fit.k, 4);
        prop_assert!(!fit.tolerance_met, "cap 4 cannot reach tol 0.01: {}", fit);
        prop_assert!(fit.achieved_error > 0.01);
    }

    /// The fitted Erlang mean `k / rate` matches the target to 1e-9
    /// relative, for any tolerance.
    #[test]
    fn fitted_mean_matches_target(mean in 0.1f64..10.0, tol in 0.02f64..0.5) {
        let fit = fit_deterministic(mean, tol, &FitOptions::default()).expect("fit");
        let fitted_mean = fit.k as f64 / fit.rate;
        prop_assert!(
            (fitted_mean - mean).abs() <= 1e-9 * mean,
            "fitted mean {fitted_mean} vs target {mean} (k={})", fit.k
        );
        prop_assert!((fit.cv - 1.0 / (fit.k as f64).sqrt()).abs() < 1e-12);
    }

    /// The two-moment fit matches mean AND coefficient of variation:
    /// phase means sum to the target, and the cv recomputed from the
    /// rates agrees with what was asked for.
    #[test]
    fn moment_fit_matches_both_moments(mean in 0.1f64..10.0, cv in 0.05f64..1.0) {
        let fit = fit_moments(mean, cv).expect("fit");
        let m: f64 = fit.rates.iter().map(|r| 1.0 / r).sum();
        let var: f64 = fit.rates.iter().map(|r| 1.0 / (r * r)).sum();
        prop_assert!(
            (m - mean).abs() <= 1e-9 * mean,
            "moment-fit mean {m} vs target {mean} (k={})", fit.k()
        );
        prop_assert!(
            (var.sqrt() / m - cv).abs() <= 1e-6,
            "moment-fit cv {} vs target {cv}", var.sqrt() / m
        );
        if fit.is_erlang() {
            let k = fit.k() as f64;
            prop_assert!((1.0 / k.sqrt() - cv).abs() <= 1e-9, "pure Erlang only when cv = 1/sqrt(k)");
        }
    }

    /// Metamorphic: on a cycle whose service delay went through the
    /// deterministic fitter, minimize-then-solve equals
    /// solve-then-project. The fitter's output is an ordinary Erlang
    /// chain, so all downstream machinery (lumping, steady state) must
    /// treat it like one.
    #[test]
    fn lump_commutes_on_fitted_chain(
        mean in 0.5f64..2.0,
        tol in 0.2f64..0.5,
        rest_rate in 0.5f64..3.0,
    ) {
        // Route the service time through the fitter: Deterministic resolves
        // to a concrete Erlang ladder, which we lay out as a Markovian cycle
        // (k service phases, then an exponential rest back to the start).
        let Delay::Erlang { phases, rate } = Delay::deterministic(mean, tol).resolved() else {
            panic!("deterministic delay must resolve to an Erlang chain");
        };
        let mut b = ImcBuilder::new();
        let states: Vec<_> = (0..=phases).map(|_| b.add_state()).collect();
        for w in states.windows(2) {
            b.markovian(w[0], w[1], rate).expect("rate");
        }
        b.markovian(states[phases as usize], states[0], rest_rate).expect("rate");
        let imc = b.build(states[0]);

        let (block, num_blocks, _) = lump_partition(&imc, &LumpOptions::default());
        let conv = to_ctmc(&imc, NondetPolicy::Reject, &[]).expect("purely Markovian");
        let opts = SolveOptions::default();

        let pi = steady_state(&conv.ctmc, &opts).expect("original solves");
        let projected = project(&pi, &conv.state_map, &block, num_blocks);
        let quotient = quotient_ctmc(&imc, &block, num_blocks);
        let pi_q = steady_state(&quotient, &opts).expect("quotient solves");

        for (b, (got, want)) in projected.iter().zip(&pi_q).enumerate() {
            prop_assert!((got - want).abs() < 1e-6,
                "block {b}: projected {got} vs quotient {want}");
        }
    }
}

/// The decorated deterministic delay and its explicit `resolved()` Erlang
/// produce the same number of phases end to end (spot check, no proptest:
/// this pins the k chosen for a known mean/tolerance pair).
#[test]
fn fit_orders_are_stable_for_known_tolerances() {
    for (tol, expect_k) in [(0.5, 3), (0.3, 27)] {
        let fit = fit_deterministic(1.0, tol, &FitOptions::default()).expect("fit");
        assert_eq!(fit.k, expect_k, "tol {tol}: {fit}");
        assert!(fit.tolerance_met);
    }
    // Tight tolerance: error ~ Phi(-0.1*sqrt(k)) forces k into the hundreds.
    let tight = fit_deterministic(1.0, 0.1, &FitOptions::default()).expect("fit");
    assert!(tight.k > 100, "tol 0.1 needs a deep chain, got k={}", tight.k);
    assert!(tight.tolerance_met);
}
