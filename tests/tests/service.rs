//! End-to-end tests of the evaluation service: a real `TcpListener` on an
//! ephemeral port, concurrent raw-socket clients, cache verification via
//! `/v1/metrics`, byte-identical determinism across server configurations,
//! and graceful drain.

use multival_svc::json::{parse, Json};
use multival_svc::server::{serve, ServeStats, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

fn config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        queue_cap: 256,
        cache_capacity: 64,
        cache_dir: None,
        mc_workers: 1,
    }
}

/// One blocking HTTP exchange over a fresh connection.
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: svc\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("write request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line: {raw}"));
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_owned()).unwrap_or_default();
    (status, body)
}

/// Submits a job and polls it to completion, returning the final
/// `GET /v1/jobs/{id}` body.
fn run_job(addr: SocketAddr, request: &str) -> String {
    let (status, body) = http(addr, "POST", "/v1/jobs", request);
    assert!(status == 200 || status == 202, "submit failed: {status} {body}");
    let id = parse(&body)
        .expect("submit response is JSON")
        .get("id")
        .and_then(Json::as_num)
        .expect("submit response has id") as u64;
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, body) = http(addr, "GET", &format!("/v1/jobs/{id}"), "");
        assert_eq!(status, 200, "{body}");
        let state = parse(&body)
            .expect("status body is JSON")
            .get("status")
            .and_then(|s| s.as_str().map(str::to_owned))
            .expect("status field");
        match state.as_str() {
            "done" | "failed" => return body,
            _ if Instant::now() > deadline => panic!("job {id} stuck in `{state}`"),
            _ => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

const EXPLORE: &str = r#"{"kind":"explore","model":{"builtin":"xstream_pipeline"}}"#;
const CHECK: &str = r#"{"kind":"check","model":{"builtin":"faust_single_packet"},"formula":"mu X. <true> true or <true> X"}"#;
const SIMULATE: &str = r#"{"kind":"simulate","model":{"builtin":"xstream_pipeline"},"rates":{"push":1,"xfer":4,"pop":2,"credit":8},"horizon":20,"trajectories":256}"#;

#[test]
fn concurrent_clients_zero_drops_and_cache_hits() {
    let handle = serve(&config()).expect("server starts");
    let addr = handle.addr();

    let (status, body) = http(addr, "GET", "/v1/healthz", "");
    assert_eq!((status, body.as_str()), (200, "{\"status\":\"ok\"}"));

    // Twelve concurrent clients, each running one of the three case-study
    // jobs twice: 24 jobs, 8 distinct-first submissions at most — the rest
    // must be answered from the cache.
    let requests = [EXPLORE, CHECK, SIMULATE];
    let bodies: Vec<(usize, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..12)
            .map(|i| {
                scope.spawn(move || {
                    let req = requests[i % requests.len()];
                    (i % requests.len(), run_job(addr, req), run_job(addr, req))
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| {
                let (kind, a, b) = h.join().expect("client thread");
                [(kind, a), (kind, b)]
            })
            .collect()
    });

    // Every job finished (zero drops), and all bodies of the same request
    // are byte-identical whether computed or cached.
    assert_eq!(bodies.len(), 24);
    for kind in 0..requests.len() {
        let of_kind: Vec<&str> =
            bodies.iter().filter(|(k, _)| *k == kind).map(|(_, b)| b.as_str()).collect();
        assert_eq!(of_kind.len(), 8);
        assert!(
            of_kind.iter().all(|b| *b == of_kind[0]),
            "bodies diverge for request {kind}: {of_kind:?}"
        );
        assert!(of_kind[0].contains("\"status\":\"done\""), "{}", of_kind[0]);
    }

    // The metrics endpoint must show the resubmissions as cache hits.
    let (status, body) = http(addr, "GET", "/v1/metrics", "");
    assert_eq!(status, 200);
    let metrics = parse(&body).expect("metrics JSON");
    let jobs = metrics.get("jobs").expect("jobs section");
    let done = jobs.get("done").and_then(Json::as_num).expect("done");
    let rejected = jobs.get("rejected").and_then(Json::as_num).expect("rejected");
    assert_eq!(done, 24.0, "{body}");
    assert_eq!(rejected, 0.0, "{body}");
    let cache = metrics.get("cache").expect("cache section");
    let hits = cache.get("mem_hits").and_then(Json::as_num).expect("mem_hits");
    // Identical jobs submitted concurrently may race the first result into
    // the cache (in-flight duplicates are not coalesced), but every
    // client's *second* submission runs after its first finished and must
    // be a memory hit: at least 12 of the 24 jobs.
    assert!(hits >= 12.0, "resubmissions must be served from cache: {body}");

    let stats: ServeStats = handle.shutdown_and_drain();
    assert_eq!(stats.accepted, 24);
    assert_eq!(stats.done, 24);
    assert_eq!(stats.failed, 0);
}

#[test]
fn reduce_jobs_are_cached_and_byte_identical() {
    let handle = serve(&config()).expect("server starts");
    let addr = handle.addr();

    let chain = "process Gen[a, m] := a; m; Gen[a, m] endproc
         process Buf[m, n] := m; n; Buf[m, n] endproc
         process Sink[n, b] := n; b; Sink[n, b] endproc
         behaviour hide m, n in ( Gen[a, m] |[m]| ( Buf[m, n] |[n]| Sink[n, b] ) )";
    let request =
        format!(r#"{{"kind":"reduce","model":{{"source":{src}}}}}"#, src = Json::str(chain));

    let first = run_job(addr, &request);
    assert!(first.contains("\"status\":\"done\""), "{first}");
    assert!(first.contains("\"peak_states\":"), "{first}");
    assert!(first.contains("\"stages\":"), "{first}");

    // The same request again must be answered from the cache, byte for
    // byte.
    let second = run_job(addr, &request);
    assert_eq!(first, second, "cached reduce body must be byte-identical");
    let (status, body) = http(addr, "GET", "/v1/metrics", "");
    assert_eq!(status, 200);
    let metrics = parse(&body).expect("metrics JSON");
    let hits = metrics
        .get("cache")
        .and_then(|c| c.get("mem_hits"))
        .and_then(Json::as_num)
        .expect("mem_hits");
    assert!(hits >= 1.0, "second submission must hit the cache: {body}");

    let _ = handle.shutdown_and_drain();
}

#[test]
fn responses_are_byte_identical_across_configurations() {
    // Same requests against two servers with different worker counts and
    // Monte-Carlo pool sizes: the bodies must match byte for byte.
    let reference = {
        let handle = serve(&config()).expect("server starts");
        let bodies: Vec<String> =
            [EXPLORE, CHECK, SIMULATE].iter().map(|r| run_job(handle.addr(), r)).collect();
        let _ = handle.shutdown_and_drain();
        bodies
    };
    let other_config = ServerConfig { workers: 4, mc_workers: 4, cache_capacity: 1, ..config() };
    let handle = serve(&other_config).expect("server starts");
    for (i, request) in [EXPLORE, CHECK, SIMULATE].iter().enumerate() {
        let body = run_job(handle.addr(), request);
        assert_eq!(body, reference[i], "request {i} diverged across configurations");
    }
    let _ = handle.shutdown_and_drain();
}

#[test]
fn error_paths_map_to_http_statuses() {
    let handle = serve(&config()).expect("server starts");
    let addr = handle.addr();

    let (status, body) = http(addr, "POST", "/v1/jobs", "{not json");
    assert_eq!(status, 400, "{body}");
    let (status, body) = http(addr, "POST", "/v1/jobs", r#"{"kind":"explore"}"#);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("model"), "{body}");
    let (status, _) = http(addr, "GET", "/v1/jobs/424242", "");
    assert_eq!(status, 404);
    let (status, _) = http(addr, "GET", "/nope", "");
    assert_eq!(status, 404);
    let (status, _) = http(addr, "PUT", "/v1/jobs/1", "");
    assert_eq!(status, 405);

    // A job that fails (unparsable model) reports `failed`, not a hang.
    let body = run_job(addr, r#"{"kind":"explore","model":{"source":"behaviour ;;;"}}"#);
    assert!(body.contains("\"status\":\"failed\""), "{body}");

    // An uploaded `.aut` model works end to end.
    let body = run_job(
        addr,
        r#"{"kind":"explore","model":{"aut":"des (0, 2, 2)\n(0, \"a\", 1)\n(1, \"b\", 0)\n"}}"#,
    );
    assert!(body.contains("\"states\":2"), "{body}");

    let _ = handle.shutdown_and_drain();
}

#[test]
fn shutdown_drains_accepted_jobs() {
    let handle = serve(&ServerConfig { workers: 1, ..config() }).expect("server starts");
    let addr = handle.addr();
    // Queue several jobs on a single worker and shut down immediately:
    // drain must finish them all.
    let mut accepted = 0usize;
    for seed in 0..5 {
        let (status, _) = http(
            addr,
            "POST",
            "/v1/jobs",
            &format!(
                r#"{{"kind":"explore","model":{{"builtin":"xstream_pipeline"}},"seed":{seed}}}"#
            ),
        );
        if status == 200 || status == 202 {
            accepted += 1;
        }
    }
    assert_eq!(accepted, 5, "queue_cap 256 must accept all five");
    let stats = handle.shutdown_and_drain();
    assert_eq!(stats.accepted, 5);
    assert_eq!(stats.done, 5, "drain must finish every accepted job");
    assert_eq!(stats.failed, 0);
}
