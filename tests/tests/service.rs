//! End-to-end tests of the evaluation service: a real `TcpListener` on an
//! ephemeral port, concurrent raw-socket clients, cache verification via
//! `/v1/metrics`, byte-identical determinism across server configurations,
//! and graceful drain.

use multival_svc::json::{parse, Json};
use multival_svc::server::{serve, ServeStats, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

fn config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        queue_cap: 256,
        cache_capacity: 64,
        cache_dir: None,
        mc_workers: 1,
        event_threads: 2,
        journal_dir: None,
        read_deadline: Duration::from_secs(10),
    }
}

/// One blocking HTTP exchange over a fresh connection, returning the raw
/// response text (status line, headers, body).
fn http_raw(addr: SocketAddr, method: &str, path: &str, body: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: svc\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("write request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    raw
}

/// One blocking HTTP exchange over a fresh connection.
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let raw = http_raw(addr, method, path, body);
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line: {raw}"));
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_owned()).unwrap_or_default();
    (status, body)
}

/// Reads one numeric counter out of a parsed `/v1/metrics` body.
fn metric(metrics: &Json, section: &str, name: &str) -> f64 {
    metrics
        .get(section)
        .and_then(|s| s.get(name))
        .and_then(Json::as_num)
        .unwrap_or_else(|| panic!("metrics field {section}.{name} missing"))
}

/// Submits a job, asserting acceptance; returns its id.
fn submit_job(addr: SocketAddr, request: &str) -> u64 {
    let (status, body) = http(addr, "POST", "/v1/jobs", request);
    assert!(status == 200 || status == 202, "submit failed: {status} {body}");
    parse(&body)
        .expect("submit response is JSON")
        .get("id")
        .and_then(Json::as_num)
        .expect("submit response has id") as u64
}

/// Polls one job until it reaches a terminal state, returning the final
/// `GET /v1/jobs/{id}` body.
fn poll_job(addr: SocketAddr, id: u64) -> String {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, body) = http(addr, "GET", &format!("/v1/jobs/{id}"), "");
        assert_eq!(status, 200, "{body}");
        let state = parse(&body)
            .expect("status body is JSON")
            .get("status")
            .and_then(|s| s.as_str().map(str::to_owned))
            .expect("status field");
        match state.as_str() {
            "done" | "failed" => return body,
            _ if Instant::now() > deadline => panic!("job {id} stuck in `{state}`"),
            _ => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Submits a job and polls it to completion, returning the final
/// `GET /v1/jobs/{id}` body.
fn run_job(addr: SocketAddr, request: &str) -> String {
    let id = submit_job(addr, request);
    poll_job(addr, id)
}

/// Polls until the job reports `running` (or panics after the deadline).
fn wait_running(addr: SocketAddr, id: u64) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (_, body) = http(addr, "GET", &format!("/v1/jobs/{id}"), "");
        if body.contains("\"status\":\"running\"") {
            return;
        }
        assert!(
            body.contains("\"status\":\"queued\""),
            "job {id} terminated before it was seen running: {body}"
        );
        assert!(Instant::now() < deadline, "job {id} never started running: {body}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

const EXPLORE: &str = r#"{"kind":"explore","model":{"builtin":"xstream_pipeline"}}"#;
const CHECK: &str = r#"{"kind":"check","model":{"builtin":"faust_single_packet"},"formula":"mu X. <true> true or <true> X"}"#;
const SIMULATE: &str = r#"{"kind":"simulate","model":{"builtin":"xstream_pipeline"},"rates":{"push":1,"xfer":4,"pop":2,"credit":8},"horizon":20,"trajectories":256}"#;

#[test]
fn concurrent_clients_zero_drops_and_cache_hits() {
    let handle = serve(&config()).expect("server starts");
    let addr = handle.addr();

    let (status, body) = http(addr, "GET", "/v1/healthz", "");
    assert_eq!((status, body.as_str()), (200, "{\"status\":\"ok\"}"));

    // Twelve concurrent clients, each running one of the three case-study
    // jobs twice: 24 jobs, 8 distinct-first submissions at most — the rest
    // must be answered from the cache.
    let requests = [EXPLORE, CHECK, SIMULATE];
    let bodies: Vec<(usize, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..12)
            .map(|i| {
                scope.spawn(move || {
                    let req = requests[i % requests.len()];
                    (i % requests.len(), run_job(addr, req), run_job(addr, req))
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| {
                let (kind, a, b) = h.join().expect("client thread");
                [(kind, a), (kind, b)]
            })
            .collect()
    });

    // Every job finished (zero drops), and all bodies of the same request
    // are byte-identical whether computed or cached.
    assert_eq!(bodies.len(), 24);
    for kind in 0..requests.len() {
        let of_kind: Vec<&str> =
            bodies.iter().filter(|(k, _)| *k == kind).map(|(_, b)| b.as_str()).collect();
        assert_eq!(of_kind.len(), 8);
        assert!(
            of_kind.iter().all(|b| *b == of_kind[0]),
            "bodies diverge for request {kind}: {of_kind:?}"
        );
        assert!(of_kind[0].contains("\"status\":\"done\""), "{}", of_kind[0]);
    }

    // The metrics endpoint must show the resubmissions as cache hits.
    let (status, body) = http(addr, "GET", "/v1/metrics", "");
    assert_eq!(status, 200);
    let metrics = parse(&body).expect("metrics JSON");
    let jobs = metrics.get("jobs").expect("jobs section");
    let done = jobs.get("done").and_then(Json::as_num).expect("done");
    let rejected = jobs.get("rejected").and_then(Json::as_num).expect("rejected");
    assert_eq!(done, 24.0, "{body}");
    assert_eq!(rejected, 0.0, "{body}");
    // Identical jobs submitted concurrently coalesce behind one in-flight
    // evaluation; every client's *second* submission runs after its first
    // finished and is served from the cache (or coalesces behind a twin
    // that is still running). Either way nothing evaluates twice: at most
    // one evaluation per distinct request.
    let hits = metric(&metrics, "cache", "mem_hits");
    let coalesced = metric(&metrics, "jobs", "coalesced");
    assert!(hits + coalesced >= 12.0, "resubmissions must be cache-served or coalesced: {body}");
    let evaluated = metric(&metrics, "jobs", "evaluated");
    assert!(evaluated <= 3.0, "at most one evaluation per distinct request: {body}");

    let stats: ServeStats = handle.shutdown_and_drain();
    assert_eq!(stats.accepted, 24);
    assert_eq!(stats.done, 24);
    assert_eq!(stats.failed, 0);
}

#[test]
fn reduce_jobs_are_cached_and_byte_identical() {
    let handle = serve(&config()).expect("server starts");
    let addr = handle.addr();

    let chain = "process Gen[a, m] := a; m; Gen[a, m] endproc
         process Buf[m, n] := m; n; Buf[m, n] endproc
         process Sink[n, b] := n; b; Sink[n, b] endproc
         behaviour hide m, n in ( Gen[a, m] |[m]| ( Buf[m, n] |[n]| Sink[n, b] ) )";
    let request =
        format!(r#"{{"kind":"reduce","model":{{"source":{src}}}}}"#, src = Json::str(chain));

    let first = run_job(addr, &request);
    assert!(first.contains("\"status\":\"done\""), "{first}");
    assert!(first.contains("\"peak_states\":"), "{first}");
    assert!(first.contains("\"stages\":"), "{first}");

    // The same request again must be answered from the cache, byte for
    // byte.
    let second = run_job(addr, &request);
    assert_eq!(first, second, "cached reduce body must be byte-identical");
    let (status, body) = http(addr, "GET", "/v1/metrics", "");
    assert_eq!(status, 200);
    let metrics = parse(&body).expect("metrics JSON");
    let hits = metrics
        .get("cache")
        .and_then(|c| c.get("mem_hits"))
        .and_then(Json::as_num)
        .expect("mem_hits");
    assert!(hits >= 1.0, "second submission must hit the cache: {body}");

    let _ = handle.shutdown_and_drain();
}

#[test]
fn responses_are_byte_identical_across_configurations() {
    // Same requests against servers with different worker counts,
    // Monte-Carlo pool sizes, and event-thread counts: the bodies must
    // match byte for byte.
    let reference = {
        let handle = serve(&ServerConfig { event_threads: 1, ..config() }).expect("server starts");
        let bodies: Vec<String> =
            [EXPLORE, CHECK, SIMULATE].iter().map(|r| run_job(handle.addr(), r)).collect();
        let _ = handle.shutdown_and_drain();
        bodies
    };
    let other_config =
        ServerConfig { workers: 4, mc_workers: 4, cache_capacity: 1, event_threads: 8, ..config() };
    let handle = serve(&other_config).expect("server starts");
    for (i, request) in [EXPLORE, CHECK, SIMULATE].iter().enumerate() {
        let body = run_job(handle.addr(), request);
        assert_eq!(body, reference[i], "request {i} diverged across configurations");
    }
    let _ = handle.shutdown_and_drain();
}

#[test]
fn error_paths_map_to_http_statuses() {
    let handle = serve(&config()).expect("server starts");
    let addr = handle.addr();

    let (status, body) = http(addr, "POST", "/v1/jobs", "{not json");
    assert_eq!(status, 400, "{body}");
    let (status, body) = http(addr, "POST", "/v1/jobs", r#"{"kind":"explore"}"#);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("model"), "{body}");
    let (status, _) = http(addr, "GET", "/v1/jobs/424242", "");
    assert_eq!(status, 404);
    let (status, _) = http(addr, "GET", "/nope", "");
    assert_eq!(status, 404);
    let (status, _) = http(addr, "PUT", "/v1/jobs/1", "");
    assert_eq!(status, 405);

    // A job that fails (unparsable model) reports `failed`, not a hang.
    let body = run_job(addr, r#"{"kind":"explore","model":{"source":"behaviour ;;;"}}"#);
    assert!(body.contains("\"status\":\"failed\""), "{body}");

    // An uploaded `.aut` model works end to end.
    let body = run_job(
        addr,
        r#"{"kind":"explore","model":{"aut":"des (0, 2, 2)\n(0, \"a\", 1)\n(1, \"b\", 0)\n"}}"#,
    );
    assert!(body.contains("\"states\":2"), "{body}");

    let _ = handle.shutdown_and_drain();
}

#[test]
fn shutdown_drains_accepted_jobs() {
    let handle = serve(&ServerConfig { workers: 1, ..config() }).expect("server starts");
    let addr = handle.addr();
    // Queue several jobs on a single worker and shut down immediately:
    // drain must finish them all.
    let mut accepted = 0usize;
    for seed in 0..5 {
        let (status, _) = http(
            addr,
            "POST",
            "/v1/jobs",
            &format!(
                r#"{{"kind":"explore","model":{{"builtin":"xstream_pipeline"}},"seed":{seed}}}"#
            ),
        );
        if status == 200 || status == 202 {
            accepted += 1;
        }
    }
    assert_eq!(accepted, 5, "queue_cap 256 must accept all five");
    let stats = handle.shutdown_and_drain();
    assert_eq!(stats.accepted, 5);
    assert_eq!(stats.done, 5, "drain must finish every accepted job");
    assert_eq!(stats.failed, 0);
}

/// A deliberately slow, distinct job that pins one worker for over a
/// second: five interleaved bounded queues explore 9^5 = 59049 states
/// (a simulate job is no good here — the confidence-interval stopping
/// rule converges within a few batches regardless of the trajectory cap).
fn blocker_request(seed: u64) -> String {
    let source = "process Queue[enq, deq](n: int 0..8, c: int 1..8) := \
                  [n < c] -> enq; Queue[enq, deq](n + 1, c) \
                  [] [n > 0] -> deq; Queue[enq, deq](n - 1, c) endproc \
                  behaviour Queue[a, b](0, 8) ||| Queue[c, d](0, 8) ||| Queue[e, f](0, 8) \
                  ||| Queue[g, h](0, 8) ||| Queue[i, j](0, 8)";
    format!(r#"{{"kind":"explore","model":{{"source":"{source}"}},"seed":{seed}}}"#)
}

#[test]
fn concurrent_identical_submissions_coalesce_into_one_evaluation() {
    let handle = serve(&ServerConfig { workers: 1, ..config() }).expect("server starts");
    let addr = handle.addr();
    // Pin the single worker, so the eight identical submissions below all
    // land while their twin evaluation cannot have finished.
    let blocker = submit_job(addr, &blocker_request(99));
    wait_running(addr, blocker);

    let ids: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> =
            (0..8).map(|_| scope.spawn(move || submit_job(addr, EXPLORE))).collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    let bodies: Vec<String> = ids.iter().map(|&id| poll_job(addr, id)).collect();
    assert!(bodies.iter().all(|b| b.contains("\"status\":\"done\"")), "{bodies:?}");
    assert!(bodies.iter().all(|b| *b == bodies[0]), "identical bodies: {bodies:?}");

    let (_, body) = http(addr, "GET", "/v1/metrics", "");
    let metrics = parse(&body).expect("metrics JSON");
    assert_eq!(metric(&metrics, "jobs", "coalesced"), 7.0, "{body}");
    assert_eq!(
        metric(&metrics, "jobs", "evaluated"),
        2.0,
        "blocker + exactly one shared evaluation: {body}"
    );

    let _ = poll_job(addr, blocker);
    let stats = handle.shutdown_and_drain();
    assert_eq!(stats.coalesced, 7);
    assert_eq!(stats.done, 9);
}

#[test]
fn slowloris_and_oversized_requests_are_rejected() {
    let handle = serve(&ServerConfig { read_deadline: Duration::from_millis(300), ..config() })
        .expect("server starts");
    let addr = handle.addr();

    // A stalled client (headers promise a body that never comes) gets 408
    // within the read deadline instead of holding a connection slot.
    let mut stalled = TcpStream::connect(addr).expect("connect");
    stalled.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
    write!(stalled, "POST /v1/jobs HTTP/1.1\r\nContent-Length: 5\r\n\r\n").expect("write");
    let mut raw = String::new();
    stalled.read_to_string(&mut raw).expect("read");
    assert!(raw.starts_with("HTTP/1.1 408 "), "{raw}");

    // A body larger than the hard cap is refused as soon as the header
    // arrives, without reading the body.
    let mut big = TcpStream::connect(addr).expect("connect");
    big.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
    write!(big, "POST /v1/jobs HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n").expect("write");
    let mut raw = String::new();
    big.read_to_string(&mut raw).expect("read");
    assert!(raw.starts_with("HTTP/1.1 413 "), "{raw}");

    // The event loop kept its slots: a healthy request still round-trips.
    let (status, body) = http(addr, "GET", "/v1/healthz", "");
    assert_eq!((status, body.as_str()), (200, "{\"status\":\"ok\"}"));
    let _ = handle.shutdown_and_drain();
}

#[test]
fn backpressure_answers_429_with_retry_after() {
    let handle =
        serve(&ServerConfig { workers: 1, queue_cap: 1, ..config() }).expect("server starts");
    let addr = handle.addr();
    // Distinct slow jobs (varying seeds defeat both the cache and
    // coalescing) flood a queue of one: a rejection must surface quickly.
    let mut rejection = None;
    for seed in 0..32u64 {
        let raw = http_raw(addr, "POST", "/v1/jobs", &blocker_request(seed));
        if raw.starts_with("HTTP/1.1 429 ") {
            rejection = Some(raw);
            break;
        }
    }
    let raw = rejection.expect("a bounded queue of 1 must reject under a flood");
    assert!(raw.contains("Retry-After: 1\r\n"), "429 carries Retry-After: {raw}");
    assert!(raw.contains("\"error\""), "structured error body: {raw}");
    assert!(raw.contains("\"retry_after_secs\""), "structured error body: {raw}");

    let (_, body) = http(addr, "GET", "/v1/metrics", "");
    let metrics = parse(&body).expect("metrics JSON");
    assert!(metric(&metrics, "jobs", "rejected_queue_full") >= 1.0, "{body}");
    assert_eq!(
        metric(&metrics, "jobs", "rejected"),
        metric(&metrics, "jobs", "rejected_queue_full")
            + metric(&metrics, "jobs", "rejected_shutdown"),
        "{body}"
    );
    let _ = handle.shutdown_and_drain();
}

#[test]
fn cancel_races_mid_evaluation_and_coalesced() {
    let handle = serve(&ServerConfig { workers: 1, ..config() }).expect("server starts");
    let addr = handle.addr();

    // DELETE while the job is mid-evaluation: not cancellable, and the
    // evaluation still runs to a complete (never partial) result.
    let running = submit_job(addr, &blocker_request(41));
    wait_running(addr, running);
    let (status, body) = http(addr, "DELETE", &format!("/v1/jobs/{running}"), "");
    assert_eq!(status, 200);
    assert!(body.contains("\"cancelled\":false"), "{body}");
    let body = poll_job(addr, running);
    assert!(body.contains("\"status\":\"done\""), "{body}");
    assert!(body.contains("\"result\":"), "complete result, never partial: {body}");

    // DELETE a coalesced follower: only that follower detaches; the shared
    // evaluation completes for the primary and the remaining follower.
    let blocker = submit_job(addr, &blocker_request(42));
    wait_running(addr, blocker);
    let primary = submit_job(addr, EXPLORE);
    let follower = submit_job(addr, EXPLORE);
    let keeper = submit_job(addr, EXPLORE);
    let (status, body) = http(addr, "DELETE", &format!("/v1/jobs/{follower}"), "");
    assert_eq!(status, 200);
    assert!(body.contains("\"cancelled\":true"), "{body}");
    let a = poll_job(addr, primary);
    let b = poll_job(addr, keeper);
    assert!(a.contains("\"status\":\"done\""), "{a}");
    assert_eq!(a, b, "survivors share one byte-identical result");
    let (status, body) = http(addr, "GET", &format!("/v1/jobs/{follower}"), "");
    assert_eq!(status, 200);
    assert!(body.contains("\"status\":\"cancelled\""), "{body}");
    assert!(!body.contains("\"result\""), "a cancelled follower never gets a result: {body}");

    let _ = poll_job(addr, blocker);
    let _ = handle.shutdown_and_drain();
}

#[test]
fn journal_restart_serves_previous_results() {
    let dir = std::env::temp_dir().join("multival-svc-e2e-journal");
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = ServerConfig { journal_dir: Some(dir.clone()), ..config() };

    let (id, first_body) = {
        let handle = serve(&cfg).expect("server starts");
        let id = submit_job(handle.addr(), EXPLORE);
        let body = poll_job(handle.addr(), id);
        assert!(body.contains("\"status\":\"done\""), "{body}");
        let _ = handle.shutdown_and_drain();
        (id, body)
    };

    // A fresh process over the same journal dir serves the same job id
    // with a byte-identical body, without re-evaluating anything.
    let handle = serve(&cfg).expect("server restarts over the journal");
    let addr = handle.addr();
    let (status, body) = http(addr, "GET", &format!("/v1/jobs/{id}"), "");
    assert_eq!(status, 200);
    assert_eq!(body, first_body, "byte-identical across the restart");

    let (_, body) = http(addr, "GET", "/v1/metrics", "");
    let metrics = parse(&body).expect("metrics JSON");
    assert!(metric(&metrics, "jobs", "recovered") >= 1.0, "{body}");
    assert_eq!(metric(&metrics, "jobs", "evaluated"), 0.0, "nothing re-evaluates: {body}");
    assert!(metrics.get("journal").is_some(), "journal section present: {body}");

    // New submissions keep working and ids continue past the replayed ones.
    let fresh = submit_job(addr, EXPLORE);
    assert!(fresh > id, "ids continue after replay");
    let body = poll_job(addr, fresh);
    assert_eq!(body, first_body, "disk-cache hit is byte-identical too");

    let stats = handle.shutdown_and_drain();
    assert!(stats.recovered >= 1);
    let _ = std::fs::remove_dir_all(dir);
}
