//! Cross-crate checks of the parallel state-space engine: randomized
//! specs explored with 1 and 4 worker threads must produce *identical*
//! LTSs (the engine promises bit-identity, which is stronger than the
//! isomorphism the paper's flow needs), and parallel partition refinement
//! must agree with the sequential implementation on the xSTream model.

use multival::lts::equiv::{equivalent, Verdict};
use multival::lts::io::write_aut;
use multival::lts::minimize::{partition_refinement, partition_refinement_with, Equivalence};
use multival::lts::Workers;
use multival::models::xstream::pipeline::{build_monolithic, PipelineConfig};
use multival::pa::{explore_partial, parse_spec, ExploreOptions};
use proptest::prelude::*;

/// Decodes a byte genome into a closed mini-LOTOS behaviour. Every genome
/// decodes to a valid, finite spec, so the strategy never needs rejection
/// sampling; the decoder consumes bytes left to right and bottoms out on
/// `stop` when the budget runs dry.
fn decode_term(bytes: &mut std::slice::Iter<'_, u8>, depth: usize) -> String {
    let gates = ["a", "b", "c"];
    let Some(&op) = bytes.next() else {
        return "stop".to_owned();
    };
    let gate = gates[(op / 8) as usize % 3];
    if depth == 0 {
        return format!("{gate}; stop");
    }
    match op % 6 {
        0 | 1 => format!("{gate}; {}", decode_term(bytes, depth - 1)),
        2 => format!("({} [] {})", decode_term(bytes, depth - 1), decode_term(bytes, depth - 1)),
        3 => format!("({} ||| {})", decode_term(bytes, depth - 1), decode_term(bytes, depth - 1)),
        4 => format!(
            "({} |[{gate}]| {})",
            decode_term(bytes, depth - 1),
            decode_term(bytes, depth - 1)
        ),
        // A data-carrying cyclic process: exercises guards, arithmetic,
        // and value-dependent labels in the parallel derivation workers.
        _ => format!("Cnt[{gate}, {}](0)", gates[(op / 8 + 1) as usize % 3]),
    }
}

fn decode_spec(genome: &[u8]) -> String {
    let mut bytes = genome.iter();
    format!(
        "process Cnt[up, down](n: int 0..5) :=
             [n < 5] -> up; Cnt[up, down](n + 1)
          [] [n > 0] -> down; Cnt[up, down](n - 1)
         endproc
         behaviour {}",
        decode_term(&mut bytes, 3)
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn parallel_exploration_is_identical_on_random_specs(
        genome in prop::collection::vec(0u8..255, 1..24)
    ) {
        let src = decode_spec(&genome);
        let spec = parse_spec(&src).expect("decoder only emits valid specs");
        // Cap low enough to keep runtime sane; a hit must abort both runs
        // identically, so capped cases still assert something useful.
        let options = ExploreOptions::with_max_states(4_000);
        let seq = explore_partial(&spec, &options.clone().with_threads(1));
        let par = explore_partial(&spec, &options.with_threads(4));

        prop_assert_eq!(
            seq.aborted.as_ref().map(ToString::to_string),
            par.aborted.as_ref().map(ToString::to_string),
            "abort outcome diverged on {}", src
        );
        prop_assert_eq!(
            write_aut(&seq.explored.lts),
            write_aut(&par.explored.lts),
            "LTS diverged on {}", src
        );
        // Belt and braces: confirm equivalence through the independent
        // bisimulation checker, not just textual identity.
        if seq.aborted.is_none() {
            prop_assert!(matches!(
                equivalent(&seq.explored.lts, &par.explored.lts, Equivalence::Strong),
                Verdict::Equivalent
            ));
        }
    }
}

#[test]
fn xstream_partition_refinement_parallel_matches_sequential() {
    // Fixed workload (no randomness): the monolithic xSTream pipeline at
    // capacity 4 — the same model the E1/E9 experiments measure.
    let lts =
        build_monolithic(&PipelineConfig { push_capacity: 4, pop_capacity: 4, credits: 4 }).lts;
    for eq in [Equivalence::Strong, Equivalence::Branching] {
        let seq = partition_refinement(&lts, eq);
        for threads in [2usize, 4] {
            let par = partition_refinement_with(&lts, eq, Workers::new(threads));
            assert_eq!(
                seq.num_blocks(),
                par.num_blocks(),
                "block count diverged ({eq:?}, {threads} threads)"
            );
            for s in 0..lts.num_states() as u32 {
                assert_eq!(
                    seq.block(s),
                    par.block(s),
                    "state {s} landed in a different block ({eq:?}, {threads} threads)"
                );
            }
        }
    }
}
