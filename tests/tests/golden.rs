//! Golden regression fixtures for the three case-study pipelines: the
//! functional state space as `.aut` plus a measure snapshot combining the
//! numerical answers with fixed-seed Monte-Carlo estimates. Any drift in
//! exploration order, solver output, or the simulation's random stream
//! shows up as a diff against `tests/data/`.
//!
//! Regenerate after a verified intentional change with
//! `UPDATE_GOLDEN=1 cargo test -p multival-integration --test golden`.

use multival::ctmc::absorb::mean_time_to_target;
use multival::ctmc::steady::{steady_state, SolveOptions};
use multival::ctmc::{McOptions, McRun, McSim, Workers};
use multival::lts::io::{read_blts, write_aut, write_blts};
use multival::lts::pipeline::{monolithic, run_pipeline, Network, PipelineOptions};
use multival::models::common::explore_model;
use multival::models::fame2::benchmark::{
    contended_fabric_bounds, ping_pong_bandwidth, ping_pong_bandwidth_bounds, ping_pong_chain,
    RateConfig,
};
use multival::models::fame2::coherence::Protocol;
use multival::models::fame2::mpi::{MpiConfig, MpiImpl, MpiModel};
use multival::models::fame2::network::ping_pong_network;
use multival::models::fame2::topology::Topology;
use multival::models::faust::noc::{complement_network, single_packet_chain, single_packet_source};
use multival::models::xstream::perf::{
    analyze, explore_pipeline, perf_conversion, throughput_bounds, NocBoundsConfig, PerfConfig,
};
use multival::models::xstream::pipeline::{network as xstream_network, PipelineConfig};
use multival::pa::{explore, parse_spec, ExploreOptions};
use std::fmt::Write as _;
use std::path::PathBuf;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("data").join(name)
}

/// Compares `contents` against the committed fixture, or rewrites the
/// fixture when `UPDATE_GOLDEN=1`.
fn check_golden(name: &str, contents: &str) {
    let path = fixture_path(name);
    if std::env::var("UPDATE_GOLDEN").as_deref() == Ok("1") {
        std::fs::create_dir_all(path.parent().expect("data dir")).expect("mkdir");
        std::fs::write(&path, contents).expect("write fixture");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {name} ({e}); create it with UPDATE_GOLDEN=1"));
    assert_eq!(
        want, contents,
        "golden mismatch for {name}; if the change is intentional and verified, \
         regenerate with UPDATE_GOLDEN=1"
    );
}

/// Binary-fixture variant of [`check_golden`] for `.blts` snapshots, with
/// a decode round-trip so a committed fixture is guaranteed readable.
fn check_golden_blts(name: &str, lts: &multival::lts::Lts) {
    let bytes = write_blts(lts);
    let back = read_blts(&bytes).expect("fresh BLTS bytes decode");
    assert_eq!(write_aut(&back), write_aut(lts), "BLTS round-trip must be exact");
    let path = fixture_path(name);
    if std::env::var("UPDATE_GOLDEN").as_deref() == Ok("1") {
        std::fs::create_dir_all(path.parent().expect("data dir")).expect("mkdir");
        std::fs::write(&path, &bytes).expect("write fixture");
        return;
    }
    let want = std::fs::read(&path)
        .unwrap_or_else(|e| panic!("missing fixture {name} ({e}); create it with UPDATE_GOLDEN=1"));
    assert_eq!(
        want, bytes,
        "golden mismatch for {name}; if the change is intentional and verified, \
         regenerate with UPDATE_GOLDEN=1"
    );
}

/// Fixed-seed simulation options: deterministic across runs, platforms,
/// and thread counts, so the estimates are safe to commit.
fn mc_opts(abs_width: f64) -> McOptions {
    McOptions {
        seed: 42,
        workers: Workers::new(2),
        max_trajectories: 8192,
        abs_width,
        rel_width: 0.0,
        ..McOptions::default()
    }
}

fn fmt_run_scalar(run: &McRun) -> String {
    let e = &run.estimates[0];
    format!("{:.6} ± {:.6} ({} trajectories)", e.mean, e.half_width, run.trajectories)
}

/// xSTream pipeline: recurrent chain, so the measures are steady-state
/// occupancies cross-validated by long-run simulation.
#[test]
fn xstream_pipeline_golden() {
    let cfg = PerfConfig::default();
    let explored = explore_pipeline(&cfg).expect("explores");
    check_golden("xstream_pipeline.aut", &write_aut(&explored.lts));

    let conv = perf_conversion(&cfg).expect("converts");
    let pi = steady_state(&conv.ctmc, &SolveOptions::default()).expect("solves");
    let run = McSim::new(&conv.ctmc).occupancy(300.0, &mc_opts(8e-3));

    let mut snap = String::new();
    let _ = writeln!(snap, "functional states: {}", explored.lts.num_states());
    let _ = writeln!(snap, "ctmc states: {}", conv.ctmc.num_states());
    for (s, p) in pi.iter().enumerate().take(6) {
        let e = &run.estimates[s];
        let _ = writeln!(snap, "state {s}: steady {p:.6}  mc {:.6} ± {:.6}", e.mean, e.half_width);
    }
    let _ = writeln!(snap, "mc trajectories: {}", run.trajectories);
    check_golden("xstream_pipeline.measures.txt", &snap);

    // Acceptance: every simulated occupancy brackets the numerical answer.
    for (s, (e, want)) in run.estimates.iter().zip(&pi).enumerate() {
        assert!(
            (e.mean - want).abs() <= e.half_width + 6e-3,
            "state {s}: mc {} ± {} vs steady {want}",
            e.mean,
            e.half_width
        );
    }
}

/// FAME2 MPI ping-pong: absorbing round trip, so the measure is the mean
/// latency cross-validated by simulated hitting times.
#[test]
fn fame2_ping_pong_golden() {
    let config = MpiConfig {
        topology: Topology::Crossbar(2),
        protocol: Protocol::Msi,
        implementation: MpiImpl::Eager,
        payload: 1,
    };
    let rates = RateConfig::default();
    let explored = explore_model(&MpiModel::ping_pong(config), 4_000_000).expect("explores");
    check_golden("fame2_ping_pong.aut", &write_aut(&explored.lts));

    let chain = ping_pong_chain(&config, &rates).expect("builds chain");
    let latency = mean_time_to_target(&chain.conv.ctmc, &chain.done, &SolveOptions::default())
        .expect("solves");
    let run = McSim::new(&chain.conv.ctmc).hitting_time(&chain.done, 1e4, &mc_opts(5e-3));

    let mut snap = String::new();
    let _ = writeln!(snap, "functional states: {}", chain.functional_states);
    let _ = writeln!(snap, "ctmc states: {}", chain.conv.ctmc.num_states());
    let _ = writeln!(snap, "completion states: {}", chain.done.len());
    let _ = writeln!(snap, "mean latency: {latency:.6}");
    let _ = writeln!(snap, "mc hitting time: {}", fmt_run_scalar(&run));
    check_golden("fame2_ping_pong.measures.txt", &snap);

    let e = &run.estimates[0];
    assert!(
        (e.mean - latency).abs() <= e.half_width + 2e-3,
        "mc {} ± {} vs latency {latency}",
        e.mean,
        e.half_width
    );
}

/// Snapshots a reduction-pipeline run: the resolved order, every stage's
/// product → reduced counts with the gates hidden there, the peak, and the
/// monolithic product it must strictly undercut.
fn pipeline_snapshot(net: &Network) -> (String, multival::lts::Lts) {
    use multival::lts::minimize::Equivalence;
    let run = run_pipeline(net, &PipelineOptions::default());
    assert!(run.complete(), "case-study networks reduce without a budget");
    let mono = monolithic(net, Equivalence::Branching, Workers::sequential());
    assert_eq!(
        write_aut(&run.lts),
        write_aut(&mono.lts),
        "pipeline must agree with the monolithic reference"
    );
    assert!(
        run.peak_states() < mono.product_states,
        "pipeline peak {} must undercut the monolithic product {}",
        run.peak_states(),
        mono.product_states
    );
    let mut snap = String::new();
    let _ = writeln!(snap, "components: {}", net.components().len());
    let names: Vec<&str> = run.order.iter().map(|&i| net.components()[i].0.as_str()).collect();
    let _ = writeln!(snap, "order: {}", names.join(" "));
    for s in &run.stages {
        let hidden = if s.hidden.is_empty() { "-".to_owned() } else { s.hidden.join(",") };
        let _ = writeln!(
            snap,
            "stage {} fold {}: {}/{} -> {}/{} hide {}",
            s.stage,
            s.component,
            s.states_before,
            s.transitions_before,
            s.states_after,
            s.transitions_after,
            hidden
        );
    }
    let _ = writeln!(snap, "peak intermediate states: {}", run.peak_states());
    let _ = writeln!(
        snap,
        "monolithic product: {} states / {} transitions",
        mono.product_states, mono.product_transitions
    );
    let _ = writeln!(
        snap,
        "reduced: {} states / {} transitions",
        run.lts.num_states(),
        run.lts.num_transitions()
    );
    (snap, run.lts)
}

/// Smart reduction over the three case-study networks: the per-stage
/// accounting and the canonical reduced LTSs are golden, and on every
/// network the pipeline's peak stays strictly below the monolithic
/// product (the compositional win the paper's flow rests on).
///
/// The FAUST complement mesh renders to an ~82k-line `.aut`, so its
/// fixture is the compact binary `.blts` plus the SHA-256 of the
/// canonical text render — any drift still fails, without megabytes of
/// committed text.
#[test]
fn reduction_pipeline_golden() {
    let cases: [(&str, Network); 3] = [
        ("xstream_pipeline", xstream_network(&PipelineConfig::default())),
        ("fame2_ping_pong", ping_pong_network(2)),
        ("faust_complement", complement_network()),
    ];
    for (name, net) in cases {
        let (snap, lts) = pipeline_snapshot(&net);
        check_golden(&format!("pipeline_{name}.stages.txt"), &snap);
        if name == "faust_complement" {
            check_golden_blts("pipeline_faust_complement.blts", &lts);
            let digest =
                format!("{}\n", multival_integration::sha256_hex(write_aut(&lts).as_bytes()));
            check_golden("pipeline_faust_complement.aut.sha256", &digest);
        } else {
            check_golden(&format!("pipeline_{name}.aut"), &write_aut(&lts));
        }
    }
}

/// Scheduler-quantified bounds for the two nondeterministic case studies:
/// the xSTream routed pipeline (fast/slow NoC route chosen per transfer)
/// and the FAME2 contended fabric (cache-to-cache flush vs home-memory
/// fetch). Each fixture pins the CTMDP shape and the `[min, max]`
/// interval, plus the deterministic references the endpoints must match —
/// so a regression in the lifting, the uniformization, or the value
/// iteration shows up as a one-line diff.
#[test]
fn scheduler_bounds_golden() {
    // xSTream: the interval endpoints are provably the always-slow and
    // always-fast single-route pipelines.
    let cfg = NocBoundsConfig::default();
    let b = throughput_bounds(&cfg).expect("bounds");
    let slow =
        analyze(&PerfConfig { transfer_rate: cfg.slow_rate, ..cfg.base }).expect("slow pipeline");
    let fast =
        analyze(&PerfConfig { transfer_rate: cfg.fast_rate, ..cfg.base }).expect("fast pipeline");
    let mut snap = String::new();
    let _ = writeln!(
        snap,
        "routed pipeline ctmdp states: {} ({} instant)",
        b.ctmdp_states, b.instant_states
    );
    let _ = writeln!(snap, "throughput bounds: [{:.6}, {:.6}]", b.min, b.max);
    let _ = writeln!(snap, "always-slow pipeline: {:.6}", slow.throughput);
    let _ = writeln!(snap, "always-fast pipeline: {:.6}", fast.throughput);
    check_golden("bounds_xstream.txt", &snap);
    assert!(b.max > b.min + 1e-6, "the routed pipeline must have a genuine spread");
    assert!((b.min - slow.throughput).abs() < 1e-6 && (b.max - fast.throughput).abs() < 1e-6);

    // FAME2: the contended fabric has a genuine spread; the cyclic
    // ping-pong benchmark is confluent, so its interval collapses onto the
    // seed's uniform-policy answer — both facts are part of the fixture.
    let rates = RateConfig::default();
    let fabric = contended_fabric_bounds(&rates, 1).expect("fabric bounds");
    let config = MpiConfig {
        topology: Topology::Crossbar(2),
        protocol: Protocol::Msi,
        implementation: MpiImpl::Eager,
        payload: 1,
    };
    let cyclic = ping_pong_bandwidth_bounds(&config, &rates).expect("cyclic bounds");
    let uniform = ping_pong_bandwidth(&config, &rates).expect("uniform bandwidth");
    let mut snap = String::new();
    let _ = writeln!(
        snap,
        "contended fabric ctmdp states: {} ({} instant)",
        fabric.ctmdp_states, fabric.instant_states
    );
    let _ = writeln!(
        snap,
        "rounds/time bounds: [{:.6}, {:.6}]",
        fabric.min_rounds_per_time, fabric.max_rounds_per_time
    );
    let _ = writeln!(
        snap,
        "cyclic ping-pong ctmdp states: {} ({} instant)",
        cyclic.ctmdp_states, cyclic.instant_states
    );
    let _ = writeln!(
        snap,
        "cyclic ping-pong bounds: [{:.6}, {:.6}]",
        cyclic.min_rounds_per_time, cyclic.max_rounds_per_time
    );
    let _ = writeln!(snap, "cyclic ping-pong uniform: {:.6}", uniform.rounds_per_time);
    check_golden("bounds_fame2.txt", &snap);
    assert!(
        fabric.max_rounds_per_time > fabric.min_rounds_per_time + 1e-6,
        "the fabric arbitration must have a genuine spread"
    );
    assert!(
        (cyclic.max_rounds_per_time - cyclic.min_rounds_per_time).abs() < 1e-9
            && (cyclic.min_rounds_per_time - uniform.rounds_per_time).abs() < 1e-6,
        "the confluent cyclic benchmark must collapse onto the uniform policy"
    );
}

/// FAUST NoC single packet: absorbing delivery, measured as the mean
/// quiescence time cross-validated by simulated hitting times.
#[test]
fn faust_single_packet_golden() {
    let (dest, link_rate, local_rate) = (3, 4.0, 20.0);
    let spec = parse_spec(&single_packet_source(dest)).expect("parses");
    let explored = explore(&spec, &ExploreOptions::default()).expect("explores");
    check_golden("faust_single_packet.aut", &write_aut(&explored.lts));

    let (conv, done) = single_packet_chain(dest, link_rate, local_rate).expect("builds chain");
    let latency = mean_time_to_target(&conv.ctmc, &done, &SolveOptions::default()).expect("solves");
    let run = McSim::new(&conv.ctmc).hitting_time(&done, 1e4, &mc_opts(2e-2));

    let mut snap = String::new();
    let _ = writeln!(snap, "functional states: {}", explored.lts.num_states());
    let _ = writeln!(snap, "ctmc states: {}", conv.ctmc.num_states());
    let _ = writeln!(snap, "delivery states: {}", done.len());
    let _ = writeln!(snap, "mean quiescence time: {latency:.6}");
    let _ = writeln!(snap, "mc hitting time: {}", fmt_run_scalar(&run));
    check_golden("faust_single_packet.measures.txt", &snap);

    let e = &run.estimates[0];
    assert!(
        (e.mean - latency).abs() <= e.half_width + 5e-3,
        "mc {} ± {} vs latency {latency}",
        e.mean,
        e.half_width
    );
}
