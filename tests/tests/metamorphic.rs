//! Metamorphic properties of the numerical engines: solving commutes with
//! lumping (minimize-then-solve equals solve-then-project), the CSR
//! and dense uniformization/steady-state kernels agree on random CTMCs,
//! and scheduler bounds sandwich every concrete resolution of random
//! nondeterministic models (with proptest shrinking to a minimal witness).

use multival::ctmc::dense::{steady_state_dense, transient_dense};
use multival::ctmc::steady::{steady_state, SolveOptions};
use multival::ctmc::transient::{transient, TransientOptions};
use multival::ctmc::{Ctmc, CtmcBuilder};
use multival::flow::Flow;
use multival::imc::lump::{lump_partition, LumpOptions};
use multival::imc::to_ctmc::to_ctmc;
use multival::imc::{Imc, ImcBuilder, NondetPolicy};
use multival::lts::equiv::lts_from_triples;
use proptest::prelude::*;
use std::collections::{BTreeMap, HashMap};

/// Strategy: a purely-Markovian IMC with up to `max_states` states, every
/// state reachable through a spanning chain. Rates come from a small
/// discrete set so random instances actually contain lumpable symmetry.
fn arb_markov_imc(max_states: usize) -> impl Strategy<Value = Imc> {
    let rates = prop::sample::select(vec![0.5f64, 1.0, 2.0]);
    (3..=max_states).prop_flat_map(move |n| {
        let chain = prop::collection::vec(rates.clone(), n - 1);
        let extra = prop::collection::vec((0..n as u32, 0..n as u32, rates.clone()), 0..(2 * n));
        (chain, extra).prop_map(move |(chain, extra)| {
            let mut b = ImcBuilder::new();
            let states: Vec<_> = (0..n).map(|_| b.add_state()).collect();
            for (i, &r) in chain.iter().enumerate() {
                b.markovian(states[i], states[i + 1], r).expect("rate");
            }
            for (s, t, r) in extra {
                if s != t {
                    b.markovian(s, t, r).expect("rate");
                }
            }
            b.build(states[0])
        })
    })
}

/// Strategy: a random CTMC with a spanning chain (so every state is
/// reachable) and continuous rates.
fn arb_ctmc(max_states: usize) -> impl Strategy<Value = Ctmc> {
    (2..=max_states).prop_flat_map(move |n| {
        let chain = prop::collection::vec(0.1f64..5.0, n - 1);
        let extra = prop::collection::vec((0..n, 0..n, 0.1f64..5.0), 0..(2 * n));
        (chain, extra).prop_map(move |(chain, extra)| {
            let mut b = CtmcBuilder::new(n);
            for (i, &r) in chain.iter().enumerate() {
                b.rate(i, i + 1, r).expect("rate");
            }
            for (s, t, r) in extra {
                if s != t {
                    b.rate(s, t, r).expect("rate");
                }
            }
            b.build().expect("ctmc")
        })
    })
}

/// Builds the lumped quotient CTMC from a partition: block-level rates read
/// off one representative per block (lumpability guarantees every member
/// gives the same numbers), initial mass on the initial state's block.
fn quotient_ctmc(imc: &Imc, block: &[u32], num_blocks: u32) -> Ctmc {
    let mut b = CtmcBuilder::new(num_blocks as usize);
    let mut seen = vec![false; num_blocks as usize];
    for s in 0..imc.num_states() {
        let bs = block[s] as usize;
        if seen[bs] {
            continue;
        }
        seen[bs] = true;
        let mut rates: BTreeMap<u32, f64> = BTreeMap::new();
        for m in imc.markovian_from(s as u32) {
            *rates.entry(block[m.target as usize]).or_insert(0.0) += m.rate;
        }
        for (tb, r) in rates {
            if tb as usize != bs {
                b.rate(bs, tb as usize, r).expect("rate");
            }
        }
    }
    let init_block = block[imc.initial() as usize] as usize;
    b.set_initial(vec![(init_block, 1.0)]).expect("initial");
    b.build().expect("quotient")
}

/// Sums a per-state distribution on the original chain into per-block mass,
/// routing through the IMC→CTMC state map.
fn project(dist: &[f64], state_map: &[Option<usize>], block: &[u32], num_blocks: u32) -> Vec<f64> {
    let mut out = vec![0.0; num_blocks as usize];
    for (s, m) in state_map.iter().enumerate() {
        if let Some(cs) = m {
            out[block[s] as usize] += dist[*cs];
        }
    }
    out
}

type Triple = (u32, &'static str, u32);

/// Strategy: a random nondeterministic model as LTS triples — a Markovian
/// spanning cycle over rated gates plus strictly forward internal edges
/// (`choice` hidden, `tick` probed), so τ-cycles cannot arise and every
/// scheduler keeps the whole cycle live. Shrinking drops extra edges and
/// states toward a minimal counterexample.
fn arb_nondet_triples() -> impl Strategy<Value = Vec<Triple>> {
    let gates = prop::sample::select(vec!["ga", "gb", "gc"]);
    (4..=7u32).prop_flat_map(move |n| {
        let cycle = prop::collection::vec(gates.clone(), n as usize);
        let extra = prop::collection::vec((0..n, 0..n, gates.clone()), 0..n as usize);
        let internal = prop::collection::vec((0..n - 1, 0..n, 0..2u32), 1..=n as usize);
        (cycle, extra, internal).prop_map(move |(cycle, extra, internal)| {
            let mut t: Vec<Triple> = Vec::new();
            for (i, g) in cycle.iter().take(n as usize - 1).enumerate() {
                t.push((i as u32, g, i as u32 + 1));
            }
            t.push((n - 1, cycle[n as usize - 1], 0));
            for (a, b, g) in extra {
                if a != b {
                    t.push((a, g, b));
                }
            }
            for (a, off, tick) in internal {
                let b = a + 1 + off % (n - 1 - a);
                t.push((a, if tick == 1 { "tick" } else { "choice" }, b));
            }
            t
        })
    })
}

/// Keeps the first internal edge per state — the first-choice stationary
/// deterministic scheduler.
fn first_choice(triples: &[Triple]) -> Vec<Triple> {
    let mut taken: HashMap<u32, usize> = HashMap::new();
    triples
        .iter()
        .enumerate()
        .filter(|&(i, &(a, l, _))| {
            if l != "choice" && l != "tick" {
                return true;
            }
            *taken.entry(a).or_insert(i) == i
        })
        .map(|(_, &t)| t)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Steady state commutes with lumping: solving the original chain and
    /// summing per block equals solving the quotient.
    #[test]
    fn lump_commutes_with_steady_state(imc in arb_markov_imc(8)) {
        let (block, num_blocks, _) = lump_partition(&imc, &LumpOptions::default());
        let conv = to_ctmc(&imc, NondetPolicy::Reject, &[]).expect("purely Markovian");
        let opts = SolveOptions::default();

        let pi = steady_state(&conv.ctmc, &opts).expect("original solves");
        let projected = project(&pi, &conv.state_map, &block, num_blocks);
        let quotient = quotient_ctmc(&imc, &block, num_blocks);
        let pi_q = steady_state(&quotient, &opts).expect("quotient solves");

        for (b, (got, want)) in projected.iter().zip(&pi_q).enumerate() {
            prop_assert!((got - want).abs() < 1e-6,
                "block {b}: projected {got} vs quotient {want}");
        }
    }

    /// Transient probability commutes with lumping at a random time point.
    #[test]
    fn lump_commutes_with_transient(imc in arb_markov_imc(8), t in 0.2f64..3.0) {
        let (block, num_blocks, _) = lump_partition(&imc, &LumpOptions::default());
        let conv = to_ctmc(&imc, NondetPolicy::Reject, &[]).expect("purely Markovian");
        let opts = TransientOptions::default();

        let p = transient(&conv.ctmc, t, &opts).expect("original solves");
        let projected = project(&p, &conv.state_map, &block, num_blocks);
        let quotient = quotient_ctmc(&imc, &block, num_blocks);
        let p_q = transient(&quotient, t, &opts).expect("quotient solves");

        for (b, (got, want)) in projected.iter().zip(&p_q).enumerate() {
            prop_assert!((got - want).abs() < 1e-6,
                "block {b} at t={t}: projected {got} vs quotient {want}");
        }
    }

    /// The CSR uniformization kernel and the dense n×n reference agree to
    /// far below solver tolerance.
    #[test]
    fn csr_and_dense_transient_agree(ctmc in arb_ctmc(9), t in 0.1f64..2.0) {
        let opts = TransientOptions::default();
        let csr = transient(&ctmc, t, &opts).expect("csr");
        let dense = transient_dense(&ctmc, t, &opts).expect("dense");
        for (s, (a, b)) in csr.iter().zip(&dense).enumerate() {
            prop_assert!((a - b).abs() < 1e-9, "state {s}: csr {a} vs dense {b}");
        }
    }

    /// The BSCC-based steady-state solver and the dense power iteration
    /// land on the same limit distribution.
    #[test]
    fn csr_and_dense_steady_state_agree(ctmc in arb_ctmc(9)) {
        let opts = SolveOptions::default();
        let csr = steady_state(&ctmc, &opts).expect("csr");
        let dense = steady_state_dense(&ctmc, &opts).expect("dense");
        for (s, (a, b)) in csr.iter().zip(&dense).enumerate() {
            prop_assert!((a - b).abs() < 1e-9, "state {s}: csr {a} vs dense {b}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Scheduler sandwich: on a random nondeterministic model, the uniform
    /// policy and the first-choice resolution both land inside the lifted
    /// CTMDP's `[min, max]` interval, for throughput and occupancy alike.
    #[test]
    fn scheduler_bounds_sandwich_concrete_resolutions(triples in arb_nondet_triples()) {
        let rates: HashMap<String, f64> =
            [("ga".to_owned(), 0.7), ("gb".to_owned(), 1.3), ("gc".to_owned(), 2.9)]
                .into_iter()
                .collect();
        let n = triples.iter().map(|&(a, _, b)| a.max(b)).max().unwrap_or(0) + 1;
        let occ: Vec<u32> = (0..n).filter(|s| s % 2 == 0).collect();

        let perf = Flow::from_lts(lts_from_triples(&triples)).with_rates(&rates);
        let bounds = perf.solve_bounds(&["tick"]).expect("bounds solve");
        let tick = bounds
            .throughput_bounds()
            .expect("throughput bounds")
            .into_iter()
            .find(|(l, _)| l == "tick")
            .map(|(_, i)| i)
            .expect("tick probe");
        let occ_iv = bounds.occupancy_bounds(&occ).expect("occupancy bounds");

        let resolutions = [
            ("uniform", perf.solve(NondetPolicy::Uniform, &["tick"]).expect("uniform")),
            (
                "first-choice",
                Flow::from_lts(lts_from_triples(&first_choice(&triples)))
                    .with_rates(&rates)
                    .solve(NondetPolicy::Uniform, &["tick"])
                    .expect("first-choice"),
            ),
        ];
        for (name, solved) in &resolutions {
            let tp = solved
                .throughputs()
                .expect("throughputs")
                .into_iter()
                .find(|(l, _)| l == "tick")
                .map_or(0.0, |(_, v)| v);
            let oc = solved.occupancy(&occ).expect("occupancy");
            prop_assert!(tick.contains(tp, 1e-9),
                "{name} throughput {tp} outside [{}, {}]", tick.min, tick.max);
            prop_assert!(occ_iv.contains(oc, 1e-9),
                "{name} occupancy {oc} outside [{}, {}]", occ_iv.min, occ_iv.max);
        }
    }
}
