//! Cross-crate tests of the on-the-fly layer: the lazy product must be
//! byte-identical to eager composition at any worker count, and the
//! short-circuiting searches must reach the same verdicts as the eager
//! flow while materializing strictly less.

use multival::lts::io::write_aut;
use multival::lts::ops::{compose, compose_all, Sync};
use multival::lts::reach::{deadlock_search, materialize, materialize_with, ReachOptions};
use multival::lts::ts::LazyProduct;
use multival::lts::{Lts, LtsBuilder, Workers};
use multival::mcl::{check_on_the_fly, patterns};
use multival::models::rings::{full_product_states, ring_parts, ring_sync};
use multival::models::xstream::queue;
use multival::pa::{explore, ExploreOptions, PaTs};
use proptest::prelude::*;

/// Strategy: a random component LTS with up to `max_states` states over a
/// tiny alphabet (τ included), fully reachable by a spanning chain.
fn arb_component(max_states: usize) -> impl Strategy<Value = Lts> {
    let labels = prop::sample::select(vec!["a", "b", "c", "i"]);
    (2..=max_states).prop_flat_map(move |n| {
        let chain = prop::collection::vec(labels.clone(), n - 1);
        let extra = prop::collection::vec((0..n as u32, labels.clone(), 0..n as u32), 0..(2 * n));
        (chain, extra).prop_map(move |(chain, extra)| {
            let mut b = LtsBuilder::new();
            for _ in 0..n {
                b.add_state();
            }
            for (i, l) in chain.iter().enumerate() {
                b.add_transition(i as u32, l, i as u32 + 1);
            }
            for (s, l, t) in extra {
                b.add_transition(s, l, t);
            }
            b.build(0)
        })
    })
}

/// Strategy: one of the synchronization disciplines exercised by the case
/// studies (interleaving, full synchrony, and gate-set synchrony).
fn arb_sync() -> impl Strategy<Value = Sync> {
    prop::sample::select(vec![Sync::Interleave, Sync::Full, Sync::on(["a"]), Sync::on(["a", "b"])])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lazy_product_matches_eager_compose_all(
        parts in prop::collection::vec(arb_component(6), 2..=3),
        sync in arb_sync(),
    ) {
        let refs: Vec<&Lts> = parts.iter().collect();
        let eager = compose_all(&refs, &sync);
        let lazy = LazyProduct::new(&refs, &sync);
        let seq = materialize_with(&lazy, Workers::sequential());
        let par = materialize_with(&lazy, Workers::new(4));
        prop_assert_eq!(write_aut(&seq), write_aut(&eager), "sequential materialization");
        prop_assert_eq!(write_aut(&par), write_aut(&eager), "4-thread materialization");
    }

    #[test]
    fn binary_compose_is_the_two_way_lazy_product(
        left in arb_component(6),
        right in arb_component(6),
        sync in arb_sync(),
    ) {
        let eager = compose(&left, &right, &sync);
        let lazy = materialize(&LazyProduct::new(&[&left, &right], &sync));
        prop_assert_eq!(write_aut(&lazy), write_aut(&eager));
    }
}

#[test]
fn on_the_fly_deadlock_matches_eager_on_the_xstream_bug() {
    // Issue 1 of the xSTream case study (E2): the lossy credit-return
    // queue deadlocks. The on-the-fly search over the term graph must find
    // a shortest trace of the same length as the eager BFS witness.
    let spec = queue::buggy_credit_spec().expect("parses");
    let eager_lts = explore(&spec, &ExploreOptions::default()).expect("explores").lts;
    let eager = multival::lts::analysis::deadlock_witness(&eager_lts).expect("deadlocks");

    let ts = PaTs::new(&spec);
    let outcome = deadlock_search(&ts, &ReachOptions::default());
    assert!(!ts.has_error(), "no semantic errors on this model");
    let fly = outcome.witness.expect("deadlocks");
    assert_eq!(fly.len(), eager.len(), "eager `{eager:?}` vs on-the-fly `{fly:?}`");
    assert!(
        outcome.stats.visited <= eager_lts.num_states() as usize,
        "the search must not visit more than the full space"
    );
}

#[test]
fn searches_materialize_strictly_less_than_the_full_product() {
    // Three-component composition whose product explodes while the
    // interesting behaviour is shallow: both the deadlock search and the
    // safety check settle after a fraction of the full product.
    let parts = ring_parts(3, 8);
    let refs: Vec<&Lts> = parts.iter().collect();
    let sync = ring_sync();
    let full = full_product_states(3, 8);
    assert_eq!(compose_all(&refs, &sync).num_states() as usize, full);

    let lazy = LazyProduct::new(&refs, &sync);
    let deadlock = deadlock_search(&lazy, &ReachOptions::default());
    assert!(deadlock.witness.is_some());
    assert!(
        deadlock.stats.visited < full,
        "deadlock search visited {} of {} product states",
        deadlock.stats.visited,
        full
    );

    // Safety ("HALT never happens") fails with a one-step counterexample.
    let report = check_on_the_fly(
        &lazy,
        &patterns::never(multival::mcl::ActionFormula::pattern("HALT")),
        &ReachOptions::default(),
    )
    .expect("in fragment")
    .expect("not truncated");
    assert!(!report.holds);
    assert_eq!(report.trace, Some(vec!["HALT".to_owned()]));
    assert!(
        report.stats.visited < full,
        "safety check visited {} of {} product states",
        report.stats.visited,
        full
    );
}
