//! The xMAS workbench end to end: committed fixture fabrics, canonical
//! LTS digests, generator/pipeline determinism across thread counts and
//! store backends, and property tests over the generator and shrinker.
//!
//! The `.lot` fixtures under `examples/` are themselves golden: they are
//! regenerated from their seeds and compared byte-for-byte, so a
//! generator or renderer change that re-shapes the fixture fleet shows
//! up as a diff. Regenerate after a verified intentional change with
//! `UPDATE_GOLDEN=1 cargo test -p multival-integration --test xmas_fuzz`.

use multival::fuzz::{run_fuzz, CheckKind, FuzzOptions};
use multival::lts::io::write_aut;
use multival::lts::minimize::Equivalence;
use multival::lts::pipeline::{canonicalize, run_pipeline, PipelineOptions};
use multival::lts::store::{StoreConfig, StoreKind};
use multival::lts::Workers;
use multival::models::xmas::{compile_network, generate, render_lot, GenConfig, RenderOptions};
use multival::pa::{extract_network, parse_spec, ExploreOptions};
use proptest::prelude::*;
use std::path::PathBuf;

/// The committed fixture fleet: seeds picked to cover every primitive
/// kind (switches, credit rings, merges/joins, multi-color palettes).
const FIXTURE_SEEDS: [u64; 8] = [3, 11, 25, 29, 42, 47, 54, 60];

fn examples_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../examples")
}

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("data").join(name)
}

fn check_golden(path: &PathBuf, contents: &str) {
    if std::env::var("UPDATE_GOLDEN").as_deref() == Ok("1") {
        std::fs::create_dir_all(path.parent().expect("parent dir")).expect("mkdir");
        std::fs::write(path, contents).expect("write fixture");
        return;
    }
    let want = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!("missing fixture {} ({e}); create it with UPDATE_GOLDEN=1", path.display())
    });
    assert_eq!(
        want,
        contents,
        "golden mismatch for {}; if the change is intentional and verified, \
         regenerate with UPDATE_GOLDEN=1",
        path.display()
    );
}

fn canonical_aut(seed: u64) -> String {
    let fab = generate(seed, &GenConfig::default());
    let net = compile_network(&fab).expect("fixture fabrics compile");
    let run = run_pipeline(&net, &PipelineOptions::default());
    assert!(run.complete(), "fixture fabrics reduce without a budget");
    write_aut(&canonicalize(&run.lts))
}

/// The eight fixture fabrics under `examples/` regenerate byte-identically
/// from their seeds, and their canonical reduced LTSs match the committed
/// SHA-256 digests.
#[test]
fn fixture_fabrics_and_digests_are_golden() {
    for seed in FIXTURE_SEEDS {
        let fab = generate(seed, &GenConfig::default());
        let header = format!(
            "-- xMAS fixture fabric (seed {seed}, default generator config)\n\
             -- regenerate: UPDATE_GOLDEN=1 cargo test -p multival-integration --test xmas_fuzz\n"
        );
        let body = render_lot(&fab, &RenderOptions::default()).expect("fixture renders");
        let lot = format!("{header}{body}");
        check_golden(&examples_dir().join(format!("xmas_fab_{seed}.lot")), &lot);

        let digest =
            format!("{}\n", multival_integration::sha256_hex(canonical_aut(seed).as_bytes()));
        check_golden(&fixture_path(&format!("xmas_fab_{seed}.aut.sha256")), &digest);
    }
}

/// The rendered fixtures are real models: they parse, extract, and reduce
/// to the same canonical LTS as the directly-compiled network.
#[test]
fn fixture_files_round_trip_through_the_frontend() {
    for seed in FIXTURE_SEEDS {
        let path = examples_dir().join(format!("xmas_fab_{seed}.lot"));
        let Ok(text) = std::fs::read_to_string(&path) else {
            assert!(
                std::env::var("UPDATE_GOLDEN").as_deref() == Ok("1"),
                "missing {}; create it with UPDATE_GOLDEN=1",
                path.display()
            );
            continue;
        };
        let spec = parse_spec(&text).expect("fixture parses");
        let net = extract_network(&spec, &ExploreOptions::default()).expect("fixture extracts");
        let run = run_pipeline(&net, &PipelineOptions::default());
        assert!(run.complete());
        assert_eq!(
            write_aut(&canonicalize(&run.lts)),
            canonical_aut(seed),
            "seed {seed}: the committed .lot must stay equivalent to its generator"
        );
    }
}

/// Same seed → byte-identical topology and canonical LTS regardless of
/// worker count or state-store backend.
#[test]
fn generation_and_reduction_are_deterministic() {
    let cfg = GenConfig::default();
    for seed in [0u64, 7, 25, 42] {
        let fab = generate(seed, &cfg);
        assert_eq!(fab, generate(seed, &cfg), "seed {seed}: topology must regenerate");
        let render = render_lot(&fab, &RenderOptions::default()).expect("renders");
        assert_eq!(
            render,
            render_lot(&generate(seed, &cfg), &RenderOptions::default()).expect("renders"),
            "seed {seed}: render must be byte-identical"
        );

        let net = compile_network(&fab).expect("compiles");
        let mut results = Vec::new();
        for workers in [Workers::new(1), Workers::new(4)] {
            for kind in StoreKind::ALL {
                let options = PipelineOptions {
                    equivalence: Equivalence::Branching,
                    workers,
                    store: StoreConfig::of(kind),
                    ..PipelineOptions::default()
                };
                let run = run_pipeline(&net, &options);
                assert!(run.complete());
                results.push(write_aut(&canonicalize(&run.lts)));
            }
        }
        assert!(
            results.windows(2).all(|w| w[0] == w[1]),
            "seed {seed}: canonical LTS must not depend on threads or store backend"
        );
    }
}

/// The full differential sweep over the acceptance seed range is clean.
#[test]
fn fuzz_sweep_0_to_64_finds_no_mismatches() {
    let report = run_fuzz(&FuzzOptions { seed_start: 0, seed_end: 64, ..FuzzOptions::default() });
    assert_eq!(report.seeds_run, 64);
    assert!(report.mismatches.is_empty(), "{}", report.render());
    assert!(!report.budget_tripped);
}

/// The planted renderer bug is found and minimized to a tiny reproducer
/// (the issue's acceptance bound is six primitives).
#[test]
fn injected_switch_flip_is_caught_and_minimized() {
    let report = run_fuzz(&FuzzOptions {
        seed_start: 0,
        seed_end: 64,
        inject_flip: true,
        ..FuzzOptions::default()
    });
    assert!(!report.mismatches.is_empty(), "the planted bug must be caught");
    for m in &report.mismatches {
        assert_eq!(m.kind, CheckKind::BuilderVsLot);
    }
    let smallest = report.mismatches.iter().map(|m| m.shrunk.num_prims()).min().expect("some");
    assert!(smallest <= 6, "reproducer must shrink to <= 6 primitives, got {smallest}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every generated fabric is well-typed, for any seed and any shape
    /// budget in the supported envelope.
    #[test]
    fn generated_fabrics_validate(
        seed in 0u64..u64::MAX,
        max_steps in 0usize..12,
        max_colors in 1usize..5,
        max_cap in 1usize..4,
        credit_rings in 0usize..2,
    ) {
        let cfg = GenConfig { max_steps, max_colors, max_cap, credit_rings: credit_rings == 1 };
        let fab = generate(seed, &cfg);
        prop_assert!(fab.validate().is_ok(), "{:?}", fab.validate().err());
    }

    /// Shrinking preserves well-typedness and the caller's predicate, and
    /// never grows the fabric — even under predicates unrelated to any
    /// real failure.
    #[test]
    fn shrinker_outputs_stay_well_typed(seed in 0u64..u64::MAX, min_prims in 2usize..6) {
        let fab = generate(seed, &GenConfig::default());
        let pred = |f: &multival::models::xmas::Fabric| f.num_prims() >= min_prims;
        if !pred(&fab) {
            return Ok(());
        }
        let small = multival::models::xmas::shrink(&fab, pred, 32);
        prop_assert!(small.validate().is_ok(), "{:?}", small.validate().err());
        prop_assert!(pred(&small));
        prop_assert!(small.size_metric() <= fab.size_metric());
    }
}
