//! Integration: compositional construction gives the same answers as
//! monolithic construction — for functional verification (LTS level) and
//! for performance evaluation (IMC level).

use multival::imc::compositional::{compose_minimize, Component, PipelineOptions};
use multival::imc::to_ctmc::{probe_throughputs, to_ctmc, NondetPolicy};
use multival::imc::{Imc, ImcBuilder};
use multival::lts::equiv::equivalent;
use multival::lts::minimize::Equivalence;
use multival::models::xstream::pipeline::{build_compositional, build_monolithic, PipelineConfig};

#[test]
fn xstream_pipeline_orders_agree() {
    for cfg in [
        PipelineConfig::default(),
        PipelineConfig { push_capacity: 3, pop_capacity: 2, credits: 2 },
        PipelineConfig { push_capacity: 1, pop_capacity: 4, credits: 4 },
    ] {
        let comp = build_compositional(&cfg);
        let mono = build_monolithic(&cfg);
        assert!(
            equivalent(&comp.lts, &mono.lts, Equivalence::Branching).holds(),
            "configs must agree: {cfg:?}"
        );
        assert!(comp.peak_states <= mono.peak_states, "{cfg:?}");
    }
}

/// A tandem of exponential servers synchronizing hand-offs.
fn server(rate: f64, accept: &str, done: &str) -> Imc {
    let mut b = ImcBuilder::new();
    let idle = b.add_state();
    let busy = b.add_state();
    let ready = b.add_state();
    b.interactive(idle, accept, busy);
    b.markovian(busy, ready, rate).expect("rate");
    b.interactive(ready, done, idle);
    b.build(idle)
}

/// A generator that repeatedly offers `out` after an exponential delay.
fn source(rate: f64, out: &str) -> Imc {
    let mut b = ImcBuilder::new();
    let s0 = b.add_state();
    let s1 = b.add_state();
    b.markovian(s0, s1, rate).expect("rate");
    b.interactive(s1, out, s0);
    b.build(s0)
}

#[test]
fn lumped_and_unlumped_pipelines_give_same_throughput() {
    let comps = vec![
        Component::new("source", source(2.0, "h1"), [] as [&str; 0]),
        Component::new("stage1", server(3.0, "h1", "h2"), ["h1"]),
        Component::new("stage2", server(4.0, "h2", "h3"), ["h2"]),
    ];
    let options = |minimize| PipelineOptions { minimize, ..Default::default() };
    let (lumped, stages_on) = compose_minimize(&comps, &options(true));
    let (plain, stages_off) = compose_minimize(&comps, &options(false));
    assert!(lumped.num_states() <= plain.num_states());
    assert!(
        stages_on.iter().all(|s| s.lump.is_some()) && stages_off.iter().all(|s| s.lump.is_none())
    );

    let solve = |imc: &Imc| -> f64 {
        let hidden = multival::imc::ops::relabel(imc, |name| {
            if name == "h3" {
                Some(name.to_owned())
            } else {
                None
            }
        });
        let conv = to_ctmc(&hidden, NondetPolicy::Uniform, &["h3"]).expect("converts");
        probe_throughputs(&conv, &multival::ctmc::SolveOptions::default()).expect("solves")[0].1
    };
    let a = solve(&lumped);
    let b = solve(&plain);
    assert!((a - b).abs() < 1e-9, "lumping must not change the measure: {a} vs {b}");
    assert!(a > 0.0);
}

#[test]
fn symmetric_components_lump_aggressively() {
    // Six identical servers fed by one source: the lumped intermediate
    // spaces stay polynomial while the plain product grows exponentially.
    let mut comps = vec![Component::new("src", source(1.0, "go"), [] as [&str; 0])];
    for i in 0..5 {
        comps.push(Component::new(
            &format!("srv{i}"),
            {
                // Servers that each independently react to `go`.
                let mut b = ImcBuilder::new();
                let s0 = b.add_state();
                let s1 = b.add_state();
                b.interactive(s0, "go", s1);
                b.markovian(s1, s0, 2.0).expect("rate");
                b.build(s0)
            },
            ["go"],
        ));
    }
    let on = compose_minimize(&comps, &PipelineOptions::default());
    let off = compose_minimize(&comps, &PipelineOptions { minimize: false, ..Default::default() });
    let peak_on = multival::imc::compositional::peak_states(&on.1);
    let peak_off = multival::imc::compositional::peak_states(&off.1);
    assert!(peak_on < peak_off, "lumping should shrink intermediates: {peak_on} vs {peak_off}");
}
