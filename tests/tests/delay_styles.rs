//! Integration: the paper's §4 names two ways to attach timing to a
//! functional model —
//!
//! 1. **directly**, by inserting stochastic transitions into the model
//!    (our `decorate` / `decorate_by_label`);
//! 2. **compositionally**, by exposing the start and end of each delay as
//!    gates and synchronizing with an auxiliary phase-type delay process
//!    (our `Delay::to_imc_process` + IMC composition).
//!
//! Both styles must produce the same Markov chain measures. This suite
//! checks that equality on a two-phase worker model, for exponential and
//! Erlang delays.

use multival::ctmc::steady::SolveOptions;
use multival::imc::decorate::decorate_by_label;
use multival::imc::ops::{compose, hide};
use multival::imc::phase_type::Delay;
use multival::imc::to_ctmc::{probe_throughputs, to_ctmc, NondetPolicy};
use multival::imc::Imc;
use multival::lts::equiv::lts_from_triples;
use multival::lts::ops::Sync;

/// Style 1: decorate the two-action cycle directly.
fn direct_style(work: &Delay, rest: &Delay) -> f64 {
    let lts = lts_from_triples(&[(0, "work", 1), (1, "rest", 0)]);
    let imc = decorate_by_label(&lts, |label| match label {
        "work" => Some(work.clone()),
        "rest" => Some(rest.clone()),
        _ => None,
    });
    let conv = to_ctmc(&imc, NondetPolicy::Reject, &["work", "rest"]).expect("converts");
    let tp = probe_throughputs(&conv, &SolveOptions::default()).expect("solves");
    tp.iter().find(|(l, _)| l == "work").expect("probe").1
}

/// Style 2: the functional model exposes delay start/end gates; auxiliary
/// delay processes are synchronized on them (constraint-oriented timing).
fn constraint_style(work: &Delay, rest: &Delay) -> f64 {
    // Functional cycle with explicit delay windows.
    let functional = lts_from_triples(&[
        (0, "start_work", 1),
        (1, "work", 2),
        (2, "start_rest", 3),
        (3, "rest", 0),
    ]);
    let base = Imc::from_lts(&functional);
    let work_proc = work.to_imc_process("start_work", "work");
    let rest_proc = rest.to_imc_process("start_rest", "rest");
    let with_work = compose(&base, &work_proc, &Sync::on(["start_work", "work"]));
    let full = compose(&with_work, &rest_proc, &Sync::on(["start_rest", "rest"]));
    let hidden = hide(&full, ["start_work", "start_rest"]);
    let conv = to_ctmc(&hidden, NondetPolicy::Reject, &["work", "rest"]).expect("converts");
    let tp = probe_throughputs(&conv, &SolveOptions::default()).expect("solves");
    tp.iter().find(|(l, _)| l == "work").expect("probe").1
}

#[test]
fn styles_agree_for_exponential_delays() {
    let work = Delay::Exponential { rate: 2.0 };
    let rest = Delay::Exponential { rate: 3.0 };
    let a = direct_style(&work, &rest);
    let b = constraint_style(&work, &rest);
    // Cycle of two exponentials: throughput = 1 / (1/2 + 1/3) = 1.2.
    assert!((a - 1.2).abs() < 1e-9, "direct: {a}");
    assert!((b - 1.2).abs() < 1e-9, "constraint-oriented: {b}");
}

#[test]
fn styles_agree_for_erlang_delays() {
    for phases in [2u32, 5, 8] {
        let work = Delay::Erlang { phases, rate: phases as f64 * 2.0 }; // mean 0.5
        let rest = Delay::Exponential { rate: 4.0 }; // mean 0.25
        let a = direct_style(&work, &rest);
        let b = constraint_style(&work, &rest);
        assert!((a - b).abs() < 1e-9, "k={phases}: direct {a} vs constraint-oriented {b}");
        // Mean cycle = 0.75 → throughput 4/3 (independent of phase count:
        // only the mean matters for the long-run rate of a serial cycle).
        assert!((a - 4.0 / 3.0).abs() < 1e-9, "k={phases}: {a}");
    }
}

#[test]
fn styles_agree_for_hypoexponential_delays() {
    let work = Delay::HypoExponential { rates: vec![4.0, 8.0, 8.0] }; // mean 0.5
    let rest = Delay::Exponential { rate: 2.0 };
    let a = direct_style(&work, &rest);
    let b = constraint_style(&work, &rest);
    assert!((a - b).abs() < 1e-9, "direct {a} vs constraint-oriented {b}");
    assert!((a - 1.0).abs() < 1e-9, "mean cycle 1.0: {a}");
}

#[test]
fn lumping_the_constraint_style_matches_too() {
    // Lump the constraint-oriented IMC before conversion: measures survive.
    let work = Delay::Erlang { phases: 4, rate: 8.0 };
    let rest = Delay::Exponential { rate: 4.0 };
    let functional = lts_from_triples(&[
        (0, "start_work", 1),
        (1, "work", 2),
        (2, "start_rest", 3),
        (3, "rest", 0),
    ]);
    let base = Imc::from_lts(&functional);
    let with_work = compose(
        &base,
        &work.to_imc_process("start_work", "work"),
        &Sync::on(["start_work", "work"]),
    );
    let full = compose(
        &with_work,
        &rest.to_imc_process("start_rest", "rest"),
        &Sync::on(["start_rest", "rest"]),
    );
    let hidden = hide(&full, ["start_work", "start_rest"]);
    let (lumped, stats) = multival::imc::lump(&hidden, &multival::imc::LumpOptions::default());
    assert!(stats.states_after <= stats.states_before);
    let conv = to_ctmc(&lumped, NondetPolicy::Reject, &["work", "rest"]).expect("converts");
    let tp = probe_throughputs(&conv, &SolveOptions::default()).expect("solves");
    let work_tp = tp.iter().find(|(l, _)| l == "work").expect("probe").1;
    assert!((work_tp - constraint_style(&work, &rest)).abs() < 1e-9);
}
