//! Integration: the alternating-bit protocol (ABP) over lossy channels —
//! the canonical process-algebra verification exercise, run through the
//! whole stack: parse → explore → hide → compare against the one-place
//! buffer specification.
//!
//! The expected results showcase the equivalence lattice:
//! * **branching (divergence-blind)**: ABP ≡ buffer — retransmission makes
//!   the protocol correct *assuming fairness* (the τ-loss cycles are
//!   abstracted);
//! * **divergence-sensitive branching**: ABP ≢ buffer — the lossy channels
//!   admit infinite internal chatter, which the spec does not;
//! * a seeded bug (receiver ignores the bit) breaks even weak-trace
//!   equivalence, with a duplicated-delivery witness.

use multival::lts::equiv::{equivalent, weak_trace_equivalent, Verdict};
use multival::lts::minimize::{divergent_states, minimize, Equivalence};
use multival::lts::Lts;
use multival::pa::{explore, parse_spec, ExploreOptions};

const ABP: &str = r#"
-- Lossy data channel: forwards or silently drops (τ).
process DChan[din, dout] :=
    din ?b:bool; (dout !b; DChan[din, dout] [] i; DChan[din, dout])
endproc

-- Lossy ack channel.
process AChan[ain, aout] :=
    ain ?b:bool; (aout !b; AChan[ain, aout] [] i; AChan[ain, aout])
endproc

process Sender[put, dsnd, arcv](b: bool) :=
    put; Sending[put, dsnd, arcv](b)
endproc

-- Send the tagged message, wait for the matching ack; a τ timeout
-- retransmits.
process Sending[put, dsnd, arcv](b: bool) :=
    dsnd !b;
    ( arcv ?c:bool;
        ( [c == b] -> Sender[put, dsnd, arcv](not b)
       [] [c != b] -> Sending[put, dsnd, arcv](b) )
   [] i; Sending[put, dsnd, arcv](b) )
endproc

process Receiver[get, drcv, asnd](expected: bool) :=
    drcv ?b:bool;
    ( [b == expected] -> get; asnd !b; Receiver[get, drcv, asnd](not expected)
   [] [b != expected] -> asnd !b; Receiver[get, drcv, asnd](expected) )
endproc

behaviour
  hide dsnd, drcv, asnd, arcv in
    ( ( Sender[put, dsnd, arcv](false)
        |[dsnd, arcv]|
        (DChan[dsnd, drcv] ||| AChan[asnd, arcv]) )
      |[drcv, asnd]|
      Receiver[get, drcv, asnd](false) )
"#;

/// The seeded bug: the receiver delivers every message regardless of its
/// bit, so retransmissions become duplicate deliveries.
const ABP_BUGGY: &str = r#"
process DChan[din, dout] :=
    din ?b:bool; (dout !b; DChan[din, dout] [] i; DChan[din, dout])
endproc

process AChan[ain, aout] :=
    ain ?b:bool; (aout !b; AChan[ain, aout] [] i; AChan[ain, aout])
endproc

process Sender[put, dsnd, arcv](b: bool) :=
    put; Sending[put, dsnd, arcv](b)
endproc

process Sending[put, dsnd, arcv](b: bool) :=
    dsnd !b;
    ( arcv ?c:bool;
        ( [c == b] -> Sender[put, dsnd, arcv](not b)
       [] [c != b] -> Sending[put, dsnd, arcv](b) )
   [] i; Sending[put, dsnd, arcv](b) )
endproc

-- BUG: no bit check — every arrival is delivered.
process Receiver[get, drcv, asnd](expected: bool) :=
    drcv ?b:bool; get; asnd !b; Receiver[get, drcv, asnd](not expected)
endproc

behaviour
  hide dsnd, drcv, asnd, arcv in
    ( ( Sender[put, dsnd, arcv](false)
        |[dsnd, arcv]|
        (DChan[dsnd, drcv] ||| AChan[asnd, arcv]) )
      |[drcv, asnd]|
      Receiver[get, drcv, asnd](false) )
"#;

const SPEC: &str = "
process Buffer[put, get] := put; get; Buffer[put, get] endproc
behaviour Buffer[put, get]
";

fn build(src: &str) -> Lts {
    explore(&parse_spec(src).expect("parses"), &ExploreOptions::default()).expect("explores").lts
}

#[test]
fn abp_equals_buffer_modulo_branching() {
    let abp = build(ABP);
    let spec = build(SPEC);
    assert!(abp.num_states() > 10, "the protocol interleaves: {}", abp.num_states());
    assert!(
        equivalent(&abp, &spec, Equivalence::Branching).holds(),
        "ABP over lossy channels must implement the one-place buffer"
    );
    // And the minimized protocol is literally the 2-state buffer.
    let (min, _) = minimize(&abp, Equivalence::Branching);
    assert_eq!(min.num_states(), 2);
}

#[test]
fn abp_diverges_so_sensitive_equivalence_fails() {
    let abp = build(ABP);
    let spec = build(SPEC);
    assert!(!divergent_states(&abp).is_empty(), "loss/retransmit cycles are internal divergences");
    assert!(
        !equivalent(&abp, &spec, Equivalence::BranchingDivergence).holds(),
        "the buffer never diverges, the lossy protocol does"
    );
}

#[test]
fn abp_is_deadlock_free_and_live() {
    use multival::mcl::{check, patterns, ActionFormula};
    let abp = build(ABP);
    assert!(multival::lts::analysis::deadlock_witness(&abp).is_none());
    // Divergence-blind liveness: delivery stays reachable from everywhere.
    let f = patterns::always_possible(ActionFormula::pattern("get"));
    assert!(check(&abp, &f).expect("mc").holds);
}

#[test]
fn buggy_receiver_duplicates_deliveries() {
    let buggy = build(ABP_BUGGY);
    let spec = build(SPEC);
    match weak_trace_equivalent(&buggy, &spec, 1 << 18) {
        Verdict::Inequivalent { witness: Some(w) } => {
            // The witness must exhibit a duplicate get (two gets per put or
            // a get/put imbalance).
            let gets = w.iter().filter(|l| *l == "get").count();
            let puts = w.iter().filter(|l| *l == "put").count();
            assert!(gets > puts, "duplicate delivery expected: {w:?}");
        }
        v => panic!("the bit-blind receiver must break the protocol: {v:?}"),
    }
}
