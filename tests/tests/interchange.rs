//! Integration: Aldebaran interchange round-trips preserve behaviour across
//! the toolchain (explore → write → read → compare).

use multival::lts::equiv::equivalent;
use multival::lts::io::{read_aut, write_aut, write_dot};
use multival::lts::minimize::Equivalence;
use multival::pa::{explore, parse_spec, ExploreOptions};

const MODEL: &str = "
type color is red, green endtype
process Light[show, switch](c: color) :=
    show !c;
    (  [c == red]   -> switch; Light[show, switch](green)
    [] [c == green] -> switch; Light[show, switch](red)
    )
endproc
behaviour Light[show, switch](red)
";

#[test]
fn aut_roundtrip_is_strongly_bisimilar() {
    let lts = explore(&parse_spec(MODEL).expect("parses"), &ExploreOptions::default())
        .expect("explores")
        .lts;
    let text = write_aut(&lts);
    let back = read_aut(&text).expect("parses back");
    assert!(equivalent(&lts, &back, Equivalence::Strong).holds());
    assert_eq!(lts.num_states(), back.num_states());
    assert_eq!(lts.num_transitions(), back.num_transitions());
}

#[test]
fn aut_preserves_data_labels() {
    let lts = explore(&parse_spec(MODEL).expect("parses"), &ExploreOptions::default())
        .expect("explores")
        .lts;
    let back = read_aut(&write_aut(&lts)).expect("parses back");
    assert!(back.labels().lookup("show !red").is_some());
    assert!(back.labels().lookup("show !green").is_some());
}

#[test]
fn minimize_after_roundtrip_matches_direct_minimization() {
    let lts = explore(&parse_spec(MODEL).expect("parses"), &ExploreOptions::default())
        .expect("explores")
        .lts;
    let direct = multival::lts::minimize::minimize(&lts, Equivalence::Branching).0;
    let roundtrip = read_aut(&write_aut(&lts)).expect("parses back");
    let via_aut = multival::lts::minimize::minimize(&roundtrip, Equivalence::Branching).0;
    assert_eq!(direct.num_states(), via_aut.num_states());
    assert!(equivalent(&direct, &via_aut, Equivalence::Strong).holds());
}

#[test]
fn dot_export_covers_all_transitions() {
    let lts = explore(&parse_spec(MODEL).expect("parses"), &ExploreOptions::default())
        .expect("explores")
        .lts;
    let dot = write_dot(&lts, "light");
    let arrow_count = dot.matches(" -> ").count();
    assert_eq!(arrow_count, lts.num_transitions());
}

#[test]
fn malformed_aut_rejected_with_line_info() {
    let err = read_aut("des (0, 1, 2)\nnot-a-transition\n").expect_err("malformed");
    assert_eq!(err.line, 2);
}

#[test]
fn mini_lotos_pretty_print_roundtrip() {
    // Spec → source → spec must preserve behaviour (strong bisimilarity).
    let sources = [
        MODEL,
        "process P[a, b](n: int 0..3) :=
             [n < 3] -> a !n; P[a, b](n + 1)
          [] [n > 0] -> b; P[a, b](n - 1)
         endproc
         behaviour hide b in P[x, y](0)",
        "behaviour (a; exit(2) ||| b; exit(2)) >> accept v:int 0..9 in done !v; stop",
        "behaviour (a; stop [] b; stop) [> kill; stop",
        "behaviour let n:int 0..9 = 4 in rename g -> h in g !n; stop",
    ];
    for src in sources {
        let spec = parse_spec(src).expect("original parses");
        let printed = spec.to_source();
        let back = parse_spec(&printed)
            .unwrap_or_else(|e| panic!("pretty-printed source must re-parse: {e}\n{printed}"));
        let a = explore(&spec, &ExploreOptions::default()).expect("explores").lts;
        let b = explore(&back, &ExploreOptions::default()).expect("explores").lts;
        assert!(
            equivalent(&a, &b, Equivalence::Strong).holds(),
            "round-trip changed behaviour for:\n{src}\nprinted:\n{printed}"
        );
    }
}
