//! Integration: end-to-end smoke of the three industrial case studies
//! (the paper's headline results, experiments E2–E6).

use multival::models::fame2::benchmark::{ping_pong_latency, RateConfig};
use multival::models::fame2::coherence::{verify_coherence, Protocol};
use multival::models::fame2::mpi::{MpiConfig, MpiImpl};
use multival::models::fame2::topology::Topology;
use multival::models::faust::fork::run_fork_study;
use multival::models::faust::router::{router_2x2_spec_equivalence, verify_router};
use multival::models::xstream::perf::{analyze, PerfConfig};
use multival::models::xstream::queue;
use multival::pa::{explore, ExploreOptions};

#[test]
fn xstream_results_reproduce() {
    // "Two functional issues highlighted" (E2).
    let good = explore(&queue::credit_spec().expect("parses"), &ExploreOptions::default())
        .expect("explores")
        .lts;
    assert!(multival::lts::analysis::deadlock_witness(&good).is_none());
    let buggy = explore(&queue::buggy_credit_spec().expect("parses"), &ExploreOptions::default())
        .expect("explores")
        .lts;
    assert!(multival::lts::analysis::deadlock_witness(&buggy).is_some());

    // "Latency, throughputs, occupancy" (E6).
    let r = analyze(&PerfConfig::default()).expect("analyzes");
    assert!(r.throughput > 0.0 && r.latency.is_finite());
    assert!((r.occupancy_push.iter().sum::<f64>() - 1.0).abs() < 1e-6);
}

#[test]
fn faust_results_reproduce() {
    // "Router verified formally" (E3).
    let v = verify_router(3, &ExploreOptions::default()).expect("verifies");
    assert!(v.deadlock.is_none() && v.misroute.is_none() && v.delivery_live);
    assert!(router_2x2_spec_equivalence().expect("compares").holds());

    // "Isochronous forks demonstrated automatically" (E4).
    let study = run_fork_study().expect("runs");
    assert!(study.acknowledged_equivalent.holds());
    assert!(study.isochronous_equivalent.holds());
    assert!(!study.buffered_equivalent.holds());
}

#[test]
fn fame2_results_reproduce() {
    // Coherence invariants (prerequisite for the MPI predictions).
    for protocol in [Protocol::Msi, Protocol::Mesi] {
        let v = verify_coherence(3, protocol, 1_000_000).expect("verifies");
        assert_eq!(v.swmr_violations, 0);
        assert!(v.deadlock.is_none());
    }

    // "Latency in different topologies / implementations / protocols" (E5):
    // the orderings the paper's flow is meant to expose.
    let rates = RateConfig::default();
    let lat = |topology, protocol, implementation| {
        ping_pong_latency(&MpiConfig { topology, protocol, implementation, payload: 1 }, &rates)
            .expect("analyzes")
            .latency
    };
    // Topology ordering: farther peers are slower.
    let near = lat(Topology::Crossbar(8), Protocol::Msi, MpiImpl::Eager);
    let far = lat(Topology::Ring(8), Protocol::Msi, MpiImpl::Eager);
    assert!(far > near, "ring(8) {far} vs crossbar(8) {near}");
    // Protocol ordering: MESI's silent upgrades beat MSI.
    let msi = lat(Topology::Mesh(2, 2), Protocol::Msi, MpiImpl::Eager);
    let mesi = lat(Topology::Mesh(2, 2), Protocol::Mesi, MpiImpl::Eager);
    assert!(mesi < msi, "MESI {mesi} vs MSI {msi}");
    // Implementation ordering at 1-line payloads: eager wins.
    let eager = lat(Topology::Crossbar(4), Protocol::Mesi, MpiImpl::Eager);
    let rdv = lat(Topology::Crossbar(4), Protocol::Mesi, MpiImpl::Rendezvous);
    assert!(eager < rdv, "eager {eager} vs rendezvous {rdv}");
}

#[test]
fn fame2_latency_scales_with_distance() {
    // Latency grows monotonically with ring size (peer gets farther).
    let rates = RateConfig::default();
    let mut last = 0.0;
    for n in [2usize, 4, 6, 8] {
        let row = ping_pong_latency(
            &MpiConfig {
                topology: Topology::Ring(n),
                protocol: Protocol::Msi,
                implementation: MpiImpl::Eager,
                payload: 1,
            },
            &rates,
        )
        .expect("analyzes");
        assert!(row.latency > last, "ring({n}): {} should exceed {last}", row.latency);
        last = row.latency;
    }
}
