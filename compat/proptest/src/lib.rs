//! Offline stand-in for the `proptest` property-testing crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of the proptest 1.x API the workspace's tests
//! use: the [`Strategy`] trait with `prop_map`/`prop_flat_map`, integer
//! and float range strategies, tuple strategies, `prop::sample::select`,
//! `prop::collection::vec`, character-class string strategies
//! (`"[ -~]{0,120}"` style), [`ProptestConfig::with_cases`], and the
//! [`proptest!`]/[`prop_assert!`]/[`prop_assert_eq!`] macros.
//!
//! Differences from real proptest: generation is driven by a fixed
//! deterministic RNG seeded from the test's name (so failures reproduce
//! exactly across runs), and shrinking is a greedy deterministic descent
//! over [`Strategy::shrink`] candidates rather than a binary-search value
//! tree — a failing case reports both its case number and the minimized
//! counterexample. Only `prop_assert!`-style failures shrink; a plain
//! `panic!` inside the body propagates with the unshrunk inputs.

use std::fmt;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic generator driving all strategies (xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds from an arbitrary byte string (typically the test name), so
    /// each test gets its own reproducible stream.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name, expanded through splitmix64.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut sm = h;
        TestRng {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, bound)`. `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform in `[0, 1)` with 53 mantissa bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// Config + errors
// ---------------------------------------------------------------------------

/// Per-block configuration (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed `prop_assert!` within one generated case.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Wraps a failure message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

// ---------------------------------------------------------------------------
// Strategy trait + combinators
// ---------------------------------------------------------------------------

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Proposes strictly-simpler candidates for a failing `value`, most
    /// aggressive first (e.g. the range start before `value - 1`). The
    /// shrink loop re-runs the test on each candidate and greedily descends
    /// into the first one that still fails; returning an empty vector (the
    /// default) ends the descent at `value`.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }

    /// Transforms generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Feeds generated values into `f` to pick a dependent strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Strategy adapter produced by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

// --- numeric ranges --------------------------------------------------------

/// Candidates below `value` pulling toward `start`: the start itself, the
/// midpoint (halve), then the predecessor (retry) — most aggressive first.
fn shrink_int(start: i128, value: i128) -> Vec<i128> {
    let mut out = Vec::new();
    if value > start {
        out.push(start);
        let half = start + (value - start) / 2;
        if half != start {
            out.push(half);
        }
        if value - 1 != start && value - 1 != half {
            out.push(value - 1);
        }
    }
    out
}

macro_rules! impl_int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_int(self.start as i128, *value as i128)
                    .into_iter()
                    .map(|v| v as $t)
                    .collect()
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u128).wrapping_sub(start as u128) as u64 + 1;
                (start as i128 + rng.below(span) as i128) as $t
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_int(*self.start() as i128, *value as i128)
                    .into_iter()
                    .map(|v| v as $t)
                    .collect()
            }
        }
    )*};
}

impl_int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }

    fn shrink(&self, value: &f64) -> Vec<f64> {
        let mut out = Vec::new();
        if *value > self.start {
            out.push(self.start);
            let half = self.start + (*value - self.start) / 2.0;
            if half > self.start && half < *value {
                out.push(half);
            }
        }
        out
    }
}

// --- tuples ----------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($s:ident / $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+)
        where
            $($s::Value: Clone),+
        {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                // One component at a time, leftmost first; the greedy
                // descent in the test loop composes these into a
                // coordinate-wise minimum.
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut v = value.clone();
                        v.$idx = cand;
                        out.push(v);
                    }
                )+
                out
            }
        }
    };
}

impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);

// --- character-class strings -----------------------------------------------

/// String strategies from the `"[class]{lo,hi}"` regex subset: a single
/// character class (literal chars, `a-z` ranges, `\n`/`\t`/`\r`/`\\`
/// escapes) followed by a repetition count.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, lo, hi) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string strategy pattern: {self:?}"));
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len).map(|_| chars[rng.below(chars.len() as u64) as usize]).collect()
    }

    fn shrink(&self, value: &String) -> Vec<String> {
        let Some((_, lo, _)) = parse_class_pattern(self) else { return Vec::new() };
        let chars: Vec<char> = value.chars().collect();
        shrink_prefix_lens(lo, chars.len())
            .into_iter()
            .map(|len| chars[..len].iter().collect())
            .collect()
    }
}

/// Shorter prefix lengths respecting the minimum `lo`: the minimum itself,
/// the halved length, then one-shorter — most aggressive first.
fn shrink_prefix_lens(lo: usize, len: usize) -> Vec<usize> {
    let mut out = Vec::new();
    if len > lo {
        out.push(lo);
        let half = lo + (len - lo) / 2;
        if half != lo {
            out.push(half);
        }
        if len - 1 != lo && len - 1 != half {
            out.push(len - 1);
        }
    }
    out
}

/// Parses `[class]{lo,hi}`, `[class]{n}`, or a bare `[class]` (one char).
fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = find_class_end(rest)?;
    let class: Vec<char> = rest[..close].chars().collect();
    let chars = expand_class(&class)?;
    let tail = &rest[close + 1..];
    if tail.is_empty() {
        return Some((chars, 1, 1));
    }
    let counts = tail.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match counts.split_once(',') {
        Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
        None => {
            let n: usize = counts.trim().parse().ok()?;
            (n, n)
        }
    };
    if lo > hi {
        return None;
    }
    Some((chars, lo, hi))
}

/// Index of the unescaped `]` closing the class body.
fn find_class_end(s: &str) -> Option<usize> {
    let mut escaped = false;
    for (i, c) in s.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' => escaped = true,
            ']' => return Some(i),
            _ => {}
        }
    }
    None
}

/// Expands class chars (with escapes and `a-b` ranges) to the allowed set.
fn expand_class(class: &[char]) -> Option<Vec<char>> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < class.len() {
        let c = match class[i] {
            '\\' => {
                i += 1;
                match *class.get(i)? {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    other => other,
                }
            }
            other => other,
        };
        // `a-b` range (a `-` in final position is a literal dash).
        if class.get(i + 1) == Some(&'-') && i + 2 < class.len() {
            let hi = match class[i + 2] {
                '\\' => {
                    i += 1;
                    match *class.get(i + 2)? {
                        'n' => '\n',
                        't' => '\t',
                        'r' => '\r',
                        other => other,
                    }
                }
                other => other,
            };
            if (c as u32) > (hi as u32) {
                return None;
            }
            for code in (c as u32)..=(hi as u32) {
                out.push(char::from_u32(code)?);
            }
            i += 3;
        } else {
            out.push(c);
            i += 1;
        }
    }
    if out.is_empty() {
        None
    } else {
        Some(out)
    }
}

// ---------------------------------------------------------------------------
// prop:: modules
// ---------------------------------------------------------------------------

/// Namespaced strategy constructors, mirroring `proptest::prop`.
pub mod prop {
    /// Sampling from fixed collections.
    pub mod sample {
        use crate::{Strategy, TestRng};

        /// Uniform choice among the given items.
        #[derive(Debug, Clone)]
        pub struct Select<T> {
            items: Vec<T>,
        }

        /// Strategy drawing uniformly from `items` (must be non-empty).
        pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
            assert!(!items.is_empty(), "select requires at least one item");
            Select { items }
        }

        impl<T: Clone + PartialEq> Strategy for Select<T> {
            type Value = T;

            fn generate(&self, rng: &mut TestRng) -> T {
                self.items[rng.below(self.items.len() as u64) as usize].clone()
            }

            fn shrink(&self, value: &T) -> Vec<T> {
                // Earlier items count as simpler; index 0 is the simplest.
                match self.items.iter().position(|item| item == value) {
                    Some(pos) => self.items[..pos].to_vec(),
                    None => Vec::new(),
                }
            }
        }
    }

    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::{Range, RangeInclusive};

        /// Admissible length specs for [`vec()`](fn@vec).
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi: usize, // inclusive
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange { lo: r.start, hi: r.end - 1 }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                assert!(r.start() <= r.end(), "empty size range");
                SizeRange { lo: *r.start(), hi: *r.end() }
            }
        }

        /// Strategy generating vectors of `element` draws.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// A vector whose length is drawn from `size` and whose elements
        /// come from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }

        impl<S: Strategy> Strategy for VecStrategy<S>
        where
            S::Value: Clone,
        {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi - self.size.lo) as u64 + 1;
                let len = self.size.lo + rng.below(span) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }

            fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
                // Prefixes first (shorter is simpler), then per-element
                // candidates at the surviving length.
                let mut out: Vec<Vec<S::Value>> =
                    crate::shrink_prefix_lens(self.size.lo, value.len())
                        .into_iter()
                        .map(|len| value[..len].to_vec())
                        .collect();
                for (i, item) in value.iter().enumerate() {
                    for cand in self.element.shrink(item) {
                        let mut v = value.clone();
                        v[i] = cand;
                        out.push(v);
                    }
                }
                out
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Test runner
// ---------------------------------------------------------------------------

/// Drives one property test: `cases` generated inputs, and on failure a
/// greedy deterministic descent over [`Strategy::shrink`] candidates before
/// panicking with the minimized counterexample. Called by [`proptest!`];
/// not part of the public proptest API.
#[doc(hidden)]
pub fn run_proptest<S: Strategy>(
    name: &str,
    config: &ProptestConfig,
    strat: &S,
    run: impl Fn(&S::Value) -> Result<(), TestCaseError>,
) where
    S::Value: Clone + fmt::Debug,
{
    let mut rng = TestRng::from_name(name);
    for case in 0..config.cases {
        let mut vals = strat.generate(&mut rng);
        if let Err(mut err) = run(&vals) {
            // Take the first shrink candidate that still fails, restart
            // from it, and stop when no candidate fails or the step
            // budget runs out. No RNG involved: the descent is replayable.
            let mut steps = 0usize;
            'descend: while steps < 1000 {
                for cand in strat.shrink(&vals) {
                    steps += 1;
                    match run(&cand) {
                        Err(e) => {
                            vals = cand;
                            err = e;
                            continue 'descend;
                        }
                        Ok(()) if steps >= 1000 => break 'descend,
                        Ok(()) => {}
                    }
                }
                break;
            }
            panic!(
                "proptest case {}/{} of `{name}` failed: {err}\n\
                 minimal failing input (after {steps} shrink steps): {vals:#?}",
                case + 1,
                config.cases,
            );
        }
    }
}

/// Everything a test module normally imports.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = $config:expr;
     $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $pat:pat in $strat:expr ),+ $(,)? ) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                // All bindings form one tuple strategy; the tuple generates
                // its components left to right, so the random stream is the
                // same as generating each binding in declaration order.
                let strat = ($(($strat),)+);
                $crate::run_proptest(stringify!($name), &config, &strat, |vals| {
                    let ($($pat,)+) = ::std::clone::Clone::clone(vals);
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Asserts within a proptest body, failing the current case on `false`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality within a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left != right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}`",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if left != right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}`: {}",
                left,
                right,
                format!($($fmt)+)
            )));
        }
    }};
}

// ---------------------------------------------------------------------------
// Self-tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..500 {
            let n = Strategy::generate(&(2usize..=12), &mut rng);
            assert!((2..=12).contains(&n));
            let (a, b) = Strategy::generate(&(0u32..4, 1i64..=3), &mut rng);
            assert!(a < 4 && (1..=3).contains(&b));
            let x = Strategy::generate(&(0.5f64..2.0), &mut rng);
            assert!((0.5..2.0).contains(&x));
        }
    }

    #[test]
    fn string_pattern_respects_class_and_length() {
        let mut rng = TestRng::from_name("strings");
        for _ in 0..200 {
            let s = Strategy::generate(&"[ -~\\n]{0,200}", &mut rng);
            assert!(s.len() <= 200);
            assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
            let t = Strategy::generate(&"[a-c]{2,4}", &mut rng);
            assert!((2..=4).contains(&t.len()));
            assert!(t.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn select_vec_map_flat_map_compose() {
        let mut rng = TestRng::from_name("compose");
        let labels = prop::sample::select(vec!["a", "b"]);
        let strat = (1usize..=5).prop_flat_map(move |n| {
            prop::collection::vec(labels.clone(), n).prop_map(move |v| (n, v))
        });
        for _ in 0..200 {
            let (n, v) = Strategy::generate(&strat, &mut rng);
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|l| *l == "a" || *l == "b"));
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let mut a = TestRng::from_name("same");
        let mut b = TestRng::from_name("same");
        let mut c = TestRng::from_name("other");
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn int_shrink_candidates_descend() {
        let s = 0u32..100;
        assert_eq!(Strategy::shrink(&s, &40), vec![0, 20, 39]);
        assert_eq!(Strategy::shrink(&s, &1), vec![0]);
        assert!(Strategy::shrink(&s, &0).is_empty());
        // Signed ranges pull toward the start, not toward zero.
        assert_eq!(Strategy::shrink(&(-8i32..=8), &0), vec![-8, -4, -1]);
    }

    #[test]
    fn vec_shrink_prefers_prefixes() {
        let s = prop::collection::vec(0u8..10, 0..8);
        let c = Strategy::shrink(&s, &vec![5, 7, 9]);
        assert_eq!(c[0], Vec::<u8>::new());
        assert_eq!(c[1], vec![5]);
        assert_eq!(c[2], vec![5, 7]);
        // Element-wise candidates follow the prefixes.
        assert!(c.contains(&vec![0, 7, 9]), "{c:?}");
        // The length floor is respected.
        let s = prop::collection::vec(0u8..10, 2..8);
        assert!(Strategy::shrink(&s, &vec![5, 7, 9]).iter().all(|v| v.len() >= 2));
    }

    #[test]
    fn select_and_string_shrink() {
        let s = prop::sample::select(vec!["a", "b", "c"]);
        assert_eq!(Strategy::shrink(&s, &"c"), vec!["a", "b"]);
        assert!(Strategy::shrink(&s, &"a").is_empty());

        let s = "[a-z]{2,6}";
        let c = Strategy::shrink(&s, &"qwxyz".to_owned());
        assert_eq!(c, vec!["qw".to_owned(), "qwx".to_owned(), "qwxy".to_owned()]);
    }

    #[test]
    fn greedy_descent_reaches_boundary() {
        // The smallest x in 0..1000 with x >= 10 is exactly 10: the
        // halve/decrement candidates must land on it, not overshoot.
        let s = 0u32..1000;
        let fails = |x: &u32| *x >= 10;
        let mut v = 977u32;
        while let Some(c) = Strategy::shrink(&s, &v).into_iter().find(fails) {
            v = c;
        }
        assert_eq!(v, 10);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: bindings, asserts, and formats all work.
        #[test]
        fn macro_roundtrip(x in 0u32..100, v in prop::collection::vec(0u8..10, 0..6)) {
            prop_assert!(x < 100, "x out of bounds: {x}");
            prop_assert_eq!(v.len(), v.iter().len());
            prop_assert_eq!(x, x, "reflexivity for {}", x);
        }

        /// A failing property panics with the minimized counterexample,
        /// not just whatever case tripped first.
        #[test]
        #[should_panic(expected = "minimal failing input")]
        fn macro_reports_minimized_case(x in 0u32..1000) {
            prop_assert!(x < 10, "too big: {x}");
        }
    }
}
