//! Offline stand-in for the `proptest` property-testing crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of the proptest 1.x API the workspace's tests
//! use: the [`Strategy`] trait with `prop_map`/`prop_flat_map`, integer
//! and float range strategies, tuple strategies, `prop::sample::select`,
//! `prop::collection::vec`, character-class string strategies
//! (`"[ -~]{0,120}"` style), [`ProptestConfig::with_cases`], and the
//! [`proptest!`]/[`prop_assert!`]/[`prop_assert_eq!`] macros.
//!
//! Differences from real proptest: generation is driven by a fixed
//! deterministic RNG seeded from the test's name (so failures reproduce
//! exactly across runs), and there is no shrinking — a failing case
//! reports its inputs' case number rather than a minimized example.

use std::fmt;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic generator driving all strategies (xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds from an arbitrary byte string (typically the test name), so
    /// each test gets its own reproducible stream.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name, expanded through splitmix64.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut sm = h;
        TestRng {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, bound)`. `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform in `[0, 1)` with 53 mantissa bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// Config + errors
// ---------------------------------------------------------------------------

/// Per-block configuration (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed `prop_assert!` within one generated case.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Wraps a failure message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

// ---------------------------------------------------------------------------
// Strategy trait + combinators
// ---------------------------------------------------------------------------

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Feeds generated values into `f` to pick a dependent strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Strategy adapter produced by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

// --- numeric ranges --------------------------------------------------------

macro_rules! impl_int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u128).wrapping_sub(start as u128) as u64 + 1;
                (start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

// --- tuples ----------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($s:ident / $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);

// --- character-class strings -----------------------------------------------

/// String strategies from the `"[class]{lo,hi}"` regex subset: a single
/// character class (literal chars, `a-z` ranges, `\n`/`\t`/`\r`/`\\`
/// escapes) followed by a repetition count.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, lo, hi) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string strategy pattern: {self:?}"));
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len).map(|_| chars[rng.below(chars.len() as u64) as usize]).collect()
    }
}

/// Parses `[class]{lo,hi}`, `[class]{n}`, or a bare `[class]` (one char).
fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = find_class_end(rest)?;
    let class: Vec<char> = rest[..close].chars().collect();
    let chars = expand_class(&class)?;
    let tail = &rest[close + 1..];
    if tail.is_empty() {
        return Some((chars, 1, 1));
    }
    let counts = tail.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match counts.split_once(',') {
        Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
        None => {
            let n: usize = counts.trim().parse().ok()?;
            (n, n)
        }
    };
    if lo > hi {
        return None;
    }
    Some((chars, lo, hi))
}

/// Index of the unescaped `]` closing the class body.
fn find_class_end(s: &str) -> Option<usize> {
    let mut escaped = false;
    for (i, c) in s.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' => escaped = true,
            ']' => return Some(i),
            _ => {}
        }
    }
    None
}

/// Expands class chars (with escapes and `a-b` ranges) to the allowed set.
fn expand_class(class: &[char]) -> Option<Vec<char>> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < class.len() {
        let c = match class[i] {
            '\\' => {
                i += 1;
                match *class.get(i)? {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    other => other,
                }
            }
            other => other,
        };
        // `a-b` range (a `-` in final position is a literal dash).
        if class.get(i + 1) == Some(&'-') && i + 2 < class.len() {
            let hi = match class[i + 2] {
                '\\' => {
                    i += 1;
                    match *class.get(i + 2)? {
                        'n' => '\n',
                        't' => '\t',
                        'r' => '\r',
                        other => other,
                    }
                }
                other => other,
            };
            if (c as u32) > (hi as u32) {
                return None;
            }
            for code in (c as u32)..=(hi as u32) {
                out.push(char::from_u32(code)?);
            }
            i += 3;
        } else {
            out.push(c);
            i += 1;
        }
    }
    if out.is_empty() {
        None
    } else {
        Some(out)
    }
}

// ---------------------------------------------------------------------------
// prop:: modules
// ---------------------------------------------------------------------------

/// Namespaced strategy constructors, mirroring `proptest::prop`.
pub mod prop {
    /// Sampling from fixed collections.
    pub mod sample {
        use crate::{Strategy, TestRng};

        /// Uniform choice among the given items.
        #[derive(Debug, Clone)]
        pub struct Select<T> {
            items: Vec<T>,
        }

        /// Strategy drawing uniformly from `items` (must be non-empty).
        pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
            assert!(!items.is_empty(), "select requires at least one item");
            Select { items }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn generate(&self, rng: &mut TestRng) -> T {
                self.items[rng.below(self.items.len() as u64) as usize].clone()
            }
        }
    }

    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::{Range, RangeInclusive};

        /// Admissible length specs for [`vec()`](fn@vec).
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi: usize, // inclusive
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange { lo: r.start, hi: r.end - 1 }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                assert!(r.start() <= r.end(), "empty size range");
                SizeRange { lo: *r.start(), hi: *r.end() }
            }
        }

        /// Strategy generating vectors of `element` draws.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// A vector whose length is drawn from `size` and whose elements
        /// come from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi - self.size.lo) as u64 + 1;
                let len = self.size.lo + rng.below(span) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything a test module normally imports.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = $config:expr;
     $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $pat:pat in $strat:expr ),+ $(,)? ) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                for case in 0..config.cases {
                    $( let $pat = $crate::Strategy::generate(&($strat), &mut rng); )+
                    let run = || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    };
                    if let Err(err) = run() {
                        panic!(
                            "proptest case {}/{} of `{}` failed: {}",
                            case + 1, config.cases, stringify!($name), err
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts within a proptest body, failing the current case on `false`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality within a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left != right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}`",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if left != right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}`: {}",
                left,
                right,
                format!($($fmt)+)
            )));
        }
    }};
}

// ---------------------------------------------------------------------------
// Self-tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..500 {
            let n = Strategy::generate(&(2usize..=12), &mut rng);
            assert!((2..=12).contains(&n));
            let (a, b) = Strategy::generate(&(0u32..4, 1i64..=3), &mut rng);
            assert!(a < 4 && (1..=3).contains(&b));
            let x = Strategy::generate(&(0.5f64..2.0), &mut rng);
            assert!((0.5..2.0).contains(&x));
        }
    }

    #[test]
    fn string_pattern_respects_class_and_length() {
        let mut rng = TestRng::from_name("strings");
        for _ in 0..200 {
            let s = Strategy::generate(&"[ -~\\n]{0,200}", &mut rng);
            assert!(s.len() <= 200);
            assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
            let t = Strategy::generate(&"[a-c]{2,4}", &mut rng);
            assert!((2..=4).contains(&t.len()));
            assert!(t.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn select_vec_map_flat_map_compose() {
        let mut rng = TestRng::from_name("compose");
        let labels = prop::sample::select(vec!["a", "b"]);
        let strat = (1usize..=5).prop_flat_map(move |n| {
            prop::collection::vec(labels.clone(), n).prop_map(move |v| (n, v))
        });
        for _ in 0..200 {
            let (n, v) = Strategy::generate(&strat, &mut rng);
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|l| *l == "a" || *l == "b"));
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let mut a = TestRng::from_name("same");
        let mut b = TestRng::from_name("same");
        let mut c = TestRng::from_name("other");
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: bindings, asserts, and formats all work.
        #[test]
        fn macro_roundtrip(x in 0u32..100, v in prop::collection::vec(0u8..10, 0..6)) {
            prop_assert!(x < 100, "x out of bounds: {x}");
            prop_assert_eq!(v.len(), v.iter().len());
            prop_assert_eq!(x, x, "reflexivity for {}", x);
        }
    }
}
