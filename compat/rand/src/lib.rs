//! Offline stand-in for the `rand` crate (0.8-compatible subset).
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements exactly the surface the workspace uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`], and
//! [`Rng::gen_bool`]. The generator is xoshiro256++ (public domain
//! reference construction), which is more than adequate for Monte-Carlo
//! cross-validation and reproducible random walks. Streams are stable
//! across releases: tests may rely on seed-determinism.

/// Low-level uniform bit generation.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (splitmix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from the full value domain (the `Standard`
/// distribution of real `rand`).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable to a uniform value (`gen_range` argument).
pub trait SampleRange<T> {
    /// Samples one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Modulo bias is < 2^-64 for the spans used here.
                let offset = (rng.next_u64() as u128) % span;
                (self.start as u128 + offset) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as u128 + offset) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from its full domain (`Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_interval_samples() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let i = rng.gen_range(0..5usize);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
        for _ in 0..1000 {
            let x = rng.gen_range(2.0f64..3.0);
            assert!((2.0..3.0).contains(&x));
        }
        for _ in 0..1000 {
            let k = rng.gen_range(3u32..=5);
            assert!((3..=5).contains(&k));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }
}
