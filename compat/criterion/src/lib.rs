//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset of the criterion 0.5 API the workspace's benches
//! use: [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher`],
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`] macros.
//! Timing is a plain monotonic-clock loop: a short warm-up, then
//! `sample_size` timed samples; median, mean, and total iteration counts
//! are printed per benchmark. No plotting, no statistics beyond that —
//! enough to compare relative performance (e.g. thread-count sweeps) and
//! to keep `cargo bench` green without network access.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { text: format!("{}/{}", name.into(), parameter) }
    }

    /// Just the parameter (the group supplies the name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { text: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// The timing driver handed to benchmark closures.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_size: usize,
}

impl Bencher<'_> {
    /// Times `routine`, collecting `sample_size` samples of a batch whose
    /// size is calibrated so one batch takes roughly a millisecond.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up + batch calibration.
        let mut batch = 1usize;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / batch as u32);
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let label = format!("{}/{}", self.name, id);
        self.criterion.run_one(&label, |b| f(b));
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let label = format!("{}/{}", self.name, id);
        self.criterion.run_one(&label, |b| f(b, input));
        self
    }

    /// Finishes the group (printing already happened per benchmark).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        self.run_one(name, |b| f(b));
        self
    }

    fn run_one(&mut self, label: &str, mut f: impl FnMut(&mut Bencher<'_>)) {
        let mut samples = Vec::with_capacity(self.sample_size);
        let mut bencher = Bencher { samples: &mut samples, sample_size: self.sample_size };
        f(&mut bencher);
        if samples.is_empty() {
            println!("{label:<50} (no samples)");
            return;
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        println!(
            "{label:<50} median {}  mean {}  ({} samples)",
            fmt_duration(median),
            fmt_duration(mean),
            samples.len()
        );
    }

    /// Final report hook (no-op; kept for API compatibility).
    pub fn final_summary(&mut self) {}
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench `main`, criterion-style. `cargo bench` arguments
/// (`--bench`, filters) are accepted and ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut ran = 0usize;
        c.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
        });
        let mut group = c.benchmark_group("grp");
        group.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &x| {
            b.iter(|| x * x);
        });
        group.bench_function("counted", |b| {
            b.iter(|| ran += 1);
        });
        group.finish();
        assert!(ran > 0, "closure must actually run");
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("a", 3).to_string(), "a/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
