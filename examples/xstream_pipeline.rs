//! The xSTream credit-based pipeline, end to end (experiments E2 + E6).
//!
//! Run with `cargo run -p multival --example xstream_pipeline`.
//!
//! 1. Functional verification: the correct credit protocol is deadlock-free
//!    and the queue is a true FIFO; the two seeded bugs are caught
//!    automatically (deadlock witness, distinguishing trace).
//! 2. Performance: throughput, mean latency, and queue-occupancy
//!    distribution across consumer speeds.

use multival::lts::analysis::deadlock_witness;
use multival::lts::equiv::{weak_trace_equivalent, Verdict};
use multival::models::xstream::perf::{analyze, PerfConfig};
use multival::models::xstream::queue;
use multival::pa::{explore, parse_behaviour, parse_spec, ExploreOptions};
use multival::report::{fmt_f, Table};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let options = ExploreOptions::default();

    // ── Correct protocol verifies clean ────────────────────────────────
    let good = explore(&queue::credit_spec()?, &options)?.lts;
    println!("credit protocol: {}", good.summary());
    println!(
        "  deadlock freedom: {}",
        if deadlock_witness(&good).is_none() { "OK" } else { "FAILED" }
    );

    // ── Seeded bug 1: lossy credit return → deadlock ───────────────────
    let buggy = explore(&queue::buggy_credit_spec()?, &options)?.lts;
    match deadlock_witness(&buggy) {
        Some(w) => println!("  lossy-credit bug caught, witness: {}", w.join(" → ")),
        None => println!("  lossy-credit bug NOT caught (unexpected)"),
    }

    // ── Seeded bug 2: LIFO instead of FIFO → distinguishing trace ──────
    let fifo_spec = queue::fifo_spec()?;
    let spec_lts = multival::pa::explore_term(
        parse_behaviour("FifoSpec[put, get](0, 0, 0)", &fifo_spec)?,
        &fifo_spec,
        &options,
    )?
    .lts;
    let lifo = explore(&parse_spec(queue::buggy_lifo_spec())?, &options)?.lts;
    match weak_trace_equivalent(&spec_lts, &lifo, 1 << 16) {
        Verdict::Inequivalent { witness: Some(w) } => {
            println!("  LIFO bug caught, distinguishing trace: {}", w.join(" → "));
        }
        v => println!("  LIFO bug NOT caught: {v:?}"),
    }

    // ── Performance sweep (E6): consumer speed vs measures ─────────────
    let mut table =
        Table::new(&["consumer rate", "throughput", "latency", "mean q1", "P(q1 full)"]);
    for mu in [0.5, 1.0, 2.0, 4.0, 8.0] {
        let report = analyze(&PerfConfig { consumer_rate: mu, ..PerfConfig::default() })?;
        let mean_q1: f64 =
            report.occupancy_push.iter().enumerate().map(|(n, p)| n as f64 * p).sum();
        table.row_owned(vec![
            fmt_f(mu),
            fmt_f(report.throughput),
            fmt_f(report.latency),
            fmt_f(mean_q1),
            fmt_f(*report.occupancy_push.last().unwrap_or(&0.0)),
        ]);
    }
    println!("\nxSTream pipeline performance (λ=1, δ=4, κ=8, caps 2/2):");
    print!("{}", table.render());
    Ok(())
}
