//! Quickstart: the full Multival flow on a ten-line model.
//!
//! Run with `cargo run -p multival --example quickstart`.
//!
//! A one-place buffer is verified (deadlock freedom, order of actions) and
//! then evaluated (throughput, utilization) — the two halves of the
//! DATE'08 flow in one sitting.

use multival::flow::Flow;
use multival::imc::NondetPolicy;
use std::collections::HashMap;
use std::error::Error;

const MODEL: &str = "
process Buf[put, get](full: bool) :=
    [not full] -> put; Buf[put, get](true)
 [] [full]     -> get; Buf[put, get](false)
endproc
behaviour Buf[put, get](false)
";

fn main() -> Result<(), Box<dyn Error>> {
    // ── Functional side (paper §3) ─────────────────────────────────────
    let flow = Flow::from_source(MODEL)?;
    println!("state space: {}", flow.lts().summary());

    match flow.deadlock() {
        None => println!("deadlock freedom: OK"),
        Some(w) => println!("deadlock after {w:?}"),
    }

    // No get may ever precede the first put.
    let ordered = flow.check("nu X. [\"get\"] false and [not \"put\"] X")?;
    println!("no get before put: {}", if ordered.holds { "OK" } else { "VIOLATED" });

    // ── Performance side (paper §4) ────────────────────────────────────
    let mut rates = HashMap::new();
    rates.insert("put".to_owned(), 2.0); // producer: 2 items/unit
    rates.insert("get".to_owned(), 1.0); // consumer: 1 item/unit
    let solved = flow.with_rates(&rates).solve(NondetPolicy::Reject, &["put", "get"])?;

    for (label, throughput) in solved.throughputs()? {
        println!("throughput({label}) = {throughput:.4}");
    }
    let pi = solved.steady_state()?;
    println!("P(buffer full) = {:.4}", pi[1]);
    Ok(())
}
