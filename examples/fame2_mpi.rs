//! FAME2: MPI ping-pong latency across topologies, coherence protocols,
//! and MPI implementations (experiment E5).
//!
//! Run with `cargo run -p multival --example fame2_mpi --release`
//! (the payload sweep explores a few hundred thousand states).

use multival::models::fame2::benchmark::{latency_table, ping_pong_latency, RateConfig};
use multival::models::fame2::coherence::{verify_coherence, Protocol};
use multival::models::fame2::mpi::{MpiConfig, MpiImpl};
use multival::models::fame2::topology::Topology;
use multival::report::{fmt_f, Table};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // ── Coherence protocol verification ────────────────────────────────
    for protocol in [Protocol::Msi, Protocol::Mesi] {
        let v = verify_coherence(3, protocol, 1_000_000)?;
        println!(
            "{protocol} (3 agents): {} states, SWMR {}  deadlock-free {}",
            v.states,
            if v.swmr_violations == 0 { "OK" } else { "VIOLATED" },
            if v.deadlock.is_none() { "OK" } else { "NO" },
        );
    }

    // ── The E5 latency table ───────────────────────────────────────────
    let rates = RateConfig::default();
    let topologies = [Topology::Crossbar(4), Topology::Mesh(2, 2), Topology::Ring(4)];
    let rows = latency_table(&topologies, 1, &rates)?;
    let mut table = Table::new(&["topology", "protocol", "mpi impl", "latency", "states"]);
    for r in &rows {
        table.row_owned(vec![
            r.topology.to_string(),
            r.protocol.to_string(),
            r.implementation.to_string(),
            fmt_f(r.latency),
            r.states.to_string(),
        ]);
    }
    println!("\nping-pong latency, payload = 1 line:");
    print!("{}", table.render());

    // ── Payload sweep: the eager/rendezvous crossover ──────────────────
    let mut sweep = Table::new(&["payload", "eager", "rendezvous", "winner"]);
    let payloads: &[usize] = if cfg!(debug_assertions) { &[1, 2] } else { &[1, 2, 3, 4] };
    for &payload in payloads {
        let eager = ping_pong_latency(
            &MpiConfig {
                topology: Topology::Crossbar(4),
                protocol: Protocol::Mesi,
                implementation: MpiImpl::Eager,
                payload,
            },
            &rates,
        )?;
        let rdv = ping_pong_latency(
            &MpiConfig {
                topology: Topology::Crossbar(4),
                protocol: Protocol::Mesi,
                implementation: MpiImpl::Rendezvous,
                payload,
            },
            &rates,
        )?;
        sweep.row_owned(vec![
            payload.to_string(),
            fmt_f(eager.latency),
            fmt_f(rdv.latency),
            if eager.latency < rdv.latency { "eager" } else { "rendezvous" }.to_owned(),
        ]);
    }
    println!("\neager vs rendezvous (crossbar(4), MESI):");
    print!("{}", sweep.render());
    Ok(())
}
