//! FAUST NoC router verification + the isochronous-fork study
//! (experiments E3 + E4).
//!
//! Run with `cargo run -p multival --example faust_router` (use
//! `--release` to verify the full 5-port instance quickly).

use multival::models::faust::fork::run_fork_study;
use multival::models::faust::noc::verify_mesh;
use multival::models::faust::router::{router_2x2_spec_equivalence, verify_router};
use multival::pa::ExploreOptions;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // Verify router instances of growing size (the 5-port instance is the
    // real FAUST configuration; it takes a little while in debug builds).
    let ports = if cfg!(debug_assertions) { 4 } else { 5 };
    let v = verify_router(ports, &ExploreOptions::default())?;
    println!("router with {} ports:", v.ports);
    println!("  state space: {} states, {} transitions", v.states, v.transitions);
    println!("  deadlock freedom: {}", if v.deadlock.is_none() { "OK" } else { "FAILED" });
    println!(
        "  delivery correctness (no misroute): {}",
        if v.misroute.is_none() { "OK" } else { "FAILED" }
    );
    println!("  delivery always possible: {}", if v.delivery_live { "OK" } else { "FAILED" });
    println!(
        "  branching minimization: {} → {} states",
        v.reduction.states_before, v.reduction.states_after
    );

    let verdict = router_2x2_spec_equivalence()?;
    println!(
        "  2-port instance ≡ stop-and-wait spec (branching): {}",
        if verdict.holds() { "OK" } else { "FAILED" }
    );

    // ── The 2×2 mesh (routers + link buffers + flow control) ───────────
    println!("\n2x2 mesh:");
    let ok = verify_mesh(Some(2), &ExploreOptions::default())?;
    println!(
        "  2 packets in flight: {} states, deadlock-free {}",
        ok.states,
        ok.deadlock.is_none()
    );
    let bad = verify_mesh(Some(4), &ExploreOptions::with_max_states(4_000_000))?;
    match &bad.deadlock {
        Some(w) => {
            println!("  4 packets in flight: head-of-line blocking DEADLOCK — {}", w.join(" → "))
        }
        None => println!("  4 packets in flight: unexpectedly deadlock-free"),
    }

    // ── Isochronous fork (E4) ──────────────────────────────────────────
    let study = run_fork_study()?;
    println!("\nisochronous fork study:");
    println!(
        "  acknowledged fork ≡ atomic spec: {}",
        if study.acknowledged_equivalent.holds() { "OK" } else { "FAILED" }
    );
    println!(
        "  isochronous branch ≡ atomic spec: {}",
        if study.isochronous_equivalent.holds() { "OK" } else { "FAILED" }
    );
    match &study.buffered_equivalent {
        multival::lts::equiv::Verdict::Inequivalent { witness: Some(w) } => {
            println!(
                "  buffered (non-isochronous) branch ≢ spec — counterexample: {}",
                w.join(" → ")
            );
        }
        v => println!("  buffered branch unexpectedly equivalent: {v:?}"),
    }
    Ok(())
}
