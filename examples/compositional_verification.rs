//! Compositional verification, demonstrated on the buffer chain
//! (experiment E1): the same system is built monolithically and
//! compositionally, checked equivalent, and the peak intermediate state
//! counts are compared — the paper's §3 weapon against state explosion.
//!
//! Run with `cargo run -p multival --example compositional_verification`.

use multival::lts::equiv::equivalent;
use multival::lts::minimize::Equivalence;
use multival::models::xstream::pipeline::build_buffer_chain;
use multival::report::Table;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let mut table = Table::new(&[
        "cells",
        "monolithic peak",
        "compositional peak",
        "final states",
        "equivalent",
    ]);
    for k in [4usize, 6, 8, 10, 12] {
        let mono = build_buffer_chain(k, false);
        let comp = build_buffer_chain(k, true);
        let same = equivalent(&mono.lts, &comp.lts, Equivalence::Branching).holds();
        table.row_owned(vec![
            k.to_string(),
            mono.peak_states.to_string(),
            comp.peak_states.to_string(),
            comp.lts.num_states().to_string(),
            same.to_string(),
        ]);
    }
    println!("chain of k one-place buffers, internal hops hidden:");
    print!("{}", table.render());
    println!();
    println!("The monolithic product doubles with every cell (2^k states); the");
    println!("compositional build — minimize after hiding each internalized hop —");
    println!("keeps every intermediate linear in k, and both reduce to the same");
    println!("(k+1)-state counting queue.");

    // Show the per-stage story for one size.
    let comp = build_buffer_chain(8, true);
    let mut stages = Table::new(&["stage", "product states", "after minimize"]);
    for (name, before, after) in &comp.stages {
        stages.row_owned(vec![name.clone(), before.to_string(), after.to_string()]);
    }
    println!();
    println!("per-stage sizes for k = 8 (compositional):");
    print!("{}", stages.render());
    Ok(())
}
